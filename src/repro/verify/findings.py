"""Finding model and rule registry for the program verifier.

Every check the static linter (:mod:`repro.verify.lint`) performs is a
named *rule* with a stable kebab-case id.  A rule that fires produces a
:class:`Finding` anchored to a program counter.  Rule ids are the public
contract: tests assert on them, ``docs/verification.md`` documents each
one with a minimal failing example, and the bad-program corpus under
``tests/data/bad_programs/`` names its files after them.

Severities
----------

``error``
    The program is wrong: executing it reads garbage, faults, or falls
    off the end of the instruction stream.  :func:`repro.verify.check`
    raises on these, which is how compiler-emitted and workload
    programs are gated automatically.
``warning``
    Suspicious but executable (dead code, a ``setvl`` request that is
    statically negative and therefore clamps to zero).  Reported by
    ``vlt-repro lint`` but never fatal in the automatic hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

ERROR = "error"
WARNING = "warning"

#: rule id -> (severity, one-line description).  The single source of
#: truth -- docs and tests cross-check against this table.
RULES: Dict[str, tuple] = {
    "use-before-def": (
        ERROR,
        "a register is read on some path before any instruction writes it"),
    "mask-unset": (
        ERROR,
        "a masked / mask-consuming op executes before any vector compare "
        "has written vm"),
    "vl-unset": (
        WARNING,
        "a vector memory op is reachable before any setvl -- it would run "
        "at the architectural default vl=MVL"),
    "mem-oob": (
        ERROR,
        "a statically-resolvable memory access escapes the program's data "
        "image"),
    "mem-misaligned": (
        ERROR,
        "a statically-resolvable memory access is not 8-byte aligned"),
    "element-index-oob": (
        ERROR,
        "a vector element insert/extract uses a statically-known index "
        "outside [0, MVL)"),
    "setvl-negative": (
        WARNING,
        "setvl with a statically-known negative request (clamps to vl=0, "
        "making every vector op a no-op)"),
    "bad-vltcfg": (
        ERROR,
        "vltcfg with a missing, negative, or > MVL partition request"),
    "unreachable-code": (
        WARNING,
        "instructions that no path from pc 0 can reach"),
    "fall-off-end": (
        ERROR,
        "an execution path falls through past the last instruction "
        "without reaching halt"),
}


def severity_of(rule: str) -> str:
    """Severity for a rule id (raises KeyError on unknown rules)."""
    return RULES[rule][0]


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic, anchored to a program counter."""

    rule: str        #: rule id from :data:`RULES`
    severity: str    #: :data:`ERROR` or :data:`WARNING`
    pc: int          #: program counter the finding anchors to (-1: whole program)
    message: str     #: human-readable detail

    def render(self, program_name: str = "") -> str:
        where = f"pc {self.pc}" if self.pc >= 0 else "program"
        prefix = f"{program_name}: " if program_name else ""
        return f"{prefix}{where}: {self.severity} [{self.rule}] {self.message}"


class LintError(ValueError):
    """Raised by :func:`repro.verify.check` when error-severity findings
    exist; carries the full finding list."""

    def __init__(self, program_name: str, findings: List[Finding]):
        self.program_name = program_name
        self.findings = findings
        errors = [f for f in findings if f.severity == ERROR]
        lines = [f.render(program_name) for f in errors[:10]]
        more = len(errors) - len(lines)
        if more > 0:
            lines.append(f"... and {more} more")
        super().__init__(
            f"program {program_name!r} failed verification with "
            f"{len(errors)} error(s):\n  " + "\n  ".join(lines))
