"""Static analysis over finalized :class:`~repro.isa.program.Program`s.

The linter runs two forward dataflow analyses over the instruction-level
control-flow graph (basic blocks buy nothing at these program sizes):

* a *may-be-undefined* bitset over the dense register-uid space
  (:data:`~repro.isa.registers.NUM_REG_UIDS` bits, one Python int per
  program point, union at joins) driving ``use-before-def``,
  ``mask-unset`` and ``vl-unset``;
* a *constant propagation* lattice over scalar registers and ``vl``
  (known-int or unknown, intersection at joins) driving the memory
  range/alignment rules, ``setvl-negative``, ``bad-vltcfg`` and
  ``element-index-oob``.

Both run to a joint fixpoint, then a single reporting pass walks the
reachable instructions with their final entry states.  The memory rules
only fire when every involved quantity (base, offset, vl, stride) is
statically known -- the linter is precise-or-silent, never guessing, so
a clean report is meaningful and a finding is always real.

Control flow is resolved exactly for direct branches; the (unused in
practice) indirect ``jr`` is handled conservatively by treating every
label as a possible target.  ``s0`` is hard-wired zero and therefore
both always-defined and always-constant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..functional.executor import _INT_BIN, _INT_IMM
from ..isa.program import Instr, Program
from ..isa.registers import (MVL, NUM_REG_UIDS, VL_UID, VM_UID, reg_name,
                             reg_uid)
from .findings import ERROR, Finding, LintError, WARNING, severity_of

_MOD = 1 << 64
_HALF = 1 << 63

#: every uid except s0 starts maybe-undefined (vm and vl included; the
#: reporting pass decides which rule a read of them falls under)
_ENTRY_UNDEF = ((1 << NUM_REG_UIDS) - 1) & ~1


def _wrap64(v: int) -> int:
    """Two's-complement 64-bit wrap, matching ThreadState.write_s."""
    return ((v + _HALF) % _MOD) - _HALF


def _uid_name(uid: int) -> str:
    if uid == VM_UID:
        return "vm"
    if uid == VL_UID:
        return "vl"
    if uid >= 64:
        return f"v{uid - 64}"
    if uid >= 32:
        return f"f{uid - 32}"
    return f"s{uid}"


def _successors(ins: Instr, n: int, label_pcs: Tuple[int, ...]) -> Tuple[int, ...]:
    """Possible next pcs; ``n`` (one past the end) models falling off."""
    s = ins.spec
    if s.is_halt:
        return ()
    if s.is_branch:
        if ins.op == "jr":
            return label_pcs  # indirect: any label (conservative)
        succ = []
        if isinstance(ins.target, int):
            succ.append(ins.target)
        if not s.is_uncond:
            succ.append(ins.pc + 1)
        return tuple(succ)
    return (ins.pc + 1,)


def _merge_consts(a: Dict[int, int], b: Dict[int, int]) -> Dict[int, int]:
    if a is b:
        return a
    small, big = (a, b) if len(a) <= len(b) else (b, a)
    return {k: v for k, v in small.items() if big.get(k) == v}


def _transfer_consts(ins: Instr, consts: Dict[int, int]) -> Dict[int, int]:
    """Constant-propagation transfer function (scalar regs + vl only)."""
    s = ins.spec
    out = consts
    changed = False

    def _set(uid: int, val: Optional[int]):
        nonlocal out, changed
        if uid == 0:
            return  # s0 writes are discarded
        if not changed:
            out = dict(out)
            changed = True
        if val is None:
            out.pop(uid, None)
        else:
            out[uid] = val

    if s.writes_vl:  # setvl
        req = consts.get(reg_uid(ins.srcs[0])) if ins.srcs else None
        vl = None if req is None else min(max(req, 0), MVL)
        _set(VL_UID, vl)
        if ins.dst is not None:
            _set(reg_uid(ins.dst), vl)
        return out

    if ins.dst is not None and ins.dst[0] == "s":
        uid = reg_uid(ins.dst)
        val: Optional[int] = None
        if ins.op == "li":
            val = _wrap64(int(ins.imm))
        elif ins.op in _INT_BIN and len(ins.srcs) == 2:
            a = consts.get(reg_uid(ins.srcs[0]))
            b = consts.get(reg_uid(ins.srcs[1]))
            if a is not None and b is not None:
                try:
                    val = _wrap64(_INT_BIN[ins.op](a, b))
                except ZeroDivisionError:
                    val = None
        elif ins.op in _INT_IMM and len(ins.srcs) == 1:
            a = consts.get(reg_uid(ins.srcs[0]))
            if a is not None:
                try:
                    val = _wrap64(_INT_BIN[_INT_IMM[ins.op]](a, int(ins.imm)))
                except ZeroDivisionError:
                    val = None
        _set(uid, val)
        return out

    # any other write to a tracked register kills its constant
    for reg in ins.writes():
        if reg[0] == "s" or reg == ("vl", 0):
            uid = reg_uid(reg)
            if uid in out:
                _set(uid, None)
    return out


def _mem_findings(ins: Instr, consts: Dict[int, int],
                  memory_bytes: int) -> List[Finding]:
    """Range/alignment checks for one memory op, when statically known."""
    if ins.mem is None or ins.masked:
        # a masked access only touches active elements; without knowing
        # the mask value no element is provably accessed
        return []
    s = ins.spec
    off, base = ins.mem
    bv = consts.get(reg_uid(base))
    if bv is None:
        return []
    addr = bv + off
    if s.is_vector:
        vl = consts.get(VL_UID)
        if vl is None or vl == 0 or s.mem_indexed:
            return []
        if s.mem_stride:
            sv = consts.get(reg_uid(ins.stride))
            if sv is None:
                return []
            lo = addr + min(0, sv * (vl - 1))
            hi = addr + max(0, sv * (vl - 1))
            misaligned = bool(addr % 8) or (vl > 1 and bool(sv % 8))
            what = f"strided access base {addr} stride {sv} vl {vl}"
        else:
            lo, hi = addr, addr + 8 * (vl - 1)
            misaligned = bool(addr % 8)
            what = f"unit-stride access base {addr} vl {vl}"
    else:
        lo = hi = addr
        misaligned = bool(addr % 8)
        what = f"access at {addr}"
    out: List[Finding] = []
    if lo < 0 or hi + 8 > memory_bytes:
        out.append(Finding(
            "mem-oob", severity_of("mem-oob"), ins.pc,
            f"{ins.op}: {what} spans [{lo}, {hi + 8}) outside data image "
            f"of {memory_bytes} bytes"))
    if misaligned:
        out.append(Finding(
            "mem-misaligned", severity_of("mem-misaligned"), ins.pc,
            f"{ins.op}: {what} is not 8-byte aligned"))
    return out


def lint(program: Program) -> List[Finding]:
    """Run every static rule over a finalized program.

    Returns all findings sorted by (pc, rule); an empty list means the
    program is clean.  See :data:`repro.verify.findings.RULES`.
    """
    if not program.finalized:
        raise ValueError("lint() requires a finalized program "
                         "(call Program.finalize() first)")
    instrs = program.instrs
    n = len(instrs)
    label_pcs = tuple(sorted({pc for pc in program.labels.values()
                              if 0 <= pc < n}))

    # -- joint fixpoint: (maybe-undef bitset, known-constant dict) ---------
    states: List[Optional[Tuple[int, Dict[int, int]]]] = [None] * (n + 1)
    states[0] = (_ENTRY_UNDEF, {0: 0})
    work = [0]
    findings: List[Finding] = []
    while work:
        pc = work.pop()
        if pc >= n:
            continue
        ins = instrs[pc]
        undef, consts = states[pc]
        for reg in ins.writes():
            if reg != ("s", 0):
                undef &= ~(1 << reg_uid(reg))
        consts = _transfer_consts(ins, consts)
        for succ in _successors(ins, n, label_pcs):
            if not 0 <= succ <= n:
                findings.append(Finding(
                    "fall-off-end", severity_of("fall-off-end"), pc,
                    f"{ins.op}: branch target pc {succ} is outside the "
                    f"program (0..{n - 1})"))
                continue
            cur = states[succ]
            if cur is None:
                states[succ] = (undef, consts)
                work.append(succ)
            else:
                m_undef = cur[0] | undef
                m_consts = _merge_consts(cur[1], consts)
                if m_undef != cur[0] or len(m_consts) != len(cur[1]):
                    states[succ] = (m_undef, m_consts)
                    work.append(succ)

    # -- reporting pass over reachable instructions ------------------------
    for pc in range(n):
        if states[pc] is None:
            continue
        ins = instrs[pc]
        undef, consts = states[pc]
        s = ins.spec
        seen_uids = set()
        for reg in ins.reads():
            uid = reg_uid(reg)
            if uid == 0 or uid in seen_uids or not (undef >> uid) & 1:
                continue
            seen_uids.add(uid)
            if uid == VM_UID:
                findings.append(Finding(
                    "mask-unset", severity_of("mask-unset"), pc,
                    f"{ins.op}: reads the vector mask before any compare "
                    f"writes vm"))
            elif uid == VL_UID:
                if s.is_vector and (s.is_load or s.is_store):
                    findings.append(Finding(
                        "vl-unset", severity_of("vl-unset"), pc,
                        f"{ins.op}: vector memory op reachable before any "
                        f"setvl (runs at default vl={MVL})"))
            else:
                findings.append(Finding(
                    "use-before-def", severity_of("use-before-def"), pc,
                    f"{ins.op}: reads {_uid_name(uid)} which may be "
                    f"undefined here"))
        findings.extend(_mem_findings(ins, consts, program.memory_bytes))
        if s.writes_vl and ins.srcs:
            req = consts.get(reg_uid(ins.srcs[0]))
            if req is not None and req < 0:
                findings.append(Finding(
                    "setvl-negative", severity_of("setvl-negative"), pc,
                    f"setvl request is the constant {req}; vl clamps to 0 "
                    f"and every vector op becomes a no-op"))
        if s.is_vltcfg:
            imm = ins.imm
            # imm 0 is the "repartition for the current thread count"
            # idiom (the machine reads it as ``imm or num_threads``)
            if not isinstance(imm, int) or imm < 0 or imm > MVL:
                findings.append(Finding(
                    "bad-vltcfg", severity_of("bad-vltcfg"), pc,
                    f"vltcfg partition request {imm!r} is not an integer "
                    f"in [0, {MVL}]"))
        if ins.op in ("vins", "vfins", "vext", "vfext") and len(ins.srcs) == 2:
            idx = consts.get(reg_uid(ins.srcs[1]))
            if idx is not None and not 0 <= idx < MVL:
                findings.append(Finding(
                    "element-index-oob", severity_of("element-index-oob"),
                    pc,
                    f"{ins.op}: element index is the constant {idx}, "
                    f"outside [0, {MVL})"))

    # -- unreachable code (contiguous runs become one finding each) --------
    pc = 0
    while pc < n:
        if states[pc] is not None:
            pc += 1
            continue
        start = pc
        while pc < n and states[pc] is None:
            pc += 1
        findings.append(Finding(
            "unreachable-code", severity_of("unreachable-code"), start,
            f"pcs {start}..{pc - 1} are unreachable from pc 0"
            if pc - 1 > start else "instruction is unreachable from pc 0"))

    # -- fall off the end of the instruction stream ------------------------
    if states[n] is not None:
        findings.append(Finding(
            "fall-off-end", severity_of("fall-off-end"), n - 1,
            "an execution path falls through past the last instruction "
            "without reaching halt"))

    findings.sort(key=lambda f: (f.pc, f.rule))
    return findings


def check(program: Program) -> List[Finding]:
    """Lint and raise :class:`LintError` on any error-severity finding.

    This is the automatic gate run on every compiler-emitted program
    (:func:`repro.compiler.codegen.compile_kernel`) and every workload
    program (:meth:`repro.workloads.base.Workload.program`).  Returns
    the (possibly warning-only) finding list when the program passes.
    """
    findings = lint(program)
    if any(f.severity == ERROR for f in findings):
        raise LintError(program.name, findings)
    return findings


def emit_findings(program: Program, findings: List[Finding], bus) -> None:
    """Publish findings as typed ``VERIFY`` events on an obs event bus."""
    from ..obs.events import Event, VERIFY
    if not bus.enabled:
        return
    for f in findings:
        bus.emit(Event(0, VERIFY, f"verify:{program.name}", arg=f))
