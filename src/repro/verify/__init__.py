"""Program verification: static lint rules, functional/timing
differential checking, and mismatch shrinking.

Three layers, from cheapest to most thorough:

* :func:`lint` / :func:`check` -- static analysis over a finalized
  :class:`~repro.isa.program.Program` (no execution).  ``check`` raises
  :class:`LintError` on error-severity findings and is invoked
  automatically on every compiler-emitted and workload program.
* :func:`differential_check` -- replays a timing run against the
  functional executor and diffs final architectural state plus the
  committed-op streams.
* :func:`shrink_program` -- greedy delta-debugging reducer that
  minimizes any mismatching program to a small repro.

See ``docs/verification.md`` for the rule catalogue and workflow.
"""

from .findings import ERROR, Finding, LintError, RULES, WARNING, severity_of
from .lint import check, emit_findings, lint
from .diff import (DifferentialMismatch, DiffReport, Mismatch,
                   differential_check)
from .shrink import shrink_on_diff, shrink_program

__all__ = [
    "ERROR", "WARNING", "RULES", "Finding", "LintError", "severity_of",
    "lint", "check", "emit_findings",
    "DifferentialMismatch", "DiffReport", "Mismatch", "differential_check",
    "shrink_program", "shrink_on_diff",
]
