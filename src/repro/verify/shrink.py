"""Greedy program-shrinking reducer for mismatch repros.

Given a program and a predicate (``True`` = "still exhibits the bug"),
:func:`shrink_program` deletes instructions ddmin-style -- large chunks
first, then progressively smaller, re-testing after every candidate
deletion -- until no single instruction can be removed.  Deleting
instructions shifts every subsequent pc, so branch targets are remapped
through the kept-instruction prefix sums; a candidate whose branch
target was deleted retargets to the next surviving instruction, and a
candidate that loses its last ``halt`` (or otherwise fails to finalize)
simply doesn't reproduce and is rejected by construction.

The data image (symbols, initializers, memory size) is preserved: the
bugs this tool minimizes live in the instruction stream / timing replay,
and keeping addresses stable keeps the repro faithful.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..isa.program import Instr, Program


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    program: Program      #: the minimized program (still failing)
    original_len: int     #: instruction count before shrinking
    final_len: int        #: instruction count after shrinking
    evaluations: int      #: predicate invocations spent

    def render(self) -> str:
        return (f"shrunk {self.original_len} -> {self.final_len} "
                f"instructions in {self.evaluations} predicate "
                f"evaluations:\n{self.program.listing()}")


def _rebuild(program: Program, keep: List[bool]) -> Optional[Program]:
    """Build a finalized sub-program from a keep mask (None: not viable)."""
    kept = [i for i, k in enumerate(keep) if k]
    if not kept:
        return None
    instrs: List[Instr] = []
    for i in kept:
        old = program.instrs[i]
        target = old.target
        if isinstance(target, int):
            # retarget to the next surviving instruction at/after it
            j = bisect_left(kept, target)
            if j == len(kept):
                return None  # branch into deleted tail: not viable
            target = j
        instrs.append(Instr(
            old.op, dst=old.dst, srcs=old.srcs, imm=old.imm, mem=old.mem,
            stride=old.stride, vidx=old.vidx, target=target,
            masked=old.masked))
    p = Program(name=f"{program.name}-shrunk", instrs=instrs, labels={},
                symbols=dict(program.symbols),
                initializers=list(program.initializers),
                memory_bytes=program.memory_bytes)
    try:
        return p.finalize()
    except ValueError:
        return None  # e.g. every halt was deleted


def shrink_program(program: Program,
                   predicate: Callable[[Program], bool],
                   max_evaluations: int = 2000) -> ShrinkResult:
    """Minimize ``program`` while ``predicate`` keeps returning True.

    ``predicate`` must be True for ``program`` itself (raises
    ``ValueError`` otherwise) and should return False -- never raise --
    for candidates that don't reproduce.  ``max_evaluations`` bounds the
    total predicate budget; shrinking stops early when it is exhausted.
    """
    if not predicate(program):
        raise ValueError(
            f"program {program.name!r} does not exhibit the failure; "
            f"nothing to shrink")
    evaluations = 1
    keep = [True] * len(program.instrs)
    best = program

    def attempt(candidate_keep: List[bool]) -> Optional[Program]:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return None
        p = _rebuild(program, candidate_keep)
        if p is None:
            return None
        evaluations += 1
        return p if predicate(p) else None

    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        chunk = max(1, sum(keep) // 2)
        while chunk >= 1:
            live = [i for i, k in enumerate(keep) if k]
            pos = 0
            while pos < len(live):
                candidate = list(keep)
                for i in live[pos:pos + chunk]:
                    candidate[i] = False
                p = attempt(candidate)
                if p is not None:
                    keep = candidate
                    best = p
                    live = [i for i, k in enumerate(keep) if k]
                    progress = True
                    # stay at the same position: the next chunk slid in
                else:
                    pos += chunk
                if evaluations >= max_evaluations:
                    break
            if chunk == 1:
                break
            chunk //= 2
    return ShrinkResult(program=best, original_len=len(program.instrs),
                        final_len=sum(keep), evaluations=evaluations)


def shrink_on_diff(program: Program, cfg, num_threads: int = 1,
                   max_cycles: int = 50_000_000,
                   max_evaluations: int = 2000) -> ShrinkResult:
    """Shrink against the differential checker: keep a candidate when it
    still produces a functional/timing mismatch on ``cfg``.

    Candidates are traced with a fresh :class:`Executor` rather than the
    global trace memo (every candidate has a distinct content digest;
    memoising them would bloat the cache for single-shot traces).
    """
    from ..functional.executor import Executor
    from .diff import differential_check

    def predicate(p: Program) -> bool:
        try:
            tut = Executor(p, num_threads=num_threads,
                           record_trace=True).run()
            return not differential_check(
                p, cfg, num_threads=num_threads, max_cycles=max_cycles,
                trace=tut).ok
        except Exception:
            return False

    return shrink_program(program, predicate,
                          max_evaluations=max_evaluations)
