"""Functional/timing differential checker.

The timing simulator is trace-driven: it never computes data values, it
only replays :class:`~repro.functional.trace.DynOp` streams against the
microarchitecture model.  That split is what this checker exploits --
for any (program, config, threads) run it independently re-derives what
the timing machine *should* have replayed and diffs four surfaces:

1. **trace** -- a fresh functional execution against the (possibly
   cached) trace the timing machine consumes: catches stale or corrupt
   cache entries and trace (de)serialization bugs, op by op;
2. **state / memory** -- two independent functional executions must
   produce bit-identical final registers, vector state, and memory:
   catches executor nondeterminism;
3. **commit** -- every dispatchable op of every thread must be observed
   exactly once in the timing machine's committed-op event streams
   (in program order for scalar-unit ROB commits; set-semantics for
   lane cores, whose decoupled access streams legally slip ahead, and
   for vector-unit issue): catches dropped, duplicated, or reordered
   work in the timing model;
4. **invariants** -- per-thread finish times bounded by total cycles,
   barrier release count equal to the per-thread barrier count in the
   functional trace.

Which ops are *dispatchable* depends on the machine mode: barriers,
``halt`` and ``vltcfg`` never enter an execution stream (they are
handled at fetch); ``lsync`` is a fetch-side fence on scalar units but
occupies an issue slot on lane cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..functional.executor import Executor
from ..functional.fast import FastExecutor, validate_func_engine
from ..functional.trace import DynOp, ProgramTrace
from ..isa.program import Program
from ..obs.events import COMMIT, EventBus, LANE_ISSUE, VISSUE
from ..timing.config import MachineConfig
from ..timing.machine import run_traces
from ..timing.run import trace_for
from ..timing.stats import RunResult


@dataclass(frozen=True)
class Mismatch:
    """One point of disagreement between functional and timing views."""

    kind: str     #: "trace" | "state" | "memory" | "commit" | "invariant"
    thread: int   #: software thread id (-1 when not thread-specific)
    index: int    #: trace index / register uid / byte address, per kind
    detail: str

    def render(self) -> str:
        where = f"t{self.thread}" if self.thread >= 0 else "global"
        return f"[{self.kind}] {where}@{self.index}: {self.detail}"


@dataclass
class DiffReport:
    """Result of one differential check."""

    program_name: str
    config_name: str
    num_threads: int
    cycles: int = 0
    ops_checked: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    truncated: bool = False   #: mismatch list hit its cap

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        head = (f"diff {self.program_name} on {self.config_name} "
                f"({self.num_threads} threads): ")
        if self.ok:
            return (head + f"OK -- {self.ops_checked} ops agree, "
                    f"{self.cycles} cycles")
        lines = [head + f"{len(self.mismatches)} mismatch(es)"
                 + (" (truncated)" if self.truncated else "")]
        lines += ["  " + m.render() for m in self.mismatches]
        return "\n".join(lines)


#: per-run mismatch cap -- a broken run disagrees everywhere and a
#: bounded report is far more useful than a million-line one
MAX_MISMATCHES = 25


class DifferentialMismatch(AssertionError):
    """Raised by callers that treat a non-ok :class:`DiffReport` as
    fatal (the experiment runner's ``verify`` mode)."""

    def __init__(self, report: DiffReport):
        self.report = report
        super().__init__(report.render())


def _run_timing(cfg: MachineConfig, trace: ProgramTrace, max_cycles: int,
                bus: EventBus, engine: str = "event") -> RunResult:
    """Seam for the timing replay (tests monkeypatch this to inject
    timing bugs and exercise the checker + shrinker)."""
    return run_traces(cfg, trace, max_cycles=max_cycles, obs=bus,
                      engine=engine)


class _CommitCollector:
    """Event-bus sink recording which DynOps the timing machine retired."""

    def __init__(self) -> None:
        self.commits: List[DynOp] = []     # SU ROB commits, in order
        self.lane_issues: List[DynOp] = []  # lane-core issues (may slip)
        self.vissues: List[DynOp] = []      # vector-unit issues

    def on_event(self, event) -> None:
        if event.kind == COMMIT:
            self.commits.append(event.dynop)
        elif event.kind == LANE_ISSUE:
            self.lane_issues.append(event.dynop)
        elif event.kind == VISSUE:
            self.vissues.append(event.dynop)


def _op_fields(op: DynOp) -> Tuple:
    return (op.pc, op.op, op.vl, op.taken, op.tgt, op.imm, op.reads,
            op.writes)


def _diff_traces(ref: ProgramTrace, tut: ProgramTrace,
                 report: DiffReport) -> None:
    """Op-by-op comparison of the reference functional trace against the
    trace under test (the one the timing machine replays)."""
    add = _Adder(report)
    if ref.num_threads != tut.num_threads:
        add("trace", -1, 0, f"thread counts differ: reference "
            f"{ref.num_threads}, under-test {tut.num_threads}")
        return
    for t, (rt, ut) in enumerate(zip(ref.threads, tut.threads)):
        if len(rt.ops) != len(ut.ops):
            add("trace", t, min(len(rt.ops), len(ut.ops)),
                f"trace lengths differ: reference {len(rt.ops)} ops, "
                f"under-test {len(ut.ops)}")
        for i, (a, b) in enumerate(zip(rt.ops, ut.ops)):
            report.ops_checked += 1
            if _op_fields(a) != _op_fields(b):
                add("trace", t, i,
                    f"op differs: reference {a.op}@pc{a.pc} "
                    f"{_op_fields(a)}, under-test {b.op}@pc{b.pc} "
                    f"{_op_fields(b)}")
            elif not _addrs_equal(a.addrs, b.addrs):
                add("trace", t, i,
                    f"{a.op}@pc{a.pc}: memory addresses differ")


def _addrs_equal(a, b) -> bool:
    if a is None or b is None:
        return (a is None) == (b is None)
    return bool(np.array_equal(a, b))


def _diff_final_state(ex1: Executor, ex2: Executor,
                      report: DiffReport) -> None:
    """Two independent functional runs must agree bit-for-bit."""
    add = _Adder(report)
    for t, (s1, s2) in enumerate(zip(ex1.states, ex2.states)):
        for i, (a, b) in enumerate(zip(s1.s, s2.s)):
            if a != b:
                add("state", t, i, f"s{i}: {a} != {b}")
        for i, (a, b) in enumerate(zip(s1.f, s2.f)):
            if a != b and not (np.isnan(a) and np.isnan(b)):
                add("state", t, i, f"f{i}: {a} != {b}")
        if s1.vl != s2.vl:
            add("state", t, -1, f"vl: {s1.vl} != {s2.vl}")
        if not np.array_equal(s1.vm, s2.vm):
            add("state", t, -1, "vector mask differs")
        if s1.v_i.tobytes() != s2.v_i.tobytes():
            bad = np.nonzero((s1.v_i != s2.v_i).any(axis=1))[0]
            add("state", t, int(bad[0]) if len(bad) else -1,
                f"vector registers differ: {['v%d' % v for v in bad[:4]]}")
    if ex1.mem.u8.tobytes() != ex2.mem.u8.tobytes():
        bad = np.nonzero(ex1.mem.u8 != ex2.mem.u8)[0]
        add("memory", -1, int(bad[0]),
            f"{len(bad)} byte(s) differ, first at address {int(bad[0])}")


class _Adder:
    """Capped append helper for :class:`DiffReport`."""

    def __init__(self, report: DiffReport):
        self.report = report

    def __call__(self, kind: str, thread: int, index: int,
                 detail: str) -> None:
        r = self.report
        if len(r.mismatches) >= MAX_MISMATCHES:
            r.truncated = True
            return
        r.mismatches.append(Mismatch(kind, thread, index, detail))


def _diff_committed(trace: ProgramTrace, collector: _CommitCollector,
                    lane_mode: bool, report: DiffReport) -> None:
    """Every dispatchable op retired exactly once, scalar commits in
    program order."""
    add = _Adder(report)
    idmap: Dict[int, Tuple[int, int]] = {}
    for t, tt in enumerate(trace.threads):
        for i, op in enumerate(tt.ops):
            idmap[id(op)] = (t, i)

    def classify(events: List[DynOp], label: str):
        per_thread: Dict[int, List[int]] = {t: [] for t in
                                            range(trace.num_threads)}
        for op in events:
            loc = idmap.get(id(op))
            if loc is None:
                add("commit", -1, -1,
                    f"{label}: retired op {op.op}@pc{op.pc} is not in the "
                    f"functional trace")
                continue
            per_thread[loc[0]].append(loc[1])
        return per_thread

    su_committed = classify(collector.commits, "SU commit")
    lane_issued = classify(collector.lane_issues, "lane issue")
    vu_issued = classify(collector.vissues, "VU issue")

    for t, tt in enumerate(trace.threads):
        ops = tt.ops
        if lane_mode:
            expected = [i for i, op in enumerate(ops)
                        if not (op.spec.is_barrier or op.spec.is_halt
                                or op.spec.is_vltcfg)]
            # decoupled slip may legally reorder: set semantics
            got = lane_issued[t]
            _expect_once(expected, got, ops, t, "lane issue", add)
            for stream, label in ((su_committed[t], "SU commit"),
                                  (vu_issued[t], "VU issue")):
                for i in stream:
                    add("commit", t, i,
                        f"{label} of {ops[i].op}@pc{ops[i].pc} on a "
                        f"lane-mode machine")
        else:
            # vector ops occupy the SU ROB (committing in program order)
            # AND must each be issued exactly once by the vector unit
            exp_commit = [i for i, op in enumerate(ops)
                          if not (op.spec.is_barrier or op.spec.is_halt
                                  or op.spec.is_lsync
                                  or op.spec.is_vltcfg)]
            exp_vector = [i for i, op in enumerate(ops)
                          if op.spec.is_vector]
            got = su_committed[t]
            if got != exp_commit:
                _expect_once(exp_commit, got, ops, t, "SU commit", add)
                if sorted(got) == sorted(exp_commit) and got != exp_commit:
                    first = next(i for i, (a, b)
                                 in enumerate(zip(got, exp_commit))
                                 if a != b)
                    add("commit", t, got[first],
                        f"SU commits out of program order from trace "
                        f"index {exp_commit[first]}")
            _expect_once(exp_vector, vu_issued[t], ops, t, "VU issue", add)
            for i in lane_issued[t]:
                add("commit", t, i,
                    f"lane issue of {ops[i].op}@pc{ops[i].pc} on an "
                    f"SU-mode machine")
        report.ops_checked += len(ops)


def _expect_once(expected: List[int], got: List[int], ops,
                 t: int, label: str, add: "_Adder") -> None:
    exp_set, got_counts = set(expected), {}
    for i in got:
        got_counts[i] = got_counts.get(i, 0) + 1
    for i in expected:
        c = got_counts.get(i, 0)
        if c != 1:
            add("commit", t, i,
                f"{label}: {ops[i].op}@pc{ops[i].pc} (trace index {i}) "
                f"retired {c} times, expected once")
    for i, c in got_counts.items():
        if i not in exp_set:
            add("commit", t, i,
                f"{label}: {ops[i].op}@pc{ops[i].pc} (trace index {i}) "
                f"retired but is not dispatchable in this mode")


def differential_check(program: Program, cfg: MachineConfig,
                       num_threads: int = 1,
                       max_cycles: int = 50_000_000,
                       trace: Optional[ProgramTrace] = None,
                       engine: str = "event",
                       func_engine: str = "reference") -> DiffReport:
    """Cross-check one timing run against the functional executor.

    ``trace`` overrides the trace under test (defaults to the cached
    :func:`~repro.timing.run.trace_for` path, i.e. exactly what a
    normal ``simulate`` call would replay).  ``engine`` selects the
    timing replay engine under test -- with ``engine="columnar"`` the
    commit/issue streams of the columnar machine are checked against
    the same functional reference, which (combined with cycle-count
    comparison) is the columnar-vs-event gate.  ``func_engine="fast"``
    puts the fast functional engine under test instead: the trace under
    test is regenerated by :class:`FastExecutor` (bypassing the trace
    memo, so the fast engine really runs) and the second functional
    execution of the state diff also uses it -- trace, final state,
    and memory are then all fast-vs-reference comparisons.  Returns a
    :class:`DiffReport`; ``report.ok`` means full agreement.
    """
    validate_func_engine(func_engine)
    fast = func_engine == "fast"
    report = DiffReport(program_name=program.name, config_name=cfg.name,
                        num_threads=num_threads)
    if trace is not None:
        tut = trace
    elif fast:
        tut = FastExecutor(program, num_threads=num_threads,
                           record_trace=True).run()
    else:
        tut = trace_for(program, num_threads)

    # 1/2: independent functional executions -- trace + state agreement
    ex1 = Executor(program, num_threads=num_threads, record_trace=True)
    ref_trace = ex1.run()
    cls2 = FastExecutor if fast else Executor
    ex2 = cls2(program, num_threads=num_threads, record_trace=False)
    ex2.run()
    _diff_traces(ref_trace, tut, report)
    _diff_final_state(ex1, ex2, report)

    # 3: timing replay with a committed-op collector attached
    bus = EventBus()
    collector = _CommitCollector()
    bus.attach(collector)
    if engine == "event":
        # keep the historic 4-arg call: tests monkeypatch _run_timing
        # with 4-parameter fakes to inject timing bugs
        result = _run_timing(cfg, tut, max_cycles, bus)
    else:
        result = _run_timing(cfg, tut, max_cycles, bus, engine=engine)
    report.cycles = result.cycles
    _diff_committed(tut, collector, cfg.lane_scalar_mode, report)

    # 4: cheap structural invariants
    add = _Adder(report)
    for t, fin in enumerate(result.thread_finish):
        if fin > result.cycles:
            add("invariant", t, fin,
                f"thread finish time {fin} exceeds total cycles "
                f"{result.cycles}")
    per_thread_barriers = [sum(1 for op in tt.ops if op.spec.is_barrier)
                           for tt in tut.threads]
    if len(set(per_thread_barriers)) > 1:
        add("invariant", -1, 0,
            f"threads disagree on barrier count: {per_thread_barriers}")
    elif per_thread_barriers and \
            result.barrier_count != per_thread_barriers[0]:
        add("invariant", -1, result.barrier_count,
            f"timing released {result.barrier_count} barriers, trace has "
            f"{per_thread_barriers[0]} per thread")
    return report
