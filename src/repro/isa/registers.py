"""Register-file specification for the X1-flavoured VLT ISA.

The simulated machine exposes four architectural register classes,
mirroring the Cray X1 register model the paper builds on (Section 6,
Table 3):

* ``s0``-``s31`` -- 64-bit scalar integer/address registers.  ``s0`` is
  hard-wired to zero, which gives the assembler a free source of the
  constant 0 and an unconditional-branch idiom (``beq s0, s0, label``).
* ``f0``-``f31`` -- 64-bit scalar floating-point registers.
* ``v0``-``v31`` -- vector registers of :data:`MVL` 64-bit elements each.
  Elements are distributed round-robin across the vector lanes by the
  timing model; the architectural view here is a flat array.
* ``vm``        -- a single vector mask register of :data:`MVL` bits.

In addition there is the vector-length register ``vl`` written by
``setvl`` and read implicitly by every vector instruction.

Registers are identified throughout the code base by a ``(class, index)``
pair, where *class* is one of the single-character strings in
:data:`REG_CLASSES`.  For dependence tracking the timing simulator wants
a dense integer namespace, provided by :func:`reg_uid`.
"""

from __future__ import annotations

from typing import Tuple

#: Number of registers in each of the s/f/v classes.
NUM_SREGS = 32
NUM_FREGS = 32
NUM_VREGS = 32

#: Maximum vector length in 64-bit elements (Cray X1: 64 elements/register).
MVL = 64

#: Bytes per architectural word / vector element.
WORD_BYTES = 8

#: Valid register-class tags.
REG_CLASSES = ("s", "f", "v", "vm", "vl")

#: A register operand: ("s"|"f"|"v"|"vm"|"vl", index).
Reg = Tuple[str, int]

# Dense unique-id layout used by the dependence trackers.
_S_BASE = 0
_F_BASE = NUM_SREGS
_V_BASE = NUM_SREGS + NUM_FREGS
_VM_UID = _V_BASE + NUM_VREGS
_VL_UID = _VM_UID + 1

#: Total number of distinct register uids (per hardware thread context).
NUM_REG_UIDS = _VL_UID + 1


def sreg(i: int) -> Reg:
    """Return the scalar integer register operand ``s{i}``."""
    if not 0 <= i < NUM_SREGS:
        raise ValueError(f"scalar register index out of range: {i}")
    return ("s", i)


def freg(i: int) -> Reg:
    """Return the scalar floating-point register operand ``f{i}``."""
    if not 0 <= i < NUM_FREGS:
        raise ValueError(f"fp register index out of range: {i}")
    return ("f", i)


def vreg(i: int) -> Reg:
    """Return the vector register operand ``v{i}``."""
    if not 0 <= i < NUM_VREGS:
        raise ValueError(f"vector register index out of range: {i}")
    return ("v", i)


#: The vector mask register operand.
VM: Reg = ("vm", 0)

#: The vector-length register operand.
VL: Reg = ("vl", 0)


def reg_uid(reg: Reg) -> int:
    """Map a register operand to a dense integer id.

    The id space is ``[0, NUM_REG_UIDS)`` and is *per hardware context*:
    two SMT contexts each have their own full namespace.
    """
    cls, idx = reg
    if cls == "s":
        return _S_BASE + idx
    if cls == "f":
        return _F_BASE + idx
    if cls == "v":
        return _V_BASE + idx
    if cls == "vm":
        return _VM_UID
    if cls == "vl":
        return _VL_UID
    raise ValueError(f"unknown register class: {cls!r}")


#: Public uid-space landmarks (see :func:`reg_uid`).
S_BASE = _S_BASE
F_BASE = _F_BASE
V_BASE = _V_BASE
VM_UID = _VM_UID
VL_UID = _VL_UID


def uid_is_scalar(uid: int) -> bool:
    """True when a register uid lives on the scalar-unit side.

    Scalar integer/FP registers and the vector-length register (written
    by ``setvl`` in the SU) are scalar-side; ``v*`` and ``vm`` live in
    the lanes.
    """
    return uid < _V_BASE or uid == _VL_UID


def reg_name(reg: Reg) -> str:
    """Render a register operand in assembly syntax (``s3``, ``v12``, ``vm``)."""
    cls, idx = reg
    if cls in ("vm", "vl"):
        return cls
    return f"{cls}{idx}"


def parse_reg(text: str) -> Reg:
    """Parse assembly syntax (``s3``, ``f0``, ``v31``, ``vm``, ``vl``) to an operand."""
    text = text.strip()
    if text == "vm":
        return VM
    if text == "vl":
        return VL
    if len(text) >= 2 and text[0] in "sfv" and text[1:].isdigit():
        idx = int(text[1:])
        limit = {"s": NUM_SREGS, "f": NUM_FREGS, "v": NUM_VREGS}[text[0]]
        if not 0 <= idx < limit:
            raise ValueError(f"register index out of range: {text!r}")
        return (text[0], idx)
    raise ValueError(f"malformed register name: {text!r}")


def is_vector_reg(reg: Reg) -> bool:
    """True for ``v*`` and ``vm`` operands (operands living in the lanes)."""
    return reg[0] in ("v", "vm")
