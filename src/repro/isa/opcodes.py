"""Opcode registry for the X1-flavoured VLT ISA.

Each opcode is described by an :class:`OpSpec` carrying everything the
assembler, the functional simulator and the timing simulator need to
know about it *except* its semantics (which live in
:mod:`repro.functional.executor`) :

* ``sig`` -- the assembly operand signature, a tuple of operand-kind
  tags (see :data:`OPERAND_KINDS`),
* ``pool`` -- which functional-unit pool executes it
  (``"arith"``/``"mem"`` in the scalar unit, ``"varith"``/``"vmem"`` in
  the vector lanes, ``"none"`` for pure control),
* ``latency`` -- execute latency in cycles.  For scalar memory ops this
  is the address-generation cost (cache latency is added by the memory
  model); for vector ops it is the pipeline start-up cost (occupancy is
  ``ceil(VL / lanes)`` and is added by the lane model),
* boolean classification flags used throughout the pipeline models.

The instruction set is deliberately close to the Cray X1 subset the
paper's benchmarks exercise: scalar integer/FP ALU, scalar memory,
branches, ``setvl`` strip-mine control, vector integer/FP arithmetic in
``.vv`` (vector-vector) and ``.vs`` (vector-scalar) forms, vector
compares into the mask register, masked execution, reductions, element
insert/extract, unit-stride/strided/indexed memory, and the thread/VLT
runtime operations (``tid``/``ntid``/``barrier``/``vltcfg``) of which
``vltcfg`` is the paper's single ISA extension (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Operand-kind tags used in opcode signatures.
#:
#: ``sd``/``ss``   scalar integer destination / source
#: ``fd``/``fs``   scalar FP destination / source
#: ``vd``/``vs``   vector destination / source
#: ``vmd``         the mask register as destination
#: ``imm``         integer immediate
#: ``mem``         memory operand ``offset(sreg)``
#: ``label``       branch target label
OPERAND_KINDS = ("sd", "ss", "fd", "fs", "vd", "vs", "vmd", "imm", "mem", "label")


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    sig: Tuple[str, ...]
    pool: str
    latency: int
    is_vector: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_uncond: bool = False
    is_barrier: bool = False
    is_halt: bool = False
    writes_vl: bool = False
    writes_mask: bool = False
    reads_mask: bool = False
    is_reduction: bool = False
    allow_mask: bool = False  # may carry a ``.m`` masked-execution suffix
    dst_is_src: bool = False  # read-modify-write destination (vins)
    is_vltcfg: bool = False
    is_lsync: bool = False    # scalar/vector memory ordering fence
    mem_stride: bool = False  # strided memory op (extra scalar stride operand)
    mem_indexed: bool = False  # indexed/gather-scatter memory op

    @property
    def has_dst(self) -> bool:
        return bool(self.sig) and self.sig[0] in ("sd", "fd", "vd", "vmd")


#: The opcode registry, keyed by canonical assembly mnemonic.
OPCODES: Dict[str, OpSpec] = {}


def _add(name: str, sig: Tuple[str, ...], pool: str, latency: int, **flags) -> None:
    if name in OPCODES:
        raise ValueError(f"duplicate opcode {name!r}")
    OPCODES[name] = OpSpec(name=name, sig=sig, pool=pool, latency=latency, **flags)


# --------------------------------------------------------------------------
# Scalar integer ALU
# --------------------------------------------------------------------------

_INT_RR = {
    "add": 1, "sub": 1, "mul": 3, "div": 12, "rem": 12,
    "and": 1, "or": 1, "xor": 1, "sll": 1, "srl": 1, "sra": 1,
    "slt": 1, "sle": 1, "seq": 1, "sne": 1, "min": 1, "max": 1,
}
for _n, _lat in _INT_RR.items():
    _add(_n, ("sd", "ss", "ss"), "arith", _lat)

_INT_RI = {
    "addi": 1, "muli": 3, "andi": 1, "ori": 1, "xori": 1,
    "slli": 1, "srli": 1, "srai": 1, "slti": 1,
}
for _n, _lat in _INT_RI.items():
    _add(_n, ("sd", "ss", "imm"), "arith", _lat)

_add("li", ("sd", "imm"), "arith", 1)
_add("nop", (), "arith", 1)

# --------------------------------------------------------------------------
# Scalar floating point
# --------------------------------------------------------------------------

for _n, _lat in {"fadd": 3, "fsub": 3, "fmul": 4, "fdiv": 12,
                 "fmin": 2, "fmax": 2}.items():
    _add(_n, ("fd", "fs", "fs"), "arith", _lat)
for _n, _lat in {"fsqrt": 16, "fabs": 1, "fneg": 1, "fmv": 1}.items():
    _add(_n, ("fd", "fs"), "arith", _lat)
for _n in ("feq", "flt", "fle"):
    _add(_n, ("sd", "fs", "fs"), "arith", 2)
_add("fli", ("fd", "imm"), "arith", 1)       # load FP immediate
_add("itof", ("fd", "ss"), "arith", 2)       # int -> fp convert
_add("ftoi", ("sd", "fs"), "arith", 2)       # fp -> int convert (truncate)

# --------------------------------------------------------------------------
# Scalar memory (address-gen latency; cache latency added by memory model)
# --------------------------------------------------------------------------

_add("ld", ("sd", "mem"), "mem", 1, is_load=True)
_add("st", ("ss", "mem"), "mem", 1, is_store=True)
_add("fld", ("fd", "mem"), "mem", 1, is_load=True)
_add("fst", ("fs", "mem"), "mem", 1, is_store=True)

# --------------------------------------------------------------------------
# Control flow
# --------------------------------------------------------------------------

for _n in ("beq", "bne", "blt", "bge"):
    _add(_n, ("ss", "ss", "label"), "arith", 1, is_branch=True)
_add("j", ("label",), "arith", 1, is_branch=True, is_uncond=True)
_add("jal", ("sd", "label"), "arith", 1, is_branch=True, is_uncond=True)
_add("jr", ("ss",), "arith", 1, is_branch=True, is_uncond=True)
_add("halt", (), "none", 1, is_halt=True)

# --------------------------------------------------------------------------
# Vector length control
# --------------------------------------------------------------------------

# vl = min(max(rs, 0), MVL); rd receives the resulting vl (strip-mining idiom)
_add("setvl", ("sd", "ss"), "arith", 1, writes_vl=True)

# --------------------------------------------------------------------------
# Vector integer arithmetic
# --------------------------------------------------------------------------

_VINT = {
    "vadd": 2, "vsub": 2, "vmul": 4, "vdiv": 12, "vrem": 12,
    "vand": 2, "vor": 2, "vxor": 2, "vsll": 2, "vsrl": 2, "vsra": 2,
    "vmin": 2, "vmax": 2,
}
for _n, _lat in _VINT.items():
    _add(f"{_n}.vv", ("vd", "vs", "vs"), "varith", _lat,
         is_vector=True, allow_mask=True)
    _add(f"{_n}.vs", ("vd", "vs", "ss"), "varith", _lat,
         is_vector=True, allow_mask=True)
_add("vrsub.vs", ("vd", "vs", "ss"), "varith", 2,
     is_vector=True, allow_mask=True)  # scalar - vector

# --------------------------------------------------------------------------
# Vector floating-point arithmetic
# --------------------------------------------------------------------------

_VFP = {"vfadd": 3, "vfsub": 3, "vfmul": 4, "vfdiv": 12,
        "vfmin": 3, "vfmax": 3}
for _n, _lat in _VFP.items():
    _add(f"{_n}.vv", ("vd", "vs", "vs"), "varith", _lat,
         is_vector=True, allow_mask=True)
    _add(f"{_n}.vs", ("vd", "vs", "fs"), "varith", _lat,
         is_vector=True, allow_mask=True)
_add("vfrsub.vs", ("vd", "vs", "fs"), "varith", 3,
     is_vector=True, allow_mask=True)
for _n, _lat in {"vfsqrt": 16, "vfneg": 3, "vfabs": 3}.items():
    _add(f"{_n}.v", ("vd", "vs"), "varith", _lat,
         is_vector=True, allow_mask=True)
_add("vitof.v", ("vd", "vs"), "varith", 3, is_vector=True, allow_mask=True)
_add("vftoi.v", ("vd", "vs"), "varith", 3, is_vector=True, allow_mask=True)
_add("vmv.v", ("vd", "vs"), "varith", 2, is_vector=True, allow_mask=True)
_add("vmv.s", ("vd", "ss"), "varith", 2, is_vector=True, allow_mask=True)  # splat
_add("vfmv.s", ("vd", "fs"), "varith", 2, is_vector=True, allow_mask=True)  # splat fp

# --------------------------------------------------------------------------
# Vector compares (write the mask register) and mask-consuming ops
# --------------------------------------------------------------------------

for _n in ("vseq", "vsne", "vslt", "vsle"):
    _add(f"{_n}.vv", ("vmd", "vs", "vs"), "varith", 2,
         is_vector=True, writes_mask=True)
    _add(f"{_n}.vs", ("vmd", "vs", "ss"), "varith", 2,
         is_vector=True, writes_mask=True)
for _n in ("vfeq", "vflt", "vfle"):
    _add(f"{_n}.vv", ("vmd", "vs", "vs"), "varith", 3,
         is_vector=True, writes_mask=True)
    _add(f"{_n}.vs", ("vmd", "vs", "fs"), "varith", 3,
         is_vector=True, writes_mask=True)

# vmerge: dst[i] = mask[i] ? src1[i] : src2[i]
_add("vmerge.vv", ("vd", "vs", "vs"), "varith", 2,
     is_vector=True, reads_mask=True)
_add("vmerge.vs", ("vd", "vs", "ss"), "varith", 2,
     is_vector=True, reads_mask=True)
_add("vfmerge.vs", ("vd", "vs", "fs"), "varith", 3,
     is_vector=True, reads_mask=True)

_add("vmpop", ("sd",), "varith", 4, is_vector=True, reads_mask=True)
_add("vmfirst", ("sd",), "varith", 4, is_vector=True, reads_mask=True)
_add("viota.m", ("vd",), "varith", 8, is_vector=True, reads_mask=True)
_add("vid.v", ("vd",), "varith", 2, is_vector=True, allow_mask=True)
# pack the mask-active elements of the source densely into the low
# elements of the destination (classic sparse/conditional-loop support)
_add("vcompress.m", ("vd", "vs"), "varith", 8,
     is_vector=True, reads_mask=True)

# --------------------------------------------------------------------------
# Vector reductions (vector source -> scalar destination)
# --------------------------------------------------------------------------

for _n in ("vredsum", "vredmin", "vredmax"):
    _add(_n, ("sd", "vs"), "varith", 8,
         is_vector=True, is_reduction=True, allow_mask=True)
for _n in ("vfredsum", "vfredmin", "vfredmax"):
    _add(_n, ("fd", "vs"), "varith", 8,
         is_vector=True, is_reduction=True, allow_mask=True)

# --------------------------------------------------------------------------
# Vector element insert / extract
# --------------------------------------------------------------------------

_add("vext", ("sd", "vs", "ss"), "varith", 4, is_vector=True)
_add("vfext", ("fd", "vs", "ss"), "varith", 4, is_vector=True)
_add("vins", ("vd", "ss", "ss"), "varith", 4, is_vector=True, dst_is_src=True)
_add("vfins", ("vd", "fs", "ss"), "varith", 4, is_vector=True, dst_is_src=True)

# --------------------------------------------------------------------------
# Vector memory
# --------------------------------------------------------------------------

_add("vld", ("vd", "mem"), "vmem", 1,
     is_vector=True, is_load=True, allow_mask=True)
_add("vlds", ("vd", "mem", "ss"), "vmem", 1,
     is_vector=True, is_load=True, allow_mask=True, mem_stride=True)
_add("vldx", ("vd", "mem", "vs"), "vmem", 1,
     is_vector=True, is_load=True, allow_mask=True, mem_indexed=True)
_add("vst", ("vs", "mem"), "vmem", 1,
     is_vector=True, is_store=True, allow_mask=True)
_add("vsts", ("vs", "mem", "ss"), "vmem", 1,
     is_vector=True, is_store=True, allow_mask=True, mem_stride=True)
_add("vstx", ("vs", "mem", "vs"), "vmem", 1,
     is_vector=True, is_store=True, allow_mask=True, mem_indexed=True)

# --------------------------------------------------------------------------
# Thread / VLT runtime
# --------------------------------------------------------------------------

_add("tid", ("sd",), "arith", 1)    # hardware thread id within the program
_add("ntid", ("sd",), "arith", 1)   # number of threads in the program
_add("barrier", (), "none", 1, is_barrier=True)
_add("vltcfg", ("imm",), "none", 1, is_vltcfg=True)  # lanes repartitioned for n threads
# scalar<->vector memory ordering fence: later scalar memory ops wait for
# this thread's outstanding vector accesses ("compiler-generated memory
# barriers", paper Section 2)
_add("lsync", (), "none", 1, is_lsync=True)


def spec(name: str) -> OpSpec:
    """Look up an opcode, raising a helpful error for unknown mnemonics."""
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode {name!r}") from None


def all_opcodes() -> Tuple[str, ...]:
    """All canonical mnemonics, in registration order."""
    return tuple(OPCODES)
