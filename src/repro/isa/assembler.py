"""Text assembler for the VLT ISA.

The syntax is a conventional line-oriented assembly::

    .program axpy
    .memory 64                  # data-image size in KiB
    .f64 x 1.0 2.0 3.0 4.0      # initialised f64 array
    .i64 n 4                    # initialised i64 array (one element: 4)
    .space out 32               # zeroed reservation, bytes

        li   s1, 4
        li   s2, &x             # &sym -> address of a data symbol
        li   s3, &out
    loop:
        setvl s4, s1
        vld  v1, 0(s2)
        vfmul.vs v2, v1, f1
        vst  v2, 0(s3)
        sub  s1, s1, s4
        slli s5, s4, 3
        add  s2, s2, s5
        add  s3, s3, s5
        bne  s1, s0, loop
        halt

Comments start with ``#``.  A ``.m`` suffix on a mnemonic requests masked
execution (``vfadd.vs.m``).  Branch targets may be labels or absolute
instruction indices (the form :meth:`repro.isa.program.Program.listing`
emits, so listings re-assemble).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .builder import OperandValue, ProgramBuilder, make_instr
from .program import Program
from .registers import parse_reg

_MEM_RE = re.compile(r"^(-?\w+|&[\w.]+(?:\+\d+)?|)\((\w+)\)$")
_SYM_RE = re.compile(r"^&([\w.]+)(?:\+(\d+))?$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^-?(\d+\.\d*([eE][-+]?\d+)?|\d+[eE][-+]?\d+|\d+\.)$")


class AssemblerError(ValueError):
    """Raised with file/line context on any syntax or semantic error."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_int(tok: str) -> int:
    return int(tok, 0)


class Assembler:
    """Two-pass assembler (labels forward-referenced freely)."""

    def __init__(self) -> None:
        self._builder: Optional[ProgramBuilder] = None

    def assemble(self, source: str, name: str = "program",
                 memory_kib: int = 256) -> Program:
        """Assemble ``source`` into a finalized :class:`Program`."""
        b = ProgramBuilder(name, memory_kib=memory_kib)
        self._builder = b
        pending: List[Tuple[int, str, List[str]]] = []

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                if line.startswith("."):
                    self._directive(b, line)
                    continue
                while ":" in line:
                    lbl, _, rest = line.partition(":")
                    lbl = lbl.strip()
                    if not re.fullmatch(r"[\w.]+", lbl):
                        raise ValueError(f"malformed label {lbl!r}")
                    b.label(lbl)
                    line = rest.strip()
                if not line:
                    continue
                mnemonic, _, operand_text = line.partition(" ")
                operands = ([t.strip() for t in operand_text.split(",")]
                            if operand_text.strip() else [])
                pending.append((lineno, mnemonic.strip(), operands))
            except ValueError as exc:
                raise AssemblerError(lineno, str(exc)) from None

        # Second phase: operand parsing needs the symbol table complete.
        for lineno, mnemonic, operands in pending:
            try:
                values = [self._operand(b, tok) for tok in operands]
                ins = make_instr(mnemonic, values)
                b._instrs.append(ins)
            except (ValueError, TypeError, KeyError) as exc:
                raise AssemblerError(lineno, str(exc)) from None

        # Labels recorded during phase 1 refer to *pending* indices, which
        # match instruction indices because directives emit no code and we
        # appended in order -- but label() already captured b.here at parse
        # time, when _instrs was still empty.  Recompute them.
        self._builder = None
        return self._relabel(b, source)

    # -- internals -----------------------------------------------------------

    def _relabel(self, b: ProgramBuilder, source: str) -> Program:
        """Recompute label positions against the emitted instruction list."""
        b._labels.clear()
        count = 0
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line or line.startswith("."):
                continue
            while ":" in line:
                lbl, _, rest = line.partition(":")
                b._labels[lbl.strip()] = count
                line = rest.strip()
            if line:
                count += 1
        return b.build()

    def _directive(self, b: ProgramBuilder, line: str) -> None:
        parts = line.split()
        head, args = parts[0], parts[1:]
        if head == ".program":
            b.name = args[0] if args else b.name
        elif head == ".memory":
            b._memory_bytes = _parse_int(args[0]) * 1024
        elif head == ".f64":
            b.data_f64(args[0], [float(t) for t in args[1:]])
        elif head == ".i64":
            b.data_i64(args[0], [_parse_int(t) for t in args[1:]])
        elif head == ".space":
            b.space(args[0], _parse_int(args[1]))
        else:
            raise ValueError(f"unknown directive {head!r}")

    def _operand(self, b: ProgramBuilder, tok: str) -> OperandValue:
        m = _MEM_RE.match(tok)
        if m:
            off_tok, base_tok = m.groups()
            base = parse_reg(base_tok)
            if not off_tok:
                off = 0
            elif off_tok.startswith("&"):
                off = self._symref(b, off_tok)
            else:
                off = _parse_int(off_tok)
            return (off, base)
        if tok.startswith("&"):
            return self._symref(b, tok)
        if _INT_RE.match(tok):
            return _parse_int(tok)
        if _FLOAT_RE.match(tok):
            return float(tok)
        try:
            return parse_reg(tok)
        except ValueError:
            pass
        if re.fullmatch(r"[\w.]+", tok):
            return tok  # label reference
        raise ValueError(f"cannot parse operand {tok!r}")

    def _symref(self, b: ProgramBuilder, tok: str) -> int:
        m = _SYM_RE.match(tok)
        if not m:
            raise ValueError(f"malformed symbol reference {tok!r}")
        name, plus = m.groups()
        return b.addr_of(name) + (int(plus) if plus else 0)


def assemble(source: str, name: str = "program",
             memory_kib: int = 256) -> Program:
    """Convenience wrapper: assemble ``source`` into a :class:`Program`."""
    return Assembler().assemble(source, name=name, memory_kib=memory_kib)
