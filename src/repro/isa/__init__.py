"""X1-flavoured vector ISA: registers, opcodes, programs, assembler.

Public surface:

* :mod:`repro.isa.registers` -- register model (``sreg``/``freg``/``vreg``,
  :data:`~repro.isa.registers.MVL`, uid mapping).
* :mod:`repro.isa.opcodes` -- the opcode registry (:func:`spec`).
* :mod:`repro.isa.program` -- :class:`Instr` / :class:`Program`.
* :mod:`repro.isa.builder` -- :class:`ProgramBuilder` (programmatic emission).
* :mod:`repro.isa.assembler` -- :func:`assemble` (text assembly).
"""

from .assembler import Assembler, AssemblerError, assemble
from .builder import F, ProgramBuilder, S, V, make_instr
from .opcodes import OPCODES, OpSpec, all_opcodes, spec
from .program import DataSymbol, Instr, Program
from .registers import (MVL, NUM_FREGS, NUM_REG_UIDS, NUM_SREGS, NUM_VREGS,
                        VL, VM, WORD_BYTES, Reg, freg, is_vector_reg,
                        parse_reg, reg_name, reg_uid, sreg, vreg)

__all__ = [
    "Assembler", "AssemblerError", "assemble",
    "F", "ProgramBuilder", "S", "V", "make_instr",
    "OPCODES", "OpSpec", "all_opcodes", "spec",
    "DataSymbol", "Instr", "Program",
    "MVL", "NUM_FREGS", "NUM_REG_UIDS", "NUM_SREGS", "NUM_VREGS",
    "VL", "VM", "WORD_BYTES", "Reg", "freg", "is_vector_reg",
    "parse_reg", "reg_name", "reg_uid", "sreg", "vreg",
]
