"""Programmatic assembly builder.

:class:`ProgramBuilder` is the API the workload generators and the
vectorizing compiler use to emit code.  It wraps instruction creation,
label management, and data-image allocation::

    b = ProgramBuilder("axpy", memory_kib=64)
    x = b.data_f64("x", np.arange(256.0))
    y = b.data_f64("y", np.zeros(256))
    b.li(S(1), 256)
    b.la(S(2), "x"); b.la(S(3), "y")
    loop = b.label("loop")
    b.setvl(S(4), S(1))
    b.vld(V(1), (0, S(2)))
    b.op("vfmul.vs", V(2), V(1), F(1))
    b.vst(V(2), (0, S(3)))
    ...
    b.halt()
    prog = b.build()

Every opcode in the registry is reachable either through
:meth:`ProgramBuilder.op` (canonical mnemonic, e.g. ``"vfadd.vv"``) or as
an attribute with dots replaced by underscores (``b.vfadd_vv(...)``).
A trailing ``masked=True`` keyword adds the ``.m`` masked-execution
suffix on opcodes that allow it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .opcodes import OPCODES, spec
from .program import DataSymbol, Instr, MemOperand, Program
from .registers import VM, Reg, freg, sreg, vreg

#: Convenient register constructors re-exported for workload code.
S = sreg
F = freg
V = vreg

#: Data allocations are aligned to this many bytes (one L2 line).
DATA_ALIGN = 64

OperandValue = Union[Reg, int, float, str, Tuple[int, Reg]]

_KIND_CLASSES = {"sd": "s", "ss": "s", "fd": "f", "fs": "f",
                 "vd": "v", "vs": "v"}


def _check_reg(val: OperandValue, kind: str, op: str) -> Reg:
    if (not isinstance(val, tuple) or len(val) != 2
            or val[0] not in ("s", "f", "v", "vm", "vl")):
        raise TypeError(f"{op}: expected a register for {kind!r}, got {val!r}")
    want = _KIND_CLASSES[kind]
    if val[0] != want:
        raise TypeError(
            f"{op}: operand class mismatch: expected {want!r}, got {val[0]!r}")
    return val  # type: ignore[return-value]


def make_instr(name: str, operands: Sequence[OperandValue],
               masked: bool = False) -> Instr:
    """Create an :class:`Instr` from a mnemonic and positional operands.

    ``name`` may carry a trailing ``.m`` suffix as an alternative to
    ``masked=True``.  Memory operands are ``(offset, base_reg)`` tuples;
    a bare scalar register means offset 0.
    """
    if name.endswith(".m") and name not in OPCODES:
        name = name[:-2]
        masked = True
    s = spec(name)
    if len(operands) != len(s.sig) - (1 if "vmd" in s.sig else 0):
        # vmd (the mask destination) is implicit and never passed.
        expected = len(s.sig) - (1 if "vmd" in s.sig else 0)
        raise TypeError(
            f"{name}: expected {expected} operands, got {len(operands)}")

    dst: Optional[Reg] = None
    srcs: List[Reg] = []
    imm: Union[int, float, None] = None
    mem: Optional[MemOperand] = None
    stride: Optional[Reg] = None
    vidx: Optional[Reg] = None
    target: Union[int, str, None] = None

    it = iter(operands)
    for kind in s.sig:
        if kind == "vmd":
            dst = VM
            continue
        val = next(it)
        if kind in ("sd", "fd", "vd"):
            dst = _check_reg(val, kind, name)
        elif kind in ("ss", "fs", "vs"):
            reg = _check_reg(val, kind, name)
            if kind == "ss" and s.mem_stride and mem is not None:
                stride = reg
            elif kind == "vs" and s.mem_indexed and mem is not None:
                vidx = reg
            else:
                srcs.append(reg)
        elif kind == "imm":
            if not isinstance(val, (int, float, np.integer, np.floating)):
                raise TypeError(f"{name}: expected immediate, got {val!r}")
            imm = float(val) if name == "fli" else int(val)
        elif kind == "mem":
            if isinstance(val, tuple) and len(val) == 2 and val[0] == "s":
                mem = (0, val)  # bare register
            elif (isinstance(val, tuple) and len(val) == 2
                  and isinstance(val[0], (int, np.integer))):
                base = _check_reg(val[1], "ss", name)
                mem = (int(val[0]), base)
            else:
                raise TypeError(
                    f"{name}: expected (offset, sreg) memory operand, got {val!r}")
        elif kind == "label":
            if not isinstance(val, (str, int)):
                raise TypeError(f"{name}: expected label, got {val!r}")
            target = val
        else:  # pragma: no cover - registry is validated at import
            raise AssertionError(f"bad operand kind {kind!r}")

    return Instr(name, dst=dst, srcs=tuple(srcs), imm=imm, mem=mem,
                 stride=stride, vidx=vidx, target=target, masked=masked)


class ProgramBuilder:
    """Incrementally build a :class:`Program`."""

    def __init__(self, name: str = "program", memory_kib: int = 256):
        self.name = name
        self._instrs: List[Instr] = []
        self._labels: Dict[str, int] = {}
        self._symbols: Dict[str, DataSymbol] = {}
        self._initializers: List[Tuple[int, np.ndarray]] = []
        self._next_addr = DATA_ALIGN  # keep address 0 unused (null-ish)
        self._memory_bytes = memory_kib * 1024
        self._genlabel_counter = 0

    # -- data image ---------------------------------------------------------

    def _alloc(self, name: str, nbytes: int, dtype: str) -> DataSymbol:
        if name in self._symbols:
            raise ValueError(f"duplicate data symbol {name!r}")
        addr = self._next_addr
        self._next_addr = -(-(addr + nbytes) // DATA_ALIGN) * DATA_ALIGN
        if self._next_addr > self._memory_bytes:
            raise MemoryError(
                f"program {self.name!r}: data image overflows "
                f"{self._memory_bytes} bytes at symbol {name!r}")
        sym = DataSymbol(name=name, addr=addr, nbytes=nbytes, dtype=dtype)
        self._symbols[name] = sym
        return sym

    def data_f64(self, name: str,
                 init: Union[int, Sequence[float], np.ndarray]) -> DataSymbol:
        """Allocate an f64 array; ``init`` is a length or initial values."""
        if isinstance(init, (int, np.integer)):
            return self._alloc(name, int(init) * 8, "f8")
        arr = np.asarray(init, dtype=np.float64)
        sym = self._alloc(name, arr.size * 8, "f8")
        self._initializers.append((sym.addr, arr))
        return sym

    def data_i64(self, name: str,
                 init: Union[int, Sequence[int], np.ndarray]) -> DataSymbol:
        """Allocate an i64 array; ``init`` is a length or initial values."""
        if isinstance(init, (int, np.integer)):
            return self._alloc(name, int(init) * 8, "i8")
        arr = np.asarray(init, dtype=np.int64)
        sym = self._alloc(name, arr.size * 8, "i8")
        self._initializers.append((sym.addr, arr))
        return sym

    def space(self, name: str, nbytes: int) -> DataSymbol:
        """Reserve ``nbytes`` of zeroed memory."""
        return self._alloc(name, nbytes, "raw")

    def addr_of(self, name: str) -> int:
        return self._symbols[name].addr

    # -- code ---------------------------------------------------------------

    def op(self, name: str, *operands: OperandValue,
           masked: bool = False) -> Instr:
        """Emit one instruction by canonical mnemonic."""
        ins = make_instr(name, operands, masked=masked)
        self._instrs.append(ins)
        return ins

    def __getattr__(self, attr: str):
        # Attribute access fallback: `b.vfadd_vv(...)` -> op("vfadd.vv", ...).
        name = attr.replace("_", ".")
        if attr in OPCODES:
            name = attr
        if name not in OPCODES:
            raise AttributeError(attr)

        def emit(*operands: OperandValue, masked: bool = False) -> Instr:
            return self.op(name, *operands, masked=masked)

        return emit

    def label(self, name: str) -> str:
        """Define a label at the current position; returns the name."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return name

    def genlabel(self, prefix: str = "L") -> str:
        """Generate a fresh label *name* (not yet placed)."""
        self._genlabel_counter += 1
        return f".{prefix}{self._genlabel_counter}"

    def la(self, rd: Reg, symbol: str, offset: int = 0) -> Instr:
        """Load the address of a data symbol (+offset) into a scalar reg."""
        return self.op("li", rd, self.addr_of(symbol) + offset)

    def mv(self, rd: Reg, rs: Reg) -> Instr:
        """Register move pseudo-instruction (``addi rd, rs, 0``)."""
        return self.op("addi", rd, rs, 0)

    def jmp(self, label: str) -> Instr:
        """Unconditional jump pseudo (plain ``j``)."""
        return self.op("j", label)

    @property
    def here(self) -> int:
        """Current instruction index (useful for size accounting)."""
        return len(self._instrs)

    def build(self) -> Program:
        """Finalize into an immutable, label-resolved :class:`Program`."""
        prog = Program(
            name=self.name,
            instrs=list(self._instrs),
            labels=dict(self._labels),
            symbols=dict(self._symbols),
            initializers=list(self._initializers),
            memory_bytes=self._memory_bytes,
        )
        return prog.finalize()
