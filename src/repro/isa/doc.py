"""Generate the ISA reference document from the opcode registry.

Keeping the reference generated guarantees it never drifts from the
implementation::

    python -m repro.isa.doc docs/isa.md
"""

from __future__ import annotations

import sys
from typing import Dict, List

from .opcodes import OPCODES, OpSpec
from .registers import MVL, NUM_FREGS, NUM_SREGS, NUM_VREGS

_SECTIONS = [
    ("Scalar integer arithmetic",
     lambda s: s.pool == "arith" and not s.is_branch and not s.is_vector
     and s.sig[:1] in ((), ("sd",)) and not s.writes_vl
     and s.name not in ("tid", "ntid")),
    ("Scalar floating point",
     lambda s: s.pool == "arith" and s.sig[:1] == ("fd",)),
    ("Scalar memory", lambda s: s.pool == "mem"),
    ("Control flow", lambda s: s.is_branch or s.is_halt),
    ("Vector length control", lambda s: s.writes_vl),
    ("Vector arithmetic",
     lambda s: s.pool == "varith" and not s.writes_mask
     and not s.is_reduction and not s.reads_mask
     and s.name not in ("vext", "vfext", "vins", "vfins")),
    ("Vector compares and mask operations",
     lambda s: s.writes_mask or s.reads_mask),
    ("Vector reductions", lambda s: s.is_reduction),
    ("Vector element insert/extract",
     lambda s: s.name in ("vext", "vfext", "vins", "vfins")),
    ("Vector memory", lambda s: s.pool == "vmem"),
    ("Thread / VLT runtime",
     lambda s: s.is_barrier or s.is_vltcfg or s.is_lsync
     or s.name in ("tid", "ntid")),
]

_KIND_DOC = {
    "sd": "sX", "ss": "sX", "fd": "fX", "fs": "fX", "vd": "vX", "vs": "vX",
    "vmd": "(vm)", "imm": "imm", "mem": "off(sX)", "label": "label",
}


def _operands(s: OpSpec) -> str:
    parts = [_KIND_DOC[k] for k in s.sig if k != "vmd"]
    return ", ".join(parts)


def _flags(s: OpSpec) -> str:
    out: List[str] = []
    if s.allow_mask:
        out.append("maskable (`.m`)")
    if s.writes_mask:
        out.append("writes vm")
    if s.reads_mask:
        out.append("reads vm")
    if s.dst_is_src:
        out.append("read-modify-write")
    if s.mem_stride:
        out.append("strided")
    if s.mem_indexed:
        out.append("indexed")
    return "; ".join(out)


def isa_reference_md() -> str:
    lines = [
        "# ISA reference",
        "",
        "*Generated from the opcode registry "
        "(`python -m repro.isa.doc docs/isa.md`); do not edit by hand.*",
        "",
        "An X1-flavoured vector instruction set: "
        f"{NUM_SREGS} scalar integer registers (`s0` = 0), "
        f"{NUM_FREGS} FP registers, {NUM_VREGS} vector registers of "
        f"{MVL} 64-bit elements, a vector-length register `vl` and a "
        "mask register `vm`.  All memory accesses are 64-bit and "
        "8-byte aligned.  `latency` is the execute/start-up latency in "
        "the timing model; vector ops additionally occupy a functional "
        "unit for `ceil(vl / lanes)` cycles.",
        "",
        "Programs against this ISA are statically checked by the "
        "verifier ([verification.md](verification.md)): register "
        "use-before-def, `vl`/`vm` discipline, data-image bounds and "
        "alignment, and control-flow integrity.",
        "",
    ]
    assigned: Dict[str, bool] = {name: False for name in OPCODES}
    for title, pred in _SECTIONS:
        rows = [s for n, s in OPCODES.items()
                if not assigned[n] and pred(s)]
        if not rows:
            continue
        for s in rows:
            assigned[s.name] = True
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| mnemonic | operands | pool | latency | notes |")
        lines.append("|---|---|---|---|---|")
        for s in rows:
            lines.append(f"| `{s.name}` | {_operands(s)} | {s.pool} "
                         f"| {s.latency} | {_flags(s)} |")
        lines.append("")
    rest = [n for n, done in assigned.items() if not done]
    if rest:
        lines.append("## Miscellaneous")
        lines.append("")
        lines.append("| mnemonic | operands | pool | latency | notes |")
        lines.append("|---|---|---|---|---|")
        for n in rest:
            s = OPCODES[n]
            lines.append(f"| `{s.name}` | {_operands(s)} | {s.pool} "
                         f"| {s.latency} | {_flags(s)} |")
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "docs/isa.md"
    with open(path, "w") as fh:
        fh.write(isa_reference_md())
    print(f"wrote {path} ({len(OPCODES)} opcodes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
