"""Program representation: instructions, labels, and the data image.

A :class:`Program` is the unit handed to the functional simulator: a flat
list of :class:`Instr`, a symbol table for its statically-allocated data,
and the initial memory image.  Programs are SPMD -- every software thread
executes the same instruction stream from pc 0 and differentiates itself
via the ``tid``/``ntid`` instructions, exactly like the paper's
OpenMP-style workloads (Section 3.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .opcodes import OpSpec, spec
from .registers import VL, VM, Reg, reg_name

#: A memory operand: (byte offset, base scalar register).
MemOperand = Tuple[int, Reg]


class Instr:
    """One decoded instruction.

    Instances are immutable in practice (the simulators never mutate
    them) but are plain slotted objects for speed.  ``target`` holds the
    label string until :meth:`Program.finalize` resolves it to a pc.
    """

    __slots__ = ("op", "spec", "dst", "srcs", "imm", "mem", "stride",
                 "vidx", "target", "masked", "pc")

    def __init__(
        self,
        op: str,
        dst: Optional[Reg] = None,
        srcs: Tuple[Reg, ...] = (),
        imm: Union[int, float, None] = None,
        mem: Optional[MemOperand] = None,
        stride: Optional[Reg] = None,
        vidx: Optional[Reg] = None,
        target: Union[int, str, None] = None,
        masked: bool = False,
    ):
        self.op = op
        self.spec: OpSpec = spec(op)
        if masked and not self.spec.allow_mask:
            raise ValueError(f"opcode {op!r} does not support a .m mask suffix")
        self.dst = dst
        self.srcs = srcs
        self.imm = imm
        self.mem = mem
        self.stride = stride  # scalar stride register for vlds/vsts
        self.vidx = vidx      # vector index register for vldx/vstx
        self.target = target
        self.masked = masked
        self.pc = -1

    # -- dependence helpers -------------------------------------------------

    def reads(self) -> Tuple[Reg, ...]:
        """All architectural registers this instruction reads.

        Includes implicit reads: the mask register for masked /
        mask-consuming ops, ``vl`` for every vector op, the memory base
        register, and the destination for read-modify-write ops.
        """
        s = self.spec
        regs: List[Reg] = list(self.srcs)
        if self.mem is not None:
            regs.append(self.mem[1])
        if self.stride is not None:
            regs.append(self.stride)
        if self.vidx is not None:
            regs.append(self.vidx)
        if s.dst_is_src and self.dst is not None:
            regs.append(self.dst)
        if s.is_vector:
            regs.append(VL)
        if self.masked or s.reads_mask:
            regs.append(VM)
        return tuple(regs)

    def writes(self) -> Tuple[Reg, ...]:
        """All architectural registers this instruction writes."""
        s = self.spec
        regs: List[Reg] = []
        if self.dst is not None:
            regs.append(self.dst)
        if s.writes_mask:
            regs.append(VM)
        if s.writes_vl:
            regs.append(VL)
        return tuple(regs)

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """Render back to assembly syntax (used by the disassembler)."""
        name = self.op + (".m" if self.masked else "")
        parts: List[str] = []
        sig = self.spec.sig
        dst_done = False
        mem_seen = False
        src_iter = iter(self.srcs)
        for kind in sig:
            if kind in ("sd", "fd", "vd") and not dst_done:
                parts.append(reg_name(self.dst))
                dst_done = True
            elif kind == "vmd":
                dst_done = True  # implicit vm destination, not printed
            elif kind in ("ss", "fs", "vs"):
                # the index/stride operand is the one *after* the memory
                # operand in the signature
                if kind == "vs" and self.spec.mem_indexed and mem_seen:
                    parts.append(reg_name(self.vidx))
                elif kind == "ss" and self.spec.mem_stride and mem_seen:
                    parts.append(reg_name(self.stride))
                else:
                    parts.append(reg_name(next(src_iter)))
            elif kind == "imm":
                parts.append(repr(self.imm))
            elif kind == "mem":
                off, base = self.mem
                parts.append(f"{off}({reg_name(base)})")
                mem_seen = True
            elif kind == "label":
                parts.append(str(self.target))
        return f"{name} " + ", ".join(parts) if parts else name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instr pc={self.pc} {self.render()}>"


@dataclass
class DataSymbol:
    """A named, statically-allocated region of the data image."""

    name: str
    addr: int
    nbytes: int
    dtype: str  # "i8" | "f8" | "raw"


@dataclass
class Program:
    """A finalized SPMD program: instructions + labels + data image."""

    name: str = "program"
    instrs: List[Instr] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    symbols: Dict[str, DataSymbol] = field(default_factory=dict)
    #: (address, int64-or-float64 ndarray) initial-value pairs.
    initializers: List[Tuple[int, np.ndarray]] = field(default_factory=list)
    #: Total bytes of data memory the program needs.
    memory_bytes: int = 1 << 16
    finalized: bool = False
    #: memoised content digest (see :meth:`digest`)
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    def finalize(self) -> "Program":
        """Assign pcs, resolve label targets, and validate."""
        self._digest = None
        for pc, ins in enumerate(self.instrs):
            ins.pc = pc
        for ins in self.instrs:
            if isinstance(ins.target, str):
                if ins.target not in self.labels:
                    raise ValueError(
                        f"undefined label {ins.target!r} at pc {ins.pc}")
                ins.target = self.labels[ins.target]
        if not self.instrs or not any(i.spec.is_halt for i in self.instrs):
            raise ValueError(f"program {self.name!r} has no halt instruction")
        self.finalized = True
        return self

    def digest(self) -> str:
        """Stable content digest of the finalized program (hex SHA-256).

        Two programs with the same digest produce identical functional
        traces for any thread count: the digest covers everything
        execution can observe -- name (it lands in
        :attr:`~repro.functional.trace.ProgramTrace.program_name`),
        instruction stream with resolved branch targets, the initial
        data image, and the memory size.  Pure metadata (labels, symbol
        names) is excluded.  This is the cache key for trace memoisation
        and the on-disk trace cache; unlike ``id(program)`` it survives
        garbage collection and crosses process boundaries.
        """
        if not self.finalized:
            raise ValueError("digest() requires a finalized program")
        if self._digest is None:
            h = hashlib.sha256()
            h.update(b"vlt-program-v1\0")
            h.update(self.name.encode("utf-8"))
            h.update(b"\0%d\0" % self.memory_bytes)
            for ins in self.instrs:
                # repr() of these plain int/float/str/tuple fields is
                # canonical and unambiguous as a one-line record
                h.update(repr((ins.op, ins.dst, ins.srcs, ins.imm,
                               ins.mem, ins.stride, ins.vidx, ins.target,
                               ins.masked)).encode("utf-8"))
                h.update(b"\n")
            for addr, arr in self.initializers:
                a = np.ascontiguousarray(arr)
                h.update(f"@{addr}:{a.dtype.str}:{a.shape}".encode("utf-8"))
                h.update(a.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def symbol_addr(self, name: str) -> int:
        """Byte address of a data symbol."""
        return self.symbols[name].addr

    def build_memory(self) -> np.ndarray:
        """Materialise the initial data image as a byte array."""
        mem = np.zeros(self.memory_bytes, dtype=np.uint8)
        for addr, arr in self.initializers:
            raw = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
            if addr + raw.nbytes > self.memory_bytes:
                raise ValueError("initializer exceeds program memory size")
            mem[addr:addr + raw.nbytes] = raw
        return mem

    def __len__(self) -> int:
        return len(self.instrs)

    def listing(self) -> str:
        """Human-readable program listing with labels interleaved."""
        by_pc: Dict[int, List[str]] = {}
        for lbl, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(lbl)
        out: List[str] = []
        for pc, ins in enumerate(self.instrs):
            for lbl in by_pc.get(pc, ()):
                out.append(f"{lbl}:")
            out.append(f"    {ins.render()}")
        return "\n".join(out)
