"""Loop-nest IR for the mini vectorizing compiler.

The paper's workloads are compiled by the Cray X1 production compilers
with automatic vectorization; our substitute consumes a small affine
loop-nest IR and emits VLT ISA assembly.  The IR covers what the study's
kernels need: perfect or imperfect nests of counted loops over
multi-dimensional arrays with affine subscripts, elementwise arithmetic,
and sum/min/max reductions.

Construction is ergonomic via operator overloading::

    i, j, k = Var("i"), Var("j"), Var("k")
    A = Array("A", (n, n)); B = Array("B", (n, n)); C = Array("C", (n, n))
    kern = Kernel("mxm", [
        Loop(i, n, [
            Loop(j, n, [
                Loop(k, n, [Reduce("+", C[i, j], A[i, k] * B[k, j])]),
            ], parallel=True),
        ], parallel=True),
    ])

``parallel=True`` asserts that the loop's iterations are independent
(apart from recognised reductions) -- the "manual thread identification"
of the paper's Section 6, made machine-readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np


class Var:
    """A loop induction variable (symbolic)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name})"

    # Arithmetic on Vars builds Affine index expressions.
    def __add__(self, other):
        return Affine.of(self) + other

    def __radd__(self, other):
        return Affine.of(self) + other

    def __sub__(self, other):
        return Affine.of(self) - other

    def __rsub__(self, other):
        return (-Affine.of(self)) + other

    def __mul__(self, other):
        return Affine.of(self) * other

    def __rmul__(self, other):
        return Affine.of(self) * other

    def __neg__(self):
        return Affine.of(self) * -1


class Affine:
    """An affine combination of loop variables: sum(coef*var) + const."""

    __slots__ = ("coefs", "const")

    def __init__(self, coefs: Optional[Dict[Var, int]] = None,
                 const: int = 0):
        self.coefs = {v: c for v, c in (coefs or {}).items() if c != 0}
        self.const = const

    @staticmethod
    def of(x: Union["Affine", Var, int]) -> "Affine":
        if isinstance(x, Affine):
            return x
        if isinstance(x, Var):
            return Affine({x: 1})
        if isinstance(x, (int, np.integer)):
            return Affine(const=int(x))
        raise TypeError(f"cannot treat {x!r} as an affine index")

    def coef(self, var: Var) -> int:
        return self.coefs.get(var, 0)

    def __add__(self, other):
        o = Affine.of(other)
        coefs = dict(self.coefs)
        for v, c in o.coefs.items():
            coefs[v] = coefs.get(v, 0) + c
        return Affine(coefs, self.const + o.const)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (Affine.of(other) * -1)

    def __mul__(self, k):
        if not isinstance(k, (int, np.integer)):
            raise TypeError("affine indices may only be scaled by integers")
        return Affine({v: c * int(k) for v, c in self.coefs.items()},
                      self.const * int(k))

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1

    @property
    def is_const(self) -> bool:
        return not self.coefs

    def __repr__(self) -> str:
        parts = [f"{c}*{v.name}" for v, c in self.coefs.items()]
        parts.append(str(self.const))
        return "+".join(parts)


IndexLike = Union[Affine, Var, int]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for arithmetic expressions (operator-overloaded)."""

    def _wrap(self, other) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, (int, float, np.integer, np.floating)):
            return Const(float(other))
        if isinstance(other, Ref):
            return LoadExpr(other)
        raise TypeError(f"cannot use {other!r} in an expression")

    def __add__(self, other):
        return Bin("+", self, self._wrap(other))

    def __radd__(self, other):
        return Bin("+", self._wrap(other), self)

    def __sub__(self, other):
        return Bin("-", self, self._wrap(other))

    def __rsub__(self, other):
        return Bin("-", self._wrap(other), self)

    def __mul__(self, other):
        return Bin("*", self, self._wrap(other))

    def __rmul__(self, other):
        return Bin("*", self._wrap(other), self)

    def __truediv__(self, other):
        return Bin("/", self, self._wrap(other))

    def __rtruediv__(self, other):
        return Bin("/", self._wrap(other), self)

    def __neg__(self):
        return Bin("-", Const(0.0), self)


@dataclass(frozen=True)
class Const(Expr):
    value: float


@dataclass(frozen=True)
class Bin(Expr):
    op: str  # "+", "-", "*", "/", "min", "max"
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Sqrt(Expr):
    a: Expr


@dataclass(frozen=True)
class Cmp:
    """A comparison used as a :class:`Select` condition (not an Expr:
    it produces a mask/boolean, not a value)."""

    op: str  # "<", "<=", "=="
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.op not in ("<", "<=", "=="):
            raise ValueError(f"unsupported comparison {self.op!r}")


@dataclass(frozen=True)
class Select(Expr):
    """``cond ? a : b`` -- compiled to masked/merge execution on the
    vector side and a compare-and-branch on the scalar side.

    Nesting Selects is not supported (there is a single architectural
    mask register).
    """

    cond: Cmp
    a: Expr
    b: Expr


class LoadExpr(Expr):
    """An array element read, as an expression leaf."""

    __slots__ = ("ref",)

    def __init__(self, ref: "Ref"):
        self.ref = ref


def fmin(a, b) -> Bin:
    e = Expr()
    return Bin("min", e._wrap(a), e._wrap(b))


def fmax(a, b) -> Bin:
    e = Expr()
    return Bin("max", e._wrap(a), e._wrap(b))


def sqrt(a) -> Sqrt:
    return Sqrt(Expr()._wrap(a))


# --------------------------------------------------------------------------
# Arrays and references
# --------------------------------------------------------------------------

class Array:
    """A logical multi-dimensional f64 array, row-major."""

    def __init__(self, name: str, shape: Sequence[int],
                 init: Optional[np.ndarray] = None):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        if init is not None:
            init = np.asarray(init, dtype=np.float64)
            if init.shape != self.shape:
                raise ValueError(
                    f"array {name!r}: init shape {init.shape} != {self.shape}")
        self.init = init

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def row_major_strides(self) -> Tuple[int, ...]:
        """Element strides per dimension (row-major)."""
        strides = [1] * len(self.shape)
        for d in range(len(self.shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        return tuple(strides)

    def __getitem__(self, idx) -> "Ref":
        if not isinstance(idx, tuple):
            idx = (idx,)
        if len(idx) != len(self.shape):
            raise IndexError(
                f"array {self.name!r} has {len(self.shape)} dims, "
                f"got {len(idx)} subscripts")
        return Ref(self, tuple(Affine.of(x) for x in idx))

    def __repr__(self) -> str:
        return f"Array({self.name}, {self.shape})"


class Ref:
    """An array element reference with affine subscripts."""

    __slots__ = ("array", "idx")

    def __init__(self, array: Array, idx: Tuple[Affine, ...]):
        self.array = array
        self.idx = idx

    def flat_affine(self) -> Affine:
        """Flattened element index as one affine expression."""
        strides = self.array.row_major_strides()
        acc = Affine()
        for a, s in zip(self.idx, strides):
            acc = acc + a * s
        return acc

    def stride_wrt(self, var: Var) -> int:
        """Element stride of this reference w.r.t. a loop variable."""
        return self.flat_affine().coef(var)

    # Refs promote to expressions on arithmetic.
    def _expr(self) -> LoadExpr:
        return LoadExpr(self)

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return other + self._expr()

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return other - self._expr()

    def __mul__(self, other):
        return self._expr() * other

    def __rmul__(self, other):
        return other * self._expr()

    def __truediv__(self, other):
        return self._expr() / other

    def __rtruediv__(self, other):
        return other / self._expr()

    def __neg__(self):
        return -self._expr()


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Assign:
    """``ref = expr``; the target must be indexed by the enclosing loops."""

    ref: Ref
    expr: Expr

    def __post_init__(self):
        if isinstance(self.expr, Ref):
            self.expr = LoadExpr(self.expr)
        if isinstance(self.expr, (int, float)):
            self.expr = Const(float(self.expr))


@dataclass
class Reduce:
    """``ref op= expr`` -- a recognised reduction (op in "+", "min", "max")."""

    op: str
    ref: Ref
    expr: Expr

    def __post_init__(self):
        if self.op not in ("+", "min", "max"):
            raise ValueError(f"unsupported reduction op {self.op!r}")
        if isinstance(self.expr, Ref):
            self.expr = LoadExpr(self.expr)


@dataclass
class Loop:
    """A counted loop ``for var in range(extent)``.

    ``extent`` may be a static int or an affine function of outer loop
    variables (triangular nests).  ``parallel=True`` asserts independent
    iterations, enabling vectorization of this loop and outer-loop
    threading.
    """

    var: Var
    extent: Union[int, Affine]
    body: List[Union["Loop", Assign, Reduce]]
    parallel: bool = False


Stmt = Union[Loop, Assign, Reduce]


@dataclass
class Kernel:
    """A named kernel: arrays + a loop-nest body."""

    name: str
    body: List[Stmt]

    def arrays(self) -> List[Array]:
        """All arrays referenced, in first-appearance order."""
        seen: Dict[str, Array] = {}

        def walk_expr(e: Expr) -> None:
            if isinstance(e, LoadExpr):
                seen.setdefault(e.ref.array.name, e.ref.array)
            elif isinstance(e, Bin):
                walk_expr(e.a)
                walk_expr(e.b)
            elif isinstance(e, Sqrt):
                walk_expr(e.a)
            elif isinstance(e, Select):
                walk_expr(e.a)
                walk_expr(e.b)
                walk_expr(e.cond.a)
                walk_expr(e.cond.b)

        def walk(stmts: Sequence[Stmt]) -> None:
            for s in stmts:
                if isinstance(s, Loop):
                    walk(s.body)
                else:
                    seen.setdefault(s.ref.array.name, s.ref.array)
                    walk_expr(s.expr)

        walk(self.body)
        return list(seen.values())
