"""Vector-loop selection: legality analysis and the VL-vs-stride policy.

A loop is *vectorizable* when it is innermost (its body is straight-line
assignments/reductions), its iterations are independent -- asserted by
``parallel=True`` or implied by a body consisting solely of recognised
reductions -- and every assignment's target actually varies with the
loop (a loop-invariant assignment target is an output dependence).

Section 3.1 of the paper describes the vector-length vs. stride
trade-off: within a nest one loop may offer long vectors and another
unit-stride accesses.  :func:`choose_vector_loop` implements both
policies over perfectly-nested loop pairs (via interchange):

* ``"maxvl"``      -- maximise ``min(MVL, extent)``; tie-break on stride.
* ``"unitstride"`` -- prefer the loop with the most unit-stride
  references; tie-break on extent.
* ``"innermost"``  -- no interchange; vectorize the innermost loop if legal.

Policies are named by the :class:`VectPolicy` enum; the string spellings
above remain accepted everywhere and are validated through
``VectPolicy.parse``, which raises :class:`VectorizationError` on an
unknown name (an unknown string used to fall through ``ValueError``-ish
paths silently in old drafts -- now it cannot).

Stride comparison is **alignment-aware**: among loops tied on the
unit-stride reference count, the policy prefers the loop whose streams
provably start on a lane-group boundary (``ALIGN_LANES`` = the base
machine's 8 lanes), because an aligned unit-stride stream maps each
strip onto whole lane groups with no partial first beat.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Tuple, Union

from ..isa.registers import MVL
from .ir import (Assign, Bin, Expr, Kernel, LoadExpr, Loop, Reduce, Select,
                 Sqrt, Stmt, Var)

#: lane-group modulus for the alignment component of the stride score
#: (the base machine of the study has 8 lanes).
ALIGN_LANES = 8


class VectorizationError(Exception):
    """The requested loop cannot be vectorized (with the reason)."""


class VectPolicy(Enum):
    """Which loop of a nest to vectorize (the VL-vs-stride trade-off)."""

    MAXVL = "maxvl"
    UNITSTRIDE = "unitstride"
    INNERMOST = "innermost"

    @classmethod
    def parse(cls, value: Union[str, "VectPolicy"]) -> "VectPolicy":
        """Validate a policy name; raises :class:`VectorizationError`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise VectorizationError(
                f"unknown vectorization policy {value!r}; known: "
                f"{', '.join(p.value for p in cls)}") from None


#: every policy name, in catalogue order
POLICY_NAMES: Tuple[str, ...] = tuple(p.value for p in VectPolicy)


def _expr_supported(e: Expr) -> bool:
    if isinstance(e, LoadExpr):
        return True
    if isinstance(e, Bin):
        return _expr_supported(e.a) and _expr_supported(e.b)
    if isinstance(e, Sqrt):
        return _expr_supported(e.a)
    if isinstance(e, Select):
        return all(_expr_supported(x)
                   for x in (e.a, e.b, e.cond.a, e.cond.b))
    return type(e).__name__ == "Const"


def is_innermost(loop: Loop) -> bool:
    return not any(isinstance(s, Loop) for s in loop.body)


def body_vectorizable(loop: Loop) -> Optional[str]:
    """None if ``loop`` can be vectorized, else a reason string."""
    if not is_innermost(loop):
        return "not innermost"
    pure_reduction = True
    for s in loop.body:
        if isinstance(s, Assign):
            pure_reduction = False
            if s.ref.stride_wrt(loop.var) == 0:
                return (f"assignment target {s.ref.array.name} is invariant "
                        f"in loop {loop.var.name} (output dependence)")
            if not _expr_supported(s.expr):
                return "unsupported expression node"
        elif isinstance(s, Reduce):
            if not _expr_supported(s.expr):
                return "unsupported expression node"
        else:  # pragma: no cover - Loop excluded by is_innermost
            return "nested statement"
    if not loop.parallel and not pure_reduction:
        return (f"loop {loop.var.name} not marked parallel and not a pure "
                f"reduction")
    return None


def _static_extent(loop: Loop) -> Optional[int]:
    return loop.extent if isinstance(loop.extent, int) else None


def _ref_aligned(ref, var: Var) -> bool:
    """Does this unit-stride stream provably start lane-group aligned?

    True when the element offset contributed by everything *except*
    ``var`` is a multiple of :data:`ALIGN_LANES` for every outer
    iteration -- i.e. the constant part and every other variable's
    coefficient are multiples of the lane-group size.
    """
    flat = ref.flat_affine()
    if abs(flat.coef(var)) != 1:
        return False
    if flat.const % ALIGN_LANES != 0:
        return False
    return all(c % ALIGN_LANES == 0
               for v, c in flat.coefs.items() if v is not var)


def _stride_score(loop: Loop) -> Tuple[int, int, int]:
    """(#unit-stride refs, #lane-aligned refs, -sum of |stride|).

    Lexicographic: more unit-stride streams wins, then more streams
    that provably start on a lane-group boundary, then lower total
    stride magnitude.
    """
    unit = 0
    aligned = 0
    total = 0

    def visit_ref(ref) -> None:
        nonlocal unit, aligned, total
        s = ref.stride_wrt(loop.var)
        if abs(s) == 1:
            unit += 1
            if _ref_aligned(ref, loop.var):
                aligned += 1
        total += abs(s)

    def walk(e: Expr) -> None:
        if isinstance(e, LoadExpr):
            visit_ref(e.ref)
        elif isinstance(e, Bin):
            walk(e.a)
            walk(e.b)
        elif isinstance(e, Sqrt):
            walk(e.a)

    for s in loop.body:
        visit_ref(s.ref)
        walk(s.expr)
    return unit, aligned, -total


def _interchange(parent: Loop, child: Loop) -> None:
    """Swap the induction roles of a perfectly-nested parallel pair."""
    parent.var, child.var = child.var, parent.var
    parent.extent, child.extent = child.extent, parent.extent
    parent.parallel, child.parallel = child.parallel, parent.parallel


def _can_interchange(parent: Loop, child: Loop) -> bool:
    if parent.body != [child]:
        return False
    if not (parent.parallel and child.parallel):
        return False
    # Extents must not reference each other's induction variables.
    for ext, other in ((parent.extent, child.var), (child.extent, parent.var)):
        if not isinstance(ext, int) and ext.coef(other) != 0:
            return False
    return True


def choose_vector_loop(kernel: Kernel,
                       policy: Union[str, VectPolicy] = VectPolicy.MAXVL
                       ) -> List[Loop]:
    """Annotate the kernel for vectorization; returns the chosen loops.

    Walks every loop nest, optionally interchanging perfectly-nested
    parallel pairs according to ``policy`` (a :class:`VectPolicy` or its
    string name; unknown names raise :class:`VectorizationError`), and
    returns the list of innermost loops that will be vectorized (the
    code generator re-checks legality with :func:`body_vectorizable`).
    """
    policy = VectPolicy.parse(policy)
    chosen: List[Loop] = []

    def visit(loop: Loop, parent: Optional[Loop]) -> None:
        inner = [s for s in loop.body if isinstance(s, Loop)]
        if inner:
            for sub in inner:
                visit(sub, loop)
            return
        if body_vectorizable(loop) is not None:
            return
        if (policy is not VectPolicy.INNERMOST and parent is not None
                and _can_interchange(parent, loop)
                and body_vectorizable_after_swap(parent, loop)):
            pe, ce = _static_extent(parent), _static_extent(loop)
            if pe is not None and ce is not None:
                if policy is VectPolicy.MAXVL:
                    want_swap = min(MVL, pe) > min(MVL, ce) or (
                        min(MVL, pe) == min(MVL, ce)
                        and _parent_stride_better(parent, loop))
                else:  # unitstride
                    want_swap = _parent_stride_better(parent, loop) or (
                        _stride_tie(parent, loop) and min(MVL, pe) > min(MVL, ce))
                if want_swap:
                    _interchange(parent, loop)
        chosen.append(loop)

    def _parent_stride_better(parent: Loop, loop: Loop) -> bool:
        # Compare stride scores *as if* each were the vector loop.
        return (_stride_score_for_var(loop, parent.var)
                > _stride_score_for_var(loop, loop.var))

    def _stride_tie(parent: Loop, loop: Loop) -> bool:
        return (_stride_score_for_var(loop, parent.var)
                == _stride_score_for_var(loop, loop.var))

    for stmt in kernel.body:
        if isinstance(stmt, Loop):
            visit(stmt, None)
    return chosen


def _stride_score_for_var(loop: Loop, var: Var) -> Tuple[int, int, int]:
    """Stride score of ``loop``'s body with respect to ``var``."""
    probe = Loop(var, 1, loop.body, parallel=True)
    return _stride_score(probe)


def body_vectorizable_after_swap(parent: Loop, child: Loop) -> bool:
    """Would the child body still vectorize along the parent's variable?

    The swap only changes which variable is innermost; assignments whose
    targets are invariant in the *parent* variable would become output
    dependences, so reject those.
    """
    for s in child.body:
        if isinstance(s, Assign) and s.ref.stride_wrt(parent.var) == 0:
            return False
    return True
