"""Code generation: loop-nest IR -> VLT ISA programs.

Emits strip-mined vector code for the loops selected by
:mod:`repro.compiler.vectorizer`, scalar loops elsewhere, and optional
OpenMP-style static chunking of outermost ``parallel`` loops across SPMD
threads (with ``tid == 0`` guards plus barriers around the serial parts).

Code-shape notes (these determine the scalar/vector instruction mix the
timing study sees, so they mirror what a production vectorizer emits):

* vector strip loops hoist loop-invariant scalar operands and use the
  ``.vs`` instruction forms instead of splats wherever possible;
* reductions accumulate into a vector register across strips and reduce
  once at loop exit (plus a scalar combine with the memory target);
* innermost scalar loops accumulate reductions in a register;
* addresses of vector streams are maintained incrementally (one
  multiply-add per stream per strip), not recomputed per element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import MVL, Reg, freg, sreg, vreg
from .ir import (Affine, Assign, Bin, Const, Expr, Kernel, LoadExpr,
                 Loop, Reduce, Ref, Select, Sqrt, Stmt, Var)
from .strategies import PadPlan, VectStrategy, plan_padding, unroll_and_jam
from .vectorizer import (VectorizationError, VectPolicy, body_vectorizable,
                         choose_vector_loop)

S0 = sreg(0)

_VV_OPS = {"+": "vfadd.vv", "-": "vfsub.vv", "*": "vfmul.vv",
           "/": "vfdiv.vv", "min": "vfmin.vv", "max": "vfmax.vv"}
_VS_OPS = {"+": "vfadd.vs", "-": "vfsub.vs", "*": "vfmul.vs",
           "/": "vfdiv.vs", "min": "vfmin.vs", "max": "vfmax.vs"}
_SV_COMMUTES = {"+", "*", "min", "max"}
_SCALAR_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
               "min": "fmin", "max": "fmax"}
_RED_VV = {"+": "vfadd.vv", "min": "vfmin.vv", "max": "vfmax.vv"}
_RED_FOLD = {"+": "vfredsum", "min": "vfredmin", "max": "vfredmax"}
_RED_COMBINE = {"+": "fadd", "min": "fmin", "max": "fmax"}
_VCMP_VV = {"<": "vflt.vv", "<=": "vfle.vv", "==": "vfeq.vv"}
_VCMP_VS = {"<": "vflt.vs", "<=": "vfle.vs", "==": "vfeq.vs"}
_SCMP = {"<": "flt", "<=": "fle", "==": "feq"}


class RegisterPressureError(Exception):
    """The kernel needs more architectural registers than available."""


def _contains_select(e: Expr) -> bool:
    if isinstance(e, Select):
        return True
    if isinstance(e, Bin):
        return _contains_select(e.a) or _contains_select(e.b)
    if isinstance(e, Sqrt):
        return _contains_select(e.a)
    return False


class _Pool:
    """A simple stack allocator over one register class."""

    def __init__(self, make, lo: int, hi: int, what: str):
        self._free = [make(i) for i in range(hi, lo - 1, -1)]
        self._what = what

    def alloc(self) -> Reg:
        if not self._free:
            raise RegisterPressureError(f"out of {self._what} registers")
        return self._free.pop()

    def free(self, reg: Reg) -> None:
        self._free.append(reg)


@dataclass
class CompileOptions:
    """Knobs for :func:`compile_kernel`."""

    vectorize: bool = True
    #: "maxvl" | "unitstride" | "innermost" (see vectorizer module)
    policy: str = "maxvl"
    #: Split outermost parallel loops across SPMD threads.
    threads: bool = False
    #: Unroll factor for vector strip loops: each loop iteration
    #: processes up to ``unroll`` MVL-sized strips, amortising the
    #: per-strip branch and pointer bookkeeping over long arrays.
    #: ``setvl`` clamps naturally at the tail (a zero-length strip is a
    #: correct no-op), so any array length remains correct.
    unroll: int = 1
    memory_kib: int = 1024
    #: Vectorization strategy: how vector loops handle trip counts that
    #: are not MVL multiples (see :mod:`repro.compiler.strategies`).
    #: "auto" | "padding" | "peeling" | "unroll_jam", or the
    #: :class:`VectStrategy` member; unknown names raise
    #: :class:`VectorizationError` here.
    strategy: Union[str, VectStrategy] = VectStrategy.AUTO
    #: Outer-loop unroll factor for the ``unroll_jam`` strategy.
    jam_factor: int = 2

    def __post_init__(self):
        if self.unroll < 1:
            raise ValueError("unroll factor must be >= 1")
        self.strategy = VectStrategy.parse(self.strategy)
        self.policy = VectPolicy.parse(self.policy).value
        if self.jam_factor < 2:
            raise ValueError("jam factor must be >= 2")


class CodeGen:
    """Single-use code generator for one kernel."""

    def __init__(self, kernel: Kernel, options: CompileOptions):
        self.kernel = kernel
        self.opts = options
        self.b = ProgramBuilder(kernel.name, memory_kib=options.memory_kib)
        # s30/s31 are reserved for tid/ntid under threading.
        s_hi = 29 if options.threads else 31
        self.spool = _Pool(sreg, 1, s_hi, "scalar")
        self.fpool = _Pool(freg, 0, 31, "fp")
        self.vpool = _Pool(vreg, 0, 31, "vector")
        self.var_regs: Dict[Var, Reg] = {}
        self.base_regs: Dict[str, Reg] = {}
        self.tid_reg = sreg(30)
        self.ntid_reg = sreg(31)
        self.vector_loops: Set[int] = set()
        #: vector stores issued since the last fence/barrier
        self._pending_vstores = False
        #: strategy planning results, for reports and tests
        self.pad_plan = PadPlan()
        self.jam_fallbacks: Dict[str, str] = {}

    # -- entry point -----------------------------------------------------------

    def compile(self) -> Program:
        b = self.b
        # Plan before emitting anything: strategies may rewrite the nest
        # (unroll-and-jam) and grow array allocations (padding slack).
        if self.opts.vectorize:
            chosen = choose_vector_loop(self.kernel, self.opts.policy)
            if self.opts.strategy is VectStrategy.UNROLL_JAM:
                chosen, self.jam_fallbacks = unroll_and_jam(
                    self.kernel, chosen, self.opts.jam_factor)
            if self.opts.strategy in (VectStrategy.PADDING,
                                      VectStrategy.UNROLL_JAM):
                self.pad_plan = plan_padding(chosen)
            self.vector_loops = {id(l) for l in chosen}

        if self.opts.threads:
            b.op("vltcfg", 0)
            b.op("tid", self.tid_reg)
            b.op("ntid", self.ntid_reg)
        for arr in self.kernel.arrays():
            slack = self.pad_plan.slack.get(arr.name, 0)
            if arr.init is not None:
                init = arr.init.reshape(-1)
                if slack:
                    init = np.concatenate([init, np.zeros(slack)])
                b.data_f64(arr.name, init)
            else:
                b.data_f64(arr.name, arr.size + slack)
            base = self.spool.alloc()
            self.base_regs[arr.name] = base
            b.la(base, arr.name)

        if self.opts.threads:
            self._gen_threaded_block(self.kernel.body)
        else:
            for stmt in self.kernel.body:
                self._gen_stmt(stmt)
        b.op("halt")
        return b.build()

    # -- SPMD threading structure ----------------------------------------------

    def _contains_parallel(self, stmt: Stmt) -> bool:
        if isinstance(stmt, Loop):
            if stmt.parallel:
                return True
            return any(self._contains_parallel(s) for s in stmt.body)
        return False

    def _gen_threaded_block(self, stmts: Sequence[Stmt]) -> None:
        """SPMD lowering of a statement sequence.

        Parallel loops are chunked across threads and followed by a
        barrier; serial loops that *contain* parallel loops execute their
        control redundantly on every thread; runs of purely-serial
        statements execute on thread 0 under a guard, followed by a
        barrier so their results are visible to everyone.
        """
        b = self.b
        serial_run: List[Stmt] = []

        def flush() -> None:
            if not serial_run:
                return
            skip = b.genlabel("serial")
            b.op("bne", self.tid_reg, S0, skip)
            for s in serial_run:
                self._gen_stmt(s)
            b.label(skip)
            b.op("barrier")
            self._pending_vstores = False
            serial_run.clear()

        for stmt in stmts:
            if isinstance(stmt, Loop) and stmt.parallel:
                flush()
                self._gen_threaded_loop(stmt)
                b.op("barrier")
                self._pending_vstores = False  # barriers drain vector work
            elif self._contains_parallel(stmt):
                flush()
                self._gen_redundant_loop(stmt)
            else:
                serial_run.append(stmt)
        flush()

    def _gen_redundant_loop(self, loop: Loop) -> None:
        """Serial loop executed by every thread (control only); its body
        is lowered with the threaded rules."""
        b = self.b
        var_reg = self.spool.alloc()
        self.var_regs[loop.var] = var_reg
        bound = self._eval_affine(loop.extent)
        b.op("li", var_reg, 0)
        head = b.genlabel("rloop")
        exit_ = b.genlabel("endrloop")
        b.op("bge", var_reg, bound, exit_)
        b.label(head)
        self._gen_threaded_block(loop.body)
        b.op("addi", var_reg, var_reg, 1)
        b.op("blt", var_reg, bound, head)
        b.label(exit_)
        self.spool.free(bound)
        self.spool.free(var_reg)
        del self.var_regs[loop.var]

    # -- helpers ----------------------------------------------------------------

    def _eval_affine(self, aff: Union[int, Affine]) -> Reg:
        """Materialise an affine expression of live loop vars (fresh sreg)."""
        b = self.b
        r = self.spool.alloc()
        if isinstance(aff, int):
            b.op("li", r, aff)
            return r
        b.op("li", r, aff.const)
        for var, c in aff.coefs.items():
            vr = self.var_regs[var]
            if c == 1:
                b.op("add", r, r, vr)
            else:
                t = self.spool.alloc()
                b.op("muli", t, vr, c)
                b.op("add", r, r, t)
                self.spool.free(t)
        return r

    def _addr(self, ref: Ref, omit: Optional[Var] = None) -> Reg:
        """Byte address of ``ref`` (with ``omit``'s contribution dropped)."""
        b = self.b
        flat = ref.flat_affine()
        if omit is not None and flat.coef(omit):
            flat = flat + Affine({omit: -flat.coef(omit)})
        r = self._eval_affine(flat)
        b.op("slli", r, r, 3)
        b.op("add", r, r, self.base_regs[ref.array.name])
        return r

    # -- scalar expressions -------------------------------------------------------

    def _eval_scalar(self, e: Expr) -> Reg:
        b = self.b
        if isinstance(e, Const):
            f = self.fpool.alloc()
            b.op("fli", f, e.value)
            return f
        if isinstance(e, LoadExpr):
            a = self._addr(e.ref)
            f = self.fpool.alloc()
            b.op("fld", f, (0, a))
            self.spool.free(a)
            return f
        if isinstance(e, Bin):
            fa = self._eval_scalar(e.a)
            fb = self._eval_scalar(e.b)
            b.op(_SCALAR_OPS[e.op], fa, fa, fb)
            self.fpool.free(fb)
            return fa
        if isinstance(e, Sqrt):
            fa = self._eval_scalar(e.a)
            b.op("fsqrt", fa, fa)
            return fa
        if isinstance(e, Select):
            fa = self._eval_scalar(e.a)
            fb = self._eval_scalar(e.b)
            ca = self._eval_scalar(e.cond.a)
            cb = self._eval_scalar(e.cond.b)
            flag = self.spool.alloc()
            b.op(_SCMP[e.cond.op], flag, ca, cb)
            keep = b.genlabel("sel")
            b.op("bne", flag, S0, keep)
            b.op("fmv", fa, fb)
            b.label(keep)
            self.spool.free(flag)
            self.fpool.free(cb)
            self.fpool.free(ca)
            self.fpool.free(fb)
            return fa
        raise VectorizationError(f"unsupported expression node {e!r}")

    # -- statements ------------------------------------------------------------------

    def _fence_if_needed(self) -> None:
        """Scalar code is about to run: order it after any outstanding
        vector stores with a single ``lsync``."""
        if self._pending_vstores:
            self.b.op("lsync")
            self._pending_vstores = False

    def _gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Loop):
            if id(stmt) in self.vector_loops:
                self._gen_vector_dispatch(stmt)
            else:
                self._gen_scalar_loop(stmt)
        elif isinstance(stmt, Assign):
            self._fence_if_needed()
            f = self._eval_scalar(stmt.expr)
            a = self._addr(stmt.ref)
            self.b.op("fst", f, (0, a))
            self.spool.free(a)
            self.fpool.free(f)
        elif isinstance(stmt, Reduce):
            self._fence_if_needed()
            a = self._addr(stmt.ref)
            acc = self.fpool.alloc()
            self.b.op("fld", acc, (0, a))
            f = self._eval_scalar(stmt.expr)
            self.b.op(_RED_COMBINE[stmt.op], acc, acc, f)
            self.b.op("fst", acc, (0, a))
            self.spool.free(a)
            self.fpool.free(acc)
            self.fpool.free(f)
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {stmt!r}")

    # -- scalar loops ------------------------------------------------------------------

    def _gen_scalar_loop(self, loop: Loop, start: Optional[Reg] = None,
                         bound: Optional[Reg] = None) -> None:
        """``for var in [start, bound)`` -- defaults to ``[0, extent)``."""
        self._fence_if_needed()
        b = self.b
        var_reg = self.spool.alloc()
        self.var_regs[loop.var] = var_reg
        own_bound = bound is None
        if own_bound:
            bound = self._eval_affine(loop.extent)
        if start is None:
            b.op("li", var_reg, 0)
        else:
            b.mv(var_reg, start)

        head = b.genlabel("loop")
        exit_ = b.genlabel("endloop")
        b.op("bge", var_reg, bound, exit_)

        # Register-accumulate reductions whose target is invariant here
        # when this is an innermost loop (classic scalar optimisation).
        innermost = not any(isinstance(s, Loop) for s in loop.body)
        hoisted: Dict[int, Tuple[Reg, Reduce]] = {}
        if innermost:
            for s in loop.body:
                if (isinstance(s, Reduce)
                        and s.ref.stride_wrt(loop.var) == 0
                        and id(s) not in hoisted):
                    a = self._addr(s.ref)
                    acc = self.fpool.alloc()
                    b.op("fld", acc, (0, a))
                    self.spool.free(a)
                    hoisted[id(s)] = (acc, s)

        b.label(head)
        for s in loop.body:
            if id(s) in hoisted:
                acc, red = hoisted[id(s)]
                f = self._eval_scalar(red.expr)
                b.op(_RED_COMBINE[red.op], acc, acc, f)
                self.fpool.free(f)
            else:
                self._gen_stmt(s)
        b.op("addi", var_reg, var_reg, 1)
        b.op("blt", var_reg, bound, head)

        # The zero-trip guard above jumps past these stores: an empty
        # loop (dynamically possible for peeled epilogues and threaded
        # chunks) must leave the reduction targets untouched rather than
        # store accumulators whose loads were also skipped.
        for acc, red in hoisted.values():
            a = self._addr(red.ref)
            b.op("fst", acc, (0, a))
            self.spool.free(a)
            self.fpool.free(acc)
        b.label(exit_)
        if own_bound:
            self.spool.free(bound)
        self.spool.free(var_reg)
        del self.var_regs[loop.var]

    # -- vector loops -------------------------------------------------------------------

    def _padded_extent(self, loop: Loop) -> Union[int, Affine]:
        """The loop's iteration-domain extent after padding (if planned)."""
        return self.pad_plan.extents.get(id(loop), loop.extent)

    def _gen_vector_dispatch(self, loop: Loop, start: Optional[Reg] = None,
                             count: Optional[Reg] = None) -> None:
        """Lower a chosen vector loop under the active strategy.

        AUTO (and any strategy's fallback) is the plain strip-mined
        shape of :meth:`_gen_vector_loop`; PADDING swaps in the planned
        rounded-up trip count (slack was already added to the affected
        allocations); PEELING splits the trip count into full-MVL vector
        strips plus a scalar epilogue.  UNROLL_JAM already rewrote the
        nest at planning time and pads its tails where legal, so it
        lands in the padding branch here.
        """
        if self.opts.strategy is VectStrategy.PEELING:
            self._gen_peeled_loop(loop, start=start, count=count)
            return
        padded = self.pad_plan.extents.get(id(loop))
        if padded is not None and start is None and count is None:
            c = self._eval_affine(padded)
            self._gen_vector_loop(loop, count=c)
            self.spool.free(c)
            return
        self._gen_vector_loop(loop, start=start, count=count)

    def _gen_peeled_loop(self, loop: Loop, start: Optional[Reg] = None,
                         count: Optional[Reg] = None) -> None:
        """PEELING: full-MVL vector strips + a scalar remainder epilogue.

        With a static trip count the split is resolved at compile time:
        an exact multiple of MVL degenerates to the AUTO shape, a loop
        shorter than MVL becomes entirely scalar, and anything else gets
        a vector main loop over ``extent - extent % MVL`` elements
        followed by an unconditional scalar epilogue.  A dynamic trip
        count (affine extents, per-thread chunks) is split at run time
        with a ``div``/``muli`` pair, and the scalar epilogue is guarded
        by a skip branch: :meth:`_gen_scalar_loop` hoists invariant
        reduction accumulators into registers whose loads sit behind its
        own zero-trip guard, so entering a dynamically-empty epilogue
        would store uninitialised registers.
        """
        b = self.b
        static_extent = (loop.extent if isinstance(loop.extent, int)
                         else None)
        if start is None and count is None and static_extent is not None:
            tail = static_extent % MVL
            if tail == 0:
                self._gen_vector_loop(loop)
                return
            if static_extent < MVL:
                self._gen_scalar_loop(loop)
                return
            main = self.spool.alloc()
            b.op("li", main, static_extent - tail)
            self._gen_vector_loop(loop, count=main)
            # `main` still holds the split point: reuse it as the
            # epilogue's start register.
            bound = self.spool.alloc()
            b.op("li", bound, static_extent)
            self._gen_scalar_loop(loop, start=main, bound=bound)
            self.spool.free(bound)
            self.spool.free(main)
            return

        own_count = count is None
        if own_count:
            count = self._eval_affine(loop.extent)
        mvl = self.spool.alloc()
        b.op("li", mvl, MVL)
        main = self.spool.alloc()
        b.op("div", main, count, mvl)
        b.op("muli", main, main, MVL)
        self.spool.free(mvl)
        self._gen_vector_loop(loop, start=start, count=main)
        # Epilogue bounds: [start + main, start + count).  `main` is
        # reused as the lower bound register.
        bound = self.spool.alloc()
        if start is not None:
            b.op("add", main, main, start)
            b.op("add", bound, count, start)
        else:
            b.mv(bound, count)
        if own_count:
            self.spool.free(count)
        # Fence *before* the skip guard: the epilogue may be skipped at
        # run time, but scalar code after this loop still needs to be
        # ordered behind the vector stores above.
        self._fence_if_needed()
        skip = b.genlabel("peelskip")
        b.op("bge", main, bound, skip)
        self._gen_scalar_loop(loop, start=main, bound=bound)
        b.label(skip)
        self.spool.free(bound)
        self.spool.free(main)

    def _gen_vector_loop(self, loop: Loop, start: Optional[Reg] = None,
                         count: Optional[Reg] = None) -> None:
        """Strip-mined vector execution of an innermost loop."""
        reason = body_vectorizable(loop)
        if reason is not None:
            raise VectorizationError(
                f"loop {loop.var.name} in {self.kernel.name}: {reason}")
        b = self.b
        var = loop.var

        own_count = count is None
        if own_count:
            count = self._eval_affine(loop.extent)

        exit_ = b.genlabel("vexit")
        b.op("bge", S0, count, exit_)

        # Address registers for every vector stream, advanced per strip.
        # Streams are deduplicated by (array, flattened affine) so repeated
        # references to the same element expression share one address reg.
        streams: List[Tuple[Reg, int]] = []   # (addr reg, byte stride)
        stream_of: Dict[Tuple, int] = {}      # stream key -> index

        def skey(ref: Ref) -> Tuple:
            flat = ref.flat_affine()
            coefs = tuple(sorted((id(v), c) for v, c in flat.coefs.items()))
            return (ref.array.name, coefs, flat.const)

        def open_stream(ref: Ref) -> int:
            key = skey(ref)
            if key in stream_of:
                return stream_of[key]
            a = self._addr(ref, omit=var)
            stride_b = ref.stride_wrt(var) * 8
            if start is not None:
                t = self.spool.alloc()
                b.op("muli", t, start, stride_b)
                b.op("add", a, a, t)
                self.spool.free(t)
            streams.append((a, stride_b))
            stream_of[key] = len(streams) - 1
            return len(streams) - 1

        def collect(e: Expr) -> None:
            if isinstance(e, LoadExpr):
                if e.ref.stride_wrt(var) != 0:
                    open_stream(e.ref)
            elif isinstance(e, Bin):
                collect(e.a)
                collect(e.b)
            elif isinstance(e, Sqrt):
                collect(e.a)
            elif isinstance(e, Select):
                collect(e.a)
                collect(e.b)
                collect(e.cond.a)
                collect(e.cond.b)

        self._skey = skey
        reductions: List[Tuple[Reduce, Reg]] = []
        for s in loop.body:
            collect(s.expr)
            if s.ref.stride_wrt(var) != 0:
                open_stream(s.ref)
            elif isinstance(s, Reduce):
                pass  # true reduction; handled below
            else:  # pragma: no cover - rejected by body_vectorizable
                raise VectorizationError("invariant assignment target")

        # vl0 = min(count, MVL): initialises reduction registers and is the
        # reduction width at loop exit.
        vl0 = self.spool.alloc()
        b.op("setvl", vl0, count)
        for s in loop.body:
            if isinstance(s, Reduce) and s.ref.stride_wrt(var) == 0:
                vacc = self.vpool.alloc()
                ident = {"+": 0.0, "min": float("inf"),
                         "max": float("-inf")}[s.op]
                fident = self.fpool.alloc()
                b.op("fli", fident, ident)
                b.op("vfmv.s", vacc, fident)
                self.fpool.free(fident)
                reductions.append((s, vacc))

        rem = self.spool.alloc()
        b.mv(rem, count)
        vlr = self.spool.alloc()
        head = b.genlabel("vstrip")
        b.label(head)
        for _unrolled in range(self.opts.unroll):
            self._gen_strip_body(loop, var, streams, stream_of, reductions,
                                 rem, vlr)
        b.op("bne", rem, S0, head)

        # Reduction epilogue at width vl0.
        if reductions:
            t = self.spool.alloc()
            b.op("setvl", t, vl0)
            self.spool.free(t)
            for red, vacc in reductions:
                fres = self.fpool.alloc()
                b.op(_RED_FOLD[red.op], fres, vacc)
                a = self._addr(red.ref)
                finit = self.fpool.alloc()
                b.op("fld", finit, (0, a))
                b.op(_RED_COMBINE[red.op], finit, finit, fres)
                b.op("fst", finit, (0, a))
                self.spool.free(a)
                self.fpool.free(finit)
                self.fpool.free(fres)
                self.vpool.free(vacc)

        # remember that vector stores are in flight; a fence is emitted
        # lazily before the next *scalar* statement that could read them
        # ("compiler-generated memory barriers", paper Section 2)
        if any(isinstance(s, (Assign, Reduce))
               and s.ref.stride_wrt(var) != 0 for s in loop.body):
            self._pending_vstores = True

        b.label(exit_)
        for a, _ in streams:
            self.spool.free(a)
        self.spool.free(vlr)
        self.spool.free(rem)
        self.spool.free(vl0)
        if own_count:
            self.spool.free(count)

    def _gen_strip_body(self, loop: Loop, var: Var, streams, stream_of,
                        reductions, rem: Reg, vlr: Reg) -> None:
        """One strip: setvl, the vectorized body, stream advance."""
        b = self.b
        b.op("setvl", vlr, rem)

        # Body: loads, arithmetic, stores.
        red_idx = 0
        for s in loop.body:
            vexpr = self._eval_vector(s.expr, var, streams, stream_of)
            if isinstance(s, Assign) or s.ref.stride_wrt(var) != 0:
                vres = self._to_vector(vexpr)
                if isinstance(s, Reduce):
                    # element-wise accumulate: target op= expr
                    vtgt = self._load_stream(s.ref, streams, stream_of)
                    b.op(_RED_VV[s.op], vtgt, vtgt, vres)
                    self._free_vexpr(("v", vres))
                    vres = vtgt
                self._store_stream(s.ref, vres, streams, stream_of)
                self._free_vexpr(("v", vres))
            else:
                red, vacc = reductions[red_idx]
                red_idx += 1
                if vexpr[0] == "s":
                    b.op(_VS_OPS[red.op], vacc, vacc, vexpr[1])
                else:
                    b.op(_RED_VV[red.op], vacc, vacc, vexpr[1])
                self._free_vexpr(vexpr)

        # Advance streams and consume the strip.
        for a, stride_b in streams:
            t = self.spool.alloc()
            if stride_b == 8:
                b.op("slli", t, vlr, 3)
            else:
                b.op("muli", t, vlr, stride_b)
            b.op("add", a, a, t)
            self.spool.free(t)
        b.op("sub", rem, rem, vlr)

    # -- vector expression helpers -----------------------------------------------------

    def _load_stream(self, ref: Ref, streams, stream_of) -> Reg:
        """Vector-load one stream reference into a fresh register."""
        b = self.b
        a, stride_b = streams[stream_of[self._skey(ref)]]
        v = self.vpool.alloc()
        if stride_b == 8:
            b.op("vld", v, (0, a))
        else:
            sr = self.spool.alloc()
            b.op("li", sr, stride_b)
            b.op("vlds", v, (0, a), sr)
            self.spool.free(sr)
        return v

    def _store_stream(self, ref: Ref, v: Reg, streams, stream_of) -> None:
        b = self.b
        a, stride_b = streams[stream_of[self._skey(ref)]]
        if stride_b == 8:
            b.op("vst", v, (0, a))
        else:
            sr = self.spool.alloc()
            b.op("li", sr, stride_b)
            b.op("vsts", v, (0, a), sr)
            self.spool.free(sr)

    def _invariant(self, e: Expr, var: Var) -> bool:
        if isinstance(e, LoadExpr):
            return e.ref.stride_wrt(var) == 0
        if isinstance(e, Bin):
            return self._invariant(e.a, var) and self._invariant(e.b, var)
        if isinstance(e, Sqrt):
            return self._invariant(e.a, var)
        if isinstance(e, Select):
            return (self._invariant(e.a, var) and self._invariant(e.b, var)
                    and self._invariant(e.cond.a, var)
                    and self._invariant(e.cond.b, var))
        return True  # Const

    def _eval_vector(self, e: Expr, var: Var, streams,
                     stream_of) -> Tuple[str, Reg]:
        """Evaluate in vector context -> ("v", vreg) or ("s", freg)."""
        b = self.b
        if self._invariant(e, var):
            return ("s", self._eval_scalar(e))
        if isinstance(e, LoadExpr):
            return ("v", self._load_stream(e.ref, streams, stream_of))
        if isinstance(e, Bin):
            a = self._eval_vector(e.a, var, streams, stream_of)
            c = self._eval_vector(e.b, var, streams, stream_of)
            if a[0] == "v" and c[0] == "v":
                b.op(_VV_OPS[e.op], a[1], a[1], c[1])
                self.vpool.free(c[1])
                return a
            if a[0] == "v":  # vector op scalar
                b.op(_VS_OPS[e.op], a[1], a[1], c[1])
                self.fpool.free(c[1])
                return a
            # scalar op vector
            if e.op in _SV_COMMUTES:
                b.op(_VS_OPS[e.op], c[1], c[1], a[1])
                self.fpool.free(a[1])
                return c
            if e.op == "-":
                b.op("vfrsub.vs", c[1], c[1], a[1])
                self.fpool.free(a[1])
                return c
            # scalar / vector: splat then divide
            v = self.vpool.alloc()
            b.op("vfmv.s", v, a[1])
            b.op("vfdiv.vv", v, v, c[1])
            self.fpool.free(a[1])
            self.vpool.free(c[1])
            return ("v", v)
        if isinstance(e, Sqrt):
            a = self._eval_vector(e.a, var, streams, stream_of)
            v = self._to_vector(a)
            b.op("vfsqrt.v", v, v)
            return ("v", v)
        if isinstance(e, Select):
            for sub in (e.a, e.b, e.cond.a, e.cond.b):
                if _contains_select(sub):
                    raise VectorizationError(
                        "nested Select is not supported (single mask "
                        "register)")
            va = self._to_vector(
                self._eval_vector(e.a, var, streams, stream_of))
            vb = self._eval_vector(e.b, var, streams, stream_of)
            # the compare writes vm; nothing below may clobber it before
            # the merge, so it is evaluated last
            ca = self._eval_vector(e.cond.a, var, streams, stream_of)
            cb = self._eval_vector(e.cond.b, var, streams, stream_of)
            if ca[0] == "s":
                ca = ("v", self._to_vector(ca))
            if cb[0] == "v":
                b.op(_VCMP_VV[e.cond.op], ca[1], cb[1])
                self.vpool.free(cb[1])
            else:
                b.op(_VCMP_VS[e.cond.op], ca[1], cb[1])
                self.fpool.free(cb[1])
            self.vpool.free(ca[1])
            if vb[0] == "s":
                b.op("vfmerge.vs", va, va, vb[1])
                self.fpool.free(vb[1])
            else:
                b.op("vmerge.vv", va, va, vb[1])
                self.vpool.free(vb[1])
            return ("v", va)
        raise VectorizationError(f"unsupported expression node {e!r}")

    def _to_vector(self, x: Tuple[str, Reg]) -> Reg:
        if x[0] == "v":
            return x[1]
        v = self.vpool.alloc()
        self.b.op("vfmv.s", v, x[1])
        self.fpool.free(x[1])
        return v

    def _free_vexpr(self, x: Tuple[str, Reg]) -> None:
        if x[0] == "v":
            self.vpool.free(x[1])
        else:
            self.fpool.free(x[1])

    # -- threading --------------------------------------------------------------------

    def _gen_threaded_loop(self, loop: Loop) -> None:
        """Static chunking of a parallel loop across SPMD threads.

        A padded vector loop is chunked over its *padded* domain -- the
        slack past the logical extent is dead zero-filled storage, so
        whichever thread draws the tail chunk can safely run vector
        strips into it.
        """
        b = self.b
        ereg = self._eval_affine(self._padded_extent(loop)
                                 if id(loop) in self.vector_loops
                                 else loop.extent)
        chunk = self.spool.alloc()
        b.op("addi", chunk, ereg, 0)
        t = self.spool.alloc()
        b.op("addi", t, self.ntid_reg, -1)
        b.op("add", chunk, chunk, t)
        b.op("div", chunk, chunk, self.ntid_reg)
        lo = self.spool.alloc()
        b.op("mul", lo, self.tid_reg, chunk)
        hi = self.spool.alloc()
        b.op("add", hi, lo, chunk)
        b.op("min", hi, hi, ereg)
        b.op("min", lo, lo, ereg)
        self.spool.free(t)
        self.spool.free(chunk)

        if id(loop) in self.vector_loops:
            count = self.spool.alloc()
            b.op("sub", count, hi, lo)
            self._gen_vector_dispatch(loop, start=lo, count=count)
            self.spool.free(count)
        else:
            self._gen_scalar_loop(loop, start=lo, bound=hi)
        self.spool.free(lo)
        self.spool.free(hi)
        self.spool.free(ereg)


def compile_kernel(kernel: Kernel,
                   options: Optional[CompileOptions] = None,
                   verify: bool = True) -> Program:
    """Compile a loop-nest kernel to a finalized VLT ISA program.

    Every emitted program is gated through the static verifier
    (:func:`repro.verify.check`) -- a codegen bug that reads an
    undefined register, escapes the data image, or drops a ``halt``
    raises :class:`repro.verify.LintError` here instead of corrupting a
    downstream experiment.  ``verify=False`` skips the gate (linting a
    deliberately-broken program, compiler-internal tooling).
    """
    prog = CodeGen(kernel, options or CompileOptions()).compile()
    if verify:
        from ..verify import check  # deferred: verify imports timing
        check(prog)
    return prog
