"""Mini vectorizing compiler: affine loop-nest IR -> VLT ISA programs.

Substitutes for the Cray X1 production compilers the paper used
(DESIGN.md section 2): automatic innermost-loop vectorization with
strip-mining, a vector-length vs. stride interchange policy
(Section 3.1 of the paper), and OpenMP-style outer-loop threading.
"""

from .codegen import (CodeGen, CompileOptions, RegisterPressureError,
                      compile_kernel)
from .ir import (Affine, Array, Assign, Bin, Cmp, Const, Expr, Kernel,
                 LoadExpr, Loop, Reduce, Ref, Select, Sqrt, Var, fmax, fmin,
                 sqrt)
from .strategies import (STRATEGY_NAMES, PadPlan, VectStrategy, plan_padding,
                         subst_stmt, unroll_and_jam)
from .vectorizer import (ALIGN_LANES, POLICY_NAMES, VectorizationError,
                         VectPolicy, body_vectorizable, choose_vector_loop)

__all__ = [
    "CodeGen", "CompileOptions", "RegisterPressureError", "compile_kernel",
    "Affine", "Array", "Assign", "Bin", "Cmp", "Const", "Expr", "Kernel",
    "LoadExpr", "Loop", "Reduce", "Ref", "Select", "Sqrt", "Var", "fmax", "fmin",
    "sqrt", "VectorizationError", "body_vectorizable", "choose_vector_loop",
    "VectStrategy", "VectPolicy", "STRATEGY_NAMES", "POLICY_NAMES",
    "ALIGN_LANES", "PadPlan", "plan_padding", "unroll_and_jam", "subst_stmt",
]
