"""Selectable vectorization strategies (COFFEE-style).

The production vectorizers the paper relied on expose *strategies*, not
just a single strip-mining recipe -- the COFFEE compiler models them as
an explicit ``VectStrategy`` knob (auto / padding / peeling /
unroll-and-jam).  This module brings that knob to the mini-compiler so
the reproduction can sweep the vector-length profile the timing study
depends on (PAPER.md Table 4: short-VL code is where VLT's idle lanes
pay off).

* ``AUTO`` -- the historical behaviour: strip-mine with ``setvl``
  clamping the tail strip (partial final strip, no extra code).
* ``PADDING`` -- round eligible trip counts up to the next MVL multiple
  and give every overrun array zero-filled *slack* at the end of its
  allocation, so every strip runs at full MVL and the masked/clamped
  tail disappears.  Padded lanes read and write only slack, which no
  live code ever touches, so results are unchanged.
* ``PEELING`` -- run only full-MVL strips in vector code and peel the
  remainder iterations into a scalar epilogue (loops statically shorter
  than MVL become entirely scalar).
* ``UNROLL_JAM`` -- unroll an eligible outer loop and jam the copies
  into the inner vector loop's body, amortising per-strip overhead and
  load/store round-trips; tails of the jammed loops are padded where
  legal (else left to ``setvl`` clamping).

Every strategy is *sound by construction or by fallback*: a loop that
fails a strategy's legality analysis silently falls back to the AUTO
shape, and the reasons are recorded so reports and tests can see what
actually happened.  All four strategies' emitted programs pass the
``repro.verify`` linter and the functional/timing differential checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..isa.registers import MVL
from .ir import (Affine, Assign, Bin, Cmp, Const, Expr, Kernel, LoadExpr,
                 Loop, Reduce, Ref, Select, Sqrt, Stmt, Var)
from .vectorizer import VectorizationError


class VectStrategy(Enum):
    """How vector loops handle trip counts that are not MVL multiples."""

    AUTO = "auto"
    PADDING = "padding"
    PEELING = "peeling"
    UNROLL_JAM = "unroll_jam"

    @classmethod
    def parse(cls, value: Union[str, "VectStrategy"]) -> "VectStrategy":
        """Validate a strategy name; raises :class:`VectorizationError`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise VectorizationError(
                f"unknown vectorization strategy {value!r}; known: "
                f"{', '.join(s.value for s in cls)}") from None


#: every strategy name, in catalogue order (CLI sweeps, tests)
STRATEGY_NAMES: Tuple[str, ...] = tuple(s.value for s in VectStrategy)


# --------------------------------------------------------------------------
# Affine substitution: clone IR trees replacing one induction variable
# --------------------------------------------------------------------------

def subst_affine(aff: Union[int, Affine], var: Var,
                 repl: Affine) -> Union[int, Affine]:
    """``aff`` with every occurrence of ``var`` replaced by ``repl``."""
    if isinstance(aff, int):
        return aff
    c = aff.coef(var)
    if c == 0:
        return Affine(dict(aff.coefs), aff.const)
    rest = Affine({v: k for v, k in aff.coefs.items() if v is not var},
                  aff.const)
    out = rest + repl * c
    return out.const if out.is_const else out


def _subst_ref(ref: Ref, var: Var, repl: Affine) -> Ref:
    return Ref(ref.array, tuple(Affine.of(subst_affine(a, var, repl))
                                for a in ref.idx))


def subst_expr(e: Expr, var: Var, repl: Affine) -> Expr:
    """Deep-copied expression with ``var`` replaced by ``repl``."""
    if isinstance(e, Const):
        return e
    if isinstance(e, LoadExpr):
        return LoadExpr(_subst_ref(e.ref, var, repl))
    if isinstance(e, Bin):
        return Bin(e.op, subst_expr(e.a, var, repl),
                   subst_expr(e.b, var, repl))
    if isinstance(e, Sqrt):
        return Sqrt(subst_expr(e.a, var, repl))
    if isinstance(e, Select):
        return Select(Cmp(e.cond.op, subst_expr(e.cond.a, var, repl),
                          subst_expr(e.cond.b, var, repl)),
                      subst_expr(e.a, var, repl),
                      subst_expr(e.b, var, repl))
    raise VectorizationError(f"unsupported expression node {e!r}")


def subst_stmt(s: Stmt, var: Var, repl: Affine) -> Stmt:
    """Deep-copied statement with ``var`` replaced by ``repl``."""
    if isinstance(s, Assign):
        return Assign(_subst_ref(s.ref, var, repl),
                      subst_expr(s.expr, var, repl))
    if isinstance(s, Reduce):
        return Reduce(s.op, _subst_ref(s.ref, var, repl),
                      subst_expr(s.expr, var, repl))
    if isinstance(s, Loop):
        return Loop(s.var, subst_affine(s.extent, var, repl),
                    [subst_stmt(x, var, repl) for x in s.body],
                    parallel=s.parallel)
    raise TypeError(f"unknown statement {s!r}")


def _walk_refs(stmts: Sequence[Stmt]):
    """Yield every (ref, is_target) in a statement list, recursively."""

    def exprs(e: Expr):
        if isinstance(e, LoadExpr):
            yield e.ref
        elif isinstance(e, Bin):
            yield from exprs(e.a)
            yield from exprs(e.b)
        elif isinstance(e, Sqrt):
            yield from exprs(e.a)
        elif isinstance(e, Select):
            for sub in (e.a, e.b, e.cond.a, e.cond.b):
                yield from exprs(sub)

    for s in stmts:
        if isinstance(s, Loop):
            yield from _walk_refs(s.body)
        else:
            yield s.ref, True
            for r in exprs(s.expr):
                yield r, False


# --------------------------------------------------------------------------
# PADDING: trip-count rounding + array slack, gated by a legality analysis
# --------------------------------------------------------------------------

@dataclass
class PadPlan:
    """What the padding strategy decided for one kernel.

    ``extents`` maps ``id(loop)`` of each padded vector loop to its
    rounded-up trip count; ``slack`` maps array names to the number of
    extra zero-filled elements the code generator must append to their
    allocations so padded lanes stay in bounds.  ``fallbacks`` records,
    per loop variable, why a chosen vector loop could *not* be padded
    (reports and tests read it; codegen just emits the AUTO shape).
    """

    extents: Dict[int, int] = field(default_factory=dict)
    slack: Dict[str, int] = field(default_factory=dict)
    fallbacks: Dict[str, str] = field(default_factory=dict)


def _pad_reason(loop: Loop) -> Optional[str]:
    """None if ``loop`` can be padded, else why not.

    The sufficient condition for soundness: the trip count is static,
    and every reference that varies with the loop variable varies with
    *only* the loop variable (a constant element offset is fine).  Then
    the padded iterations access a contiguous overrun region past the
    array's logical end -- the same region for every execution of the
    loop -- which the planner covers with dead zero-filled slack.  A
    reference also indexed by an outer variable would overrun into the
    *next row's live data* (think ``T[i, j]`` with ``j`` padded past the
    row width), so those loops fall back.  True reductions fall back
    too: padded lanes would fold slack values into the scalar result,
    which is only correct when the slack happens to be the reduction
    identity.
    """
    if not isinstance(loop.extent, int):
        return "dynamic trip count"
    for s in loop.body:
        if (isinstance(s, Reduce)
                and s.ref.flat_affine().coef(loop.var) == 0):
            return (f"true reduction into {s.ref.array.name} (padded "
                    f"lanes would fold slack into the result)")
    for ref, _is_target in _walk_refs(loop.body):
        flat = ref.flat_affine()
        c = flat.coef(loop.var)
        if c == 0:
            continue  # loop-invariant operand: padded lanes re-read it
        if c < 0:
            return (f"{ref.array.name} has negative stride {c} "
                    f"(padding would underrun the allocation)")
        for v in flat.coefs:
            if v is not loop.var:
                return (f"{ref.array.name} is also indexed by outer "
                        f"variable {v.name} (overrun would hit live "
                        f"rows)")
    return None


def plan_padding(chosen: Sequence[Loop]) -> PadPlan:
    """Decide padded extents and array slack for the chosen vector loops.

    Loops whose static extent is already an MVL multiple need nothing
    (and are not counted as fallbacks); ineligible loops land in
    ``fallbacks`` with their reason and keep the AUTO shape.
    """
    plan = PadPlan()
    for loop in chosen:
        reason = _pad_reason(loop)
        if reason is not None:
            plan.fallbacks[loop.var.name] = reason
            continue
        extent = loop.extent
        padded = -(-extent // MVL) * MVL
        if padded == extent:
            continue  # already full strips: padding is the identity
        plan.extents[id(loop)] = padded
        for ref, _ in _walk_refs(loop.body):
            flat = ref.flat_affine()
            c = flat.coef(loop.var)
            if c <= 0:
                continue
            overrun = flat.const + (padded - 1) * c + 1 - ref.array.size
            if overrun > 0:
                name = ref.array.name
                plan.slack[name] = max(plan.slack.get(name, 0), overrun)
    return plan


# --------------------------------------------------------------------------
# UNROLL_JAM: outer-loop unroll-and-jam over perfect nests
# --------------------------------------------------------------------------

def _jam_reason(parent: Loop, child: Loop, factor: int) -> Optional[str]:
    """None if ``parent`` can be unroll-and-jammed into ``child``."""
    if parent.body != [child]:
        return "not a perfect nest"
    if not isinstance(parent.extent, int):
        return "dynamic outer trip count"
    if parent.extent < factor:
        return f"outer trip count {parent.extent} < jam factor {factor}"
    if (not isinstance(child.extent, int)
            and Affine.of(child.extent).coef(parent.var) != 0):
        return "inner trip count depends on the outer variable"
    if parent.parallel:
        return None  # independent iterations: any interleaving is legal
    # Serial outer loop: jamming interleaves iteration groups, which is
    # still legal when the only loop-carried dependence is elementwise
    # accumulation -- every statement a Reduce whose target ignores the
    # outer variable, and no target array read anywhere else in the body
    # (the jam preserves each element's accumulation order).
    targets = set()
    for s in child.body:
        if not isinstance(s, Reduce):
            return ("serial outer loop with a non-reduction body "
                    "(loop-carried dependences unknown)")
        if s.ref.flat_affine().coef(parent.var) != 0:
            return (f"serial outer loop writes {s.ref.array.name} at "
                    f"outer-dependent offsets")
        targets.add(s.ref.array.name)
    for ref, is_target in _walk_refs(child.body):
        if not is_target and ref.array.name in targets:
            return (f"reduction target {ref.array.name} is also read "
                    f"as an operand")
    return None


def unroll_and_jam(kernel: Kernel, chosen: List[Loop], factor: int = 2
                   ) -> Tuple[List[Loop], Dict[str, str]]:
    """Unroll-and-jam eligible parents of the chosen vector loops.

    For each chosen vector loop whose parent is an eligible perfect
    nest, the parent is rewritten in place to iterate ``extent //
    factor`` times with ``factor`` jammed copies of the vector body
    (outer variable ``o`` substituted by ``factor*o + u``), and a
    remainder nest covering ``extent % factor`` iterations is inserted
    right after it.  Returns the updated chosen-loop list (remainder
    copies included) and a ``{outer var: reason}`` map of nests that
    fell back.
    """
    chosen_ids = {id(l) for l in chosen}
    new_chosen = list(chosen)
    fallbacks: Dict[str, str] = {}

    def visit(stmts: List[Stmt], parent: Optional[Loop]) -> None:
        i = 0
        while i < len(stmts):
            s = stmts[i]
            i += 1
            if not isinstance(s, Loop):
                continue
            inner = [x for x in s.body if isinstance(x, Loop)]
            if not inner:
                continue
            child = inner[0]
            if (len(inner) == 1 and id(child) in chosen_ids):
                reason = _jam_reason(s, child, factor)
                if reason is not None:
                    fallbacks[s.var.name] = reason
                    visit(s.body, s)
                    continue
                extent = s.extent
                groups, rem = divmod(extent, factor)
                original = list(child.body)
                child.body[:] = [
                    subst_stmt(b, s.var, Affine({s.var: factor}, u))
                    for u in range(factor) for b in original]
                s.extent = groups
                if rem:
                    rv = Var(s.var.name + "_r")
                    rem_child = Loop(
                        child.var, child.extent,
                        [subst_stmt(b, s.var,
                                    Affine({rv: 1}, groups * factor))
                         for b in original],
                        parallel=child.parallel)
                    stmts.insert(i, Loop(rv, rem, [rem_child],
                                         parallel=s.parallel))
                    i += 1
                    new_chosen.append(rem_child)
                continue
            visit(s.body, s)

    visit(kernel.body, None)
    return new_chosen, fallbacks
