"""Rendering: ASCII tables / bar charts and the EXPERIMENTS.md document."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..workloads.characteristics import PAPER_TABLE4, AppCharacteristics
from .experiments import (PAPER_FIG1_8LANE, PAPER_FIG3_BANDS, PAPER_FIG6,
                          AreaResult, Fig1Result, Fig3Result, Fig4Result,
                          Fig5Result, Fig6Result)

BAR_WIDTH = 36


def bar(value: float, vmax: float, width: int = BAR_WIDTH) -> str:
    """A horizontal ASCII bar scaled so ``vmax`` fills ``width`` chars."""
    n = 0 if vmax <= 0 else max(0, min(width, round(width * value / vmax)))
    return "#" * n


def table(headers: Sequence[str], rows: Iterable[Sequence[object]],
          title: str = "") -> str:
    """Monospace table with auto-sized columns."""
    srows = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for r in srows:
        lines.append(fmt.format(*r))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# per-experiment renderers
# --------------------------------------------------------------------------

def render_fig1(res: Fig1Result) -> str:
    rows = []
    for app in res.cycles:
        sp = res.speedups(app)
        rows.append([app] + [f"{s:.2f}" for s in sp]
                    + [f"{PAPER_FIG1_8LANE.get(app, 0):.1f}"])
    headers = ["app"] + [f"{n} lanes" for n in res.lanes] + ["paper@8"]
    out = [table(headers, rows,
                 "Figure 1: speedup vs number of vector lanes "
                 "(normalised to 1 lane)")]
    out.append("")
    vmax = max(max(res.speedups(a)) for a in res.cycles)
    for app in res.cycles:
        s8 = res.speedups(app)[-1]
        out.append(f"{app:10s} |{bar(s8, vmax)} {s8:.2f}")
    return "\n".join(out)


def render_area(res: AreaResult) -> str:
    t1 = table(["Component", "Area (mm^2)"],
               [(n, f"{a:.1f}") for n, a in res.table1],
               "Table 1: area breakdown (0.10um, Alpha-derived constants)")
    t2 = table(["Configuration", "% increase (ours)", "% increase (paper)"],
               [(n, f"{o:.1f}", f"{p:.1f}") for n, o, p in res.table2],
               "Table 2: area increase over the base vector processor")
    note = ("note: V4-CMP recomputes to 36.8% (= 3 x 20.9 / 170.2), "
            "matching the paper's prose ('37%'); the paper's table value "
            "26.9% is internally inconsistent.")
    return t1 + "\n\n" + t2 + "\n" + note


def render_table3(rows: List[Tuple[str, str]]) -> str:
    return table(["Component", "Parameters"], rows,
                 "Table 3: base vector processor parameters")


def render_table4(chars: List[AppCharacteristics]) -> str:
    rows = []
    for c in chars:
        pv, avl, cvl, opp = PAPER_TABLE4[c.name]
        name, mv, mavl, mcvl, mopp = c.row()
        rows.append([
            name,
            f"{mv} ({pv if pv is not None else '-'})",
            f"{mavl} ({avl if avl is not None else '-'})",
            f"{mcvl}  [{', '.join(map(str, cvl)) or '-'}]",
            f"{mopp} ({opp if opp is not None else '-'})",
        ])
    return table(
        ["app", "%vect (paper)", "avg VL (paper)",
         "common VLs [paper]", "%opportunity (paper)"],
        rows, "Table 4: application characteristics, measured (paper)")


def render_fig3(res: Fig3Result) -> str:
    rows = []
    for app, c in res.cycles.items():
        rows.append([app, c["base"], c[2], f"{res.speedup(app, 2):.2f}",
                     c[4], f"{res.speedup(app, 4):.2f}"])
    t = table(["app", "base cycles", "VLT-2 cycles", "x2", "VLT-4 cycles",
               "x4"],
              rows, "Figure 3: VLT speedup for vector threads over base")
    lo2, hi2 = PAPER_FIG3_BANDS[2]
    lo4, hi4 = PAPER_FIG3_BANDS[4]
    out = [t, "", f"paper bands: 2 threads {lo2}-{hi2}, 4 threads {lo4}-{hi4}",
           ""]
    vmax = max(res.speedup(a, 4) for a in res.cycles)
    for app in res.cycles:
        for thr in (2, 4):
            s = res.speedup(app, thr)
            out.append(f"{app:10s} VLT-{thr} |{bar(s, vmax)} {s:.2f}")
    return "\n".join(out)


def render_fig4(res: Fig4Result) -> str:
    out = ["Figure 4: datapath utilization, normalised to base execution "
           "(lower total = faster; 24 arithmetic datapaths)"]
    for app, cfgs in res.data.items():
        out.append(f"\n{app}:")
        bars = res.normalized_bars(app)
        for label in ("base", "VLT-2", "VLT-4"):
            f = bars[label]
            total = sum(f.values())
            out.append(
                f"  {label:6s} total {total:5.2f} | "
                f"busy {f['busy']:.2f}  stalled {f['stalled']:.2f}  "
                f"all-idle {f['all_idle']:.2f}  "
                f"partly-idle {f['partly_idle']:.2f}")
    return "\n".join(out)


def render_fig5(res: Fig5Result) -> str:
    cfg_names = next(iter(res.speedups.values())).keys()
    rows = []
    for app, row in res.speedups.items():
        rows.append([app] + [f"{row[c]:.2f}" for c in cfg_names])
    t = table(["app"] + list(cfg_names), rows,
              "Figure 5: design-space speedup over base "
              "(V2-* run 2 threads, V4-* run 4)")
    return t


def render_fig6(res: Fig6Result) -> str:
    rows = []
    for app, c in res.cycles.items():
        rows.append([app, c["CMT"], c["VLT"], f"{res.speedup(app):.2f}",
                     f"{PAPER_FIG6[app]:.1f}"])
    t = table(["app", "CMT cycles (4 thr)", "VLT-lanes cycles (8 thr)",
               "speedup", "paper"],
              rows,
              "Figure 6: 8 scalar threads on the vector lanes vs the "
              "2-core CMT")
    out = [t, ""]
    vmax = max(max(res.speedup(a) for a in res.cycles), 1.0)
    for app in res.cycles:
        s = res.speedup(app)
        out.append(f"{app:10s} |{bar(s, vmax)} {s:.2f}")
    return "\n".join(out)
