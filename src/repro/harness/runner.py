"""Fault-tolerant parallel experiment runner.

The experiment drivers (:mod:`repro.harness.experiments`) declare their
run matrix as data -- a list of :class:`RunSpec` -- and this module fans
it out over a :class:`~concurrent.futures.ProcessPoolExecutor`, backed
by the content-addressed trace/result cache
(:mod:`repro.functional.trace_cache`).  Everything a worker needs to
reproduce a run travels as plain picklable data: the application *name*,
the configuration *name* (resolved via
:func:`repro.timing.config.get_config`) and the thread count.  Workers
rebuild the program locally; the program's *content digest* -- not its
object identity -- keys the shared cache, so every process (and every
later invocation) converges on the same trace files.

Fault tolerance: each run gets a wall-clock timeout and a bounded number
of retries, and any exception is captured as a structured
:class:`RunFailure` rather than propagated -- one diverging
configuration degrades the report instead of killing the whole sweep.
A worker process dying outright (the pool breaks) triggers a fallback
pass that re-runs each remaining spec in its own single-worker pool, so
one poisoned spec cannot take healthy ones down with it.

Fleet telemetry (:mod:`repro.obs.telemetry`): with a
:class:`~repro.obs.telemetry.Telemetry` sink attached, every run
*attempt* -- including retries and worker crashes -- lands as one JSONL
ledger record, every worker's host-side spans merge into a per-worker
Perfetto timeline, and worker cache hit/miss counters accumulate into
:attr:`ExperimentRunner.cache_counters` (per-process counters silently
reset in pool workers; the payload deltas do not).  ``progress=True``
additionally draws a live completed/failed/cached/ETA line on stderr.
None of this can perturb results: telemetry only observes the payloads
that already travel parent-ward, and cycle counts are asserted
bit-identical with telemetry on and off.

Set ``VLT_RUNNER_TEST_CRASH=<app>:<config>`` to make the worker for that
spec die with ``os._exit`` -- test hook for the crash-recovery path.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
import threading
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from ..functional.trace_cache import result_key
from ..obs.hostprof import PhaseProfiler
from ..obs.telemetry import (LEDGER_SCHEMA, SpanCollector, Telemetry,
                             set_span_collector, span)
from ..timing import run as timing_run
from ..timing.config import get_config
from ..timing.stats import RunResult

#: test hook: crash the worker executing ``<app>:<config>``
_CRASH_ENV = "VLT_RUNNER_TEST_CRASH"

DEFAULT_MAX_CYCLES = 50_000_000


@dataclass(frozen=True)
class RunSpec:
    """One point of the experiment run matrix, as plain data."""

    app: str
    config: str            # configuration *name*, see get_config()
    threads: int = 1
    scalar_only: bool = False
    #: vectorization strategy for compiled apps ("auto" | "padding" |
    #: "peeling" | "unroll_jam"); hand-written apps alias it to "auto"
    strategy: str = "auto"

    def __str__(self) -> str:
        flavour = ", scalar" if self.scalar_only else ""
        strat = (f", {self.strategy}" if self.strategy != "auto" else "")
        return (f"{self.app} on {self.config} "
                f"({self.threads} thr{flavour}{strat})")


@dataclass
class RunFailure:
    """Structured capture of a run that exhausted its retries."""

    spec: RunSpec
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    #: partial host-side phase profile up to the failure point
    phases: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"{self.spec}: {self.error_type}: {self.message} "
                f"(after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''})")


@dataclass
class RunOutcome:
    """Result of executing one :class:`RunSpec` (success or failure)."""

    spec: RunSpec
    result: Optional[RunResult] = None
    failure: Optional[RunFailure] = None
    attempts: int = 1
    wall_s: float = 0.0
    #: served from the on-disk result cache (no timing replay happened)
    result_cached: bool = False
    #: functional trace served from cache/memo (no regeneration);
    #: ``None`` when the trace was never consulted (result-cache hit)
    #: or the run failed before it was known
    trace_cached: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    def provenance(self) -> str:
        """Where the numbers came from: ``result cache`` / ``trace
        cache`` / ``simulated``."""
        if self.result_cached:
            return "result cache"
        if self.trace_cached:
            return "trace cache"
        return "simulated"


class MissingRunError(KeyError):
    """A driver needed a run the runner did not (successfully) produce."""

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        super().__init__(str(spec))

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return str(self.spec)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

class RunTimeout(Exception):
    """A single run exceeded the per-run wall-clock timeout."""


#: one-time flag for the off-main-thread `_alarm` downgrade warning
_ALARM_THREAD_WARNED = False


@contextmanager
def _alarm(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeout` after ``timeout_s`` wall seconds.

    Uses ``SIGALRM``; the simulator main loop is pure Python so the
    signal is serviced promptly.  No-op when ``timeout_s`` is None or
    the platform lacks ``SIGALRM``.

    Signal handlers can only be installed from the main thread --
    ``signal.signal`` raises ``ValueError`` anywhere else, which is
    exactly where the job service's executor threads run specs.  Off
    the main thread this degrades to a no-op with a one-time warning;
    callers in that position (the service) enforce their own
    wall-clock limits.
    """
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        global _ALARM_THREAD_WARNED
        if not _ALARM_THREAD_WARNED:
            _ALARM_THREAD_WARNED = True
            warnings.warn(
                "per-run SIGALRM timeout is unavailable off the main "
                "thread; relying on the caller's own timeout handling",
                RuntimeWarning, stacklevel=3)
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {timeout_s:g}s wall-clock limit")

    prev = signal.signal(signal.SIGALRM, _on_alarm)
    # Re-arm while over the limit: a raise from a signal handler is
    # *discarded* if it lands in a context where Python suppresses
    # exceptions (a GC callback, a __del__) -- with a one-shot timer
    # the timeout would be silently lost.  The interval gives it
    # another chance until the run is actually interrupted.
    signal.setitimer(signal.ITIMER_REAL, timeout_s, min(timeout_s, 0.05))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, prev)


def _worker_init(cache_dir: Optional[str]) -> None:
    """Pool initializer: point the worker at the shared on-disk cache."""
    timing_run.set_trace_cache_dir(cache_dir)


def _spec_payload(spec: RunSpec, timeout_s: Optional[float],
                  max_cycles: int, verify: bool, engine: str,
                  func_engine: str, prof: PhaseProfiler,
                  ctx: Dict[str, object]) -> Dict[str, object]:
    """The run body: returns a success payload or raises.

    ``ctx`` collects facts known before a potential failure (the cache
    handle and its counter snapshot, the content digests) so
    :func:`_execute_spec` can attach them to error payloads too.
    """
    from ..timing.run import simulate
    from ..workloads import get_workload

    with _alarm(timeout_s):
        cache = timing_run.get_trace_cache()
        if cache is not None:
            ctx["cache"] = cache
            ctx["cache0"] = dict(cache.counters())
        with prof.phase("program_build"):
            prog = get_workload(spec.app).program(
                scalar_only=spec.scalar_only, strategy=spec.strategy)
        cfg = get_config(spec.config)
        ctx["program_digest"] = prog.digest()
        ctx["config_digest"] = cfg.digest()
        key = None
        if cache is not None:
            key = result_key(ctx["program_digest"], ctx["config_digest"],
                             spec.threads, max_cycles, engine=engine)
            with prof.phase("result_cache_load"):
                hit = cache.load_result(key)
            if hit is not None and not verify:
                return {"result": hit, "result_cached": True,
                        "trace_cached": None}
        with span("simulate", engine=engine, func_engine=func_engine):
            result = simulate(prog, cfg, num_threads=spec.threads,
                              max_cycles=max_cycles, profiler=prof,
                              engine=engine, func_engine=func_engine)
        # the profiler only records trace_generation when the functional
        # executor actually ran; absence means cache/memo served it
        trace_cached = "trace_generation" not in prof.phases
        if verify:
            from ..verify.diff import (DifferentialMismatch,
                                       differential_check)
            with prof.phase("differential_check"):
                report = differential_check(
                    prog, cfg, num_threads=spec.threads,
                    max_cycles=max_cycles, engine=engine,
                    func_engine=func_engine)
            if not report.ok:
                raise DifferentialMismatch(report)
        if cache is not None:
            with prof.phase("result_cache_store"):
                cache.store_result(key, result)
        return {"result": result, "result_cached": False,
                "trace_cached": trace_cached}


def _execute_spec(spec: RunSpec, timeout_s: Optional[float],
                  max_cycles: int,
                  verify: bool = False,
                  engine: str = "event",
                  func_engine: str = "reference",
                  telemetry: bool = False) -> Dict[str, object]:
    """Execute one spec; never raises (failures come back as data).

    Runs in a worker process (or inline for ``jobs=1``).  The payload is
    either ``{"result": RunResult, ...}`` or ``{"error": {...}, ...}``;
    both carry the phase profile, wall time, epoch start/end stamps,
    content digests and (cache enabled) this attempt's cache-counter
    deltas, so the parent can merge host-side accounting even for
    failed runs.  With ``telemetry=True`` the attempt also records
    nested host-side spans into a fresh
    :class:`~repro.obs.telemetry.SpanCollector` and ships them back
    under ``payload["spans"]`` with the worker's track label.

    ``verify=True`` additionally replays the run through the
    functional/timing differential checker
    (:func:`repro.verify.differential_check`); a mismatch surfaces as a
    structured ``DifferentialMismatch`` failure.  Verified runs skip
    the result-cache fast path -- a cached number is exactly what an
    unvalidated bug would hide behind.
    """
    crash = os.environ.get(_CRASH_ENV)
    if crash and crash == f"{spec.app}:{spec.config}":
        os._exit(42)   # simulate a hard worker death (segfault/OOM-kill)

    col = prev_col = None
    if telemetry:
        col = SpanCollector()
        prev_col = set_span_collector(col)
    prof = PhaseProfiler()
    ctx: Dict[str, object] = {}
    t_start = time.time()
    t0 = time.perf_counter()
    try:
        try:
            with span("run_attempt", app=spec.app, config=spec.config,
                      threads=spec.threads, engine=engine,
                      func_engine=func_engine):
                payload = _spec_payload(spec, timeout_s, max_cycles,
                                        verify, engine, func_engine,
                                        prof, ctx)
        except Exception as exc:
            payload = {"error": {"type": type(exc).__name__,
                                 "message": str(exc),
                                 "traceback": traceback.format_exc()}}
    finally:
        if col is not None:
            set_span_collector(prev_col)
    payload["phases"] = prof.as_dict()
    payload["wall_s"] = time.perf_counter() - t0
    payload["t_start"] = t_start
    payload["t_end"] = time.time()
    payload["program_digest"] = ctx.get("program_digest")
    payload["config_digest"] = ctx.get("config_digest")
    cache = ctx.get("cache")
    if cache is not None:
        now = cache.counters()
        before = ctx.get("cache0", {})
        payload["cache"] = {k: v - before.get(k, 0)
                            for k, v in now.items()}
    if col is not None:
        payload["spans"] = col.spans
        payload["worker"] = col.worker
    return payload


# --------------------------------------------------------------------------
# Ledger record shapes (shared with repro.service)
# --------------------------------------------------------------------------

def run_record(spec: RunSpec, payload: Dict[str, object], attempts: int,
               engine: str, func_engine: str,
               queue_wait_s: Optional[float] = None,
               tenant: Optional[str] = None,
               job_id: Optional[str] = None) -> Dict[str, object]:
    """One schema-:data:`LEDGER_SCHEMA` ledger record for an observed
    run-attempt payload.  The :class:`ExperimentRunner` and the job
    service (:mod:`repro.service`) both build their records here so the
    schema lives in exactly one place; ``tenant``/``job_id`` stay None
    for CLI/runner sweeps."""
    err = payload.get("error")
    result = payload.get("result")
    return {
        "schema": LEDGER_SCHEMA,
        "app": spec.app, "config": spec.config,
        "threads": spec.threads, "scalar_only": spec.scalar_only,
        "engine": engine,
        "func_engine": func_engine,
        "attempt": attempts,
        "worker": payload.get("worker"),
        "tenant": tenant,
        "job_id": job_id,
        "outcome": "ok" if err is None else "error",
        "error_type": str(err["type"]) if err else None,
        "cycles": int(result.cycles) if result is not None else None,
        "wall_s": payload.get("wall_s"),
        "queue_wait_s": queue_wait_s,
        "t_start": payload.get("t_start"),
        "t_end": payload.get("t_end"),
        "result_cached": bool(payload.get("result_cached")),
        "trace_cached": payload.get("trace_cached"),
        "program_digest": payload.get("program_digest"),
        "config_digest": payload.get("config_digest"),
        "phases": payload.get("phases") or {},
        "cache": payload.get("cache"),
    }


def crash_record(spec: RunSpec, attempts: int, engine: str,
                 func_engine: str,
                 t_submit: Optional[float] = None,
                 tenant: Optional[str] = None,
                 job_id: Optional[str] = None) -> Dict[str, object]:
    """Ledger record for a run whose worker process died outright."""
    return {
        "schema": LEDGER_SCHEMA,
        "app": spec.app, "config": spec.config,
        "threads": spec.threads, "scalar_only": spec.scalar_only,
        "engine": engine,
        "func_engine": func_engine,
        "attempt": attempts,
        "worker": None,
        "tenant": tenant,
        "job_id": job_id,
        "outcome": "crash",
        "error_type": "WorkerCrash",
        "cycles": None,
        "wall_s": None,
        "queue_wait_s": None,
        "t_start": t_submit,
        "t_end": time.time(),
        "result_cached": False,
        "trace_cached": None,
        "program_digest": None,
        "config_digest": None,
        "phases": {},
        "cache": None,
    }


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class ExperimentRunner:
    """Execute a run matrix, optionally in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs everything in-process (no pool),
        which is the bit-for-bit reference path.
    cache_dir:
        Root of the shared on-disk trace/result cache.  With ``jobs > 1``
        and no ``cache_dir``, an ephemeral directory is used for the
        duration of :meth:`run` so workers still share traces.
    timeout:
        Per-run wall-clock limit in seconds (None = unlimited).
    retries:
        Extra attempts after the first failure of a spec.
    telemetry:
        A :class:`~repro.obs.telemetry.Telemetry` sink (or a directory
        path one is created at).  Enables the per-attempt run ledger,
        worker span collection and the fleet timeline export.
    progress:
        Draw a live ``completed/failed/cached/in-flight/ETA`` line on
        stderr as outcomes arrive.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None, retries: int = 2,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 verify: bool = False, engine: str = "event",
                 func_engine: str = "reference",
                 telemetry: Union[Telemetry, str, None] = None,
                 progress: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and not timeout > 0:
            # `if not timeout_s` in _alarm() treats 0 as "no alarm", so
            # a `--timeout 0` typo would silently disable the limit.
            raise ValueError(
                "timeout must be > 0 seconds; use None for no limit")
        from ..functional.fast import validate_func_engine
        from ..timing.machine import validate_engine
        validate_engine(engine)
        validate_func_engine(func_engine)
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.timeout = timeout
        self.retries = retries
        self.max_cycles = max_cycles
        #: timing engine every run replays on ("event" or "columnar")
        self.engine = engine
        #: functional trace-generation engine ("reference" or "fast")
        self.func_engine = func_engine
        #: differentially validate every run (functional vs timing); a
        #: mismatch is a structured, non-retryable failure
        self.verify = verify
        if telemetry is not None and not isinstance(telemetry, Telemetry):
            telemetry = Telemetry(telemetry)
        #: fleet-telemetry sink: run ledger + spans + timeline
        self.telemetry: Optional[Telemetry] = telemetry
        self.progress = bool(progress)
        #: merged host-side phase profile across all workers + parent
        self.profiler = PhaseProfiler()
        self.outcomes: Dict[RunSpec, RunOutcome] = {}
        #: sweep-wide TraceCache hit/miss/store counters, accumulated
        #: from every attempt's worker-side delta (workers' own counters
        #: die with the worker; these do not)
        self.cache_counters: Dict[str, int] = {}
        self._submit_t: Dict[RunSpec, float] = {}
        self._total = 0
        self._resolved = 0
        self._run_t0 = 0.0

    # -- public API ----------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> Dict[RunSpec, RunOutcome]:
        """Execute every distinct spec; returns spec -> outcome."""
        ordered: List[RunSpec] = []
        seen = set()
        for s in specs:
            if s not in seen:
                seen.add(s)
                ordered.append(s)

        self._total = len(ordered)
        self._resolved = 0
        self._run_t0 = time.time()

        ephemeral = None
        cache_dir = self.cache_dir
        if cache_dir is None and self.jobs > 1:
            ephemeral = tempfile.mkdtemp(prefix="vlt-cache-")
            cache_dir = ephemeral
        prev_cache = timing_run.get_trace_cache()
        timing_run.set_trace_cache_dir(cache_dir)
        prev_col = None
        if self.telemetry is not None:
            prev_col = set_span_collector(SpanCollector(worker="parent"))
        try:
            with span("sweep", jobs=self.jobs, specs=len(ordered),
                      engine=self.engine, func_engine=self.func_engine):
                if self.jobs == 1:
                    self._run_serial(ordered)
                else:
                    self._run_parallel(ordered, cache_dir)
        finally:
            if self.telemetry is not None:
                col = set_span_collector(prev_col)
                if col is not None:
                    self.telemetry.add_spans("parent", col.spans)
                self.telemetry.write_timeline()
            if self.progress and ordered:
                sys.stderr.write("\n")
                sys.stderr.flush()
            if ephemeral is not None:
                # drop the throwaway cache and restore the previous one
                import shutil
                shutil.rmtree(ephemeral, ignore_errors=True)
                timing_run.set_trace_cache_dir(
                    str(prev_cache.root) if prev_cache is not None else None)
        return dict(self.outcomes)

    @property
    def results(self) -> Dict[RunSpec, RunResult]:
        """Successful results only -- the mapping drivers consume."""
        return {s: o.result for s, o in self.outcomes.items() if o.ok}

    @property
    def failures(self) -> List[RunFailure]:
        return [o.failure for o in self.outcomes.values()
                if o.failure is not None]

    # -- internals -----------------------------------------------------------

    def _record(self, spec: RunSpec, payload: Dict[str, object],
                attempts: int) -> bool:
        """Fold a worker payload into outcomes; True on success."""
        self.profiler.merge_dict(payload.get("phases", {}))
        wall = float(payload.get("wall_s", 0.0))
        err = payload.get("error")
        if err is None:
            self.outcomes[spec] = RunOutcome(
                spec=spec, result=payload["result"], attempts=attempts,
                wall_s=wall,
                result_cached=bool(payload.get("result_cached")),
                trace_cached=payload.get("trace_cached"))
            return True
        self.outcomes[spec] = RunOutcome(
            spec=spec, attempts=attempts, wall_s=wall,
            failure=RunFailure(
                spec=spec, error_type=str(err["type"]),
                message=str(err["message"]),
                traceback=str(err.get("traceback", "")),
                attempts=attempts,
                phases=dict(payload.get("phases", {}))))
        return False

    def _record_crash(self, spec: RunSpec, attempts: int) -> None:
        self.outcomes[spec] = RunOutcome(
            spec=spec, attempts=attempts,
            failure=RunFailure(
                spec=spec, error_type="WorkerCrash",
                message="worker process died (killed or crashed) while "
                        "executing this run", attempts=attempts))
        if self.telemetry is not None:
            self.telemetry.record(self._crash_record(spec, attempts))

    # -- telemetry plumbing --------------------------------------------------

    def _note_attempt(self, spec: RunSpec, payload: Dict[str, object],
                      attempts: int) -> None:
        """Fold one attempt's telemetry: cache deltas, ledger, spans.

        Called once per observed payload -- every attempt, not just the
        final one -- so retries are first-class ledger records.
        """
        for k, v in (payload.get("cache") or {}).items():
            self.cache_counters[k] = self.cache_counters.get(k, 0) + int(v)
        if self.telemetry is None:
            return
        self.telemetry.record(self._run_record(spec, payload, attempts))
        spans = payload.get("spans")
        if spans:
            self.telemetry.add_spans(
                str(payload.get("worker", "?")), spans)

    def _run_record(self, spec: RunSpec, payload: Dict[str, object],
                    attempts: int) -> Dict[str, object]:
        t_submit = self._submit_t.get(spec)
        t_start = payload.get("t_start")
        queue_wait = None
        if t_submit is not None and t_start is not None:
            queue_wait = max(0.0, float(t_start) - t_submit)
        return run_record(spec, payload, attempts, self.engine,
                          self.func_engine, queue_wait_s=queue_wait)

    def _crash_record(self, spec: RunSpec,
                      attempts: int) -> Dict[str, object]:
        return crash_record(spec, attempts, self.engine, self.func_engine,
                            t_submit=self._submit_t.get(spec))

    def _progress_tick(self, final: bool) -> None:
        if final:
            self._resolved += 1
        if not self.progress:
            return
        failed = sum(1 for o in self.outcomes.values()
                     if o.failure is not None)
        cached = sum(1 for o in self.outcomes.values() if o.result_cached)
        in_flight = self._total - self._resolved
        msg = (f"[runner] {self._resolved}/{self._total} done "
               f"({failed} failed, {cached} cached, "
               f"{in_flight} in flight")
        if 0 < self._resolved < self._total:
            elapsed = time.time() - self._run_t0
            eta = elapsed / self._resolved * in_flight
            msg += f", ETA {eta:.0f}s"
        msg += ")"
        sys.stderr.write("\r" + msg.ljust(72))
        sys.stderr.flush()

    # -- execution strategies ------------------------------------------------

    @staticmethod
    def _retryable(payload: Dict[str, object]) -> bool:
        """Differential mismatches are deterministic; retrying burns
        attempts without new information."""
        err = payload.get("error")
        return not (isinstance(err, dict)
                    and err.get("type") == "DifferentialMismatch")

    def _run_serial(self, specs: Sequence[RunSpec]) -> None:
        for spec in specs:
            for attempt in range(1, self.retries + 2):
                self._submit_t[spec] = time.time()
                payload = _execute_spec(spec, self.timeout, self.max_cycles,
                                        self.verify, self.engine,
                                        self.func_engine,
                                        self.telemetry is not None)
                self._note_attempt(spec, payload, attempt)
                done = self._record(spec, payload, attempt) \
                    or not self._retryable(payload)
                self._progress_tick(done or attempt == self.retries + 1)
                if done:
                    break

    def _run_parallel(self, specs: Sequence[RunSpec],
                      cache_dir: Optional[str]) -> None:
        pending: Dict[RunSpec, int] = {s: 0 for s in specs}  # attempts used
        while pending:
            crashed = self._pool_round(list(pending), pending, cache_dir)
            if crashed:
                # The pool broke: some spec kills its worker.  We cannot
                # tell which future was the culprit, so quarantine --
                # every remaining spec runs in its own disposable pool.
                for spec in list(pending):
                    attempts = pending.pop(spec)
                    self._run_isolated(spec, attempts, cache_dir)
                return
            # specs that failed with a plain exception and still have
            # retries left stay in `pending` for another round

    def _pool_round(self, specs: List[RunSpec],
                    pending: Dict[RunSpec, int],
                    cache_dir: Optional[str]) -> bool:
        """One pool pass over ``specs``; returns True if the pool broke.

        Successes and retry-exhausted failures leave ``pending``;
        retryable failures stay with their attempt count bumped.
        """
        futs: Dict[object, RunSpec] = {}
        observed: Set[object] = set()   # futures already folded in
        telemetry = self.telemetry is not None
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(specs)),
                    initializer=_worker_init,
                    initargs=(cache_dir,)) as pool:
                for s in specs:
                    self._submit_t[s] = time.time()
                    futs[pool.submit(_execute_spec, s, self.timeout,
                                     self.max_cycles, self.verify,
                                     self.engine, self.func_engine,
                                     telemetry)] = s
                not_done = set(futs)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for fut in done:
                        spec = futs[fut]
                        exc = fut.exception()
                        if isinstance(exc, BrokenProcessPool):
                            raise exc
                        attempts = pending[spec] + 1
                        if exc is not None:   # pragma: no cover - defensive
                            payload = {"error": {
                                "type": type(exc).__name__,
                                "message": str(exc), "traceback": ""}}
                        else:
                            payload = fut.result()
                        observed.add(fut)
                        self._note_attempt(spec, payload, attempts)
                        ok = (payload.get("error") is None)
                        if ok or attempts > self.retries \
                                or not self._retryable(payload):
                            self._record(spec, payload, attempts)
                            del pending[spec]
                            self._progress_tick(True)
                        else:
                            pending[spec] = attempts
                            self._progress_tick(False)
            return False
        except BrokenProcessPool:
            # Sweep up futures that genuinely completed before the break
            # so their results are not lost to the quarantine pass.
            for fut, spec in futs.items():
                if spec in pending and fut.done() \
                        and fut.exception() is None:
                    payload = fut.result()
                    if fut not in observed:
                        self._note_attempt(spec, payload,
                                           pending[spec] + 1)
                    if self._record(spec, payload, pending[spec] + 1):
                        del pending[spec]
                        self._progress_tick(True)
            return True

    def _run_isolated(self, spec: RunSpec, attempts_used: int,
                      cache_dir: Optional[str]) -> None:
        """Run one spec in disposable single-worker pools until it
        succeeds, exhausts its retries, or keeps crashing."""
        attempts = attempts_used
        while attempts <= self.retries:
            attempts += 1
            self._submit_t[spec] = time.time()
            try:
                with ProcessPoolExecutor(
                        max_workers=1, initializer=_worker_init,
                        initargs=(cache_dir,)) as pool:
                    payload = pool.submit(
                        _execute_spec, spec, self.timeout,
                        self.max_cycles, self.verify, self.engine,
                        self.func_engine,
                        self.telemetry is not None).result()
            except BrokenProcessPool:
                self._record_crash(spec, attempts)
                self._progress_tick(attempts > self.retries)
                continue
            self._note_attempt(spec, payload, attempts)
            done = self._record(spec, payload, attempts) \
                or not self._retryable(payload)
            self._progress_tick(done or attempts > self.retries)
            if done:
                return
        # the last _record/_record_crash above left the final failure

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """Per-run summary of the sweep: cycles, wall time, attempts and
        cache provenance per spec, failures last."""
        ok = sum(1 for o in self.outcomes.values() if o.ok)
        cached = sum(1 for o in self.outcomes.values() if o.result_cached)
        lines = [f"runner: {ok}/{len(self.outcomes)} runs succeeded "
                 f"({cached} served from result cache, jobs={self.jobs})"]
        for spec, o in self.outcomes.items():
            if o.ok:
                attempts = (f"{o.attempts} attempt"
                            f"{'s' if o.attempts != 1 else ''}")
                lines.append(
                    f"  {spec}: {o.result.cycles} cycles in "
                    f"{o.wall_s:.2f}s ({attempts}, {o.provenance()})")
        for f in self.failures:
            lines.append(f"  FAILED {f.summary()}")
        return "\n".join(lines)
