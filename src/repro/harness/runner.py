"""Fault-tolerant parallel experiment runner.

The experiment drivers (:mod:`repro.harness.experiments`) declare their
run matrix as data -- a list of :class:`RunSpec` -- and this module fans
it out over a :class:`~concurrent.futures.ProcessPoolExecutor`, backed
by the content-addressed trace/result cache
(:mod:`repro.functional.trace_cache`).  Everything a worker needs to
reproduce a run travels as plain picklable data: the application *name*,
the configuration *name* (resolved via
:func:`repro.timing.config.get_config`) and the thread count.  Workers
rebuild the program locally; the program's *content digest* -- not its
object identity -- keys the shared cache, so every process (and every
later invocation) converges on the same trace files.

Fault tolerance: each run gets a wall-clock timeout and a bounded number
of retries, and any exception is captured as a structured
:class:`RunFailure` rather than propagated -- one diverging
configuration degrades the report instead of killing the whole sweep.
A worker process dying outright (the pool breaks) triggers a fallback
pass that re-runs each remaining spec in its own single-worker pool, so
one poisoned spec cannot take healthy ones down with it.

Set ``VLT_RUNNER_TEST_CRASH=<app>:<config>`` to make the worker for that
spec die with ``os._exit`` -- test hook for the crash-recovery path.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..functional.trace_cache import result_key
from ..obs.hostprof import PhaseProfiler
from ..timing import run as timing_run
from ..timing.config import get_config
from ..timing.stats import RunResult

#: test hook: crash the worker executing ``<app>:<config>``
_CRASH_ENV = "VLT_RUNNER_TEST_CRASH"

DEFAULT_MAX_CYCLES = 50_000_000


@dataclass(frozen=True)
class RunSpec:
    """One point of the experiment run matrix, as plain data."""

    app: str
    config: str            # configuration *name*, see get_config()
    threads: int = 1
    scalar_only: bool = False

    def __str__(self) -> str:
        flavour = ", scalar" if self.scalar_only else ""
        return f"{self.app} on {self.config} ({self.threads} thr{flavour})"


@dataclass
class RunFailure:
    """Structured capture of a run that exhausted its retries."""

    spec: RunSpec
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    #: partial host-side phase profile up to the failure point
    phases: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"{self.spec}: {self.error_type}: {self.message} "
                f"(after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''})")


@dataclass
class RunOutcome:
    """Result of executing one :class:`RunSpec` (success or failure)."""

    spec: RunSpec
    result: Optional[RunResult] = None
    failure: Optional[RunFailure] = None
    attempts: int = 1
    wall_s: float = 0.0
    #: served from the on-disk result cache (no timing replay happened)
    result_cached: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


class MissingRunError(KeyError):
    """A driver needed a run the runner did not (successfully) produce."""

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        super().__init__(str(spec))

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return str(self.spec)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

class RunTimeout(Exception):
    """A single run exceeded the per-run wall-clock timeout."""


@contextmanager
def _alarm(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeout` after ``timeout_s`` wall seconds.

    Uses ``SIGALRM``; the simulator main loop is pure Python so the
    signal is serviced promptly.  No-op when ``timeout_s`` is None or
    the platform lacks ``SIGALRM``.
    """
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {timeout_s:g}s wall-clock limit")

    prev = signal.signal(signal.SIGALRM, _on_alarm)
    # Re-arm while over the limit: a raise from a signal handler is
    # *discarded* if it lands in a context where Python suppresses
    # exceptions (a GC callback, a __del__) -- with a one-shot timer
    # the timeout would be silently lost.  The interval gives it
    # another chance until the run is actually interrupted.
    signal.setitimer(signal.ITIMER_REAL, timeout_s, min(timeout_s, 0.05))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, prev)


def _worker_init(cache_dir: Optional[str]) -> None:
    """Pool initializer: point the worker at the shared on-disk cache."""
    timing_run.set_trace_cache_dir(cache_dir)


def _execute_spec(spec: RunSpec, timeout_s: Optional[float],
                  max_cycles: int,
                  verify: bool = False,
                  engine: str = "event") -> Dict[str, object]:
    """Execute one spec; never raises (failures come back as data).

    Runs in a worker process (or inline for ``jobs=1``).  The payload is
    either ``{"result": RunResult, ...}`` or ``{"error": {...}, ...}``;
    both carry the phase profile and wall time so the parent can merge
    host-side accounting even for failed runs.

    ``verify=True`` additionally replays the run through the
    functional/timing differential checker
    (:func:`repro.verify.differential_check`); a mismatch surfaces as a
    structured ``DifferentialMismatch`` failure.  Verified runs skip
    the result-cache fast path -- a cached number is exactly what an
    unvalidated bug would hide behind.
    """
    from ..timing.run import simulate
    from ..workloads import get_workload

    crash = os.environ.get(_CRASH_ENV)
    if crash and crash == f"{spec.app}:{spec.config}":
        os._exit(42)   # simulate a hard worker death (segfault/OOM-kill)

    prof = PhaseProfiler()
    t0 = time.perf_counter()
    try:
        with _alarm(timeout_s):
            with prof.phase("program_build"):
                prog = get_workload(spec.app).program(
                    scalar_only=spec.scalar_only)
            cfg = get_config(spec.config)
            cache = timing_run.get_trace_cache()
            key = None
            if cache is not None:
                key = result_key(prog.digest(), cfg.digest(),
                                 spec.threads, max_cycles, engine=engine)
                with prof.phase("result_cache_load"):
                    hit = cache.load_result(key)
                if hit is not None and not verify:
                    return {"result": hit, "result_cached": True,
                            "phases": prof.as_dict(),
                            "wall_s": time.perf_counter() - t0}
            result = simulate(prog, cfg, num_threads=spec.threads,
                              max_cycles=max_cycles, profiler=prof,
                              engine=engine)
            if verify:
                from ..verify.diff import (DifferentialMismatch,
                                           differential_check)
                with prof.phase("differential_check"):
                    report = differential_check(
                        prog, cfg, num_threads=spec.threads,
                        max_cycles=max_cycles, engine=engine)
                if not report.ok:
                    raise DifferentialMismatch(report)
            if cache is not None:
                with prof.phase("result_cache_store"):
                    cache.store_result(key, result)
        return {"result": result, "result_cached": False,
                "phases": prof.as_dict(),
                "wall_s": time.perf_counter() - t0}
    except Exception as exc:
        return {"error": {"type": type(exc).__name__, "message": str(exc),
                          "traceback": traceback.format_exc()},
                "phases": prof.as_dict(),
                "wall_s": time.perf_counter() - t0}


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class ExperimentRunner:
    """Execute a run matrix, optionally in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs everything in-process (no pool),
        which is the bit-for-bit reference path.
    cache_dir:
        Root of the shared on-disk trace/result cache.  With ``jobs > 1``
        and no ``cache_dir``, an ephemeral directory is used for the
        duration of :meth:`run` so workers still share traces.
    timeout:
        Per-run wall-clock limit in seconds (None = unlimited).
    retries:
        Extra attempts after the first failure of a spec.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None, retries: int = 2,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 verify: bool = False, engine: str = "event") -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and not timeout > 0:
            # `if not timeout_s` in _alarm() treats 0 as "no alarm", so
            # a `--timeout 0` typo would silently disable the limit.
            raise ValueError(
                "timeout must be > 0 seconds; use None for no limit")
        from ..timing.machine import validate_engine
        validate_engine(engine)
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.timeout = timeout
        self.retries = retries
        self.max_cycles = max_cycles
        #: timing engine every run replays on ("event" or "columnar")
        self.engine = engine
        #: differentially validate every run (functional vs timing); a
        #: mismatch is a structured, non-retryable failure
        self.verify = verify
        #: merged host-side phase profile across all workers + parent
        self.profiler = PhaseProfiler()
        self.outcomes: Dict[RunSpec, RunOutcome] = {}

    # -- public API ----------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> Dict[RunSpec, RunOutcome]:
        """Execute every distinct spec; returns spec -> outcome."""
        ordered: List[RunSpec] = []
        seen = set()
        for s in specs:
            if s not in seen:
                seen.add(s)
                ordered.append(s)

        ephemeral = None
        cache_dir = self.cache_dir
        if cache_dir is None and self.jobs > 1:
            ephemeral = tempfile.mkdtemp(prefix="vlt-cache-")
            cache_dir = ephemeral
        prev_cache = timing_run.get_trace_cache()
        timing_run.set_trace_cache_dir(cache_dir)
        try:
            if self.jobs == 1:
                self._run_serial(ordered)
            else:
                self._run_parallel(ordered, cache_dir)
        finally:
            if ephemeral is not None:
                # drop the throwaway cache and restore the previous one
                import shutil
                shutil.rmtree(ephemeral, ignore_errors=True)
                timing_run.set_trace_cache_dir(
                    str(prev_cache.root) if prev_cache is not None else None)
        return dict(self.outcomes)

    @property
    def results(self) -> Dict[RunSpec, RunResult]:
        """Successful results only -- the mapping drivers consume."""
        return {s: o.result for s, o in self.outcomes.items() if o.ok}

    @property
    def failures(self) -> List[RunFailure]:
        return [o.failure for o in self.outcomes.values()
                if o.failure is not None]

    # -- internals -----------------------------------------------------------

    def _record(self, spec: RunSpec, payload: Dict[str, object],
                attempts: int) -> bool:
        """Fold a worker payload into outcomes; True on success."""
        self.profiler.merge_dict(payload.get("phases", {}))
        wall = float(payload.get("wall_s", 0.0))
        err = payload.get("error")
        if err is None:
            self.outcomes[spec] = RunOutcome(
                spec=spec, result=payload["result"], attempts=attempts,
                wall_s=wall,
                result_cached=bool(payload.get("result_cached")))
            return True
        self.outcomes[spec] = RunOutcome(
            spec=spec, attempts=attempts, wall_s=wall,
            failure=RunFailure(
                spec=spec, error_type=str(err["type"]),
                message=str(err["message"]),
                traceback=str(err.get("traceback", "")),
                attempts=attempts,
                phases=dict(payload.get("phases", {}))))
        return False

    def _record_crash(self, spec: RunSpec, attempts: int) -> None:
        self.outcomes[spec] = RunOutcome(
            spec=spec, attempts=attempts,
            failure=RunFailure(
                spec=spec, error_type="WorkerCrash",
                message="worker process died (killed or crashed) while "
                        "executing this run", attempts=attempts))

    @staticmethod
    def _retryable(payload: Dict[str, object]) -> bool:
        """Differential mismatches are deterministic; retrying burns
        attempts without new information."""
        err = payload.get("error")
        return not (isinstance(err, dict)
                    and err.get("type") == "DifferentialMismatch")

    def _run_serial(self, specs: Sequence[RunSpec]) -> None:
        for spec in specs:
            for attempt in range(1, self.retries + 2):
                payload = _execute_spec(spec, self.timeout, self.max_cycles,
                                        self.verify, self.engine)
                if self._record(spec, payload, attempt) \
                        or not self._retryable(payload):
                    break

    def _run_parallel(self, specs: Sequence[RunSpec],
                      cache_dir: Optional[str]) -> None:
        pending: Dict[RunSpec, int] = {s: 0 for s in specs}  # attempts used
        while pending:
            crashed = self._pool_round(list(pending), pending, cache_dir)
            if crashed:
                # The pool broke: some spec kills its worker.  We cannot
                # tell which future was the culprit, so quarantine --
                # every remaining spec runs in its own disposable pool.
                for spec in list(pending):
                    attempts = pending.pop(spec)
                    self._run_isolated(spec, attempts, cache_dir)
                return
            # specs that failed with a plain exception and still have
            # retries left stay in `pending` for another round

    def _pool_round(self, specs: List[RunSpec],
                    pending: Dict[RunSpec, int],
                    cache_dir: Optional[str]) -> bool:
        """One pool pass over ``specs``; returns True if the pool broke.

        Successes and retry-exhausted failures leave ``pending``;
        retryable failures stay with their attempt count bumped.
        """
        futs: Dict[object, RunSpec] = {}
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(specs)),
                    initializer=_worker_init,
                    initargs=(cache_dir,)) as pool:
                futs = {pool.submit(_execute_spec, s, self.timeout,
                                    self.max_cycles, self.verify,
                                    self.engine): s
                        for s in specs}
                not_done = set(futs)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for fut in done:
                        spec = futs[fut]
                        exc = fut.exception()
                        if isinstance(exc, BrokenProcessPool):
                            raise exc
                        attempts = pending[spec] + 1
                        if exc is not None:   # pragma: no cover - defensive
                            payload = {"error": {
                                "type": type(exc).__name__,
                                "message": str(exc), "traceback": ""}}
                        else:
                            payload = fut.result()
                        ok = (payload.get("error") is None)
                        if ok or attempts > self.retries \
                                or not self._retryable(payload):
                            self._record(spec, payload, attempts)
                            del pending[spec]
                        else:
                            pending[spec] = attempts
            return False
        except BrokenProcessPool:
            # Sweep up futures that genuinely completed before the break
            # so their results are not lost to the quarantine pass.
            for fut, spec in futs.items():
                if spec in pending and fut.done() and fut.exception() is None:
                    if self._record(spec, fut.result(), pending[spec] + 1):
                        del pending[spec]
            return True

    def _run_isolated(self, spec: RunSpec, attempts_used: int,
                      cache_dir: Optional[str]) -> None:
        """Run one spec in disposable single-worker pools until it
        succeeds, exhausts its retries, or keeps crashing."""
        attempts = attempts_used
        while attempts <= self.retries:
            attempts += 1
            try:
                with ProcessPoolExecutor(
                        max_workers=1, initializer=_worker_init,
                        initargs=(cache_dir,)) as pool:
                    payload = pool.submit(_execute_spec, spec, self.timeout,
                                          self.max_cycles, self.verify,
                                          self.engine).result()
            except BrokenProcessPool:
                self._record_crash(spec, attempts)
                continue
            if self._record(spec, payload, attempts) \
                    or not self._retryable(payload):
                return
        # the last _record/_record_crash above left the final failure

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """One-paragraph summary of the sweep."""
        ok = sum(1 for o in self.outcomes.values() if o.ok)
        cached = sum(1 for o in self.outcomes.values() if o.result_cached)
        lines = [f"runner: {ok}/{len(self.outcomes)} runs succeeded "
                 f"({cached} served from result cache, jobs={self.jobs})"]
        for f in self.failures:
            lines.append(f"  FAILED {f.summary()}")
        return "\n".join(lines)
