"""Experiment harness: drivers, rendering, CLI, EXPERIMENTS.md generator."""

from . import experiments, model, report
from .docgen import generate_experiments_md, write_experiments_md
from .experiments import (ALL_APPS, LONG_VECTOR_APPS, SCALAR_APPS,
                          VLT_VECTOR_APPS, area_tables, fig1_lane_scaling,
                          fig3_vlt_speedup, fig4_utilization,
                          fig5_design_space, fig6_scalar_threads,
                          table3_parameters, table4_characteristics)

__all__ = [
    "experiments", "model", "report", "generate_experiments_md",
    "write_experiments_md", "ALL_APPS", "LONG_VECTOR_APPS", "SCALAR_APPS",
    "VLT_VECTOR_APPS", "area_tables", "fig1_lane_scaling",
    "fig3_vlt_speedup", "fig4_utilization", "fig5_design_space",
    "fig6_scalar_threads", "table3_parameters", "table4_characteristics",
]
