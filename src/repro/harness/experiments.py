"""Experiment drivers: one function per paper table/figure.

Every driver returns a plain-data result object that the report module
renders; nothing here prints.  Results carry the paper's published
values alongside the measured ones so EXPERIMENTS.md can show both.

Run-matrix conventions (Sections 6-7 of the paper):

* Figure 1: base machine, single thread, lanes swept over 1/2/4/8.
* Figure 3: V2-CMP with 2 threads and V4-CMP with 4 threads (the
  maximum-performance replicated configurations), speedup over BASE.
* Figure 4: datapath-utilization breakdown for BASE / VLT-2 / VLT-4.
* Figure 5: the SU design space -- V2-SMT, V2-CMP (2 threads);
  V4-SMT, V4-CMT, V4-CMP, V4-CMP-h (4 threads).
* Figure 6: 8 scalar threads on the lanes (VLT-scalar) vs. 4 threads on
  the CMT machine (two 4-way 2-way-SMT SUs, no vector unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..area.model import table1_rows, table2_rows
from ..timing.config import (BASE, CMT, V2_CMP, V2_SMT, V4_CMP, V4_CMP_H,
                             V4_CMT, V4_SMT, VLT_SCALAR, MachineConfig,
                             base_config)
from ..timing.run import simulate
from ..timing.stats import DatapathUtilization, RunResult
from ..workloads import AppCharacteristics, characterize, get_workload
from .runner import MissingRunError, RunSpec

#: precomputed results keyed by run spec (what the parallel runner hands
#: the drivers); ``None`` means "simulate inline, serially".
RunMap = Optional[Mapping[RunSpec, RunResult]]

#: application groups (Table 4 structure)
LONG_VECTOR_APPS = ("mxm", "sage")
VLT_VECTOR_APPS = ("mpenc", "trfd", "multprec", "bt")
SCALAR_APPS = ("radix", "ocean", "barnes")
ALL_APPS = LONG_VECTOR_APPS + VLT_VECTOR_APPS + SCALAR_APPS

#: paper Figure 1 speedups at 8 lanes, eyeballed from the plot, used
#: only for shape context in the report (not assertions).
PAPER_FIG1_8LANE = {
    "mxm": 6.5, "sage": 7.0, "mpenc": 2.2, "trfd": 1.3, "multprec": 2.2,
    "bt": 1.2, "radix": 1.0, "ocean": 1.0, "barnes": 1.0,
}

#: paper Figure 3 speedup bands
PAPER_FIG3_BANDS = {2: (1.14, 2.15), 4: (1.40, 2.3)}

#: paper Figure 6 speedups of VLT scalar threads over CMT
PAPER_FIG6 = {"radix": 2.0, "ocean": 2.2, "barnes": 1.1}


def _run(app: str, cfg: MachineConfig, threads: int,
         scalar_only: bool = False, runs: RunMap = None) -> RunResult:
    """One timing run -- inline, or looked up in a precomputed run map.

    When ``runs`` is given (the parallel-runner path), a missing or
    failed spec raises :class:`MissingRunError` so the report section
    that needed it can degrade instead of the whole sweep dying.
    """
    if runs is not None:
        spec = RunSpec(app=app, config=cfg.name, threads=threads,
                       scalar_only=scalar_only)
        result = runs.get(spec)
        if result is None:
            raise MissingRunError(spec)
        return result
    w = get_workload(app)
    prog = w.program(scalar_only=scalar_only)
    return simulate(prog, cfg, num_threads=threads)


# --------------------------------------------------------------------------
# Run matrices: each figure's runs as data (for the parallel runner)
# --------------------------------------------------------------------------

def fig1_matrix(apps: Sequence[str] = ALL_APPS,
                lanes: Sequence[int] = (1, 2, 4, 8)) -> List[RunSpec]:
    return [RunSpec(app, base_config(lanes=n).name, 1)
            for app in apps for n in lanes]


def fig3_matrix(apps: Sequence[str] = VLT_VECTOR_APPS) -> List[RunSpec]:
    return [spec for app in apps for spec in (
        RunSpec(app, BASE.name, 1),
        RunSpec(app, V2_CMP.name, 2),
        RunSpec(app, V4_CMP.name, 4))]


def fig4_matrix(apps: Sequence[str] = VLT_VECTOR_APPS) -> List[RunSpec]:
    return fig3_matrix(apps)


def fig5_matrix(apps: Sequence[str] = VLT_VECTOR_APPS) -> List[RunSpec]:
    return [spec for app in apps for spec in (
        [RunSpec(app, BASE.name, 1)]
        + [RunSpec(app, cfg.name, threads) for cfg, threads in FIG5_POINTS])]


def fig6_matrix(apps: Sequence[str] = SCALAR_APPS) -> List[RunSpec]:
    return [spec for app in apps for spec in (
        RunSpec(app, CMT.name, 4, scalar_only=True),
        RunSpec(app, VLT_SCALAR.name, 8, scalar_only=True))]


def matrix_for(names: Sequence[str],
               apps: Optional[Sequence[str]] = None,
               lanes: Optional[Sequence[int]] = None) -> List[RunSpec]:
    """Deduplicated union of the run matrices for ``names``.

    ``names`` may include non-simulation entries (tables); they simply
    contribute no specs.  ``apps``/``lanes`` override each figure's
    sweep exactly the way the driver arguments do -- verbatim, NOT
    intersected with the figure's default set, so the matrix always
    covers precisely the runs the drivers will look up.
    """
    def pick(defaults: Sequence[str]) -> Sequence[str]:
        return apps if apps else defaults

    specs: List[RunSpec] = []
    for name in names:
        if name == "fig1":
            specs += fig1_matrix(pick(ALL_APPS), lanes or (1, 2, 4, 8))
        elif name == "fig3":
            specs += fig3_matrix(pick(VLT_VECTOR_APPS))
        elif name == "fig4":
            specs += fig4_matrix(pick(VLT_VECTOR_APPS))
        elif name == "fig5":
            specs += fig5_matrix(pick(VLT_VECTOR_APPS))
        elif name == "fig6":
            specs += fig6_matrix(pick(SCALAR_APPS))
    out: List[RunSpec] = []
    seen = set()
    for s in specs:
        if s not in seen:
            seen.add(s)
            out.append(s)
    return out


# --------------------------------------------------------------------------
# Figure 1 -- lane scaling
# --------------------------------------------------------------------------

@dataclass
class Fig1Result:
    lanes: Tuple[int, ...]
    #: app -> cycles per lane count
    cycles: Dict[str, List[int]]

    def speedups(self, app: str) -> List[float]:
        c = self.cycles[app]
        return [c[0] / x for x in c]


def fig1_lane_scaling(apps: Sequence[str] = ALL_APPS,
                      lanes: Sequence[int] = (1, 2, 4, 8),
                      runs: RunMap = None) -> Fig1Result:
    """Single-thread speedup vs. number of vector lanes (paper Fig. 1)."""
    cycles: Dict[str, List[int]] = {}
    for app in apps:
        row: List[int] = []
        for n in lanes:
            row.append(_run(app, base_config(lanes=n), 1, runs=runs).cycles)
        cycles[app] = row
    return Fig1Result(lanes=tuple(lanes), cycles=cycles)


# --------------------------------------------------------------------------
# Tables 1-3 -- area model and machine parameters
# --------------------------------------------------------------------------

@dataclass
class AreaResult:
    table1: List[Tuple[str, float]]
    #: (config, recomputed %, paper %)
    table2: List[Tuple[str, float, float]]


def area_tables() -> AreaResult:
    return AreaResult(table1=table1_rows(), table2=table2_rows())


def table3_parameters() -> List[Tuple[str, str]]:
    """The base machine parameters as (component, description) rows."""
    su = BASE.scalar_units[0]
    vu = BASE.vu
    l2 = BASE.l2
    return [
        ("Scalar Unit", f"{su.width}-way out-of-order superscalar; "
         f"{su.window}-entry window/ROB; {su.arith_units} arithmetic "
         f"units, {su.mem_ports} memory ports; {su.l1i_kib}-KB "
         f"{su.l1_assoc}-way L1 caches"),
        ("Vector Control", f"{vu.issue_width}-way issue, "
         f"{vu.viq_entries}-entry VIQ"),
        ("Vector Lanes", f"{vu.lanes} lanes; {vu.arith_fus} arithmetic "
         f"datapaths + {vu.mem_ports} memory ports per lane; "
         f"64 elements/register distributed 8 per lane"),
        ("Memory System", f"{l2.size_kib // 1024}-MB L2, {l2.assoc}-way, "
         f"{l2.banks}-way banked; {l2.hit_latency}-cycle hit, "
         f"{l2.miss_latency}-cycle miss penalty"),
    ]


# --------------------------------------------------------------------------
# Table 4 -- application characteristics
# --------------------------------------------------------------------------

def table4_characteristics(apps: Sequence[str] = ALL_APPS
                           ) -> List[AppCharacteristics]:
    return [characterize(a) for a in apps]


# --------------------------------------------------------------------------
# Figure 3 -- VLT speedup with vector threads
# --------------------------------------------------------------------------

@dataclass
class Fig3Result:
    #: app -> {"base": cycles, 2: cycles, 4: cycles}
    cycles: Dict[str, Dict[object, int]]

    def speedup(self, app: str, threads: int) -> float:
        return self.cycles[app]["base"] / self.cycles[app][threads]


def fig3_vlt_speedup(apps: Sequence[str] = VLT_VECTOR_APPS,
                     runs: RunMap = None) -> Fig3Result:
    """VLT speedup over base: V2-CMP (2 threads), V4-CMP (4 threads)."""
    out: Dict[str, Dict[object, int]] = {}
    for app in apps:
        out[app] = {
            "base": _run(app, BASE, 1, runs=runs).cycles,
            2: _run(app, V2_CMP, 2, runs=runs).cycles,
            4: _run(app, V4_CMP, 4, runs=runs).cycles,
        }
    return Fig3Result(cycles=out)


# --------------------------------------------------------------------------
# Figure 4 -- datapath utilization
# --------------------------------------------------------------------------

@dataclass
class Fig4Result:
    #: app -> label -> (utilization, cycles)
    data: Dict[str, Dict[str, Tuple[DatapathUtilization, int]]]

    def normalized_bars(self, app: str) -> Dict[str, Dict[str, float]]:
        """Per-config datapath-cycle buckets normalised to the *base*
        run's total datapath-cycles (paper Fig. 4: lower bar = faster)."""
        base_total = self.data[app]["base"][0].total
        bars = {}
        for label, (util, _cycles) in self.data[app].items():
            bars[label] = {k: v / base_total
                           for k, v in (("busy", util.busy),
                                        ("stalled", util.stalled),
                                        ("all_idle", util.all_idle),
                                        ("partly_idle", util.partly_idle))}
        return bars


def fig4_utilization(apps: Sequence[str] = VLT_VECTOR_APPS,
                     runs: RunMap = None) -> Fig4Result:
    data: Dict[str, Dict[str, Tuple[DatapathUtilization, int]]] = {}
    for app in apps:
        base = _run(app, BASE, 1, runs=runs)
        r2 = _run(app, V2_CMP, 2, runs=runs)
        r4 = _run(app, V4_CMP, 4, runs=runs)
        data[app] = {
            "base": (base.utilization, base.cycles),
            "VLT-2": (r2.utilization, r2.cycles),
            "VLT-4": (r4.utilization, r4.cycles),
        }
    return Fig4Result(data=data)


# --------------------------------------------------------------------------
# Figure 5 -- scalar-unit design space
# --------------------------------------------------------------------------

#: (config, thread count) points of Figure 5, in the paper's legend order.
FIG5_POINTS: Tuple[Tuple[MachineConfig, int], ...] = (
    (V2_SMT, 2), (V2_CMP, 2), (V4_SMT, 4), (V4_CMT, 4), (V4_CMP, 4),
    (V4_CMP_H, 4),
)


@dataclass
class Fig5Result:
    #: app -> config name -> speedup over base
    speedups: Dict[str, Dict[str, float]]
    base_cycles: Dict[str, int]


def fig5_design_space(apps: Sequence[str] = VLT_VECTOR_APPS,
                      runs: RunMap = None) -> Fig5Result:
    speedups: Dict[str, Dict[str, float]] = {}
    base_cycles: Dict[str, int] = {}
    for app in apps:
        base = _run(app, BASE, 1, runs=runs).cycles
        base_cycles[app] = base
        row: Dict[str, float] = {}
        for cfg, threads in FIG5_POINTS:
            row[cfg.name] = base / _run(app, cfg, threads, runs=runs).cycles
        speedups[app] = row
    return Fig5Result(speedups=speedups, base_cycles=base_cycles)


# --------------------------------------------------------------------------
# Figure 6 -- scalar threads on the lanes vs CMT
# --------------------------------------------------------------------------

@dataclass
class Fig6Result:
    #: app -> {"CMT": cycles, "VLT": cycles}
    cycles: Dict[str, Dict[str, int]]

    def speedup(self, app: str) -> float:
        return self.cycles[app]["CMT"] / self.cycles[app]["VLT"]


def fig6_scalar_threads(apps: Sequence[str] = SCALAR_APPS,
                        runs: RunMap = None) -> Fig6Result:
    """8 VLT scalar threads on the lanes vs 4 threads on the CMT machine.

    Both run the ``scalar_only`` program flavour: lane cores cannot
    execute vector instructions, and the comparison must hold the
    program constant.
    """
    out: Dict[str, Dict[str, int]] = {}
    for app in apps:
        out[app] = {
            "CMT": _run(app, CMT, 4, scalar_only=True, runs=runs).cycles,
            "VLT": _run(app, VLT_SCALAR, 8, scalar_only=True,
                        runs=runs).cycles,
        }
    return Fig6Result(cycles=out)
