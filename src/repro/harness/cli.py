"""Command-line driver: regenerate any table/figure of the paper.

Usage::

    vlt-repro table1 table2 table3 table4
    vlt-repro fig1 fig3 fig4 fig5 fig6
    vlt-repro all
    vlt-repro all --experiments-md EXPERIMENTS.md   # rewrite the doc
    vlt-repro all --jobs 4 --cache-dir ~/.vlt-cache # parallel + cached
    vlt-repro fig1 --apps mpenc,trfd --lanes 1,8    # narrower/faster
    vlt-repro run mxm --config base --threads 4     # one run, full stats
    vlt-repro run trfd --strategy peeling           # pick a vectorization
                                                    # strategy (compiled
                                                    # apps)
    vlt-repro compiler-tradeoff --jobs 4            # every compiled app x
                                                    # every strategy; report
                                                    # + BENCH json
    vlt-repro compiler-tradeoff --apps mxm,trfd --jobs 2   # CI smoke matrix
    vlt-repro trace mxm --out trace.json            # Perfetto trace +
                                                    # stall attribution
    vlt-repro profile mxm --threads 4               # host-side phase
                                                    # profile
    vlt-repro determinism                           # tracing on/off
                                                    # cycle-identity check
    vlt-repro cache stats --cache-dir ~/.vlt-cache  # cache census
    vlt-repro cache clear --cache-dir ~/.vlt-cache
    vlt-repro lint                                  # static verifier over
                                                    # workloads + examples
    vlt-repro lint prog.s                           # lint an assembly file
    vlt-repro diff                                  # functional-vs-timing
                                                    # check, fig3/5/6 matrix
    vlt-repro diff mxm --config base --threads 2    # one differential run
    vlt-repro diff --func-engine fast               # fast-vs-reference
                                                    # functional check
    vlt-repro fig3 --verify --jobs 4                # differentially
                                                    # validated experiments
    vlt-repro fig3 --jobs 4 --telemetry tele-out    # fleet telemetry:
                                                    # run ledger + spans
    vlt-repro tele report --telemetry tele-out      # fleet metrics from
                                                    # the run ledger
    vlt-repro tele timeline --telemetry tele-out    # per-worker Perfetto
                                                    # timeline
    vlt-repro tele trend                            # bench-history trend
                                                    # report

See docs/harness.md for the parallel runner and cache design,
docs/observability.md for fleet telemetry, and docs/verification.md for
the lint rules and the differential checker.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from . import experiments as E
from . import report as R

EXPERIMENT_NAMES = ["table1", "table2", "table3", "table4",
                    "fig1", "fig3", "fig4", "fig5", "fig6"]

#: every verb the CLI accepts in argv[1] position; the repo-consistency
#: test asserts each one is documented somewhere under docs/ or README
CLI_VERBS = tuple(EXPERIMENT_NAMES) + (
    "all", "verify", "mix", "run", "trace", "profile", "determinism",
    "cache", "lint", "diff", "tele", "serve", "compiler-tradeoff")


def verify_workloads(apps: Optional[List[str]] = None) -> str:
    """Run every workload's functional self-check at every supported
    thread count (plus the scalar flavours); returns a report."""
    from ..workloads import all_workload_names, get_workload
    rows = []
    for name in (apps or all_workload_names()):
        w = get_workload(name)
        checked = []
        for nt in w.thread_counts:
            w.run_and_verify(num_threads=nt)
            checked.append(str(nt))
        flavours = "vector"
        if name in ("radix", "ocean", "barnes"):
            w.run_and_verify(num_threads=8, scalar_only=True)
            flavours += "+scalar"
        rows.append((name, ",".join(checked), flavours, "OK"))
    return R.table(["app", "thread counts", "flavours", "status"], rows,
                   "Workload verification (against NumPy references)")


def instruction_mix(apps: Optional[List[str]] = None,
                    top: int = 12) -> str:
    """Dynamic instruction-mix report per workload (single thread)."""
    from ..timing.run import trace_for
    from ..workloads import all_workload_names, get_workload
    sections: List[str] = []
    for name in (apps or all_workload_names()):
        prog = get_workload(name).program()
        trace = trace_for(prog, 1)
        hist = trace.merged_opcode_histogram()
        total = sum(hist.values())
        rows = [(op, n, f"{100 * n / total:.1f}%")
                for op, n in sorted(hist.items(), key=lambda kv: -kv[1])
                [:top]]
        sections.append(R.table(
            ["opcode", "count", "share"], rows,
            f"{name}: {total} dynamic instructions (top {top})"))
    return "\n\n".join(sections)


def run_single(app: str, config: str = "base", threads: int = 1,
               scalar_only: bool = False, engine: str = "event",
               func_engine: str = "reference",
               strategy: str = "auto") -> str:
    """Run one workload on one machine configuration; report the stats."""
    from ..timing import simulate
    from ..timing.config import get_config
    from ..workloads import get_workload
    w = get_workload(app)
    prog = w.program(scalar_only=scalar_only, strategy=strategy)
    cfg = get_config(config)
    r = simulate(prog, cfg, num_threads=threads, engine=engine,
                 func_engine=func_engine)
    lines = [r.summary()]   # includes L2 bank-conflict cycles
    if r.phase_release_cycles:
        lines.append(f"  phases: {r.phase_durations()}")
    lines.append(f"  thread finish times: {r.thread_finish}")
    for i, s in enumerate(r.scalar_units):
        if s.fetched:
            lines.append(
                f"  SU{i}: mispredicts {s.branch_mispredicts}/"
                f"{s.branch_lookups} branches; L1D misses "
                f"{s.l1d_misses}/{s.l1d_accesses}; VIQ dispatch stalls "
                f"{s.dispatch_stall_viq}")
    return "\n".join(lines)


def run_trace(app: str, config: str = "base", threads: int = 1,
              scalar_only: bool = False, out: Optional[str] = None,
              max_events: int = 1_000_000, engine: str = "event",
              func_engine: str = "reference",
              strategy: str = "auto") -> str:
    """Run one workload fully instrumented; write a Chrome trace-event
    JSON (loads in Perfetto) and return the stall-attribution report."""
    from ..obs import render_stall_report, write_chrome_trace
    from ..timing import simulate_traced
    from ..timing.config import get_config
    from ..workloads import get_workload
    w = get_workload(app)
    prog = w.program(scalar_only=scalar_only, strategy=strategy)
    cfg = get_config(config)
    tr = simulate_traced(prog, cfg, num_threads=threads,
                         max_events=max_events, engine=engine,
                         func_engine=func_engine)
    lines = []
    if out:
        n = write_chrome_trace(
            out, tr.events.events,
            process_name=f"vlt-sim:{app}@{config}",
            metadata={"app": app, "config": config, "threads": threads,
                      "cycles": tr.result.cycles,
                      "truncated": tr.events.truncated,
                      "dropped_events": tr.events.dropped})
        lines.append(f"wrote {n} trace records to {out}"
                     + (" (event log truncated)" if tr.events.truncated
                        else ""))
    lines.append(render_stall_report(tr.result, events=tr.events))
    vl = tr.metrics.histograms().get("vl")
    if vl is not None and vl.count:
        lines.append(
            f"  VL distribution: n={vl.count}, mean={vl.mean:.1f}, "
            f"p50={vl.percentile(50)}, p90={vl.percentile(90)}, "
            f"max={max(vl.buckets)}")
    timeline = tr.metrics_sink.conflict_timeline()
    if timeline:
        worst = max(timeline, key=lambda bw: bw[1])
        lines.append(
            f"  L2 bank-conflict timeline: {len(timeline)} hot buckets, "
            f"worst {worst[1]} conflict cycles @ cycle {worst[0]}")
    if tr.events.truncated:
        lines.append(
            f"  event log: TRUNCATED at {len(tr.events.events)} events; "
            f"{tr.events.dropped} further events dropped (raise "
            f"--max-events for full coverage)")
    return "\n".join(lines)


def run_profile(app: str, config: str = "base", threads: int = 1,
                scalar_only: bool = False,
                json_path: Optional[str] = None,
                func_engine: str = "reference",
                strategy: str = "auto") -> str:
    """Host-side self-profiling: wall time per simulation phase."""
    from ..timing import clear_trace_cache
    from ..timing.run import simulate, trace_for
    from ..timing.config import get_config
    from ..obs.hostprof import PhaseProfiler
    from ..workloads import get_workload
    w = get_workload(app)
    prog = w.program(scalar_only=scalar_only, strategy=strategy)
    cfg = get_config(config)
    clear_trace_cache()   # so trace_generation is actually measured
    prof = PhaseProfiler()
    r = simulate(prog, cfg, num_threads=threads, profiler=prof,
                 func_engine=func_engine)
    ops = sum(len(t.ops) for t in
              trace_for(prog, threads).threads)
    total = prof.total_wall_s
    lines = [
        f"profile {app} on {config} ({threads} threads): "
        f"{r.cycles} cycles, {ops} dynamic instructions",
        prof.report(),
        f"  simulated throughput: "
        f"{r.cycles / total if total else 0:,.0f} cycles/s host, "
        f"{ops / total if total else 0:,.0f} ops/s host",
    ]
    if json_path:
        payload = {"app": app, "config": config, "threads": threads,
                   "cycles": r.cycles, "dynamic_ops": ops,
                   "phases": prof.as_dict(),
                   "total_wall_s": total}
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        lines.append(f"wrote {json_path}")
    return "\n".join(lines)


def check_determinism(app: str = "mxm", config: str = "base",
                      threads: int = 1) -> str:
    """Two runs of ``app`` -- tracing off and on, fresh functional traces
    each time -- must produce identical cycle counts.  Raises on drift."""
    from ..timing import clear_trace_cache, simulate, simulate_traced
    from ..timing.config import get_config
    from ..workloads import get_workload
    cfg = get_config(config)
    cycles = []
    for label in ("off-1", "off-2", "on-1", "on-2"):
        clear_trace_cache()
        prog = get_workload(app).program()
        if label.startswith("off"):
            r = simulate(prog, cfg, num_threads=threads)
        else:
            r = simulate_traced(prog, cfg, num_threads=threads,
                                max_events=100_000).result
        cycles.append((label, r.cycles))
    values = {c for _, c in cycles}
    detail = ", ".join(f"{lbl}={c}" for lbl, c in cycles)
    if len(values) != 1:
        raise AssertionError(
            f"non-deterministic cycle counts for {app} on {config}: "
            f"{detail}")
    return (f"determinism OK: {app} on {config} ({threads} threads) -> "
            f"{cycles[0][1]} cycles across tracing on/off re-runs "
            f"({detail})")


def _example_programs():
    """Yield ``(label, Program)`` for every program the examples build.

    The adapter table below names each example's program constructors;
    it is what lets ``vlt-repro lint`` (and the CI ``lint-programs``
    job) cover hand-written demo assembly that never flows through the
    workload registry.  Missing examples/ (installed package) yields
    nothing.
    """
    import importlib
    from pathlib import Path
    ex_dir = Path(__file__).resolve().parents[3] / "examples"
    if not ex_dir.is_dir():
        return
    sys.path.insert(0, str(ex_dir))
    try:
        from ..isa.assembler import assemble
        quickstart = importlib.import_module("quickstart")
        yield "examples/quickstart", assemble(quickstart.SRC,
                                              name="quickstart")
        tradeoff = importlib.import_module("compiler_tradeoff")
        for policy in ("maxvl", "unitstride", "innermost"):
            for threads in (False, True):
                prog, _ = tradeoff.build(policy, threads=threads)
                yield (f"examples/compiler_tradeoff[{policy}"
                       f"{',threads' if threads else ''}]", prog)
        from ..compiler import STRATEGY_NAMES
        for strat in STRATEGY_NAMES:
            prog, _ = tradeoff.build_strategy(strat)
            yield f"examples/compiler_tradeoff[{strat}]", prog
        reconf = importlib.import_module("dynamic_reconfiguration")
        for parts in (1, 4):
            yield (f"examples/dynamic_reconfiguration[{parts}]",
                   reconf.program(parts))
        shortvec = importlib.import_module("vlt_short_vectors")
        yield "examples/vlt_short_vectors", shortvec.build_program()[0]
    finally:
        sys.path.remove(str(ex_dir))


def lint_programs(apps: Optional[List[str]] = None,
                  paths: Optional[List[str]] = None,
                  examples: bool = True) -> Tuple[str, int]:
    """Static-verify programs; returns (report, total finding count).

    With ``paths`` (assembly files), lints exactly those.  Otherwise
    lints every workload program -- both flavours where the workload
    has two, plus every vectorization strategy that produces distinct
    code for compiled workloads -- plus (with ``examples``) each
    program the examples/ directory builds.
    """
    from ..compiler import STRATEGY_NAMES
    from ..isa.assembler import assemble
    from ..verify import lint
    from ..workloads import all_workload_names, get_workload

    programs: List[Tuple[str, object]] = []
    if paths:
        for path in paths:
            with open(path) as fh:
                src = fh.read()
            programs.append((path, assemble(src, name=path)))
    else:
        for name in (apps or all_workload_names()):
            w = get_workload(name)
            seen_digests = set()
            for so in (False, True):
                try:
                    prog = w.build(scalar_only=so)
                except ValueError:
                    continue  # long-vector app without a scalar flavour
                if prog.digest() in seen_digests:
                    continue  # flavours alias for non-vectorizable apps
                seen_digests.add(prog.digest())
                flavour = "scalar" if so else "vector"
                programs.append((f"{name}/{flavour}", prog))
            if w.compiled:
                for strat in STRATEGY_NAMES:
                    if strat == "auto":
                        continue   # the vector flavour above
                    prog = w.build(strategy=strat)
                    if prog.digest() in seen_digests:
                        continue   # strategy fell back to auto's code
                    seen_digests.add(prog.digest())
                    programs.append((f"{name}/{strat}", prog))
        if examples:
            programs.extend(_example_programs())

    rows = []
    details: List[str] = []
    total = 0
    for label, prog in programs:
        findings = lint(prog)
        total += len(findings)
        errors = sum(1 for f in findings if f.severity == "error")
        status = "OK" if not findings else (
            f"{errors} error(s), {len(findings) - errors} warning(s)")
        rows.append((label, len(prog.instrs), status))
        details.extend("  " + f.render(label) for f in findings)
    text = R.table(["program", "instrs", "lint"], rows,
                   f"Static verification ({len(programs)} programs, "
                   f"{total} findings)")
    if details:
        text += "\n" + "\n".join(details)
    return text, total


def diff_runs(app: Optional[str] = None, config: str = "base",
              threads: int = 1, scalar_only: bool = False,
              apps: Optional[List[str]] = None,
              engine: str = "event",
              func_engine: str = "reference",
              strategy: str = "auto") -> Tuple[str, int]:
    """Differentially validate runs; returns (report, mismatch count).

    With ``app``, checks that single (app, config, threads) run --
    ``strategy`` picks the vectorization-strategy flavour for compiled
    apps.  Without, sweeps the full Figure-3/5/6 run matrix -- every
    (app x config x threads) point behind the paper's headline
    figures -- proving the timing machine replays exactly what the
    functional executor computed.  ``--func-engine fast`` makes the
    trace under test (and the state-comparison run) come from the
    fast block-compiled engine, turning the sweep into a
    fast-vs-reference functional equivalence check.
    """
    from ..harness.runner import RunSpec
    from ..timing.config import get_config
    from ..verify import differential_check
    from ..workloads import get_workload

    if app is not None:
        specs = [RunSpec(app, get_config(config).name, threads,
                         scalar_only=scalar_only, strategy=strategy)]
    else:
        specs = E.matrix_for(["fig3", "fig5", "fig6"], apps=apps)
    rows = []
    details: List[str] = []
    bad = 0
    for spec in specs:
        prog = get_workload(spec.app).program(scalar_only=spec.scalar_only,
                                              strategy=spec.strategy)
        kw: Dict[str, Any] = {} if engine == "event" else {"engine": engine}
        if func_engine != "reference":
            kw["func_engine"] = func_engine
        report = differential_check(prog, get_config(spec.config),
                                    num_threads=spec.threads, **kw)
        if report.ok:
            status = f"OK ({report.ops_checked} ops, {report.cycles} cyc)"
        else:
            bad += len(report.mismatches)
            status = f"{len(report.mismatches)} MISMATCH(ES)"
            details.append(report.render())
        rows.append((str(spec), status))
    text = R.table(["run", "functional vs timing"], rows,
                   f"Differential validation ({len(specs)} runs, "
                   f"{bad} mismatches)")
    if details:
        text += "\n" + "\n".join(details)
    return text, bad


def run_experiment_data(name: str, apps: Optional[List[str]] = None,
                        lanes: Optional[List[int]] = None,
                        runs: "E.RunMap" = None) -> Any:
    """Run one experiment and return its raw result object.

    ``runs`` (spec -> result, from the parallel runner) makes the figure
    drivers consume precomputed results instead of simulating inline.
    """
    if name in ("table1", "table2"):
        return E.area_tables()
    if name == "table3":
        return E.table3_parameters()
    if name == "table4":
        return E.table4_characteristics(apps or E.ALL_APPS)
    if name == "fig1":
        return E.fig1_lane_scaling(apps or E.ALL_APPS, lanes or (1, 2, 4, 8),
                                   runs=runs)
    if name == "fig3":
        return E.fig3_vlt_speedup(apps or E.VLT_VECTOR_APPS, runs=runs)
    if name == "fig4":
        return E.fig4_utilization(apps or E.VLT_VECTOR_APPS, runs=runs)
    if name == "fig5":
        return E.fig5_design_space(apps or E.VLT_VECTOR_APPS, runs=runs)
    if name == "fig6":
        return E.fig6_scalar_threads(apps or E.SCALAR_APPS, runs=runs)
    raise KeyError(f"unknown experiment {name!r}; known: {EXPERIMENT_NAMES}")


def _jsonable(obj: Any) -> Any:
    """Recursively convert result objects to JSON-compatible data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    return obj


_RENDERERS = {
    "table1": R.render_area, "table2": R.render_area,
    "table3": R.render_table3, "table4": R.render_table4,
    "fig1": R.render_fig1, "fig3": R.render_fig3, "fig4": R.render_fig4,
    "fig5": R.render_fig5, "fig6": R.render_fig6,
}


def _render(name: str, data: Any) -> str:
    return _RENDERERS[name](data)


def run_experiment(name: str, apps: Optional[List[str]] = None,
                   lanes: Optional[List[int]] = None,
                   runs: "E.RunMap" = None) -> str:
    """Run one experiment and return its rendered report."""
    return _render(name, run_experiment_data(name, apps=apps, lanes=lanes,
                                             runs=runs))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vlt-repro",
        description="Reproduce tables/figures of 'Vector Lane Threading' "
                    "(ICPP 2006)")
    parser.add_argument("experiments", nargs="+",
                        help=f"experiments to run: {EXPERIMENT_NAMES}, "
                             f"'verify' (workload self-checks), "
                             f"'mix' (instruction-mix report) or 'all'")
    parser.add_argument("--apps", type=str, default=None,
                        help="comma-separated application subset")
    parser.add_argument("--lanes", type=str, default=None,
                        help="comma-separated lane counts for fig1")
    parser.add_argument("--experiments-md", type=str, default=None,
                        help="also write the combined report to this file")
    parser.add_argument("--json", type=str, default=None,
                        help="write raw experiment data as JSON to this file")
    parser.add_argument("--config", type=str, default="base",
                        help="machine configuration for the 'run' verb")
    parser.add_argument("--threads", type=int, default=1,
                        help="thread count for the 'run' verb")
    parser.add_argument("--scalar-only", action="store_true",
                        help="use the scalar program flavour "
                             "('run'/'trace'/'profile' verbs)")
    parser.add_argument("--strategy", type=str, default="auto",
                        help="vectorization strategy for compiled apps: "
                             "auto | padding | peeling | unroll_jam "
                             "('run'/'trace'/'profile'/'diff' verbs; see "
                             "docs/compiler.md)")
    parser.add_argument("--strategies", type=str, default=None,
                        help="comma-separated strategy subset for the "
                             "'compiler-tradeoff' sweep (default: all)")
    parser.add_argument("--out", type=str, default=None,
                        help="Chrome trace-event JSON output path "
                             "('trace' verb)")
    parser.add_argument("--max-events", type=int, default=1_000_000,
                        help="event-log bound for the 'trace' verb")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment sweep "
                             "(1 = serial in-process reference path)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="content-addressed trace/result cache root "
                             "(shared across processes and invocations)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock limit in seconds "
                             "(runner path only)")
    parser.add_argument("--retries", type=int, default=2,
                        help="extra attempts after a run fails "
                             "(runner path only)")
    parser.add_argument("--verify", action="store_true",
                        help="differentially validate every experiment "
                             "run against the functional executor "
                             "(runner path; see docs/verification.md)")
    parser.add_argument("--telemetry", type=str, default=None,
                        help="fleet-telemetry directory: JSONL run ledger "
                             "+ per-worker spans + Perfetto timeline "
                             "(runner path; also the input of the 'tele' "
                             "verb)")
    parser.add_argument("--progress", action="store_true",
                        help="live completed/failed/cached/ETA line on "
                             "stderr while the sweep runs (runner path)")
    parser.add_argument("--history", type=str,
                        default="benchmarks/history",
                        help="bench-trend history directory "
                             "('tele trend' verb)")
    parser.add_argument("--last", type=int, default=5,
                        help="history entries in the trend report "
                             "('tele trend' verb)")
    parser.add_argument("--engine", type=str, default="event",
                        choices=("event", "columnar"),
                        help="timing replay engine: 'event' (per-event "
                             "oracle) or 'columnar' (NumPy array replay, "
                             "verified bit-identical; see "
                             "docs/architecture.md)")
    parser.add_argument("--host", type=str, default="127.0.0.1",
                        help="bind address for the 'serve' verb")
    parser.add_argument("--port", type=int, default=8373,
                        help="TCP port for the 'serve' verb (0 = pick "
                             "an ephemeral port)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="per-tenant submissions/s refill "
                             "('serve' verb)")
    parser.add_argument("--burst", type=float, default=100.0,
                        help="per-tenant submission burst capacity "
                             "('serve' verb)")
    parser.add_argument("--max-inflight", type=int, default=256,
                        help="per-tenant unfinished-job quota "
                             "('serve' verb)")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        help="LRU size budget for --cache-dir in MB "
                             "('serve' verb; oldest entries evicted)")
    parser.add_argument("--func-engine", type=str, default="reference",
                        choices=("reference", "fast"),
                        help="functional trace-generation engine: "
                             "'reference' (the oracle interpreter) or "
                             "'fast' (block-compiled NumPy engine, "
                             "verified bit-identical; see "
                             "docs/architecture.md)")
    args = parser.parse_args(argv)

    if args.experiments[0] == "lint":
        apps = args.apps.split(",") if args.apps else None
        paths = args.experiments[1:] or None
        text, findings = lint_programs(apps=apps, paths=paths)
        print(text)
        return 1 if findings else 0

    if args.experiments[0] == "diff":
        if len(args.experiments) > 2:
            parser.error("usage: vlt-repro diff [app] [--config C] "
                         "[--threads N] [--scalar-only] [--apps a,b]")
        app = args.experiments[1] if len(args.experiments) == 2 else None
        apps = args.apps.split(",") if args.apps else None
        text, mismatches = diff_runs(app, config=args.config,
                                     threads=args.threads,
                                     scalar_only=args.scalar_only,
                                     apps=apps, engine=args.engine,
                                     func_engine=args.func_engine,
                                     strategy=args.strategy)
        print(text)
        return 1 if mismatches else 0

    if args.experiments[0] == "compiler-tradeoff":
        if len(args.experiments) != 1:
            parser.error("usage: vlt-repro compiler-tradeoff "
                         "[--apps a,b] [--strategies s1,s2] [--config C] "
                         "[--threads N] [--jobs N] [--json path]")
        from ..compiler import STRATEGY_NAMES, VectStrategy
        from .runner import ExperimentRunner
        from .tradeoff import (bench_payload, compiler_tradeoff,
                               render_tradeoff, tradeoff_matrix)
        apps = args.apps.split(",") if args.apps else None
        strategies = ([VectStrategy.parse(s).value
                       for s in args.strategies.split(",")]
                      if args.strategies else list(STRATEGY_NAMES))
        runs = None
        runner = None
        if (args.jobs > 1 or args.cache_dir or args.timeout is not None
                or args.verify or args.telemetry or args.progress
                or args.func_engine != "reference"):
            specs = tradeoff_matrix(apps, strategies, config=args.config,
                                    threads=args.threads)
            runner = ExperimentRunner(jobs=args.jobs,
                                      cache_dir=args.cache_dir,
                                      timeout=args.timeout,
                                      retries=args.retries,
                                      verify=args.verify,
                                      engine=args.engine,
                                      func_engine=args.func_engine,
                                      telemetry=args.telemetry,
                                      progress=args.progress)
            t0 = time.time()
            runner.run(specs)
            runs = runner.results
            print(runner.report())
            print(f"[runner: {len(specs)} specs, "
                  f"{time.time() - t0:.1f}s]\n")
        try:
            res = compiler_tradeoff(apps, strategies, config=args.config,
                                    threads=args.threads, runs=runs)
        except E.MissingRunError as exc:
            print(f"compiler-tradeoff: SECTION FAILED -- required run "
                  f"unavailable: {exc.spec} (see runner failures above)")
            return 1
        print(render_tradeoff(res))
        out = args.json or "BENCH_compiler_tradeoff.json"
        with open(out, "w") as fh:
            json.dump(bench_payload(res), fh, indent=2)
        print(f"\nwrote {out}")
        return 1 if (runner is not None and runner.failures) else 0

    if args.experiments[0] == "tele":
        if len(args.experiments) != 2 or \
                args.experiments[1] not in ("report", "timeline", "trend"):
            parser.error("usage: vlt-repro tele {report|timeline|trend} "
                         "[--telemetry DIR] [--out path] "
                         "[--history DIR --last K]")
        sub = args.experiments[1]
        if sub == "trend":
            from ..obs.telemetry import bench_trend_report
            print(bench_trend_report(args.history, last=args.last))
            return 0
        if not args.telemetry:
            parser.error(f"'tele {sub}' requires --telemetry DIR "
                         "(a directory a telemetry sweep wrote)")
        from pathlib import Path
        from ..obs.telemetry import TelemetryReader, write_timeline
        if sub == "report":
            reader = TelemetryReader.from_path(
                Path(args.telemetry) / "ledger.jsonl")
            if args.json:
                with open(args.json, "w") as fh:
                    json.dump(reader.fleet_metrics(), fh, indent=2)
                print(f"wrote {args.json}")
            print(reader.report())
            return 0
        n = write_timeline(args.telemetry, args.out)
        out = args.out or str(Path(args.telemetry) / "timeline.json")
        print(f"wrote {n} span records to {out}")
        return 0

    if args.experiments[0] == "cache":
        if len(args.experiments) != 2 or \
                args.experiments[1] not in ("stats", "clear"):
            parser.error("usage: vlt-repro cache {stats|clear} "
                         "--cache-dir DIR")
        if not args.cache_dir:
            parser.error("the cache verb requires --cache-dir")
        from ..functional.trace_cache import TraceCache
        # CLI maintenance entry point: keep the historic startup sweep
        cache = TraceCache(args.cache_dir, sweep_on_init=True)
        if args.experiments[1] == "stats":
            print(json.dumps(cache.stats(), indent=2))
        else:
            removed = cache.clear()
            print(f"removed {removed} cache entries under {args.cache_dir}")
        return 0

    if args.experiments[0] == "serve":
        if len(args.experiments) != 1:
            parser.error("usage: vlt-repro serve [--host H --port P "
                         "--jobs N --cache-dir DIR --cache-budget-mb M "
                         "--telemetry DIR --timeout S --retries K "
                         "--rate R --burst B --max-inflight Q]")
        from ..service import ServiceConfig, serve
        budget = None
        if args.cache_budget_mb is not None:
            budget = int(args.cache_budget_mb * 1024 * 1024)
        return serve(ServiceConfig(
            host=args.host, port=args.port, workers=max(1, args.jobs),
            cache_dir=args.cache_dir, telemetry_dir=args.telemetry,
            timeout=args.timeout, retries=args.retries,
            rate=args.rate, burst=args.burst,
            max_inflight=args.max_inflight,
            cache_budget_bytes=budget))

    if args.experiments[0] == "run":
        if len(args.experiments) != 2:
            parser.error("usage: vlt-repro run <app> [--config C] "
                         "[--threads N]")
        print(run_single(args.experiments[1], config=args.config,
                         threads=args.threads,
                         scalar_only=args.scalar_only,
                         engine=args.engine,
                         func_engine=args.func_engine,
                         strategy=args.strategy))
        return 0

    if args.experiments[0] == "trace":
        if len(args.experiments) != 2:
            parser.error("usage: vlt-repro trace <app> [--out trace.json] "
                         "[--config C] [--threads N] [--max-events M]")
        print(run_trace(args.experiments[1], config=args.config,
                        threads=args.threads,
                        scalar_only=args.scalar_only, out=args.out,
                        max_events=args.max_events,
                        engine=args.engine,
                        func_engine=args.func_engine,
                        strategy=args.strategy))
        return 0

    if args.experiments[0] == "profile":
        if len(args.experiments) != 2:
            parser.error("usage: vlt-repro profile <app> [--config C] "
                         "[--threads N] [--json path]")
        print(run_profile(args.experiments[1], config=args.config,
                          threads=args.threads,
                          scalar_only=args.scalar_only,
                          json_path=args.json,
                          func_engine=args.func_engine,
                          strategy=args.strategy))
        return 0

    if args.experiments[0] == "determinism":
        app = args.experiments[1] if len(args.experiments) > 1 else "mxm"
        print(check_determinism(app, config=args.config,
                                threads=args.threads))
        return 0

    names = args.experiments
    if names == ["all"]:
        names = EXPERIMENT_NAMES
    # table1/table2 render together; drop the duplicate
    if "table1" in names and "table2" in names:
        names.remove("table2")
    apps = args.apps.split(",") if args.apps else None
    lanes = [int(x) for x in args.lanes.split(",")] if args.lanes else None

    # Parallel runner path: fan the declared run matrix out over worker
    # processes first, then let the drivers consume the results.  The
    # serial default (--jobs 1, no cache) simulates inline as before.
    runs = None
    failures = None
    runner = None
    if args.timeout is not None and not args.timeout > 0:
        # don't let a `--timeout 0` typo silently skip the runner path
        # (and with it the limit the user asked for)
        parser.error("--timeout must be > 0 seconds")
    if (args.jobs > 1 or args.cache_dir or args.timeout is not None
            or args.verify or args.telemetry or args.progress
            or args.func_engine != "reference"):
        from ..timing.run import set_default_profiler, set_trace_cache_dir
        from .runner import ExperimentRunner
        specs = E.matrix_for(names, apps=apps, lanes=lanes)
        if args.experiments_md:
            # the written document regenerates every figure over its
            # default sweep (it ignores --apps/--lanes); widen the
            # matrix so those sections are served from the run map too
            # instead of degrading to SECTION FAILED.
            doc_specs = E.matrix_for(["fig1", "fig3", "fig4", "fig5",
                                      "fig6"])
            have = set(specs)
            specs = specs + [s for s in doc_specs if s not in have]
        runner = ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                                  timeout=args.timeout,
                                  retries=args.retries,
                                  verify=args.verify,
                                  engine=args.engine,
                                  func_engine=args.func_engine,
                                  telemetry=args.telemetry,
                                  progress=args.progress)
        if args.cache_dir:
            # one sweep in the CLI parent; pool workers attach sweepless
            set_trace_cache_dir(args.cache_dir, sweep=True)
        # parent-side runs (table4, doc extensions) count in one profile
        set_default_profiler(runner.profiler)
        if specs:
            t0 = time.time()
            runner.run(specs)
            runs = runner.results
            failures = runner.failures
            print(runner.report())
            print(f"[runner: {len(specs)} specs, "
                  f"{time.time() - t0:.1f}s]\n")
            if runner.telemetry is not None:
                print(runner.telemetry.reader().report())
                print(f"[telemetry: ledger + timeline under "
                      f"{runner.telemetry.dir}]\n")

    sections: List[str] = []
    json_data: Dict[str, Any] = {}
    for name in names:
        t0 = time.time()
        try:
            if name == "verify":
                text = verify_workloads(apps)
            elif name == "mix":
                text = instruction_mix(apps)
            elif args.json:
                data = run_experiment_data(name, apps=apps, lanes=lanes,
                                           runs=runs)
                json_data[name] = _jsonable(data)
                text = _render(name, data)
            else:
                text = run_experiment(name, apps=apps, lanes=lanes,
                                      runs=runs)
        except E.MissingRunError as exc:
            text = (f"{name}: SECTION FAILED -- required run unavailable: "
                    f"{exc.spec} (see runner failures above)")
        sections.append(text)
        print(text)
        print(f"\n[{name}: {time.time() - t0:.1f}s]\n")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(json_data, fh, indent=2)
        print(f"wrote {args.json}")

    if args.experiments_md:
        from .docgen import write_experiments_md
        write_experiments_md(args.experiments_md, runs=runs,
                             failures=failures)
        print(f"wrote {args.experiments_md}")

    if runner is not None:
        from ..timing.run import get_trace_cache, set_default_profiler
        set_default_profiler(None)
        print(runner.profiler.report())
        cache = get_trace_cache()
        if cache is not None:
            s = cache.stats()
            # sweep-wide counters (workers included) when the runner
            # accumulated them; this process's own otherwise
            if runner.cache_counters:
                c = runner.cache_counters
                scope = "sweep"
            else:
                c = s["counters"]
                scope = "this process"
            print(f"cache {s['root']}: {s['traces']['entries']} traces / "
                  f"{s['results']['entries']} results on disk; "
                  f"{scope}: trace hits {c['trace_hits']}, misses "
                  f"{c['trace_misses']}; result hits {c['result_hits']}, "
                  f"misses {c['result_misses']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
