"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from . import experiments as E
from . import report as R
from .runner import MissingRunError, RunFailure

_HEADER = """\
# EXPERIMENTS -- paper vs. measured

Reproduction of every evaluation table and figure of *Vector Lane
Threading* (Rivoire, Schultz, Okuda, Kozyrakis -- ICPP 2006) on the
`repro` simulator.  Absolute cycle counts are not comparable to the
paper's (scaled workloads, reconstructed microarchitecture); the claims
under test are the *shapes*: who wins, by roughly what factor, and where
the crossovers fall.  See DESIGN.md section 4 for the per-experiment
acceptance criteria.

Regenerate this file with:

    python -m repro.harness.cli all --experiments-md EXPERIMENTS.md
"""


def generate_experiments_md(runs: E.RunMap = None,
                            failures: Optional[Sequence[RunFailure]] = None
                            ) -> str:
    """Render the full report.

    ``runs`` is an optional precomputed spec -> result mapping from the
    parallel runner; without it every driver simulates inline, serially.
    The two paths produce byte-identical documents.  With ``runs``, a
    figure whose matrix has a failed/missing run degrades to a FAILED
    section instead of aborting the document, and a non-empty
    ``failures`` list adds an appendix describing what broke.
    """
    sections: List[str] = [_HEADER]

    def add(title: str, body: str, commentary: str = "") -> None:
        sections.append(f"\n## {title}\n\n```\n{body}\n```\n")
        if commentary:
            sections.append(commentary + "\n")

    def add_figure(title: str, driver: Callable[[], object],
                   render: Callable[[object], str],
                   commentary: Callable[[object], str]) -> None:
        try:
            data = driver()
        except MissingRunError as exc:
            add(title, f"SECTION FAILED: required run unavailable: "
                       f"{exc.spec}",
                "This section could not be rendered because a run in its "
                "matrix failed; see the run-failure appendix below.")
            return
        add(title, render(data), commentary(data))

    add("Tables 1-2: area model", R.render_area(E.area_tables()),
        "Measured values are exact arithmetic over the paper's Table 1 "
        "component areas; every entry matches the paper within rounding "
        "except V4-CMP, where the paper's own prose (37%) agrees with our "
        "recomputation (36.8%) rather than its table (26.9%).")

    add("Table 3: base machine parameters",
        R.render_table3(E.table3_parameters()),
        "Configuration dump of the simulated base machine -- matches the "
        "paper's Table 3 by construction.")

    add("Table 4: application characteristics",
        R.render_table4(E.table4_characteristics()),
        "Workload generators were tuned to land in the paper's bands; "
        "the table shows measured values with the paper's in parentheses. "
        "Opportunity is measured from base-machine phase timings (parallel "
        "phases / total).")

    add_figure("Figure 1: lane scaling",
               lambda: E.fig1_lane_scaling(runs=runs),
               R.render_fig1, _fig1_commentary)

    add_figure("Figure 3: VLT speedup (vector threads)",
               lambda: E.fig3_vlt_speedup(runs=runs),
               R.render_fig3, _fig3_commentary)

    add_figure("Figure 4: datapath utilization",
               lambda: E.fig4_utilization(runs=runs),
               R.render_fig4,
               lambda _data: (
                   "As in the paper: VLT compresses execution (total bar "
                   "shrinks vs. base = 1.0), busy datapath-cycles grow as a "
                   "share, and stall/idle cycles shrink, while a residue of "
                   "stall/idle remains from sequential portions and "
                   "functional-unit imbalance."))

    add_figure("Figure 5: scalar-unit design space",
               lambda: E.fig5_design_space(runs=runs),
               R.render_fig5, _fig5_commentary)

    add_figure("Figure 6: scalar threads on the lanes",
               lambda: E.fig6_scalar_threads(runs=runs),
               R.render_fig6, _fig6_commentary)

    add("Extensions (paper Sections 3.2/3.3 and 6)", _extensions_report(),
        "Dynamic reconfiguration, the multiplexed-vs-replicated VCL "
        "claim, and the more-lanes trend; see benchmarks/"
        "bench_extensions.py for the asserted versions.")

    if failures:
        lines = ["The parallel runner could not complete every run; the "
                 "sections above that depended on a missing run are marked "
                 "FAILED.", ""]
        for f in failures:
            lines.append(f"* `{f.spec}` -- {f.error_type}: {f.message} "
                         f"(after {f.attempts} attempt"
                         f"{'s' if f.attempts != 1 else ''})")
        sections.append("\n## Appendix: run failures\n\n"
                        + "\n".join(lines) + "\n")

    return "\n".join(sections)


def _extensions_report() -> str:
    from dataclasses import replace

    from ..isa import assemble
    from ..timing import simulate
    from ..timing.config import (BASE, V4_CMP, MachineConfig,
                                 VectorUnitConfig)
    from ..workloads import get_workload

    lines: List[str] = []

    # multiplexed vs replicated VCL (Section 3.2's claim)
    rep_cfg = replace(V4_CMP, name="V4-CMP-repVCL",
                      vu=replace(V4_CMP.vu, replicated_vcl=True))
    lines.append("multiplexed vs replicated VCL (V4, 4 threads):")
    for name in ("mpenc", "trfd", "multprec", "bt"):
        prog = get_workload(name).program()
        mux = simulate(prog, V4_CMP, num_threads=4).cycles
        rep = simulate(prog, rep_cfg, num_threads=4).cycles
        lines.append(f"  {name:10s} mux={mux:>7}  rep={rep:>7}  "
                     f"overhead {100 * (mux / rep - 1):.1f}%")

    # more lanes increase VLT usefulness (Sections 1/6)
    lines.append("")
    lines.append("trfd VLT-4 speedup vs lane count:")
    prog = get_workload("trfd").program()
    for lanes in (8, 16):
        base_m = MachineConfig(name=f"b{lanes}",
                               scalar_units=BASE.scalar_units,
                               vu=VectorUnitConfig(lanes=lanes))
        vlt_m = MachineConfig(name=f"v{lanes}",
                              scalar_units=V4_CMP.scalar_units,
                              vu=VectorUnitConfig(lanes=lanes))
        s = simulate(prog, base_m, num_threads=1).cycles / \
            simulate(prog, vlt_m, num_threads=4).cycles
        lines.append(f"  {lanes:2d} lanes: {s:.2f}x")

    # dynamic reconfiguration (Section 3.3)
    def phased(n):
        return assemble(f"""
        tid s1
        vltcfg {n}
        bne s1, s0, skip
        li s10, 0
        li s11, 80
        rep:
        li s2, 64
        setvl s3, s2
        vfadd.vv v1, v2, v3
        vfmul.vv v4, v1, v2
        vfadd.vv v5, v4, v1
        addi s10, s10, 1
        blt s10, s11, rep
        skip:
        barrier
        vltcfg 4
        li s10, 0
        li s11, 60
        rep2:
        li s2, 8
        setvl s3, s2
        vfadd.vv v1, v2, v3
        vfmul.vv v4, v1, v2
        addi s10, s10, 1
        blt s10, s11, rep2
        barrier
        halt
        """)

    dyn = simulate(phased(1), V4_CMP, num_threads=4).cycles
    static = simulate(phased(4), V4_CMP, num_threads=4).cycles
    lines.append("")
    lines.append(f"dynamic vltcfg on a two-phase kernel: dynamic={dyn} "
                 f"cycles vs static={static} ({static / dyn:.2f}x)")
    return "\n".join(lines)


def _fig1_commentary(fig1: E.Fig1Result) -> str:
    long_ok = all(fig1.speedups(a)[-1] >= 4.0 for a in ("mxm", "sage")
                  if a in fig1.cycles)
    short = [a for a in ("mpenc", "trfd", "multprec", "bt")
             if a in fig1.cycles]
    short_ok = all(fig1.speedups(a)[-1] <= 3.0 for a in short)
    flat = [a for a in ("radix", "ocean", "barnes") if a in fig1.cycles]
    flat_ok = all(fig1.speedups(a)[-1] <= 1.2 for a in flat)
    return (f"Shape check: long-vector apps scale (>=4x at 8 lanes): "
            f"{'PASS' if long_ok else 'FAIL'}; short-vector apps saturate "
            f"(<=3x): {'PASS' if short_ok else 'FAIL'}; scalar apps flat "
            f"(<=1.2x): {'PASS' if flat_ok else 'FAIL'}.")


def _fig3_commentary(fig3: E.Fig3Result) -> str:
    s2 = [fig3.speedup(a, 2) for a in fig3.cycles]
    s4 = [fig3.speedup(a, 4) for a in fig3.cycles]
    mono = all(fig3.speedup(a, 4) >= fig3.speedup(a, 2) * 0.95
               for a in fig3.cycles)
    return (f"Measured ranges: 2 threads {min(s2):.2f}-{max(s2):.2f} "
            f"(paper 1.14-2.15); 4 threads {min(s4):.2f}-{max(s4):.2f} "
            f"(paper 1.40-2.3); 4-thread >= 2-thread for every app: "
            f"{'PASS' if mono else 'FAIL'}.")


def _fig5_commentary(fig5: E.Fig5Result) -> str:
    checks = []
    for app, row in fig5.speedups.items():
        checks.append(abs(row["V2-SMT"] - row["V2-CMP"])
                      <= 0.15 * row["V2-CMP"])
        checks.append(row["V4-CMT"] >= 0.9 * row["V4-CMP"])
        checks.append(row["V4-SMT"] <= row["V4-CMT"] + 0.05)
    ok = all(checks)
    return ("Expected shape (paper Section 7.1): V2-SMT ~ V2-CMP (a "
            "multiplexed SU suffices for 2 threads); V4-SMT falls behind "
            "(4 instructions/cycle cannot feed 4 threads); V4-CMT matches "
            "the fully-replicated V4-CMP at a fraction of the area; "
            "V4-CMP-h trails the other replicated points. Shape check: "
            f"{'PASS' if ok else 'PARTIAL'}.")


def _fig6_commentary(fig6: E.Fig6Result) -> str:
    r = {a: fig6.speedup(a) for a in fig6.cycles}
    ok = (r.get("radix", 0) >= 1.5 and r.get("ocean", 0) >= 1.5
          and 0.8 <= r.get("barnes", 1.0) <= 1.4)
    return (f"Paper: ~2x for radix and ocean (low per-thread ILP: better "
            f"to run 8 threads on 8 simple lane-cores), parity for barnes "
            f"(enough ILP that two wide OOO cores keep up). Shape check: "
            f"{'PASS' if ok else 'PARTIAL'}. We reproduce the direction "
            f"(ocean clearly ahead on the lanes, radix/barnes at parity) "
            f"but not the full 2x: our out-of-order CMT baseline tolerates "
            f"L2 latency better than the paper's, and at our scaled "
            f"working-set sizes its L1s stay effective -- see DESIGN.md "
            f"section 8 for the analysis and "
            f"bench_ablations.py::test_ablation_decoupling_depth for the "
            f"sensitivity of the lane side to the access-decoupling model.")


def write_experiments_md(path: str, runs: E.RunMap = None,
                         failures: Optional[Sequence[RunFailure]] = None
                         ) -> None:
    with open(path, "w") as fh:
        fh.write(generate_experiments_md(runs=runs, failures=failures))
