"""First-order VLT speedup model (the paper's Section 7.1 arithmetic).

The paper explains each application's measured speedup from two Table 4
quantities: the *opportunity* (the fraction of base execution time in
VLT-accelerable parallel phases) and the *average vector length* (how
many lanes the original single thread keeps busy, hence how many
threads' worth of idle lane capacity exists).  E.g. for mpenc:
"an average vector length of 11 ... only 2 to 4 vector lanes are
efficiently used ... potential for 1 to 3 additional threads and a 78%
opportunity, mpenc should achieve an overall speedup of 1.6 to 2.3.
Our results indicate that mpenc reaches a speedup of 1.8."

This module reproduces that reasoning as code so the harness can check
measured speedups against the model's predicted band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def amdahl(opportunity: float, parallel_speedup: float) -> float:
    """Overall speedup when only ``opportunity`` of time parallelises."""
    if not 0.0 <= opportunity <= 1.0:
        raise ValueError("opportunity must be in [0, 1]")
    if parallel_speedup <= 0:
        raise ValueError("parallel speedup must be positive")
    serial = 1.0 - opportunity
    return 1.0 / (serial + opportunity / parallel_speedup)


def lanes_used_by_one_thread(avg_vl: float, lanes: int = 8) -> float:
    """How many lanes the original single thread keeps busy.

    A vector instruction of length VL occupies ``ceil(VL/lanes)`` cycles
    across all lanes; the *efficiently used* lane count is
    ``VL / ceil(VL/lanes)`` (the paper reads "average VL 11" as "2 to 4
    lanes used").
    """
    if avg_vl <= 0:
        return 1.0
    occ = math.ceil(avg_vl / lanes)
    return avg_vl / occ


@dataclass(frozen=True)
class SpeedupBand:
    """Predicted overall-speedup interval for a VLT configuration."""

    low: float
    high: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def widened(self, factor: float = 0.15) -> "SpeedupBand":
        """A tolerance-widened band for asserting measured values."""
        return SpeedupBand(self.low * (1 - factor),
                           self.high * (1 + factor))


def predicted_band(opportunity_pct: float, avg_vl: float, threads: int,
                   lanes: int = 8) -> SpeedupBand:
    """The paper-style predicted speedup band for ``threads`` VLT threads.

    * Upper bound: the parallel phases speed up by the full thread count
      -- every VLT thread brings its own scalar unit, and the vector
      side finds idle lane capacity -- Amdahl-limited by the
      opportunity.
    * Lower bound: the parallel-phase speedup is capped by the idle
      *lane* capacity alone -- ``lanes / lanes_used_by_one_thread``,
      halved for the paper's pessimistic "1 extra thread" end -- i.e.
      the case where the scalar units contribute nothing.
    """
    o = opportunity_pct / 100.0
    used = lanes_used_by_one_thread(avg_vl, lanes)
    capacity = max(1.0, lanes / used)
    s_high = float(threads)
    s_low = max(1.0, min(threads / 2.0, capacity / 2.0))
    return SpeedupBand(low=amdahl(o, s_low), high=amdahl(o, s_high))
