"""Compiler-tradeoff sweep: every compiled workload x every strategy.

The ``vlt-repro compiler-tradeoff`` verb drives this module.  It runs
each mini-compiler workload (``compiled = True`` in the registry) under
every :class:`~repro.compiler.VectStrategy` on one machine
configuration, then reports -- Figure-4 style, one section per app --
how the strategy reshaped the program:

* simulated cycles and speedup over the ``auto`` baseline (the
  strategies change *code shape*, not the machine, so any delta is pure
  compiler effect),
* the dynamic vector-length histogram and its delta vs. ``auto``
  (padding converts short strips into full-MVL ones; peeling converts
  masked tails into scalar epilogues; unroll-and-jam multiplies the
  work per strip), and
* whether the strategy actually produced a distinct program.  The
  legality rules make strategies *fall back* rather than miscompile
  (see docs/compiler.md); a fallen-back strategy emits byte-identical
  code and its row is marked ``= auto``.  The content-digest cache
  makes those rows free: traces and results are keyed by
  :meth:`~repro.isa.program.Program.digest`, so aliased programs share
  one simulation.

Like the figure drivers in :mod:`repro.harness.experiments`, the sweep
is expressed as a :class:`~repro.harness.runner.RunSpec` matrix
(:func:`tradeoff_matrix`) so the parallel runner can fan it out with
``--jobs N``; :func:`compiler_tradeoff` then consumes the run map (or
simulates inline, memoised by program digest).  :func:`bench_payload`
shapes the result into the ``BENCH_compiler_tradeoff.json`` schema the
CI smoke job gates with ``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler import STRATEGY_NAMES
from ..isa.registers import MVL
from ..timing.config import get_config
from ..timing.run import simulate, trace_for
from ..workloads import compiled_workload_names, get_workload
from . import report as R
from .runner import MissingRunError, RunSpec
from .experiments import RunMap

#: the sweep's default machine point: strategies reshape single-thread
#: code, so the base machine isolates the compiler effect
DEFAULT_CONFIG = "base"
DEFAULT_THREADS = 1


@dataclass
class StrategyCell:
    """One (app, strategy) point of the sweep."""

    app: str
    strategy: str
    #: content digest of the compiled program (aliasing witness)
    digest: str
    #: simulated cycles on the sweep's machine configuration
    cycles: int
    #: static program size in instructions
    instrs: int
    #: dynamic VL -> vector-instruction count
    vl_hist: Dict[int, int] = field(default_factory=dict)
    #: dynamic instruction counts (total / scalar / vector)
    counts: Dict[str, int] = field(default_factory=dict)
    #: strategy whose program this one is byte-identical to (fallback
    #: or no-op), or None when the strategy produced distinct code
    aliases: Optional[str] = None

    @property
    def vector_ops(self) -> int:
        return sum(self.vl_hist.values())

    @property
    def mean_vl(self) -> float:
        n = self.vector_ops
        if not n:
            return 0.0
        return sum(vl * c for vl, c in self.vl_hist.items()) / n

    @property
    def short_vl_ops(self) -> int:
        """Vector instructions below full MVL (the VLT opportunity)."""
        return sum(c for vl, c in self.vl_hist.items() if vl < MVL)


@dataclass
class TradeoffResult:
    """The full sweep: apps x strategies on one machine point."""

    config: str
    threads: int
    apps: Tuple[str, ...]
    strategies: Tuple[str, ...]
    #: (app, strategy) -> cell
    cells: Dict[Tuple[str, str], StrategyCell]

    def cell(self, app: str, strategy: str) -> StrategyCell:
        return self.cells[(app, strategy)]

    def speedup(self, app: str, strategy: str) -> float:
        """Speedup of ``strategy`` over ``auto`` for one app (>1 means
        the strategy's code ran in fewer simulated cycles)."""
        return (self.cell(app, "auto").cycles
                / self.cell(app, strategy).cycles)

    def total_cycles(self, strategy: str) -> int:
        return sum(self.cell(a, strategy).cycles for a in self.apps)

    def aggregate_speedup(self, strategy: str) -> float:
        return self.total_cycles("auto") / self.total_cycles(strategy)

    def hist_delta(self, app: str, strategy: str) -> Dict[int, int]:
        """Per-VL vector-instruction count delta vs. ``auto`` (only
        VLs whose count changed)."""
        base = self.cell(app, "auto").vl_hist
        cand = self.cell(app, strategy).vl_hist
        out: Dict[int, int] = {}
        for vl in sorted(set(base) | set(cand)):
            d = cand.get(vl, 0) - base.get(vl, 0)
            if d:
                out[vl] = d
        return out


def tradeoff_matrix(apps: Optional[Sequence[str]] = None,
                    strategies: Sequence[str] = STRATEGY_NAMES,
                    config: str = DEFAULT_CONFIG,
                    threads: int = DEFAULT_THREADS) -> List[RunSpec]:
    """The sweep as a run matrix for the parallel runner."""
    cfg = get_config(config)   # fail fast on unknown names
    return [RunSpec(app, cfg.name, threads, strategy=s)
            for app in (apps or compiled_workload_names())
            for s in strategies]


def compiler_tradeoff(apps: Optional[Sequence[str]] = None,
                      strategies: Sequence[str] = STRATEGY_NAMES,
                      config: str = DEFAULT_CONFIG,
                      threads: int = DEFAULT_THREADS,
                      runs: RunMap = None) -> TradeoffResult:
    """Run the sweep; ``runs`` supplies precomputed runner results.

    Every requested app must be a compiled workload -- hand-written
    programs cannot honour a strategy, so sweeping them would silently
    report four copies of the same number.
    """
    apps = list(apps or compiled_workload_names())
    compiled = set(compiled_workload_names())
    unknown = [a for a in apps if a not in compiled]
    if unknown:
        raise ValueError(
            f"compiler-tradeoff sweeps mini-compiler workloads only; "
            f"{unknown} are not compiled (known: {sorted(compiled)})")
    strategies = list(strategies)
    if "auto" not in strategies:
        strategies = ["auto"] + strategies   # the speedup baseline
    cfg = get_config(config)

    #: inline-simulation memo: aliased programs share one replay,
    #: mirroring what the runner's content-addressed result cache does
    inline_cycles: Dict[str, int] = {}

    def _cycles(spec: RunSpec, digest: str) -> int:
        if runs is not None:
            result = runs.get(spec)
            if result is None:
                raise MissingRunError(spec)
            return result.cycles
        if digest not in inline_cycles:
            inline_cycles[digest] = simulate(
                get_workload(spec.app).program(strategy=spec.strategy),
                cfg, num_threads=spec.threads).cycles
        return inline_cycles[digest]

    cells: Dict[Tuple[str, str], StrategyCell] = {}
    for app in apps:
        w = get_workload(app)
        digests: Dict[str, str] = {}
        for strat in strategies:
            prog = w.program(strategy=strat)
            digest = prog.digest()
            aliases = next((s for s, d in digests.items() if d == digest),
                           None)
            digests[strat] = digest
            # trace_for is memoised by digest: aliased strategies and
            # the differential checker all share one functional trace
            trace = trace_for(prog, threads)
            vls = np.concatenate(
                [t.vector_lengths() for t in trace.threads]
                or [np.zeros(0, dtype=np.int64)])
            uniq, cnt = np.unique(vls, return_counts=True)
            cells[(app, strat)] = StrategyCell(
                app=app, strategy=strat, digest=digest,
                cycles=_cycles(
                    RunSpec(app, cfg.name, threads, strategy=strat),
                    digest),
                instrs=len(prog.instrs),
                vl_hist={int(v): int(c) for v, c in zip(uniq, cnt)},
                counts=trace.merged_counts(),
                aliases=aliases)
    return TradeoffResult(config=cfg.name, threads=threads,
                          apps=tuple(apps), strategies=tuple(strategies),
                          cells=cells)


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------

def _fmt_hist(hist: Dict[int, int], top: int = 4) -> str:
    items = sorted(hist.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    s = ", ".join(f"{vl}x{c}" for vl, c in sorted(items))
    more = len(hist) - len(items)
    return s + (f", +{more} more" if more > 0 else "")


def _fmt_delta(delta: Dict[int, int]) -> str:
    if not delta:
        return "unchanged"
    return ", ".join(f"VL{vl}:{c:+d}" for vl, c in delta.items())


def render_tradeoff(res: TradeoffResult) -> str:
    """Figure-4-style report: one section per app, bars per strategy."""
    rows = []
    for app in res.apps:
        for strat in res.strategies:
            c = res.cell(app, strat)
            note = f"= {c.aliases} (fell back)" if c.aliases else "distinct"
            rows.append([
                app, strat, c.cycles, f"{res.speedup(app, strat):.3f}",
                c.instrs, f"{c.mean_vl:.1f}",
                _fmt_hist(c.vl_hist), note])
    out = [R.table(
        ["app", "strategy", "cycles", "speedup", "instrs", "mean VL",
         "VL histogram (VLxcount)", "program"],
        rows,
        f"Compiler tradeoff: vectorization strategies on {res.config} "
        f"({res.threads} thread{'s' if res.threads != 1 else ''})")]

    for app in res.apps:
        out.append(f"\n{app}:")
        vmax = max(res.speedup(app, s) for s in res.strategies)
        for strat in res.strategies:
            s = res.speedup(app, strat)
            out.append(f"  {strat:11s} |{R.bar(s, vmax)} {s:.3f}")
        for strat in res.strategies:
            if strat == "auto" or res.cell(app, strat).aliases:
                continue
            out.append(f"  {strat} VL delta vs auto: "
                       f"{_fmt_delta(res.hist_delta(app, strat))}")

    agg = [[s, res.total_cycles(s), f"{res.aggregate_speedup(s):.3f}",
            sum(1 for a in res.apps if res.cell(a, s).aliases is None)]
           for s in res.strategies]
    out.append("")
    out.append(R.table(
        ["strategy", "total cycles", "speedup vs auto",
         "distinct programs"],
        agg, "Aggregate (sum of cycles across apps)"))
    out.append(
        "\nnote: a fallen-back strategy emits byte-identical code "
        "(legality rules refuse unsafe transforms; see "
        "docs/compiler.md), so its rows alias auto's cached "
        "trace/result rather than re-simulating.")
    return "\n".join(out)


# --------------------------------------------------------------------------
# bench payload (BENCH_compiler_tradeoff.json)
# --------------------------------------------------------------------------

def bench_payload(res: TradeoffResult) -> Dict[str, object]:
    """The ``BENCH_compiler_tradeoff.json`` schema.

    Simulated cycles are deterministic, so unlike the wall-clock bench
    families every metric here is host-independent and CI can gate
    ``speedup_vs_auto`` with exact floors (``compare_bench.py
    --min-metric``).
    """
    import platform
    results: Dict[str, Dict[str, object]] = {}
    for strat in res.strategies:
        mean_num = sum(res.cell(a, strat).mean_vl
                       * res.cell(a, strat).vector_ops for a in res.apps)
        vops = sum(res.cell(a, strat).vector_ops for a in res.apps)
        results[f"strategy_{strat}"] = {
            "total_cycles": res.total_cycles(strat),
            "speedup_vs_auto": round(res.aggregate_speedup(strat), 6),
            "mean_vl": round(mean_num / vops, 3) if vops else 0.0,
            "vector_ops": vops,
            "short_vl_ops": sum(res.cell(a, strat).short_vl_ops
                                for a in res.apps),
            "distinct_programs": sum(
                1 for a in res.apps if res.cell(a, strat).aliases is None),
        }
    for app in res.apps:
        for strat in res.strategies:
            c = res.cell(app, strat)
            results[f"{app}@{strat}"] = {
                "cycles": c.cycles,
                "speedup_vs_auto": round(res.speedup(app, strat), 6),
                "mean_vl": round(c.mean_vl, 3),
                "vector_ops": c.vector_ops,
                "short_vl_ops": c.short_vl_ops,
                "aliased": 0 if c.aliases is None else 1,
            }
    return {
        "benchmark": "compiler_tradeoff",
        "machine": platform.machine(),
        "python": platform.python_version(),
        "config": res.config,
        "threads": res.threads,
        "results": results,
    }
