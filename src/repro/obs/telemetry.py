"""Host-side fleet telemetry for the experiment harness.

PR 1 made the *simulated machine* observable; this module does the same
for the *host-side fleet* that executes it -- the parallel
:class:`~repro.harness.runner.ExperimentRunner`, its worker processes,
the content-addressed :class:`~repro.functional.trace_cache.TraceCache`
and the replay engines.  Four pieces, all host-wall-clock:

* **Spans** -- lightweight nested intervals
  (``with span("timing_replay", engine="columnar"):``) recorded into an
  ambient per-process :class:`SpanCollector`.  When no collector is
  installed (the default) a span is a bare ``perf_counter`` pair and
  records nothing.  :class:`~repro.obs.hostprof.PhaseProfiler` times its
  phases *through* this primitive, so every already-instrumented
  simulation phase (``program_build``, cache load/store,
  ``trace_generation``, ``setup``, ``replay``, ``stats``, the
  differential check) doubles as a span for free.

* **Run ledger** -- one structured JSONL record per run *attempt*
  (schema :data:`LEDGER_SCHEMA`), written by the parent process through
  :class:`JsonlWriter` -- one ``os.write`` per line on an ``O_APPEND``
  descriptor, so a crashing worker can never leave a torn record.

* **Aggregation** -- :class:`TelemetryReader` folds ledgers into fleet
  metrics: throughput (cycles/s), worker utilization, queue-wait
  percentiles, cache hit rates, retry/quarantine counts, per-phase
  totals and failure classes.

* **Timeline** -- :func:`spans_to_chrome_trace` renders the merged span
  store as Chrome trace-event JSON (one track per worker process), so a
  ``--jobs N`` sweep loads in Perfetto as a visual fleet schedule, the
  host-side twin of :mod:`repro.obs.chrome_trace`.

Bench trend tracking rides along: :func:`append_bench_history` files
``BENCH_*.json`` snapshots under ``benchmarks/history/`` and
:func:`bench_trend_report` compares the last K entries
(``vlt-repro tele trend``).

Span times use ``time.time()`` for start stamps (comparable across the
processes of one host) and ``time.perf_counter()`` for durations.
"""

from __future__ import annotations

import json
import os
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .chrome_trace import track_metadata

#: run-ledger record schema version (bump on breaking field changes).
#: Schema 3 added the job-service provenance fields ``tenant`` and
#: ``job_id`` (both None for CLI/runner sweeps).
LEDGER_SCHEMA = 3

#: every field of a schema-3 run record, in canonical order; the golden
#: ledger test asserts records carry exactly these keys
RUN_RECORD_FIELDS = (
    "schema", "app", "config", "threads", "scalar_only", "engine",
    "func_engine", "attempt", "worker", "tenant", "job_id",
    "outcome", "error_type",
    "cycles", "wall_s",
    "queue_wait_s", "t_start", "t_end", "result_cached", "trace_cached",
    "program_digest", "config_digest", "phases", "cache",
)

#: run-attempt outcomes a ledger record may carry
RUN_OUTCOMES = ("ok", "error", "crash")


# --------------------------------------------------------------------------
# Spans
# --------------------------------------------------------------------------

class SpanHandle:
    """What :func:`span` yields: the measured duration, collector or not."""

    __slots__ = ("dur_s",)

    def __init__(self) -> None:
        self.dur_s = 0.0


class SpanCollector:
    """Per-process recorder of nested spans (merged in the parent).

    Spans are plain dicts (``name``/``t0``/``dur_s``/``parent``/
    ``attrs``); ``parent`` is the index of the enclosing span within
    this collector's list, ``None`` at top level.  ``t0`` is an epoch
    timestamp so spans from different processes align on one timeline.
    """

    def __init__(self, worker: Optional[str] = None) -> None:
        self.worker = worker if worker is not None else f"w{os.getpid()}"
        self.spans: List[Dict[str, object]] = []
        self._stack: List[int] = []

    def open(self, name: str, attrs: Optional[Dict[str, object]]) -> int:
        idx = len(self.spans)
        self.spans.append({
            "name": name, "t0": time.time(), "dur_s": 0.0,
            "parent": self._stack[-1] if self._stack else None,
            "attrs": dict(attrs) if attrs else {}})
        self._stack.append(idx)
        return idx

    def close(self, idx: int, dur_s: float) -> None:
        self.spans[idx]["dur_s"] = dur_s
        # pop down to (and including) idx -- robust against a child
        # span leaked open by an exception path
        while self._stack:
            top = self._stack.pop()
            if top == idx:
                break


#: the ambient collector :func:`span` records into (None = disabled)
_ACTIVE: Optional[SpanCollector] = None


def set_span_collector(
        collector: Optional[SpanCollector]) -> Optional[SpanCollector]:
    """Install the ambient span collector; returns the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = collector
    return prev


def get_span_collector() -> Optional[SpanCollector]:
    """The ambient span collector, if any."""
    return _ACTIVE


@contextmanager
def span(name: str, **attrs: object) -> Iterator[SpanHandle]:
    """Record one nested host-side span (no-op timing when disabled).

    Always yields a :class:`SpanHandle` whose ``dur_s`` is valid after
    the block -- :class:`~repro.obs.hostprof.PhaseProfiler` reuses that
    measurement so phases and spans cannot disagree.
    """
    col = _ACTIVE
    handle = SpanHandle()
    idx = col.open(name, attrs) if col is not None else None
    t0 = time.perf_counter()
    try:
        yield handle
    finally:
        handle.dur_s = time.perf_counter() - t0
        if col is not None:
            col.close(idx, handle.dur_s)


# --------------------------------------------------------------------------
# JSONL ledger
# --------------------------------------------------------------------------

class JsonlWriter:
    """Append-only JSONL writer with atomic whole-line appends.

    The file descriptor is opened ``O_APPEND`` and every record goes out
    as exactly one ``os.write`` of one ``\\n``-terminated line, so the
    file never contains a torn record even if the process dies mid-sweep
    -- at worst the final line is missing entirely.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def append(self, record: Mapping[str, object]) -> None:
        if self._fd is None:
            raise ValueError(f"writer for {self.path} is closed")
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except OSError:
            pass


def read_jsonl(path) -> List[Dict[str, object]]:
    """Parse a JSONL file; silently drops corrupt/partial lines.

    A missing file reads as empty -- callers treat "no telemetry yet"
    and "empty telemetry" the same way.
    """
    records: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue   # torn tail from a killed writer
                if isinstance(rec, dict):
                    records.append(rec)
    except FileNotFoundError:
        pass
    return records


def validate_run_record(record: Mapping[str, object]) -> List[str]:
    """Schema check for one ledger record; returns problem strings."""
    problems: List[str] = []
    keys = set(record)
    missing = set(RUN_RECORD_FIELDS) - keys
    extra = keys - set(RUN_RECORD_FIELDS)
    if missing:
        problems.append(f"missing fields: {sorted(missing)}")
    if extra:
        problems.append(f"unknown fields: {sorted(extra)}")
    if record.get("schema") != LEDGER_SCHEMA:
        problems.append(f"schema {record.get('schema')!r} != "
                        f"{LEDGER_SCHEMA}")
    if record.get("outcome") not in RUN_OUTCOMES:
        problems.append(f"outcome {record.get('outcome')!r} not in "
                        f"{RUN_OUTCOMES}")
    if not isinstance(record.get("attempt"), int) \
            or record.get("attempt", 0) < 1:
        problems.append(f"attempt {record.get('attempt')!r} is not a "
                        f"positive int")
    if record.get("outcome") == "ok" \
            and not isinstance(record.get("cycles"), int):
        problems.append("ok record without integer cycles")
    return problems


# --------------------------------------------------------------------------
# Telemetry session (what ExperimentRunner writes into)
# --------------------------------------------------------------------------

class Telemetry:
    """One sweep's telemetry sink: run ledger + span store + timeline.

    Everything lands under one directory::

        <dir>/ledger.jsonl     one record per run attempt (schema above)
        <dir>/spans.jsonl      merged spans, one per line, with globally
                               remapped ``id``/``parent`` and a
                               ``worker`` track label
        <dir>/timeline.json    Chrome trace-event export of the spans

    Only the parent process writes; workers ship their spans back inside
    the run payloads.
    """

    def __init__(self, directory) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.ledger_path = self.dir / "ledger.jsonl"
        self.spans_path = self.dir / "spans.jsonl"
        self.timeline_path = self.dir / "timeline.json"
        self._ledger = JsonlWriter(self.ledger_path)
        self._spans = JsonlWriter(self.spans_path)
        self._span_seq = len(read_jsonl(self.spans_path))

    def record(self, record: Mapping[str, object]) -> None:
        """Append one run-attempt record to the ledger."""
        self._ledger.append(record)

    def add_spans(self, worker: str,
                  spans: Sequence[Mapping[str, object]]) -> None:
        """Merge one process's span batch into the global span store.

        Collector-local ``parent`` indices are remapped to globally
        unique ``id``s so nesting survives the merge across batches and
        process boundaries.
        """
        base = self._span_seq
        for i, sp in enumerate(spans):
            parent = sp.get("parent")
            self._spans.append({
                "id": base + i,
                "parent": base + parent if parent is not None else None,
                "worker": worker, "name": sp.get("name"),
                "t0": sp.get("t0"), "dur_s": sp.get("dur_s"),
                "attrs": sp.get("attrs") or {}})
        self._span_seq = base + len(spans)

    def reader(self) -> "TelemetryReader":
        return TelemetryReader.from_path(self.ledger_path)

    def write_timeline(self, path=None) -> int:
        """Export the span store as Chrome trace JSON; returns the
        number of span records written."""
        out = Path(path) if path is not None else self.timeline_path
        spans = read_jsonl(self.spans_path)
        doc = spans_to_chrome_trace(_group_spans(spans))
        with open(out, "w") as fh:
            json.dump(doc, fh)
        return sum(1 for r in doc["traceEvents"] if r["ph"] != "M")

    def close(self) -> None:
        self._ledger.close()
        self._spans.close()


def _group_spans(spans: Sequence[Mapping[str, object]]
                 ) -> Dict[str, List[Mapping[str, object]]]:
    groups: Dict[str, List[Mapping[str, object]]] = {}
    for sp in spans:
        groups.setdefault(str(sp.get("worker", "?")), []).append(sp)
    return groups


def spans_to_chrome_trace(spans_by_worker: Mapping[
        str, Sequence[Mapping[str, object]]],
        process_name: str = "vlt-fleet",
        t0: Optional[float] = None) -> dict:
    """Chrome trace-event JSON for host-side spans, one track per worker.

    ``ts`` is microseconds since ``t0`` (default: the earliest span), so
    wall time reads directly in Perfetto; worker tracks sort with the
    parent first, then by label.
    """
    all_spans = [sp for spans in spans_by_worker.values() for sp in spans]
    if t0 is None:
        t0 = min((float(sp["t0"]) for sp in all_spans
                  if sp.get("t0") is not None), default=0.0)
    tids = {worker: i + 1
            for i, worker in enumerate(sorted(
                spans_by_worker,
                key=lambda w: (w != "parent", w)))}
    records: List[dict] = []
    for worker, spans in spans_by_worker.items():
        tid = tids[worker]
        for sp in spans:
            if sp.get("t0") is None:
                continue
            args = dict(sp.get("attrs") or {})
            records.append({
                "name": str(sp.get("name")), "cat": "host", "ph": "X",
                "ts": (float(sp["t0"]) - t0) * 1e6,
                "dur": max(1.0, float(sp.get("dur_s") or 0.0) * 1e6),
                "pid": 1, "tid": tid, "args": args})
    meta = track_metadata(tids, process_name=process_name,
                          sort_tracks=False)
    return {
        "traceEvents": meta + records,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 ts = 1 host microsecond",
                      "t0_epoch_s": t0},
    }


def write_timeline(telemetry_dir, out_path=None) -> int:
    """Rebuild ``timeline.json`` from a telemetry directory's span store
    (the ``vlt-repro tele timeline`` verb); returns the record count."""
    tele_dir = Path(telemetry_dir)
    spans = read_jsonl(tele_dir / "spans.jsonl")
    doc = spans_to_chrome_trace(_group_spans(spans))
    out = Path(out_path) if out_path is not None \
        else tele_dir / "timeline.json"
    with open(out, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for r in doc["traceEvents"] if r["ph"] != "M")


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------

def _percentile(values: Sequence[float], pct: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1,
              max(0, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[idx]


class TelemetryReader:
    """Aggregates run-ledger records into fleet-level metrics."""

    def __init__(self, records: Sequence[Mapping[str, object]]) -> None:
        self.records = [r for r in records
                        if r.get("schema") == LEDGER_SCHEMA]

    @classmethod
    def from_path(cls, path) -> "TelemetryReader":
        return cls(read_jsonl(path))

    def fleet_metrics(self) -> Dict[str, object]:
        """One dict of sweep-level aggregates (see keys below)."""
        recs = self.records
        ok = [r for r in recs if r.get("outcome") == "ok"]
        errors = [r for r in recs if r.get("outcome") == "error"]
        crashes = [r for r in recs if r.get("outcome") == "crash"]
        def run_key(r):
            return (r.get("app"), r.get("config"), r.get("threads"),
                    r.get("scalar_only"))

        runs = {run_key(r) for r in recs}
        ok_runs = {run_key(r) for r in ok}
        cached = [r for r in ok if r.get("result_cached")]
        trace_cached = [r for r in ok if r.get("trace_cached")]

        t_starts = [float(r["t_start"]) for r in recs
                    if r.get("t_start") is not None]
        t_ends = [float(r["t_end"]) for r in recs
                  if r.get("t_end") is not None]
        span_s = (max(t_ends) - min(t_starts)) \
            if t_starts and t_ends else 0.0
        busy_s = sum(float(r["wall_s"]) for r in recs
                     if r.get("wall_s") is not None)
        workers = sorted({str(r["worker"]) for r in recs
                          if r.get("worker") is not None})
        utilization = (busy_s / (len(workers) * span_s)
                       if workers and span_s > 0 else None)

        # Queue-wait stamps cross process boundaries (submit in the
        # parent, start in a worker): clock skew between them can make
        # the difference negative, which would corrupt the percentiles.
        # Clamp each record at >= 0 and surface how many were clamped.
        raw_waits = [float(r["queue_wait_s"]) for r in recs
                     if r.get("queue_wait_s") is not None]
        waits_clamped = sum(1 for w in raw_waits if w < 0.0)
        waits = [max(0.0, w) for w in raw_waits]
        cycles = sum(int(r["cycles"]) for r in ok
                     if r.get("cycles") is not None)

        cache_totals: Dict[str, int] = {}
        for r in recs:
            for k, v in (r.get("cache") or {}).items():
                cache_totals[k] = cache_totals.get(k, 0) + int(v)

        def hit_rate(kind: str) -> Optional[float]:
            hits = cache_totals.get(f"{kind}_hits", 0)
            misses = cache_totals.get(f"{kind}_misses", 0)
            return hits / (hits + misses) if hits + misses else None

        phase_totals: Dict[str, Dict[str, float]] = {}
        for r in recs:
            for name, row in (r.get("phases") or {}).items():
                agg = phase_totals.setdefault(
                    name, {"wall_s": 0.0, "calls": 0})
                agg["wall_s"] += float(row.get("wall_s", 0.0))
                agg["calls"] += int(row.get("calls", 0))

        failure_classes: Dict[str, int] = {}
        for r in errors + crashes:
            key = str(r.get("error_type") or "unknown")
            failure_classes[key] = failure_classes.get(key, 0) + 1

        engine_mix: Dict[str, int] = {}
        func_engine_mix: Dict[str, int] = {}
        tenant_mix: Dict[str, int] = {}
        for r in recs:
            eng = str(r.get("engine") or "unknown")
            engine_mix[eng] = engine_mix.get(eng, 0) + 1
            feng = str(r.get("func_engine") or "unknown")
            func_engine_mix[feng] = func_engine_mix.get(feng, 0) + 1
            if r.get("tenant") is not None:   # service-submitted runs
                ten = str(r["tenant"])
                tenant_mix[ten] = tenant_mix.get(ten, 0) + 1

        return {
            "attempts": len(recs),
            "runs": len(runs),
            "ok": len(ok),
            "ok_runs": len(ok_runs),
            "errors": len(errors),
            "crashes": len(crashes),
            "retried_attempts": sum(1 for r in recs
                                    if int(r.get("attempt") or 1) > 1),
            "result_cache_served": len(cached),
            "trace_cache_served": len(trace_cached),
            "workers": workers,
            "sweep_wall_s": span_s,
            "busy_wall_s": busy_s,
            "worker_utilization": utilization,
            "queue_wait_p50_s": _percentile(waits, 50),
            "queue_wait_p95_s": _percentile(waits, 95),
            "queue_wait_clamped": waits_clamped,
            "total_cycles": cycles,
            "throughput_cycles_per_s": (cycles / span_s
                                        if span_s > 0 else None),
            "engine_mix": engine_mix,
            "func_engine_mix": func_engine_mix,
            "tenant_mix": tenant_mix,
            "cache_counters": cache_totals,
            "trace_cache_hit_rate": hit_rate("trace"),
            "result_cache_hit_rate": hit_rate("result"),
            "phase_totals": phase_totals,
            "failure_classes": failure_classes,
        }

    def report(self) -> str:
        """Human-readable fleet report of the aggregated ledger."""
        if not self.records:
            return "fleet telemetry: no ledger records"
        m = self.fleet_metrics()

        def pct(x: Optional[float]) -> str:
            return f"{x:.1%}" if x is not None else "n/a"

        def secs(x: Optional[float]) -> str:
            return f"{x * 1e3:.1f} ms" if x is not None else "n/a"

        lines = [
            f"fleet telemetry: {m['ok_runs']}/{m['runs']} runs ok over "
            f"{m['attempts']} attempts "
            f"({m['errors']} errors, {m['crashes']} crashes, "
            f"{m['retried_attempts']} retried attempts)",
            f"  workers: {len(m['workers'])}  sweep wall "
            f"{m['sweep_wall_s']:.2f} s  busy {m['busy_wall_s']:.2f} s  "
            f"utilization {pct(m['worker_utilization'])}",
            f"  throughput: {m['total_cycles']:,} simulated cycles"
            + (f" ({m['throughput_cycles_per_s']:,.0f} cycles/s)"
               if m["throughput_cycles_per_s"] is not None else ""),
            f"  queue wait: p50 {secs(m['queue_wait_p50_s'])}, "
            f"p95 {secs(m['queue_wait_p95_s'])}"
            + (f"  [{m['queue_wait_clamped']} record(s) clamped to 0 "
               f"-- negative cross-process stamps]"
               if m["queue_wait_clamped"] else ""),
            f"  cache: result hit rate {pct(m['result_cache_hit_rate'])} "
            f"({m['result_cache_served']} runs served), trace hit rate "
            f"{pct(m['trace_cache_hit_rate'])}",
            "  engines: timing " + ", ".join(
                f"{k} x{v}" for k, v in sorted(m["engine_mix"].items()))
            + "; functional " + ", ".join(
                f"{k} x{v}"
                for k, v in sorted(m["func_engine_mix"].items())),
        ]
        if m["tenant_mix"]:
            lines.append("  tenants: " + ", ".join(
                f"{k} x{v}" for k, v in sorted(m["tenant_mix"].items())))
        if m["phase_totals"]:
            total = sum(p["wall_s"] for p in m["phase_totals"].values())
            top = sorted(m["phase_totals"].items(),
                         key=lambda kv: -kv[1]["wall_s"])[:6]
            lines.append("  hottest phases: " + ", ".join(
                f"{name} {row['wall_s']:.2f}s"
                f" ({row['wall_s'] / total:.0%})" if total else name
                for name, row in top))
        if m["failure_classes"]:
            lines.append("  failure classes: " + ", ".join(
                f"{k} x{v}"
                for k, v in sorted(m["failure_classes"].items())))
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Bench-trend history
# --------------------------------------------------------------------------

#: (result key, metric) pairs tracked by the trend report -- mirrors the
#: gate list in benchmarks/compare_bench.py
TREND_METRICS = (
    ("end_to_end", "cycles_per_s"),
    ("timing_replay", "cycles_per_s"),
    ("timing_replay_columnar", "cycles_per_s"),
    ("functional", "ops_per_s"),
    ("trace_generation_fast", "ops_per_s"),
    ("duplicate_burst", "jobs_per_s"),
    ("duplicate_burst", "dedupe_fraction"),
    ("mixed_load", "jobs_per_s"),
    ("strategy_padding", "speedup_vs_auto"),
    ("strategy_peeling", "speedup_vs_auto"),
    ("strategy_unroll_jam", "speedup_vs_auto"),
)


def append_bench_history(bench_json_path, history_dir) -> Path:
    """File a ``BENCH_*.json`` snapshot into the bench history series.

    The snapshot is copied to ``<history_dir>/<benchmark>-<seq>.json``
    with ``seq`` (monotonic) and ``recorded_at`` (UTC) stamped into the
    payload, turning one-off bench files into an ordered time series.
    """
    payload = json.loads(Path(bench_json_path).read_text())
    name = str(payload.get("benchmark", "bench"))
    hist = Path(history_dir)
    hist.mkdir(parents=True, exist_ok=True)
    seqs = []
    for p in hist.glob(f"{name}-*.json"):
        m = re.match(re.escape(name) + r"-(\d+)$", p.stem)
        if m:
            seqs.append(int(m.group(1)))
    seq = max(seqs) + 1 if seqs else 0
    entry = dict(payload)
    entry["seq"] = seq
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime())
    out = hist / f"{name}-{seq:04d}.json"
    out.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return out


def bench_history_entries(history_dir) -> List[Dict[str, object]]:
    """Load every history snapshot, oldest first (by sequence name)."""
    hist = Path(history_dir)
    entries: List[Dict[str, object]] = []
    if not hist.is_dir():
        return entries
    for p in sorted(hist.glob("*.json")):
        try:
            payload = json.loads(p.read_text())
        except ValueError:
            continue
        if isinstance(payload, dict):
            payload.setdefault("_file", p.name)
            entries.append(payload)
    return entries


def bench_trend_report(history_dir, last: int = 5) -> str:
    """Trend table over the last ``last`` bench-history entries."""
    entries = bench_history_entries(history_dir)
    if not entries:
        return f"bench trend: no history entries under {history_dir}"
    window = entries[-last:]
    labels = [f"{key}.{metric}" for key, metric in TREND_METRICS]
    width = max(len(lbl) for lbl in labels)

    def value(entry, key, metric) -> Optional[float]:
        row = entry.get("results", {}).get(key)
        if not isinstance(row, dict):
            return None
        try:
            v = float(row.get(metric))
        except (TypeError, ValueError):
            return None
        return v

    lines = [f"bench trend ({len(window)} of {len(entries)} entries, "
             f"newest last):"]
    header = f"  {'metric':<{width}}"
    for entry in window:
        header += f"  #{entry.get('seq', '?'):>4}"
    lines.append(header)
    for (key, metric), label in zip(TREND_METRICS, labels):
        row = f"  {label:<{width}}"
        series = [value(e, key, metric) for e in window]
        for v in series:
            if v is None:
                row += "      -"
            elif v >= 10_000:            # throughput-scale values
                row += f"  {v / 1e3:>5,.0f}k"
            else:                        # jobs/s, fractions, ...
                row += f"  {v:>6,.2f}"
        present = [v for v in series if v is not None]
        if len(present) >= 2 and present[0]:
            row += f"   {present[-1] / present[0] - 1.0:+.0%} over window"
        lines.append(row)
    stamps = [str(e.get("recorded_at", "?")) for e in window]
    lines.append(f"  recorded: {stamps[0]} .. {stamps[-1]}")
    return "\n".join(lines)
