"""Metrics registry: named counters and histograms fed by the event bus.

This supersedes the ad-hoc "add another int field to a stats dataclass"
pattern for *derived* observability data while keeping
:class:`~repro.timing.stats.RunResult` backward-compatible: the raw
per-unit dataclasses stay (cheap, always-on), and the registry holds the
richer distributions that are only worth collecting when a run is
traced:

* ``vl`` -- the dynamic vector-length distribution (the short-vector
  waste of Figures 1 and 4 is a direct function of this histogram);
* ``stall_cycles`` -- lost cycles keyed by ``unit/reason`` (the
  stall-attribution report's input);
* ``l2_bank_conflict_timeline`` -- bank-conflict cycles bucketed over
  simulated time (bursts line up with strided vector phases);
* per-unit issue/commit counters that cross-check the always-on stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import (BANK_CONFLICT, BARRIER_RELEASE, CACHE_MISS, COMMIT,
                     ISSUE, LANE_ISSUE, STALL, VISSUE, VLCFG, Event)


class Counter:
    """A named monotonically-increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A named integer-valued histogram (exact, sparse buckets).

    Buckets are the observed values themselves; ``observe(v, weight)``
    adds ``weight`` to bucket ``v``.  Exact buckets are the right choice
    here: VLs are small ints, stall durations are cycle counts, and the
    exporters want faithful distributions, not quantile sketches.
    """

    __slots__ = ("name", "buckets", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int, weight: int = 1) -> None:
        self.buckets[value] = self.buckets.get(value, 0) + weight
        self.count += weight
        self.total += value * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Exact percentile (0..100) over observed values."""
        if not self.count:
            return 0
        target = p / 100.0 * self.count
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen >= target:
                return value
        return max(self.buckets)

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self.buckets.items())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


class MetricsRegistry:
    """Namespace of counters and histograms for one simulation run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def get(self, name: str) -> Optional[object]:
        return self._counters.get(name) or self._histograms.get(name)

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible dump of everything in the registry."""
        return {
            "counters": self.counters(),
            "histograms": {
                name: {"count": h.count, "total": h.total, "mean": h.mean,
                       "buckets": {str(k): v for k, v in h.items()}}
                for name, h in sorted(self._histograms.items())},
        }


class MetricsSink:
    """Event-bus sink that folds the event stream into a registry.

    Metric names (all deterministic, suitable for regression diffing):

    * ``issued.scalar`` / ``issued.vector`` / ``issued.lane`` /
      ``committed.scalar`` -- global instruction counters;
    * ``issued.<unit>`` -- per-unit issue counters;
    * ``vl`` -- vector-length histogram (one observation per vector
      instruction issued);
    * ``stall.<unit>.<reason>`` -- lost-cycle counters;
    * ``stall_dur.<reason>`` -- stall-duration histogram per reason;
    * ``cache_miss.<cache>`` -- tag-miss counters per cache instance;
    * ``l2.bank_conflict_cycles`` -- total bank-conflict delay;
    * ``l2_bank_conflict_timeline`` -- histogram keyed by
      ``cycle // timeline_bucket`` whose weights are conflict cycles;
    * ``barriers`` / ``vlcfg`` -- synchronisation counters.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 timeline_bucket: int = 1024) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeline_bucket = timeline_bucket
        reg = self.registry
        # pre-create the hot metrics so on_event stays dict-lookup cheap
        self._issued_scalar = reg.counter("issued.scalar")
        self._issued_vector = reg.counter("issued.vector")
        self._issued_lane = reg.counter("issued.lane")
        self._committed = reg.counter("committed.scalar")
        self._vl = reg.histogram("vl")
        self._conflict = reg.counter("l2.bank_conflict_cycles")
        self._timeline = reg.histogram("l2_bank_conflict_timeline")
        self._barriers = reg.counter("barriers")
        self._vlcfg = reg.counter("vlcfg")

    def on_event(self, ev: Event) -> None:
        kind = ev.kind
        reg = self.registry
        if kind == ISSUE:
            self._issued_scalar.inc()
            reg.counter(f"issued.{ev.unit}").inc()
        elif kind == VISSUE:
            self._issued_vector.inc()
            reg.counter(f"issued.{ev.unit}").inc()
            self._vl.observe(ev.vl)
        elif kind == LANE_ISSUE:
            self._issued_lane.inc()
            reg.counter(f"issued.{ev.unit}").inc()
        elif kind == COMMIT:
            self._committed.inc()
        elif kind == STALL:
            reason = ev.reason.value if ev.reason is not None else "unknown"
            reg.counter(f"stall.{ev.unit}.{reason}").inc(ev.dur)
            reg.histogram(f"stall_dur.{reason}").observe(ev.dur)
        elif kind == CACHE_MISS:
            reg.counter(f"cache_miss.{ev.arg}").inc()
        elif kind == BANK_CONFLICT:
            self._conflict.inc(ev.dur)
            self._timeline.observe(ev.cycle // self.timeline_bucket, ev.dur)
        elif kind == BARRIER_RELEASE:
            self._barriers.inc()
        elif kind == VLCFG:
            self._vlcfg.inc()

    # -- convenience views ---------------------------------------------------

    def stall_breakdown(self) -> Dict[str, Dict[str, int]]:
        """``unit -> reason -> lost cycles`` from the collected counters."""
        out: Dict[str, Dict[str, int]] = {}
        for name, value in self.registry.counters().items():
            if not name.startswith("stall."):
                continue
            # unit names may contain dots (SU0.c1); reasons never do
            unit, reason = name[len("stall."):].rsplit(".", 1)
            out.setdefault(unit, {})[reason] = value
        return out

    def conflict_timeline(self) -> List[Tuple[int, int]]:
        """``(bucket_start_cycle, conflict_cycles)`` pairs, sorted."""
        h = self._timeline
        return [(b * self.timeline_bucket, w) for b, w in h.items()]
