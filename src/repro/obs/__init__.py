"""Observability subsystem: event tracing, metrics, exporters, profiling.

The timing simulator (:mod:`repro.timing`) emits typed events -- issues,
commits, stalls-with-reason, cache misses, bank conflicts, barriers,
VL reconfigurations -- onto an :class:`EventBus`.  When no sink is
attached (the default), every emission site short-circuits on a single
``bus.enabled`` check: tracing costs nothing and simulated cycle counts
are bit-identical to an uninstrumented run.

Building blocks:

* :mod:`repro.obs.events` -- the bus, the typed :class:`Event`, the
  :class:`StallReason` taxonomy and the bounded :class:`EventLog` sink;
* :mod:`repro.obs.metrics` -- a counter/histogram registry fed by
  :class:`MetricsSink` (VL distribution, per-unit stall breakdown,
  L2 bank-conflict timeline);
* :mod:`repro.obs.chrome_trace` -- Chrome trace-event JSON export for
  Perfetto / chrome://tracing occupancy timelines;
* :mod:`repro.obs.stall_report` -- the top-down Figure-4-style
  stall-attribution report;
* :mod:`repro.obs.hostprof` -- host-side wall-time profiling of the
  simulation phases themselves;
* :mod:`repro.obs.telemetry` -- fleet telemetry for the experiment
  harness: nested host-side spans, the JSONL run ledger, fleet-metric
  aggregation, the per-worker Perfetto timeline and bench-trend
  history (``vlt-repro tele report|timeline|trend``).

The one-call entry point is
:func:`repro.timing.run.simulate_traced`; the CLI surface is
``vlt-repro trace`` and ``vlt-repro profile``.
"""

from .chrome_trace import to_chrome_trace, track_metadata, \
    write_chrome_trace
from .events import (BANK_CONFLICT, BARRIER_ARRIVE, BARRIER_RELEASE,
                     CACHE_MISS, COMMIT, EVENT_KINDS, Event, EventBus,
                     EventLog, ISSUE, LANE_ISSUE, NULL_BUS, STALL,
                     StallReason, VERIFY, VISSUE, VLCFG)
from .hostprof import PhaseProfiler, PhaseTiming
from .metrics import Counter, Histogram, MetricsRegistry, MetricsSink
from .stall_report import render_stall_report, stall_attribution
from .telemetry import (LEDGER_SCHEMA, RUN_RECORD_FIELDS, JsonlWriter,
                        SpanCollector, Telemetry, TelemetryReader,
                        append_bench_history, bench_trend_report,
                        get_span_collector, read_jsonl,
                        set_span_collector, span, spans_to_chrome_trace,
                        validate_run_record, write_timeline)

__all__ = [
    "BANK_CONFLICT", "BARRIER_ARRIVE", "BARRIER_RELEASE", "CACHE_MISS",
    "COMMIT", "EVENT_KINDS", "Event", "EventBus", "EventLog", "ISSUE",
    "LANE_ISSUE", "NULL_BUS", "STALL", "StallReason", "VERIFY", "VISSUE",
    "VLCFG",
    "PhaseProfiler", "PhaseTiming",
    "Counter", "Histogram", "MetricsRegistry", "MetricsSink",
    "to_chrome_trace", "track_metadata", "write_chrome_trace",
    "render_stall_report", "stall_attribution",
    "LEDGER_SCHEMA", "RUN_RECORD_FIELDS", "JsonlWriter", "SpanCollector",
    "Telemetry", "TelemetryReader", "append_bench_history",
    "bench_trend_report", "get_span_collector", "read_jsonl",
    "set_span_collector", "span", "spans_to_chrome_trace",
    "validate_run_record", "write_timeline",
]
