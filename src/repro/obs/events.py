"""Typed simulation events and the event bus.

The observability layer is built around one invariant: **when nothing is
attached, instrumentation costs (almost) nothing**.  Every emission site
in the timing simulator is guarded by a single attribute check::

    obs = self.obs
    if obs.enabled:
        obs.emit(Event(...))

A disabled :class:`EventBus` (the "null sink" fast path) never allocates
an :class:`Event` and never calls a sink, so the timing model's cycle
counts and wall time are unchanged.  When at least one sink is attached
the bus becomes enabled and every typed event produced by the timing
units flows to all sinks in emission order (which is deterministic,
because the simulator itself is deterministic).

Event taxonomy
--------------

========== ==================================================================
kind        meaning
========== ==================================================================
ISSUE       a scalar-unit context issued an instruction to execution
VISSUE      the VCL issued a vector instruction to a partition FU slice
LANE_ISSUE  a lane core (Section 5 mode) issued an instruction
COMMIT      a scalar-unit ROB head committed
STALL       a unit lost cycles for an attributable reason (see
            :class:`StallReason`); ``dur`` is the lost-cycle count
CACHE_MISS  a tag-array miss in any modelled cache (L1I/L1D/lane-I$/L2)
BANK_CONFLICT  an L2 bank transaction was delayed behind a busy bank;
            ``dur`` is the delay in cycles
BARRIER_ARRIVE / BARRIER_RELEASE  thread barrier lifecycle
VLCFG       a dynamic VLT repartition (``vltcfg``) took effect
VERIFY      the program verifier reported a finding; ``arg`` is the
            :class:`repro.verify.findings.Finding` (cycle is always 0 --
            findings are static, not timed)
========== ==================================================================
"""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..functional.trace import DynOp

# -- event kinds (interned strings: cheap to construct/compare) -------------

ISSUE = "issue"
VISSUE = "vissue"
LANE_ISSUE = "lane_issue"
COMMIT = "commit"
STALL = "stall"
CACHE_MISS = "cache_miss"
BANK_CONFLICT = "bank_conflict"
BARRIER_ARRIVE = "barrier_arrive"
BARRIER_RELEASE = "barrier_release"
VLCFG = "vlcfg"
VERIFY = "verify"

EVENT_KINDS = frozenset({
    ISSUE, VISSUE, LANE_ISSUE, COMMIT, STALL, CACHE_MISS, BANK_CONFLICT,
    BARRIER_ARRIVE, BARRIER_RELEASE, VLCFG, VERIFY})


class StallReason(enum.Enum):
    """Why a unit lost cycles -- the stall taxonomy of
    ``docs/timing-model.md`` made machine-readable.

    Scalar-unit reasons:

    * ``L1I_MISS`` -- fetch stalled on an instruction-cache refill;
    * ``BRANCH_MISPREDICT`` -- fetch stalled from a mispredicted branch's
      fetch until its execution plus the redirect penalty;
    * ``VIQ_FULL`` -- vector dispatch blocked because the thread's VIQ
      partition slice is full (vector-unit backpressure);
    * ``VRENAME_FULL`` -- vector dispatch blocked on physical
      vector-register renaming budget (Table 3: 64 physical registers).

    Lane-core reasons (Section 5 lanes-as-scalar-cores mode):

    * ``LANE_IMISS`` -- lane I-cache miss, serviced through the SU;
    * ``OPERAND`` -- in-order execute stream blocked on a not-ready
      source operand (the decoupled access stream may still slip ahead);
    * ``LANE_MISPREDICT`` -- shallow-pipeline branch mispredict.
    """

    L1I_MISS = "l1i_miss"
    BRANCH_MISPREDICT = "branch_mispredict"
    VIQ_FULL = "viq_full"
    VRENAME_FULL = "vrename_full"
    LANE_IMISS = "lane_imiss"
    OPERAND = "operand"
    LANE_MISPREDICT = "lane_mispredict"


class Event:
    """One typed simulation event.

    ``dynop`` is the live :class:`~repro.functional.trace.DynOp` for
    instruction events (``ISSUE``/``VISSUE``/``LANE_ISSUE``/``COMMIT``)
    and ``None`` otherwise.  ``dur`` carries a duration in cycles where
    meaningful (issue latency / FU occupancy / stall length / bank
    delay).  ``arg`` is a kind-specific payload (cache/FU label, address,
    bank index, partition count...).
    """

    __slots__ = ("cycle", "kind", "unit", "dynop", "dur", "reason", "arg")

    def __init__(self, cycle: int, kind: str, unit: str,
                 dynop: Optional[DynOp] = None, dur: int = 0,
                 reason: Optional[StallReason] = None, arg=None):
        self.cycle = cycle
        self.kind = kind
        self.unit = unit
        self.dynop = dynop
        self.dur = dur
        self.reason = reason
        self.arg = arg

    # Convenience accessors for instruction events --------------------------

    @property
    def op(self) -> str:
        return self.dynop.op if self.dynop is not None else ""

    @property
    def pc(self) -> int:
        return self.dynop.pc if self.dynop is not None else -1

    @property
    def vl(self) -> int:
        return self.dynop.vl if self.dynop is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"c{self.cycle}", self.kind, self.unit]
        if self.dynop is not None:
            bits.append(self.op)
        if self.reason is not None:
            bits.append(self.reason.value)
        if self.dur:
            bits.append(f"dur={self.dur}")
        return "<Event " + " ".join(bits) + ">"


class EventBus:
    """Dispatches typed events to attached sinks.

    ``enabled`` is the hot-path gate: emission sites check it before
    constructing an :class:`Event`.  It flips to True on the first
    :meth:`attach` and back to False when the last sink detaches.

    ``now`` is maintained by the machine's main loop (only while
    enabled) so emission sites that have no natural cycle argument --
    tag-array misses deep inside :class:`repro.timing.caches.Cache` --
    can still timestamp their events.
    """

    __slots__ = ("enabled", "now", "_sinks", "_suppress")

    def __init__(self) -> None:
        self.enabled = False
        self.now = 0
        self._sinks: List = []
        self._suppress = 0

    # -- sink management ----------------------------------------------------

    def attach(self, sink) -> None:
        """Attach a sink (any object with ``on_event(event)``)."""
        if not callable(getattr(sink, "on_event", None)):
            raise TypeError(f"sink {sink!r} has no on_event(event) method")
        self._sinks.append(sink)
        self.enabled = not self._suppress

    def detach(self, sink) -> None:
        self._sinks.remove(sink)
        if not self._sinks:
            self.enabled = False

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    # -- suppression (setup noise like the L2 code pre-touch) ---------------

    def suppress(self) -> None:
        """Temporarily mute emission (nestable); see :meth:`unsuppress`."""
        self._suppress += 1
        self.enabled = False

    def unsuppress(self) -> None:
        self._suppress -= 1
        if self._suppress == 0 and self._sinks:
            self.enabled = True

    # -- emission -----------------------------------------------------------

    def emit(self, event: Event) -> None:
        for sink in self._sinks:
            sink.on_event(event)


#: A shared, permanently-disabled bus for components constructed outside
#: a :class:`~repro.timing.machine.Machine` (unit tests poking at a
#: :class:`~repro.timing.caches.Cache` directly, say).  Never attach
#: sinks to it.
NULL_BUS = EventBus()


class EventLog:
    """A bounded in-memory sink: collects events for exporters.

    ``kinds`` restricts collection to a subset of event kinds (None
    collects everything).  When ``max_events`` is reached the log stops
    recording, flags itself ``truncated``, and counts every further
    event it would have recorded in ``dropped`` -- so reports can say
    not just *that* the log is partial but *how* partial.
    """

    def __init__(self, max_events: int = 1_000_000,
                 kinds: Optional[frozenset] = None,
                 start_cycle: int = 0) -> None:
        self.max_events = max_events
        self.kinds = kinds
        self.start_cycle = start_cycle
        self.events: List[Event] = []
        self.truncated = False
        self.dropped = 0

    def on_event(self, event: Event) -> None:
        if event.cycle < self.start_cycle:
            return
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self.truncated:
            self.dropped += 1
            return
        self.events.append(event)
        if len(self.events) >= self.max_events:
            self.truncated = True

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]
