"""Host-side self-profiling: wall time per simulation phase.

The ROADMAP north-star ("as fast as the hardware allows") needs a perf
trajectory we can regress against.  :class:`PhaseProfiler` is a tiny
deterministic-overhead phase timer: callers bracket work with
``with prof.phase("replay"):`` and the profiler accumulates wall time
and call counts per phase name.  :func:`repro.timing.run.simulate`
threads one through the canonical phases:

* ``trace_generation`` -- functional execution producing the DynOp trace
  (skipped on a memoised-trace hit);
* ``setup`` -- machine construction and code pre-touch;
* ``replay`` -- the cycle-level main loop;
* ``stats`` -- end-of-run result assembly.

``benchmarks/bench_simulator_speed.py`` writes these numbers into
``BENCH_simulator_speed.json`` so future PRs can diff them.

Phases are timed *through* the fleet-telemetry span primitive
(:func:`repro.obs.telemetry.span`): when an ambient
:class:`~repro.obs.telemetry.SpanCollector` is installed (a telemetry
sweep), every phase also lands on the host-side timeline as a nested
span -- one measurement, two consumers.  Without a collector the span
is a bare ``perf_counter`` pair, so this file's numbers (and the
``BENCH_simulator_speed.json`` they feed) are unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from .telemetry import span


@dataclass
class PhaseTiming:
    """Accumulated wall time for one named phase."""

    name: str
    wall_s: float = 0.0
    calls: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {"wall_s": self.wall_s, "calls": self.calls}


@dataclass
class PhaseProfiler:
    """Accumulates wall time per named phase (re-entrant per name)."""

    phases: Dict[str, PhaseTiming] = field(default_factory=dict)
    #: insertion order of first appearance, for stable reports
    _order: List[str] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        try:
            with span(name) as handle:
                yield
        finally:
            pt = self.phases.get(name)
            if pt is None:
                pt = self.phases[name] = PhaseTiming(name)
                self._order.append(name)
            pt.wall_s += handle.dur_s
            pt.calls += 1

    @property
    def total_wall_s(self) -> float:
        return sum(p.wall_s for p in self.phases.values())

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {name: self.phases[name].as_dict() for name in self._order}

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for name in other._order:
            pt = other.phases[name]
            mine = self.phases.get(name)
            if mine is None:
                mine = self.phases[name] = PhaseTiming(name)
                self._order.append(name)
            mine.wall_s += pt.wall_s
            mine.calls += pt.calls

    def merge_dict(self, phases: Dict[str, Dict[str, object]]) -> None:
        """Fold an :meth:`as_dict` dump (e.g. shipped back from a worker
        process) into this profiler."""
        for name, fields in phases.items():
            mine = self.phases.get(name)
            if mine is None:
                mine = self.phases[name] = PhaseTiming(name)
                self._order.append(name)
            mine.wall_s += float(fields["wall_s"])
            mine.calls += int(fields["calls"])

    def report(self) -> str:
        """Human-readable phase breakdown."""
        total = self.total_wall_s
        lines = ["host-side phase profile:"]
        if not self._order:
            lines.append("  (no phases recorded)")
            return "\n".join(lines)
        width = max(len(n) for n in self._order)
        for name in self._order:
            pt = self.phases[name]
            share = pt.wall_s / total if total else 0.0
            lines.append(
                f"  {name:<{width}}  {pt.wall_s * 1e3:9.2f} ms  "
                f"{share:6.1%}  ({pt.calls} call"
                f"{'s' if pt.calls != 1 else ''})")
        lines.append(f"  {'total':<{width}}  {total * 1e3:9.2f} ms")
        return "\n".join(lines)
