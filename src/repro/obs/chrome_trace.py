"""Chrome trace-event JSON exporter (loads in Perfetto / chrome://tracing).

Converts a collected event stream into the Trace Event Format's JSON
object form: ``{"traceEvents": [...]}``.  One simulated cycle maps to
one microsecond of trace time, so the Perfetto timeline reads directly
in cycles.

Row layout (pid/tid):

* every distinct *track* (scalar-unit context, vector partition FU
  slice, lane core, L2 bank, thread-sync row) gets its own integer tid
  with a ``thread_name`` metadata record, so the viewer shows named
  rows in a stable sorted order;
* instruction issues are Complete ("X") slices whose duration is the
  issue latency / FU occupancy, giving the per-FU and per-lane
  occupancy timelines of the paper's Figures 3-6 discussions;
* stalls are "X" slices named ``stall:<reason>``;
* cache misses, barriers and reconfigurations are Instant ("i") events;
* L2 bank conflicts are "X" slices on per-bank rows.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .events import (BANK_CONFLICT, BARRIER_ARRIVE, BARRIER_RELEASE,
                     CACHE_MISS, COMMIT, Event, ISSUE, LANE_ISSUE, STALL,
                     VISSUE, VLCFG)

_PID = 1


def track_metadata(tids: Dict[str, int], process_name: str = "vlt-sim",
                   pid: int = _PID, sort_tracks: bool = True) -> List[dict]:
    """Process/thread metadata records naming one row per track.

    Shared by the simulated-machine exporter below and the host-side
    fleet-span exporter (:mod:`repro.obs.telemetry`): both want named
    rows in a stable order.  ``sort_tracks=True`` orders rows by track
    name (the simulator's unit labels); ``False`` keeps the caller's tid
    assignment order (the fleet timeline puts the parent track first).
    """
    meta: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": process_name}}]
    order = sorted(tids) if sort_tracks else \
        sorted(tids, key=lambda track: tids[track])
    for sort_index, track in enumerate(order):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tids[track], "args": {"name": track}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                     "tid": tids[track],
                     "args": {"sort_index": sort_index}})
    return meta


def _track_of(ev: Event) -> str:
    """The display row an event belongs to."""
    if ev.kind == VISSUE and ev.arg is not None:
        return f"{ev.unit}.{ev.arg}"        # per-FU-slice occupancy rows
    if ev.kind in (BARRIER_ARRIVE, BARRIER_RELEASE, VLCFG):
        return f"sync.{ev.unit}"
    if ev.kind == CACHE_MISS:
        return f"cache.{ev.unit}"
    return ev.unit


def to_chrome_trace(events: Iterable[Event],
                    process_name: str = "vlt-sim",
                    metadata: Optional[Dict[str, object]] = None) -> dict:
    """Build a Chrome trace-event JSON object from typed events."""
    tids: Dict[str, int] = {}
    records: List[dict] = []

    def tid_of(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
        return tid

    for ev in events:
        track = _track_of(ev)
        tid = tid_of(track)
        kind = ev.kind
        if kind in (ISSUE, VISSUE, LANE_ISSUE):
            args: Dict[str, object] = {"pc": ev.pc}
            if kind == VISSUE:
                args["vl"] = ev.vl
                if ev.arg is not None:
                    args["fu"] = ev.arg
            elif ev.arg == "slip":
                args["slip"] = True
            records.append({
                "name": ev.op, "cat": kind, "ph": "X",
                "ts": ev.cycle, "dur": max(1, ev.dur),
                "pid": _PID, "tid": tid, "args": args})
        elif kind == STALL:
            reason = ev.reason.value if ev.reason is not None else "unknown"
            records.append({
                "name": f"stall:{reason}", "cat": "stall", "ph": "X",
                "ts": ev.cycle, "dur": max(1, ev.dur),
                "pid": _PID, "tid": tid,
                "args": {"cycles": ev.dur, "pc": ev.pc}})
        elif kind == BANK_CONFLICT:
            records.append({
                "name": "bank_conflict", "cat": "l2", "ph": "X",
                "ts": ev.cycle, "dur": max(1, ev.dur),
                "pid": _PID, "tid": tid,
                "args": {"bank": ev.arg, "delay": ev.dur}})
        elif kind == COMMIT:
            records.append({
                "name": f"commit:{ev.op}", "cat": "commit", "ph": "i",
                "ts": ev.cycle, "s": "t", "pid": _PID, "tid": tid,
                "args": {"pc": ev.pc}})
        else:  # cache miss / barrier lifecycle / vlcfg -> instants
            records.append({
                "name": kind, "cat": kind, "ph": "i",
                "ts": ev.cycle, "s": "t", "pid": _PID, "tid": tid,
                "args": {"arg": ev.arg}})

    meta = track_metadata(tids, process_name=process_name)

    out = {
        "traceEvents": meta + records,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 ts = 1 simulated cycle"},
    }
    if metadata:
        out["otherData"].update(metadata)
    return out


def write_chrome_trace(path: str, events: Iterable[Event],
                       process_name: str = "vlt-sim",
                       metadata: Optional[Dict[str, object]] = None) -> int:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the number
    of trace records written (excluding metadata records)."""
    doc = to_chrome_trace(events, process_name=process_name,
                          metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    n_meta = sum(1 for r in doc["traceEvents"] if r["ph"] == "M")
    return len(doc["traceEvents"]) - n_meta
