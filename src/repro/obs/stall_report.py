"""Top-down stall attribution: where did the datapath-cycles go?

Figure 4 of the paper explains VLT's benefit by decomposing every
arithmetic datapath-cycle into *busy* / *partly idle* / *stalled* /
*all idle*.  This module produces the same decomposition as a top-down
report:

* **Level 0** -- total datapath-cycles (``arith_fus * lanes * cycles``);
* **Level 1** -- the four Figure-4 buckets, reconciled *to the cycle*
  against :class:`~repro.timing.stats.DatapathUtilization`;
* **Level 2** -- the same buckets per lane partition (per thread under
  static VLT), with an explicit residual row when dynamic
  repartitioning retired accounting that no longer maps to a live
  partition;
* **Level 3** -- scalar-side lost-cycle attribution (fetch stalls, VIQ
  backpressure, mispredicts) and, when the run was traced, the
  per-reason stall breakdown from the metrics registry
  (:class:`~repro.obs.events.StallReason` taxonomy).

All numbers are exact integer cycle counts -- the report asserts its own
books balance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..timing.stats import RunResult
    from .events import EventLog
    from .metrics import MetricsRegistry

_BUCKETS = ("busy", "partly_idle", "stalled", "all_idle")


def stall_attribution(result: "RunResult",
                      metrics: Optional["MetricsRegistry"] = None,
                      events: Optional["EventLog"] = None) -> dict:
    """Machine-readable top-down decomposition of one run.

    Returns a dict with ``totals`` (the Figure-4 buckets), ``fractions``,
    ``partitions`` (per-partition rows + ``residual``), ``scalar_units``
    and, when available, ``stall_reasons`` and ``event_log`` (the
    recorded/dropped census of the backing :class:`EventLog`, so a
    truncated log is visible in the attribution itself).  Raises
    ``ValueError`` if the per-partition rows fail to reconcile with the
    aggregate.
    """
    util = result.utilization
    totals = {b: getattr(util, b) for b in _BUCKETS}
    totals["total"] = util.total

    partitions: List[dict] = []
    sums = {b: 0 for b in _BUCKETS}
    for i, pu in enumerate(result.partition_utilization):
        row = {b: getattr(pu, b) for b in _BUCKETS}
        row["partition"] = i
        row["lanes"] = (result.partition_lanes[i]
                        if i < len(result.partition_lanes) else None)
        partitions.append(row)
        for b in _BUCKETS:
            sums[b] += row[b]

    residual = {b: totals[b] - sums[b] for b in _BUCKETS}
    if partitions:
        # the books must balance: partitions + residual == aggregate
        for b in _BUCKETS:
            if sums[b] + residual[b] != totals[b]:  # pragma: no cover
                raise ValueError(
                    f"stall attribution does not reconcile for {b!r}: "
                    f"{sums[b]} + {residual[b]} != {totals[b]}")

    scalar_units: List[dict] = []
    for i, s in enumerate(result.scalar_units):
        scalar_units.append({
            "unit": f"SU{i}",
            "fetch_stall_cycles": s.fetch_stall_cycles,
            "dispatch_stall_viq": s.dispatch_stall_viq,
            "branch_mispredicts": s.branch_mispredicts,
            "l1i_misses": s.l1i_misses,
            "l1d_misses": s.l1d_misses,
        })
    lane_cores: List[dict] = []
    for i, s in enumerate(result.lane_cores):
        if not s.issued:
            continue
        lane_cores.append({
            "unit": f"lane{i}",
            "load_stall_cycles": s.load_stall_cycles,
            "branch_mispredicts": s.branch_mispredicts,
            "icache_misses": s.icache_misses,
        })

    out = {
        "program": result.program_name,
        "config": result.config_name,
        "cycles": result.cycles,
        "totals": totals,
        "fractions": util.fractions(),
        "partitions": partitions,
        "residual": residual,
        "scalar_units": scalar_units,
        "lane_cores": lane_cores,
        "l2_bank_conflict_cycles": result.l2_bank_conflict_cycles,
    }

    reg = metrics if metrics is not None else result.metrics
    if reg is not None:
        reasons: Dict[str, Dict[str, int]] = {}
        for name, value in reg.counters().items():
            if name.startswith("stall."):
                # unit names may contain dots (SU0.c1); reasons never do
                unit, reason = name[len("stall."):].rsplit(".", 1)
                reasons.setdefault(unit, {})[reason] = value
        out["stall_reasons"] = reasons

    if events is not None:
        out["event_log"] = {
            "truncated": events.truncated,
            "recorded": len(events.events),
            "dropped": events.dropped,
        }
    return out


def _pct(part: int, whole: int) -> str:
    return f"{part / whole:6.1%}" if whole else "   n/a"


def render_stall_report(result: "RunResult",
                        metrics: Optional["MetricsRegistry"] = None,
                        events: Optional["EventLog"] = None) -> str:
    """Human-readable top-down stall-attribution report.

    When a truncated :class:`EventLog` backs the run, the header calls
    it out (with the dropped-event count) so a partial traced-stall
    section is never mistaken for the full story.
    """
    attr = stall_attribution(result, metrics, events=events)
    t = attr["totals"]
    total = t["total"]
    lines = [
        f"stall attribution: {attr['program']} on {attr['config']} "
        f"({result.num_threads} threads, {attr['cycles']} cycles)",
    ]
    ev = attr.get("event_log")
    if ev and ev["truncated"]:
        lines.append(
            f"  WARNING: event log truncated -- {ev['recorded']} events "
            f"recorded, {ev['dropped']} dropped; traced stall reasons "
            f"are a lower bound")
    lines.append(f"  datapath-cycles: {total}")
    for b in _BUCKETS:
        lines.append(f"    {b.replace('_', '-'):<11} {t[b]:>14}  "
                     f"{_pct(t[b], total)}")

    if attr["partitions"]:
        lines.append("  per partition:")
        hdr = (f"    {'part':<6}{'lanes':>5}" +
               "".join(f"{b.replace('_', '-'):>14}" for b in _BUCKETS))
        lines.append(hdr)
        for row in attr["partitions"]:
            lines.append(
                f"    p{row['partition']:<5}{row['lanes'] or 0:>5}" +
                "".join(f"{row[b]:>14}" for b in _BUCKETS))
        res = attr["residual"]
        if any(res[b] for b in _BUCKETS):
            lines.append(
                f"    {'resid.':<6}{'':>5}" +
                "".join(f"{res[b]:>14}" for b in _BUCKETS) +
                "   (pre-repartition accounting)")

    if attr["scalar_units"]:
        lines.append("  scalar-side lost cycles:")
        for su in attr["scalar_units"]:
            lines.append(
                f"    {su['unit']}: fetch stalls {su['fetch_stall_cycles']}"
                f", VIQ dispatch stalls {su['dispatch_stall_viq']}"
                f", mispredicts {su['branch_mispredicts']}"
                f", L1I misses {su['l1i_misses']}"
                f", L1D misses {su['l1d_misses']}")
    if attr["lane_cores"]:
        lines.append("  lane-core lost cycles:")
        for lc in attr["lane_cores"]:
            lines.append(
                f"    {lc['unit']}: operand stalls "
                f"{lc['load_stall_cycles']}, mispredicts "
                f"{lc['branch_mispredicts']}, I$ misses "
                f"{lc['icache_misses']}")

    reasons = attr.get("stall_reasons")
    if reasons:
        lines.append("  traced stall reasons (cycles lost, by unit):")
        for unit in sorted(reasons):
            parts = ", ".join(f"{r}={c}"
                              for r, c in sorted(reasons[unit].items()))
            lines.append(f"    {unit}: {parts}")
    lines.append(
        f"  L2 bank-conflict cycles: {attr['l2_bank_conflict_cycles']}")
    return "\n".join(lines)
