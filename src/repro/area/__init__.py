"""Area model for VLT configurations (paper Section 4.2, Tables 1-2)."""

from .model import (AreaModel, COMPONENT_AREAS, ComponentAreas,
                    config_area_table, table1_rows, table2_rows)

__all__ = ["AreaModel", "COMPONENT_AREAS", "ComponentAreas",
           "config_area_table", "table1_rows", "table2_rows"]
