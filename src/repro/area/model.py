"""First-order area model for VLT scalar-unit configurations.

The paper derives component areas from Alpha-family die photos (21064,
21164, 21264 and the Tarantula vector extension), adjusted for cache
sizes and functional-unit mixes and scaled to 0.10 um CMOS.  We treat
the resulting component areas -- the paper's Table 1 -- as calibrated
constants and reproduce Table 2's configuration arithmetic exactly:

* adding SMT contexts to a scalar processor costs 6% (2-way) or 10%
  (4-way) of that processor's area [paper's citation 26];
* replicated configurations add whole extra scalar units;
* all VLT configurations share a single multiplexed VCL (its overhead,
  "a few multiplexors", is taken as zero, as in the paper).

Known inconsistency reproduced here: the paper's Table 2 lists V4-CMP at
26.9%, while its own prose says "37% for V4-CMP" -- and the arithmetic
(three extra 4-way SUs = 3 x 20.9 / 170.2) gives 36.8%.  We report the
recomputed value; :data:`PAPER_TABLE2` keeps the published numbers for
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ComponentAreas:
    """Component areas in mm^2 at 0.10 um (paper Table 1)."""

    su_2way: float = 5.7          # 2-way scalar unit + L1 caches
    su_4way: float = 20.9         # 4-way scalar unit + L1 caches
    vcl_2way: float = 2.1         # 2-way vector control logic
    vector_lane: float = 6.1
    l2_4mb: float = 98.4

    #: multithreading area penalty, as a fraction of the SU's own area
    smt2_penalty: float = 0.06
    smt4_penalty: float = 0.10

    def base_processor(self, lanes: int = 8) -> float:
        """4-way SU + VCL + ``lanes`` vector lanes + 4 MB L2."""
        return (self.su_4way + self.vcl_2way
                + lanes * self.vector_lane + self.l2_4mb)


COMPONENT_AREAS = ComponentAreas()

#: Table 2 as printed in the paper (percent increase over base).
PAPER_TABLE2: Dict[str, float] = {
    "V2-SMT": 0.8, "V4-SMT": 1.3, "V2-CMP": 12.3, "V2-CMP-h": 3.4,
    "V4-CMP": 26.9, "V4-CMP-h": 10.1, "V4-CMT": 13.8,
}


class AreaModel:
    """Compute VLT configuration areas from the component constants."""

    def __init__(self, comp: ComponentAreas = COMPONENT_AREAS,
                 lanes: int = 8):
        self.comp = comp
        self.lanes = lanes
        self.base = comp.base_processor(lanes)

    # -- scalar-unit helpers ------------------------------------------------------

    def su_area(self, width: int, smt_contexts: int = 1) -> float:
        """Area of one scalar unit of the given width and SMT level."""
        comp = self.comp
        if width == 4:
            a = comp.su_4way
        elif width == 2:
            a = comp.su_2way
        else:
            raise ValueError(f"unsupported SU width {width}")
        if smt_contexts == 1:
            return a
        if smt_contexts == 2:
            return a * (1 + comp.smt2_penalty)
        if smt_contexts == 4:
            return a * (1 + comp.smt4_penalty)
        raise ValueError(f"unsupported SMT level {smt_contexts}")

    # -- configurations ------------------------------------------------------------

    def config_area(self, name: str) -> float:
        """Total die area of a named VLT configuration (mm^2)."""
        comp = self.comp
        fixed = comp.vcl_2way + self.lanes * comp.vector_lane + comp.l2_4mb
        sus: List[Tuple[int, int]]  # (width, smt)
        if name == "base":
            sus = [(4, 1)]
        elif name == "V2-SMT":
            sus = [(4, 2)]
        elif name == "V4-SMT":
            sus = [(4, 4)]
        elif name == "V2-CMP":
            sus = [(4, 1), (4, 1)]
        elif name == "V2-CMP-h":
            sus = [(4, 1), (2, 1)]
        elif name == "V4-CMP":
            sus = [(4, 1)] * 4
        elif name == "V4-CMP-h":
            sus = [(4, 1)] + [(2, 1)] * 3
        elif name == "V4-CMT":
            sus = [(4, 2), (4, 2)]
        elif name == "CMT":
            # V4-CMT without the vector unit and VCL (Section 5).
            return 2 * self.su_area(4, 2) + comp.l2_4mb
        else:
            raise KeyError(f"unknown configuration {name!r}")
        return fixed + sum(self.su_area(w, m) for w, m in sus)

    def overhead_pct(self, name: str) -> float:
        """Percent area increase of ``name`` over the base processor."""
        return 100.0 * (self.config_area(name) - self.base) / self.base


def table1_rows(comp: ComponentAreas = COMPONENT_AREAS,
                lanes: int = 8) -> List[Tuple[str, float]]:
    """The component-area rows of the paper's Table 1."""
    return [
        ("2-way scalar unit + L1 caches", comp.su_2way),
        ("4-way scalar unit + L1 caches", comp.su_4way),
        ("2-way VCL", comp.vcl_2way),
        ("Vector lane", comp.vector_lane),
        ("L2 cache (4MB)", comp.l2_4mb),
        (f"Base vector processor (4-way SU, {lanes} vector lanes)",
         comp.base_processor(lanes)),
    ]


def table2_rows(model: AreaModel | None = None
                ) -> List[Tuple[str, float, float]]:
    """(config, recomputed %, paper %) rows of the paper's Table 2."""
    model = model or AreaModel()
    order = ["V2-SMT", "V4-SMT", "V2-CMP", "V2-CMP-h",
             "V4-CMP", "V4-CMP-h", "V4-CMT"]
    return [(name, model.overhead_pct(name), PAPER_TABLE2[name])
            for name in order]


def config_area_table() -> Dict[str, float]:
    """Absolute areas (mm^2) of every modelled configuration."""
    model = AreaModel()
    names = ["base", "V2-SMT", "V4-SMT", "V2-CMP", "V2-CMP-h",
             "V4-CMP", "V4-CMP-h", "V4-CMT", "CMT"]
    return {n: model.config_area(n) for n in names}
