"""The asyncio job server: HTTP/JSON endpoints over the harness.

Architecture (one process, one event loop)::

    clients --HTTP--> asyncio loop --+-- admission (TenantGovernor)
                                     +-- single-flight map  key -> Flight
                                     +-- pending deque --> N worker tasks
                                                            |  (batching)
                                             ThreadPoolExecutor threads
                                             running _execute_spec()
                                                            |
                                     TraceCache (shared, LRU budget)
                                     Telemetry run ledger + /metrics

* **Single-flight dedupe**: jobs are keyed by the content digests
  (:func:`repro.service.jobs.job_key`); a submission whose key is
  already in flight attaches to that flight and shares its one result.
  Submissions arriving *after* the flight resolved still execute -- but
  hit the result cache, so nothing re-simulates either way.
* **Batching**: a worker that dequeues a flight also drains queued
  flights with the same ``(program digest, threads)`` -- they replay
  the same functional trace, so running them back-to-back on one worker
  turns N trace generations into one memo hit.
* **Admission**: per-tenant token bucket (submissions/s) and in-flight
  quota; rejections are HTTP 429 and never reach the queue.
* **Eviction**: with a cache budget configured, the shared on-disk
  :class:`~repro.functional.trace_cache.TraceCache` is re-bounded
  (LRU by mtime) after every executed flight.
* **Telemetry**: every executed run attempt lands in the schema-3 run
  ledger (``tenant`` + ``job_id`` set); ``/metrics`` serves the service
  counters plus :meth:`TelemetryReader.fleet_metrics`.

The HTTP layer is a deliberately small HTTP/1.1 subset (stdlib only,
``Connection: close``); see ``docs/service.md`` for the endpoints.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..harness.runner import RunSpec, _execute_spec, run_record
from ..obs.telemetry import Telemetry, TelemetryReader
from ..timing import run as timing_run
from .jobs import BadRequest, Job, JobRequest, job_key
from .ratelimit import TenantGovernor

#: tenant used when a submission names none
DEFAULT_TENANT = "anonymous"


@dataclass
class ServiceConfig:
    """Everything ``vlt-repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8373
    #: executor threads simulating jobs (and worker tasks feeding them)
    workers: int = 2
    #: shared on-disk trace/result cache root (None = in-memory only)
    cache_dir: Optional[str] = None
    #: fleet-telemetry directory (run ledger + /metrics source)
    telemetry_dir: Optional[str] = None
    #: per-job wall-clock limit, enforced loop-side (seconds)
    timeout: Optional[float] = None
    #: extra attempts after a failed (non-timeout) execution
    retries: int = 1
    #: token-bucket refill, submissions/s/tenant
    rate: float = 50.0
    #: token-bucket capacity (burst) per tenant
    burst: float = 100.0
    #: max unfinished jobs per tenant
    max_inflight: int = 256
    #: on-disk cache size budget in bytes (None = unbounded)
    cache_budget_bytes: Optional[int] = None
    #: max flights one worker drains as a single compatible batch
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and not self.timeout > 0:
            raise ValueError("timeout must be > 0 seconds, or None")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.cache_budget_bytes is not None \
                and self.cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0")


class _Flight:
    """One actual execution; any number of identical jobs ride it."""

    __slots__ = ("key", "request", "jobs", "program_digest",
                 "config_digest", "enqueued_at", "started")

    def __init__(self, key: str, request: JobRequest,
                 program_digest: str, config_digest: str) -> None:
        self.key = key
        self.request = request
        self.program_digest = program_digest
        self.config_digest = config_digest
        self.jobs: List[Job] = []
        self.enqueued_at = time.time()
        self.started = False


class SimulationService:
    """The embeddable server; :meth:`start` binds and spawns workers."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 **overrides: Any) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServiceConfig or kwargs")
        self.config = config
        self.governor = TenantGovernor(rate=config.rate,
                                       burst=config.burst,
                                       max_inflight=config.max_inflight)
        self.telemetry: Optional[Telemetry] = (
            Telemetry(config.telemetry_dir)
            if config.telemetry_dir is not None else None)
        self.cache = None            # set in start() (shared global)
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None
        self.counters: Dict[str, int] = {
            "submitted": 0,          # accepted jobs (HTTP 202)
            "rejected": 0,           # admission rejections (HTTP 429)
            "bad_requests": 0,       # invalid submissions (HTTP 400)
            "deduped": 0,            # jobs attached to an in-flight key
            "flights": 0,            # executions (incl. cache-served)
            "simulated_runs": 0,     # flights that actually simulated
            "result_cache_served": 0,
            "timeouts": 0,
            "completed": 0,          # jobs that reached `done`
            "failed": 0,             # jobs that reached `failed`
            "evictions": 0,          # cache entries removed by budget
        }
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, _Flight] = {}
        self._pending: Deque[_Flight] = deque()
        self._digest_memo: Dict[Tuple[str, bool], str] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: List[asyncio.Task] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._cond: Optional[asyncio.Condition] = None
        self._closing = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        if cfg.cache_dir is not None:
            # one sweep at service startup; executor threads share this
            # process-global handle and never re-walk the tree
            self.cache = timing_run.set_trace_cache_dir(cfg.cache_dir,
                                                        sweep=True)
        self._cond = asyncio.Condition()
        self._pool = ThreadPoolExecutor(max_workers=cfg.workers,
                                        thread_name_prefix="svc-sim")
        self._workers = [
            asyncio.create_task(self._worker(f"svc-w{i}"))
            for i in range(cfg.workers)]
        self._server = await asyncio.start_server(
            self._handle_conn, host=cfg.host, port=cfg.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        async with self._cond:
            self._cond.notify_all()
        for t in self._workers:
            t.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        if self.telemetry is not None:
            self.telemetry.write_timeline()
            self.telemetry.close()

    # -- submission path -----------------------------------------------------

    async def _digests(self, request: JobRequest) -> Tuple[str, str]:
        """Content digests for a request; raises BadRequest on unknown
        app/config names.  Program builds run in the executor (they can
        take tens of ms) and memoise by (app, scalar_only)."""
        from ..timing.config import get_config
        try:
            config_digest = get_config(request.config).digest()
        except KeyError as exc:
            raise BadRequest(f"unknown config: {exc}") from None
        memo_key = (request.app, request.scalar_only)
        program_digest = self._digest_memo.get(memo_key)
        if program_digest is None:
            def _build() -> str:
                from ..workloads import get_workload
                prog = get_workload(request.app).program(
                    scalar_only=request.scalar_only)
                return prog.digest()
            try:
                program_digest = await asyncio.get_running_loop() \
                    .run_in_executor(self._pool, _build)
            except KeyError as exc:
                raise BadRequest(f"unknown app: {exc}") from None
            except ValueError as exc:   # e.g. no scalar flavour
                raise BadRequest(str(exc)) from None
            self._digest_memo[memo_key] = program_digest
        return program_digest, config_digest

    async def submit(self, body: Dict[str, Any],
                     tenant: Optional[str] = None) -> Tuple[int, Dict]:
        """Admission + dedupe; returns (HTTP status, response JSON)."""
        if tenant is None:
            tenant = str(body.get("tenant") or DEFAULT_TENANT) \
                if isinstance(body, dict) else DEFAULT_TENANT
        reason = self.governor.admit(tenant)
        if reason is not None:
            self.counters["rejected"] += 1
            return 429, {"error": "rate limited", "reason": reason}
        try:
            request = JobRequest.from_json(body)
            program_digest, config_digest = await self._digests(request)
        except BadRequest as exc:
            self.governor.release(tenant)
            self.counters["bad_requests"] += 1
            return 400, {"error": "bad request", "reason": str(exc)}
        key = job_key(request, program_digest, config_digest)
        job = Job(request=request, tenant=tenant, key=key,
                  program_digest=program_digest,
                  config_digest=config_digest)
        self._jobs[job.id] = job
        self.counters["submitted"] += 1
        flight = self._inflight.get(key)
        if flight is not None:
            # single-flight: identical in-flight submission -- share it
            job.deduped = True
            self.counters["deduped"] += 1
            flight.jobs.append(job)
            if flight.started:
                job.mark("running")
        else:
            flight = _Flight(key, request, program_digest, config_digest)
            flight.jobs.append(job)
            self._inflight[key] = flight
            self._pending.append(flight)
        async with self._cond:
            self._cond.notify_all()
        return 202, {"id": job.id, "state": job.state, "key": key,
                     "deduped": job.deduped}

    # -- execution path ------------------------------------------------------

    def _take_batch(self) -> List[_Flight]:
        """Pop the next flight plus queued trace-compatible ones."""
        first = self._pending.popleft()
        compat = (first.program_digest, first.request.threads)
        batch = [first]
        rest: Deque[_Flight] = deque()
        while self._pending:
            f = self._pending.popleft()
            if len(batch) < self.config.max_batch and \
                    (f.program_digest, f.request.threads) == compat:
                batch.append(f)
            else:
                rest.append(f)
        self._pending = rest
        return batch

    async def _worker(self, label: str) -> None:
        try:
            while True:
                async with self._cond:
                    while not self._pending and not self._closing:
                        await self._cond.wait()
                    if self._closing and not self._pending:
                        return
                    batch = self._take_batch()
                for flight in batch:
                    await self._run_flight(flight, label)
        except asyncio.CancelledError:
            return

    async def _run_flight(self, flight: _Flight, label: str) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        spec: RunSpec = flight.request.spec()
        flight.started = True
        for job in flight.jobs:
            job.mark("running")
        async with self._cond:
            self._cond.notify_all()   # wake stream watchers: "running"
        self.counters["flights"] += 1
        primary = flight.jobs[0]
        attempts = 0
        payload: Dict[str, Any] = {}
        while True:
            attempts += 1
            fut = loop.run_in_executor(
                self._pool, _execute_spec, spec, cfg.timeout,
                flight.request.max_cycles, False, flight.request.engine,
                flight.request.func_engine, False)
            try:
                if cfg.timeout is not None:
                    payload = await asyncio.wait_for(
                        asyncio.shield(fut), cfg.timeout)
                else:
                    payload = await fut
            except asyncio.TimeoutError:
                # SIGALRM cannot fire in an executor thread (see
                # _alarm), so the loop enforces the wall-clock limit;
                # the stuck thread finishes (and is discarded) later.
                self.counters["timeouts"] += 1
                payload = {"error": {
                    "type": "RunTimeout",
                    "message": f"job exceeded the service's "
                               f"{cfg.timeout:g}s wall-clock limit",
                    "traceback": ""},
                    "wall_s": cfg.timeout, "t_start": flight.enqueued_at,
                    "t_end": time.time(), "phases": {},
                    "program_digest": flight.program_digest,
                    "config_digest": flight.config_digest}
                fut.add_done_callback(lambda f: f.exception())
                self._record_attempt(flight, payload, attempts, label,
                                     primary)
                break
            err = payload.get("error")
            self._record_attempt(flight, payload, attempts, label,
                                 primary)
            if err is None or attempts > cfg.retries \
                    or err.get("type") == "DifferentialMismatch":
                break
        self._finish_flight(flight, payload)
        async with self._cond:
            self._cond.notify_all()
        if cfg.cache_budget_bytes is not None and self.cache is not None:
            evicted = await loop.run_in_executor(
                None, self.cache.enforce_budget, cfg.cache_budget_bytes)
            self.counters["evictions"] += evicted

    def _record_attempt(self, flight: _Flight, payload: Dict[str, Any],
                        attempts: int, label: str, primary: Job) -> None:
        if payload.get("error") is None:
            if payload.get("result_cached"):
                self.counters["result_cache_served"] += 1
            else:
                self.counters["simulated_runs"] += 1
        if self.telemetry is None:
            return
        t_start = payload.get("t_start")
        queue_wait = None
        if t_start is not None:
            queue_wait = max(0.0, float(t_start) - flight.enqueued_at)
        rec = run_record(flight.request.spec(), payload, attempts,
                         flight.request.engine,
                         flight.request.func_engine,
                         queue_wait_s=queue_wait,
                         tenant=primary.tenant, job_id=primary.id)
        rec["worker"] = label
        self.telemetry.record(rec)

    def _finish_flight(self, flight: _Flight,
                       payload: Dict[str, Any]) -> None:
        # drop the in-flight entry *first*: identical submissions from
        # here on start a fresh flight (and hit the result cache)
        self._inflight.pop(flight.key, None)
        err = payload.get("error")
        for job in flight.jobs:
            if err is None:
                job.result = _result_payload(payload["result"])
                if job.deduped:
                    job.provenance = "dedupe"
                elif payload.get("result_cached"):
                    job.provenance = "result cache"
                elif payload.get("trace_cached"):
                    job.provenance = "trace cache"
                else:
                    job.provenance = "simulated"
                job.mark("done")
                self.counters["completed"] += 1
            else:
                job.error = {"type": str(err.get("type")),
                             "message": str(err.get("message"))}
                job.provenance = "failed"
                job.mark("failed")
                self.counters["failed"] += 1
            self.governor.release(job.tenant)

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        service: Dict[str, Any] = dict(self.counters)
        service["queued_flights"] = len(self._pending)
        service["inflight_flights"] = len(self._inflight)
        service["jobs_tracked"] = len(self._jobs)
        service["workers"] = self.config.workers
        if self.started_at is not None:
            service["uptime_s"] = time.time() - self.started_at
        submitted = self.counters["submitted"]
        if submitted:
            service["dedupe_rate"] = \
                1.0 - self.counters["simulated_runs"] / submitted
        out: Dict[str, Any] = {"service": service}
        if self.cache is not None:
            out["cache"] = self.cache.stats()
            if self.config.cache_budget_bytes is not None:
                out["cache"]["budget_bytes"] = \
                    self.config.cache_budget_bytes
        if self.telemetry is not None:
            out["fleet"] = TelemetryReader.from_path(
                self.telemetry.ledger_path).fleet_metrics()
        return out

    # -- HTTP layer ----------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            parts = line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                hline = await reader.readline()
                if hline in (b"\r\n", b"\n", b""):
                    break
                name, _, value = hline.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length else b""
            await self._route(method, path, headers, body, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except Exception as exc:   # pragma: no cover - defensive
            try:
                _write_json(writer, 500, {"error": "internal error",
                                          "reason": str(exc)})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/healthz":
            _write_json(writer, 200, {"ok": True,
                                      "uptime_s": time.time() -
                                      (self.started_at or time.time())})
            return
        if path == "/metrics":
            _write_json(writer, 200, self.metrics())
            return
        if path == "/jobs" and method == "POST":
            try:
                parsed = json.loads(body.decode("utf-8")) if body else {}
            except ValueError:
                self.counters["bad_requests"] += 1
                _write_json(writer, 400, {"error": "bad request",
                                          "reason": "body is not JSON"})
                return
            status, doc = await self.submit(parsed,
                                            tenant=headers.get("x-tenant"))
            _write_json(writer, status, doc)
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, sub = rest.partition("/")
            job = self._jobs.get(job_id)
            if job is None:
                _write_json(writer, 404, {"error": "unknown job",
                                          "id": job_id})
                return
            if method != "GET":
                _write_json(writer, 405, {"error": "method not allowed"})
                return
            if sub == "":
                _write_json(writer, 200, job.status())
                return
            if sub == "result":
                if not job.finished:
                    _write_json(writer, 202, {"id": job.id,
                                              "state": job.state})
                    return
                doc = job.status()
                if job.result is not None:
                    doc["result"] = job.result
                _write_json(writer, 200, doc)
                return
            if sub == "stream":
                await self._stream_job(job, writer)
                return
        _write_json(writer, 404, {"error": "no such endpoint",
                                  "path": path})

    async def _stream_job(self, job: Job,
                          writer: asyncio.StreamWriter) -> None:
        """Newline-delimited JSON: every state transition as it
        happens, closing with the full final status."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            while sent < len(job.events):
                event = dict(job.events[sent], id=job.id)
                writer.write(json.dumps(event, sort_keys=True)
                             .encode("utf-8") + b"\n")
                sent += 1
            await writer.drain()
            if job.finished:
                doc = job.status()
                if job.result is not None:
                    doc["result"] = job.result
                writer.write(json.dumps({"final": doc}, sort_keys=True)
                             .encode("utf-8") + b"\n")
                await writer.drain()
                return
            async with self._cond:
                await self._cond.wait()


def _result_payload(result) -> Dict[str, Any]:
    """The JSON view of a :class:`~repro.timing.stats.RunResult`."""
    return {
        "program": result.program_name,
        "config": result.config_name,
        "num_threads": result.num_threads,
        "cycles": result.cycles,
        "thread_finish": list(result.thread_finish),
        "barrier_count": result.barrier_count,
        "l2_bank_conflict_cycles": result.l2_bank_conflict_cycles,
        "phase_release_cycles": list(result.phase_release_cycles),
    }


def _write_json(writer: asyncio.StreamWriter, status: int,
                doc: Dict[str, Any]) -> None:
    reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
              404: "Not Found", 405: "Method Not Allowed",
              429: "Too Many Requests",
              500: "Internal Server Error"}.get(status, "OK")
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1") + body)


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

class ServiceThread:
    """Run a :class:`SimulationService` on a background thread with its
    own event loop -- the harness tests and the load-generator bench
    drive the real HTTP surface this way."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 **overrides: Any) -> None:
        self.config = config if config is not None \
            else ServiceConfig(**overrides)
        self.service: Optional[SimulationService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.service is not None and self.service.port is not None
        return self.service.port

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="vlt-service")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.service = SimulationService(self.config)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
            self._loop.run_until_complete(self.service.stop())
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(config: ServiceConfig) -> int:
    """Blocking driver behind ``vlt-repro serve``; ^C stops cleanly."""
    async def _main() -> None:
        svc = SimulationService(config)
        await svc.start()
        budget = (f", cache budget "
                  f"{config.cache_budget_bytes / 1e6:.0f} MB"
                  if config.cache_budget_bytes is not None else "")
        print(f"vlt-repro service on http://{config.host}:{svc.port} "
              f"({config.workers} workers, cache="
              f"{config.cache_dir or 'memory-only'}{budget}); "
              f"POST /jobs to submit, GET /metrics for fleet state")
        stop = asyncio.Event()
        try:
            await stop.wait()
        except asyncio.CancelledError:
            pass
        finally:
            await svc.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("\nservice stopped")
    return 0
