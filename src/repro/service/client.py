"""A tiny blocking HTTP client for the simulation service.

Stdlib-only (``http.client``); used by the end-to-end tests, the
``benchmarks/bench_service.py`` load generator and the CI smoke job.
Each call opens one connection (the server speaks ``Connection:
close``), so a client object is cheap and thread-safe to share.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple


class ServiceError(RuntimeError):
    """An HTTP error response from the service."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    """Talk to one :class:`~repro.service.server.SimulationService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8373,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 headers: Optional[Dict[str, str]] = None,
                 ) -> Tuple[int, Dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            hdrs = {"Content-Type": "application/json"}
            if headers:
                hdrs.update(headers)
            conn.request(method, path, body=payload, headers=hdrs)
            resp = conn.getresponse()
            raw = resp.read()
            doc = json.loads(raw.decode("utf-8")) if raw else {}
            return resp.status, doc
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def submit(self, app: str, config: str, threads: int = 1,
               tenant: Optional[str] = None,
               **fields: Any) -> Dict[str, Any]:
        """POST /jobs; returns the acceptance doc (id, state, key,
        deduped).  Raises :class:`ServiceError` on 4xx/5xx -- a 429
        carries the governor's rejection reason in ``body['reason']``."""
        body: Dict[str, Any] = {"app": app, "config": config,
                                "threads": threads}
        body.update(fields)
        headers = {"X-Tenant": tenant} if tenant is not None else None
        status, doc = self._request("POST", "/jobs", body=body,
                                    headers=headers)
        if status != 202:
            raise ServiceError(status, doc)
        return doc

    def status(self, job_id: str) -> Dict[str, Any]:
        status, doc = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """GET /jobs/<id>/result; None while the job is still pending."""
        status, doc = self._request("GET", f"/jobs/{job_id}/result")
        if status == 202:
            return None
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.02) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the result doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.result(job_id)
            if doc is not None:
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still pending after "
                                   f"{timeout:g}s")
            time.sleep(poll_s)

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """GET /jobs/<id>/stream; yields each ndjson line as a dict
        (state events, then one ``{"final": status}`` line)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                doc = json.loads(raw.decode("utf-8")) if raw else {}
                raise ServiceError(resp.status, doc)
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def metrics(self) -> Dict[str, Any]:
        status, doc = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def healthz(self) -> Dict[str, Any]:
        status, doc = self._request("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, doc)
        return doc
