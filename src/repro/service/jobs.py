"""Job model for the simulation service.

A *job* is one client submission; a *flight* (see
:mod:`repro.service.server`) is one actual execution that any number of
identical jobs share.  Identity is content-addressed: the job key is
the PR 3 :func:`~repro.functional.trace_cache.result_key` over the
program and config digests, so "identical submission" means *identical
simulation* -- same program bytes, same machine, same thread count,
same engine -- not merely the same request strings.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..functional.trace_cache import result_key
from ..harness.runner import DEFAULT_MAX_CYCLES, RunSpec

#: every state a job can be observed in (terminal: done / failed)
JOB_STATES = ("queued", "running", "done", "failed")

_ids = itertools.count(1)


class BadRequest(ValueError):
    """A submission that can never execute (unknown app/config, bad
    types); reported as HTTP 400, never retried."""


@dataclass(frozen=True)
class JobRequest:
    """What a client submits: one point of the simulation space."""

    app: str
    config: str
    threads: int = 1
    scalar_only: bool = False
    engine: str = "event"
    func_engine: str = "reference"
    max_cycles: int = DEFAULT_MAX_CYCLES

    @classmethod
    def from_json(cls, body: Mapping[str, Any]) -> "JobRequest":
        """Validate an untrusted JSON body into a request.

        Only shape/type validation happens here; app and config *names*
        are resolved (and rejected) when the digests are computed, so
        the error message can carry the registry's own wording.
        """
        if not isinstance(body, Mapping):
            raise BadRequest("request body must be a JSON object")
        unknown = set(body) - {"app", "config", "threads", "scalar_only",
                               "engine", "func_engine", "max_cycles",
                               "tenant"}
        if unknown:
            raise BadRequest(f"unknown fields: {sorted(unknown)}")
        app = body.get("app")
        config = body.get("config")
        if not isinstance(app, str) or not app:
            raise BadRequest("'app' (workload name) is required")
        if not isinstance(config, str) or not config:
            raise BadRequest("'config' (machine configuration name) is "
                             "required")
        threads = body.get("threads", 1)
        if not isinstance(threads, int) or isinstance(threads, bool) \
                or threads < 1:
            raise BadRequest("'threads' must be a positive integer")
        max_cycles = body.get("max_cycles", DEFAULT_MAX_CYCLES)
        if not isinstance(max_cycles, int) or isinstance(max_cycles, bool) \
                or max_cycles < 1:
            raise BadRequest("'max_cycles' must be a positive integer")
        engine = body.get("engine", "event")
        func_engine = body.get("func_engine", "reference")
        from ..functional.fast import validate_func_engine
        from ..timing.machine import validate_engine
        try:
            validate_engine(engine)
            validate_func_engine(func_engine)
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        return cls(app=app, config=config, threads=threads,
                   scalar_only=bool(body.get("scalar_only", False)),
                   engine=engine, func_engine=func_engine,
                   max_cycles=max_cycles)

    def spec(self) -> RunSpec:
        return RunSpec(self.app, self.config, self.threads,
                       scalar_only=self.scalar_only)


def job_key(request: JobRequest, program_digest: str,
            config_digest: str) -> str:
    """Content identity of the simulation a request asks for."""
    return result_key(program_digest, config_digest, request.threads,
                      request.max_cycles, engine=request.engine)


@dataclass
class Job:
    """One accepted submission and its observable lifecycle."""

    request: JobRequest
    tenant: str
    key: str
    program_digest: str
    config_digest: str
    id: str = field(default_factory=lambda: f"job-{next(_ids)}")
    state: str = "queued"
    #: attached to an already in-flight identical submission
    deduped: bool = False
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    #: where the numbers came from: simulated / result cache / dedupe
    provenance: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    #: state transitions as ``{"state": ..., "t": ...}`` (stream feed)
    events: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.append({"state": self.state, "t": self.submitted_at})

    def mark(self, state: str) -> None:
        assert state in JOB_STATES, state
        self.state = state
        now = time.time()
        if state in ("done", "failed"):
            self.finished_at = now
        self.events.append({"state": state, "t": now})

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def status(self) -> Dict[str, Any]:
        """The JSON the status endpoint serves."""
        out: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "key": self.key,
            "program_digest": self.program_digest,
            "config_digest": self.config_digest,
            "deduped": self.deduped,
            "submitted_at": self.submitted_at,
            "request": {
                "app": self.request.app, "config": self.request.config,
                "threads": self.request.threads,
                "scalar_only": self.request.scalar_only,
                "engine": self.request.engine,
                "func_engine": self.request.func_engine,
                "max_cycles": self.request.max_cycles,
            },
        }
        if self.finished:
            out["finished_at"] = self.finished_at
            out["provenance"] = self.provenance
        if self.error is not None:
            out["error"] = self.error
        return out
