"""Simulation-as-a-service: an asyncio job server over the harness.

The experiment harness (PRs 3-8) made single-shot sweeps cached,
parallel and observable; this package turns it into a *long-running
service*.  An asyncio HTTP/JSON front end accepts ``(app, config,
threads)`` jobs from many clients, collapses concurrent identical
submissions onto one in-flight simulation (single-flight dedupe keyed
by the PR 3 content digests), batches trace-compatible jobs per worker,
guards admission with per-tenant token buckets and in-flight quotas,
bounds the on-disk :class:`~repro.functional.trace_cache.TraceCache`
with LRU + size-budget eviction, and threads fleet telemetry (run
ledger, spans, ``/metrics``) through every executed run.

Entry points:

* :class:`SimulationService` -- the embeddable server object
* :func:`serve` -- blocking ``vlt-repro serve`` driver
* :class:`ServiceClient` -- tiny stdlib HTTP client (tests, load gen)

See ``docs/service.md`` for the endpoint reference and semantics.
"""

from .jobs import Job, JobRequest, job_key
from .ratelimit import TenantGovernor, TokenBucket
from .server import ServiceConfig, SimulationService, serve
from .client import ServiceClient

__all__ = [
    "Job", "JobRequest", "job_key",
    "TokenBucket", "TenantGovernor",
    "ServiceConfig", "SimulationService", "serve",
    "ServiceClient",
]
