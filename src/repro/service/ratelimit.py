"""Admission control for the simulation service.

Two independent guards, both per tenant:

* a **token bucket** limits sustained submission *rate* (``rate``
  tokens/second refill, ``burst`` bucket capacity) -- a client may burst
  up to ``burst`` submissions, then is throttled to the refill rate;
* an **in-flight quota** caps how many of one tenant's jobs may be
  unfinished at once, so a single tenant cannot occupy the whole worker
  pool no matter how politely it paces its submissions.

Both are plain synchronous objects driven from the single-threaded
asyncio loop; the injectable ``clock`` keeps the tests deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` cap."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False means throttled."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class TenantGovernor:
    """Per-tenant admission: token-bucket rate + in-flight quota."""

    def __init__(self, rate: float = 50.0, burst: float = 100.0,
                 max_inflight: int = 256,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_inflight = int(max_inflight)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight: Dict[str, int] = {}

    def admit(self, tenant: str) -> Optional[str]:
        """Try to admit one submission; returns a rejection reason or
        None (admitted -- the in-flight slot is held until
        :meth:`release`)."""
        inflight = self._inflight.get(tenant, 0)
        if inflight >= self.max_inflight:
            return (f"tenant {tenant!r} has {inflight} unfinished jobs "
                    f"(quota {self.max_inflight})")
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate, self.burst, clock=self._clock)
        if not bucket.try_acquire():
            return (f"tenant {tenant!r} exceeded {self.rate:g} "
                    f"submissions/s (burst {self.burst:g})")
        self._inflight[tenant] = inflight + 1
        return None

    def release(self, tenant: str) -> None:
        """Return one in-flight slot (job reached a terminal state)."""
        left = self._inflight.get(tenant, 0) - 1
        if left > 0:
            self._inflight[tenant] = left
        else:
            self._inflight.pop(tenant, None)

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)
