"""Functional (architectural) simulator.

Executes SPMD programs written in the VLT ISA with real data, producing
per-thread dynamic traces for the timing simulator.  Threads are run
*phase by phase*: each thread executes until it reaches a ``barrier`` (or
halts), then the next thread runs its phase, and so on.  For the
barrier-synchronised, statically-partitioned programs used in this study
(the paper's workloads are exactly of this form, Section 6) this
serialisation is semantically equivalent to any legal parallel
interleaving: values written before a barrier are visible after it, and
there are no data races within a phase.

Integer semantics: 64-bit two's-complement wrap-around; division
truncates toward zero; division by zero yields 0 (remainder 0).  Shift
amounts use the low 6 bits.  FP is IEEE double via NumPy/Python floats.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..isa.program import Instr, Program
from ..isa.registers import MVL, reg_uid
from .memory import Memory
from .state import ThreadState
from .trace import DynOp, ProgramTrace, ThreadTrace

_MASK64 = 0xFFFFFFFFFFFFFFFF
_I64_MAX = 0x7FFFFFFFFFFFFFFF
_I64_MIN = -0x8000000000000000


class ExecutionError(Exception):
    """Raised on deadlock, runaway execution, or semantic violations."""


# --------------------------------------------------------------------------
# Scalar integer helpers (Python-int domain, wrapped on register writeback)
# --------------------------------------------------------------------------

def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - b * _sdiv(a, b)


def _srl(a: int, sh: int) -> int:
    return (a & _MASK64) >> (sh & 63)


_INT_BIN: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _sdiv,
    "rem": _srem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 63),
    "srl": _srl,
    "sra": lambda a, b: a >> (b & 63),
    "slt": lambda a, b: int(a < b),
    "sle": lambda a, b: int(a <= b),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
}

_INT_IMM = {"addi": "add", "muli": "mul", "andi": "and", "ori": "or",
            "xori": "xor", "slli": "sll", "srli": "srl", "srai": "sra",
            "slti": "slt"}

def _fdiv(a: float, b: float) -> float:
    # IEEE semantics (x/0 = +-inf, 0/0 = nan) via NumPy scalar division;
    # the executor runs under errstate(all="ignore").
    return float(np.float64(a) / np.float64(b))


_FP_BIN: Dict[str, Callable[[float, float], float]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _fdiv,
    "fmin": min,
    "fmax": max,
}

_FP_UN: Dict[str, Callable[[float], float]] = {
    "fsqrt": lambda a: math.sqrt(a) if a >= 0.0 else math.nan,
    "fabs": abs,
    "fneg": lambda a: -a,
    "fmv": lambda a: a,
}

_FP_CMP: Dict[str, Callable[[float, float], int]] = {
    "feq": lambda a, b: int(a == b),
    "flt": lambda a, b: int(a < b),
    "fle": lambda a, b: int(a <= b),
}

_BRANCH: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
}

# --------------------------------------------------------------------------
# Vector integer helpers (NumPy int64 domain)
# --------------------------------------------------------------------------

def _vdiv(a: np.ndarray, b) -> np.ndarray:
    b_arr = np.asarray(b, dtype=np.int64)
    nz = b_arr != 0
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.floor_divide(a, np.where(nz, b_arr, 1))
        r = a - q * np.where(nz, b_arr, 1)
        # floor -> trunc correction
        q = q + ((r != 0) & ((a < 0) != (b_arr < 0)))
    return np.where(nz, q, 0).astype(np.int64)


def _vrem(a: np.ndarray, b) -> np.ndarray:
    b_arr = np.asarray(b, dtype=np.int64)
    return (a - _vdiv(a, b_arr) * b_arr) * (b_arr != 0)


def _vsrl(a: np.ndarray, b) -> np.ndarray:
    """Logical right shift on int64 via a uint64 reinterpretation."""
    if isinstance(b, np.ndarray):
        sh = (b & 63).astype(np.uint64)
    else:
        sh = np.uint64(int(b) & 63)
    return (np.ascontiguousarray(a).view(np.uint64) >> sh).view(np.int64)


_VINT_BIN: Dict[str, Callable] = {
    "vadd": lambda a, b: a + b,
    "vsub": lambda a, b: a - b,
    "vmul": lambda a, b: a * b,
    "vdiv": _vdiv,
    "vrem": _vrem,
    "vand": lambda a, b: a & b,
    "vor": lambda a, b: a | b,
    "vxor": lambda a, b: a ^ b,
    "vsll": lambda a, b: np.left_shift(a, np.asarray(b) & 63),
    "vsrl": lambda a, b: _vsrl(a, b),
    "vsra": lambda a, b: a >> (np.asarray(b) & 63),
    "vmin": np.minimum,
    "vmax": np.maximum,
}

_VFP_BIN: Dict[str, Callable] = {
    "vfadd": lambda a, b: a + b,
    "vfsub": lambda a, b: a - b,
    "vfmul": lambda a, b: a * b,
    "vfdiv": lambda a, b: np.divide(a, b),
    "vfmin": np.minimum,
    "vfmax": np.maximum,
}

_VINT_CMP: Dict[str, Callable] = {
    "vseq": lambda a, b: a == b,
    "vsne": lambda a, b: a != b,
    "vslt": lambda a, b: a < b,
    "vsle": lambda a, b: a <= b,
}

_VFP_CMP: Dict[str, Callable] = {
    "vfeq": lambda a, b: a == b,
    "vflt": lambda a, b: a < b,
    "vfle": lambda a, b: a <= b,
}


class Executor:
    """Execute a finalized :class:`Program` with ``num_threads`` SPMD threads.

    Parameters
    ----------
    program:
        A finalized program.
    num_threads:
        SPMD thread count (1 for the base single-thread configuration).
    record_trace:
        If False, skip building :class:`DynOp` records (fast functional
        verification mode).
    max_ops:
        Per-thread dynamic-instruction budget; exceeding it raises
        :class:`ExecutionError` (runaway-loop guard).
    """

    def __init__(self, program: Program, num_threads: int = 1,
                 record_trace: bool = True, max_ops: int = 20_000_000):
        if not program.finalized:
            raise ValueError("program must be finalized (ProgramBuilder.build)")
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.program = program
        self.num_threads = num_threads
        self.record_trace = record_trace
        self.max_ops = max_ops
        self.mem = Memory(program.build_memory())
        self.states = [ThreadState(t, num_threads) for t in range(num_threads)]
        self.trace = ProgramTrace(program_name=program.name,
                                  num_threads=num_threads,
                                  threads=[ThreadTrace(t)
                                           for t in range(num_threads)])
        self._reads: List[Tuple[int, ...]] = [
            tuple(reg_uid(r) for r in ins.reads()) for ins in program.instrs]
        self._writes: List[Tuple[int, ...]] = [
            tuple(reg_uid(r) for r in ins.writes()) for ins in program.instrs]
        self._ops_executed = [0] * num_threads

    # ------------------------------------------------------------------

    def run(self) -> ProgramTrace:
        """Run all threads to completion; returns the program trace.

        Threads advance in lock-step phases delimited by barriers.  A
        thread halting while others still expect a barrier partner is a
        deadlock and raises.
        """
        with np.errstate(all="ignore"):
            while True:
                statuses = []
                for st in self.states:
                    if st.halted:
                        statuses.append("halt")
                        continue
                    statuses.append(self._run_phase(st))
                if all(s == "halt" for s in statuses):
                    break
                if any(s == "halt" for s in statuses):
                    raise ExecutionError(
                        f"barrier deadlock in {self.program.name!r}: some "
                        f"threads halted while others wait at a barrier")
        return self.trace

    # ------------------------------------------------------------------

    def _run_phase(self, st: ThreadState) -> str:
        """Execute one thread until it hits a barrier or halts."""
        instrs = self.program.instrs
        reads_tab, writes_tab = self._reads, self._writes
        trace = self.trace.threads[st.tid] if self.record_trace else None
        mem = self.mem
        n_instrs = len(instrs)
        executed = self._ops_executed[st.tid]
        budget = self.max_ops

        while True:
            pc = st.pc
            if not 0 <= pc < n_instrs:
                raise ExecutionError(
                    f"thread {st.tid} jumped to invalid pc {pc}")
            ins = instrs[pc]
            executed += 1
            if executed > budget:
                raise ExecutionError(
                    f"thread {st.tid} exceeded {budget} dynamic instructions "
                    f"(infinite loop?) at pc {pc}: {ins.render()}")

            vl_used, addrs, taken, tgt = self._execute(st, ins, mem)

            if trace is not None:
                trace.ops.append(DynOp(
                    pc, ins.op, ins.spec, reads_tab[pc], writes_tab[pc],
                    vl=vl_used, addrs=addrs, taken=taken, tgt=tgt,
                    imm=ins.imm if ins.spec.is_vltcfg else None))

            sp = ins.spec
            if sp.is_barrier:
                st.barrier_count += 1
                st.pc = pc + 1
                self._ops_executed[st.tid] = executed
                return "barrier"
            if sp.is_halt:
                st.halted = True
                self._ops_executed[st.tid] = executed
                return "halt"

    # ------------------------------------------------------------------

    def _execute(self, st: ThreadState, ins: Instr, mem: Memory):
        """Execute one instruction; returns (vl_used, addrs, taken, tgt)."""
        op = ins.op
        sp = ins.spec
        s, f = st.s, st.f
        next_pc = ins.pc + 1

        # ---- scalar integer -------------------------------------------------
        fn = _INT_BIN.get(op)
        if fn is not None:
            a, b = s[ins.srcs[0][1]], s[ins.srcs[1][1]]
            st.write_s(ins.dst[1], fn(a, b))
            st.pc = next_pc
            return 0, None, None, None
        base_name = _INT_IMM.get(op)
        if base_name is not None:
            a = s[ins.srcs[0][1]]
            st.write_s(ins.dst[1], _INT_BIN[base_name](a, ins.imm))
            st.pc = next_pc
            return 0, None, None, None
        if op == "li":
            st.write_s(ins.dst[1], ins.imm)
            st.pc = next_pc
            return 0, None, None, None
        if op == "nop":
            st.pc = next_pc
            return 0, None, None, None

        # ---- scalar FP ------------------------------------------------------
        fn = _FP_BIN.get(op)
        if fn is not None:
            f[ins.dst[1]] = fn(f[ins.srcs[0][1]], f[ins.srcs[1][1]])
            st.pc = next_pc
            return 0, None, None, None
        fn = _FP_UN.get(op)
        if fn is not None:
            f[ins.dst[1]] = fn(f[ins.srcs[0][1]])
            st.pc = next_pc
            return 0, None, None, None
        fn = _FP_CMP.get(op)
        if fn is not None:
            st.write_s(ins.dst[1], fn(f[ins.srcs[0][1]], f[ins.srcs[1][1]]))
            st.pc = next_pc
            return 0, None, None, None
        if op == "fli":
            f[ins.dst[1]] = float(ins.imm)
            st.pc = next_pc
            return 0, None, None, None
        if op == "itof":
            f[ins.dst[1]] = float(s[ins.srcs[0][1]])
            st.pc = next_pc
            return 0, None, None, None
        if op == "ftoi":
            val = f[ins.srcs[0][1]]
            if math.isnan(val) or math.isinf(val):
                ival = _I64_MIN
            else:
                ival = max(_I64_MIN, min(_I64_MAX, int(val)))
            st.write_s(ins.dst[1], ival)
            st.pc = next_pc
            return 0, None, None, None

        # ---- scalar memory --------------------------------------------------
        if op in ("ld", "fld", "st", "fst"):
            off, base = ins.mem
            addr = s[base[1]] + off
            if op == "ld":
                st.write_s(ins.dst[1], mem.load_i64(addr))
            elif op == "fld":
                f[ins.dst[1]] = mem.load_f64(addr)
            elif op == "st":
                mem.store_i64(addr, s[ins.srcs[0][1]])
            else:
                mem.store_f64(addr, f[ins.srcs[0][1]])
            st.pc = next_pc
            return 0, np.array([addr], dtype=np.int64), None, None

        # ---- control flow ---------------------------------------------------
        fn = _BRANCH.get(op)
        if fn is not None:
            taken = fn(s[ins.srcs[0][1]], s[ins.srcs[1][1]])
            st.pc = ins.target if taken else next_pc
            return 0, None, taken, ins.target
        if op == "j":
            st.pc = ins.target
            return 0, None, True, ins.target
        if op == "jal":
            st.write_s(ins.dst[1], next_pc)
            st.pc = ins.target
            return 0, None, True, ins.target
        if op == "jr":
            tgt = s[ins.srcs[0][1]]
            st.pc = tgt
            return 0, None, True, tgt
        if op == "halt":
            return 0, None, None, None
        if op == "barrier":
            return 0, None, None, None
        if op == "vltcfg" or op == "lsync":
            st.pc = next_pc
            return 0, None, None, None

        # ---- thread ids -----------------------------------------------------
        if op == "tid":
            st.write_s(ins.dst[1], st.tid)
            st.pc = next_pc
            return 0, None, None, None
        if op == "ntid":
            st.write_s(ins.dst[1], st.ntid)
            st.pc = next_pc
            return 0, None, None, None

        # ---- vector length --------------------------------------------------
        if op == "setvl":
            req = s[ins.srcs[0][1]]
            vl = max(0, min(req, MVL))
            st.vl = vl
            st.write_s(ins.dst[1], vl)
            st.pc = next_pc
            return 0, None, None, None

        # ---- vector ---------------------------------------------------------
        if sp.is_vector:
            result = self._execute_vector(st, ins, mem)
            st.pc = next_pc
            return result

        raise ExecutionError(f"no handler for opcode {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------

    def _execute_vector(self, st: ThreadState, ins: Instr, mem: Memory):
        """Execute one vector instruction; returns (vl, addrs, None, None)."""
        op = ins.op
        sp = ins.spec
        vl = st.vl
        s, f = st.s, st.f
        v_i, v_f = st.v_i, st.v_f

        # Split family and form for arithmetic mnemonics like "vfadd.vs".
        if "." in op:
            fam, form = op.rsplit(".", 1)
        else:
            fam, form = op, ""

        def write_i(res: np.ndarray) -> None:
            d = ins.dst[1]
            if ins.masked:
                m = st.vm[:vl]
                np.copyto(v_i[d, :vl], res.astype(np.int64, copy=False),
                          where=m)
            else:
                v_i[d, :vl] = res

        def write_f(res: np.ndarray) -> None:
            d = ins.dst[1]
            if ins.masked:
                m = st.vm[:vl]
                np.copyto(v_f[d, :vl], res.astype(np.float64, copy=False),
                          where=m)
            else:
                v_f[d, :vl] = res

        # -- integer arithmetic --
        fn = _VINT_BIN.get(fam)
        if fn is not None or fam == "vrsub":
            a = v_i[ins.srcs[0][1], :vl]
            if form == "vv":
                b = v_i[ins.srcs[1][1], :vl]
            else:
                b = np.int64(s[ins.srcs[1][1]])
            if fam == "vrsub":
                res = b - a
            else:
                res = fn(a, b)
            write_i(np.asarray(res, dtype=np.int64))
            return vl, None, None, None

        # -- FP arithmetic --
        fn = _VFP_BIN.get(fam)
        if fn is not None or fam == "vfrsub":
            a = v_f[ins.srcs[0][1], :vl]
            if form == "vv":
                b = v_f[ins.srcs[1][1], :vl]
            else:
                b = np.float64(f[ins.srcs[1][1]])
            res = (b - a) if fam == "vfrsub" else fn(a, b)
            write_f(np.asarray(res, dtype=np.float64))
            return vl, None, None, None

        if fam in ("vfsqrt", "vfneg", "vfabs"):
            a = v_f[ins.srcs[0][1], :vl]
            if fam == "vfsqrt":
                res = np.sqrt(np.where(a >= 0, a, np.nan))
            elif fam == "vfneg":
                res = -a
            else:
                res = np.abs(a)
            write_f(res)
            return vl, None, None, None

        if fam == "vitof":
            write_f(v_i[ins.srcs[0][1], :vl].astype(np.float64))
            return vl, None, None, None
        if fam == "vftoi":
            a = v_f[ins.srcs[0][1], :vl]
            safe = np.where(np.isfinite(a), a, 0.0)
            write_i(np.trunc(safe).astype(np.int64))
            return vl, None, None, None

        if fam == "vmv" and form == "v":
            write_i(v_i[ins.srcs[0][1], :vl])
            return vl, None, None, None
        if fam == "vmv" and form == "s":
            write_i(np.full(vl, s[ins.srcs[0][1]], dtype=np.int64))
            return vl, None, None, None
        if fam == "vfmv":
            write_f(np.full(vl, f[ins.srcs[0][1]], dtype=np.float64))
            return vl, None, None, None

        # -- compares into the mask register --
        fn = _VINT_CMP.get(fam)
        if fn is not None:
            a = v_i[ins.srcs[0][1], :vl]
            b = (v_i[ins.srcs[1][1], :vl] if form == "vv"
                 else np.int64(s[ins.srcs[1][1]]))
            st.vm[:vl] = fn(a, b)
            st.vm[vl:] = False
            return vl, None, None, None
        fn = _VFP_CMP.get(fam)
        if fn is not None:
            a = v_f[ins.srcs[0][1], :vl]
            b = (v_f[ins.srcs[1][1], :vl] if form == "vv"
                 else np.float64(f[ins.srcs[1][1]]))
            st.vm[:vl] = fn(a, b)
            st.vm[vl:] = False
            return vl, None, None, None

        # -- merge / mask ops --
        if fam == "vmerge":
            a = v_i[ins.srcs[0][1], :vl]
            b = (v_i[ins.srcs[1][1], :vl] if form == "vv"
                 else np.int64(s[ins.srcs[1][1]]))
            v_i[ins.dst[1], :vl] = np.where(st.vm[:vl], a, b)
            return vl, None, None, None
        if fam == "vfmerge":
            a = v_f[ins.srcs[0][1], :vl]
            b = np.float64(f[ins.srcs[1][1]])
            v_f[ins.dst[1], :vl] = np.where(st.vm[:vl], a, b)
            return vl, None, None, None
        if op == "vmpop":
            st.write_s(ins.dst[1], int(np.count_nonzero(st.vm[:vl])))
            return vl, None, None, None
        if op == "vmfirst":
            nz = np.nonzero(st.vm[:vl])[0]
            st.write_s(ins.dst[1], int(nz[0]) if nz.size else -1)
            return vl, None, None, None
        if op == "viota.m":
            m = st.vm[:vl].astype(np.int64)
            iota = np.concatenate(([0], np.cumsum(m)[:-1])) if vl else m
            v_i[ins.dst[1], :vl] = iota
            return vl, None, None, None
        if op == "vid.v":
            write_i(np.arange(vl, dtype=np.int64))
            return vl, None, None, None
        if op == "vcompress.m":
            src = v_i[ins.srcs[0][1], :vl][st.vm[:vl]]
            v_i[ins.dst[1], :src.size] = src
            return vl, None, None, None

        # -- reductions --
        if sp.is_reduction:
            active = st.active_mask(ins.masked)
            if op.startswith("vf"):
                vals = v_f[ins.srcs[0][1], :vl][active]
                if op == "vfredsum":
                    f[ins.dst[1]] = float(vals.sum()) if vals.size else 0.0
                elif op == "vfredmin":
                    f[ins.dst[1]] = float(vals.min()) if vals.size else math.inf
                else:
                    f[ins.dst[1]] = float(vals.max()) if vals.size else -math.inf
            else:
                vals = v_i[ins.srcs[0][1], :vl][active]
                if op == "vredsum":
                    st.write_s(ins.dst[1],
                               int(vals.sum(dtype=np.int64)) if vals.size else 0)
                elif op == "vredmin":
                    st.write_s(ins.dst[1],
                               int(vals.min()) if vals.size else _I64_MAX)
                else:
                    st.write_s(ins.dst[1],
                               int(vals.max()) if vals.size else _I64_MIN)
            return vl, None, None, None

        # -- element insert / extract --
        if op in ("vext", "vfext", "vins", "vfins"):
            idx = s[ins.srcs[1][1]]
            if not 0 <= idx < MVL:
                raise ExecutionError(
                    f"element index {idx} out of range at pc {ins.pc}")
            if op == "vext":
                st.write_s(ins.dst[1], int(v_i[ins.srcs[0][1], idx]))
            elif op == "vfext":
                f[ins.dst[1]] = float(v_f[ins.srcs[0][1], idx])
            elif op == "vins":
                # scalar registers are already wrapped to 64-bit signed
                v_i[ins.dst[1], idx] = np.int64(s[ins.srcs[0][1]])
            else:
                v_f[ins.dst[1], idx] = f[ins.srcs[0][1]]
            return vl, None, None, None

        # -- vector memory --
        if sp.pool == "vmem":
            off, base = ins.mem
            base_addr = s[base[1]] + off
            if sp.mem_stride:
                stride = s[ins.stride[1]]
                addrs = base_addr + stride * np.arange(vl, dtype=np.int64)
            elif sp.mem_indexed:
                addrs = base_addr + v_i[ins.vidx[1], :vl]
            else:
                addrs = base_addr + 8 * np.arange(vl, dtype=np.int64)
            if ins.masked:
                active = st.vm[:vl]
                act_addrs = addrs[active]
            else:
                active = None
                act_addrs = addrs
            if sp.is_load:
                d = ins.dst[1]
                if active is None:
                    v_i[d, :vl] = mem.gather_i64(addrs)
                else:
                    v_i[d, :vl][active] = mem.gather_i64(act_addrs)
            else:
                src = v_i[ins.srcs[0][1], :vl]
                if active is None:
                    mem.scatter_i64(addrs, src)
                else:
                    mem.scatter_i64(act_addrs, src[active])
            return vl, act_addrs.astype(np.int64, copy=True), None, None

        raise ExecutionError(  # pragma: no cover
            f"no vector handler for opcode {op!r}")


def run_program(program: Program, num_threads: int = 1,
                record_trace: bool = True,
                max_ops: int = 20_000_000) -> Tuple[ProgramTrace, Executor]:
    """Execute ``program``; returns ``(trace, executor)``.

    The executor is returned so callers can inspect final memory for
    workload self-checks.
    """
    ex = Executor(program, num_threads=num_threads,
                  record_trace=record_trace, max_ops=max_ops)
    trace = ex.run()
    return trace, ex
