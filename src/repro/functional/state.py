"""Architectural thread state for the functional simulator."""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.registers import MVL, NUM_FREGS, NUM_SREGS, NUM_VREGS


class ThreadState:
    """The full architectural state of one software thread.

    * scalar integer registers are Python ints (wrapped to 64-bit signed
      on writeback by the executor -- Python ints avoid NumPy overflow
      warnings in tight scalar loops),
    * scalar FP registers are Python floats,
    * vector registers are a single ``(NUM_VREGS, MVL)`` int64 array with
      a float64 *view* of the same buffer, so integer and FP vector ops
      reinterpret bits exactly like hardware would,
    * ``vl`` is the vector-length register, ``vm`` the mask register.
    """

    __slots__ = ("tid", "ntid", "pc", "halted",
                 "s", "f", "v_i", "v_f", "vl", "vm", "barrier_count")

    def __init__(self, tid: int, ntid: int):
        self.tid = tid
        self.ntid = ntid
        self.pc = 0
        self.halted = False
        self.s: List[int] = [0] * NUM_SREGS
        self.f: List[float] = [0.0] * NUM_FREGS
        self.v_i = np.zeros((NUM_VREGS, MVL), dtype=np.int64)
        self.v_f = self.v_i.view(np.float64)
        self.vl = MVL
        self.vm = np.zeros(MVL, dtype=bool)
        self.barrier_count = 0

    def write_s(self, idx: int, value: int) -> None:
        """Write a scalar integer register, wrapping to 64-bit signed.

        ``s0`` is hard-wired to zero; writes to it are discarded.
        """
        if idx == 0:
            return
        value &= 0xFFFFFFFFFFFFFFFF
        if value >= 0x8000000000000000:
            value -= 0x10000000000000000
        self.s[idx] = value

    def active_mask(self, masked: bool) -> np.ndarray:
        """Boolean element-enable over ``[0, vl)`` for a (possibly masked) op."""
        if masked:
            return self.vm[: self.vl]
        return np.ones(self.vl, dtype=bool)
