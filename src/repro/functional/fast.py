"""Fast functional engine: block-compiled trace generation.

The reference interpreter in :mod:`repro.functional.executor` dispatches
every dynamic instruction through dict lookups and per-op attribute
reads; with the columnar timing engine of PR 6 that made *trace
generation* the dominant cold-run cost.  This module keeps the reference
executor as the oracle and adds :class:`FastExecutor`, which must
produce bit-identical traces (npz bytes included) and final
architectural state while being an order of magnitude faster.

How it gets there:

* **Decode once.**  The program is pre-decoded into basic blocks
  (leaders at pc 0, branch targets, and the successors of
  branch/barrier/halt).  Each block is compiled -- via ``compile``/
  ``exec`` of generated Python -- into one specialized closure with
  every operand index, immediate, and successor block id baked in as a
  literal.  Executing a block is a single Python call; there is no
  per-op dispatch, no ``Instr`` attribute traffic, and no per-op
  ``DynOp`` allocation.  Decoded programs are cached by content digest,
  so sweeps over many configs decode each program once per process.
* **Vector ops stay NumPy.**  The generated code manipulates the same
  ``ThreadState`` register file as the reference executor (vector
  registers are ``(NUM_VREGS, MVL)`` int64 with a float64 view), so
  vector instructions execute as single array expressions under
  mask/VL, exactly mirroring the reference semantics.
* **Columnar trace emission.**  Executing threads record only a list of
  block ids (the *block path*) plus four sparse dynamic side-channels
  (``setvl`` values, ``jr`` targets, ambiguous branch outcomes, memory
  addresses).  After execution the full columnar arrays -- exactly the
  ``ThreadTrace.columns()`` / npz layout -- are materialized with
  vectorized gathers from per-pc static tables; the ``List[DynOp]``
  form is never built unless someone asks for it.  Threads of a phase
  whose control flow agreed (identical block paths -- the common SPMD
  case) share one static expansion; divergent threads fall back to
  their own per-thread expansion.

Execution order across threads is phase-serial, identical to the
reference executor: thread 0 runs to its barrier, then thread 1, and so
on.  Any cross-thread lock-stepping would reorder memory accesses
relative to the oracle and break the bit-identity guarantee for racy
programs, so "batching" here means shared decode and shared trace
expansion, never interleaved execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..isa.program import Instr, Program
from ..isa.registers import MVL, reg_uid
from .executor import (ExecutionError, _fdiv, _sdiv, _srem, _srl, _vdiv,
                       _vrem, _vsrl)
from .memory import Memory, MemoryFault, MisalignedAccess
from .state import ThreadState
from .trace import ProgramTrace, ThreadTrace, thread_trace_from_columns

#: functional (trace-generation) engines selectable throughout the stack
FUNC_ENGINES = ("reference", "fast")


def validate_func_engine(engine: str) -> str:
    """Check a functional-engine name; returns it or raises ValueError."""
    if engine not in FUNC_ENGINES:
        raise ValueError(
            f"unknown functional engine {engine!r} (choose from "
            f"{', '.join(FUNC_ENGINES)})")
    return engine


_MASK64 = 0xFFFFFFFFFFFFFFFF
_WRAP_LO = "0x8000000000000000"
_WRAP_HI = "0x10000000000000000"

# --------------------------------------------------------------------------
# Code generation
# --------------------------------------------------------------------------
#
# Expression templates for scalar integer ops.  ``{a}``/``{b}`` are the
# operand expressions; a second table says whether the raw Python-int
# result can leave the signed-64 range and needs the writeback wrap.

_INT_EXPR = {
    "add": "{a} + {b}", "sub": "{a} - {b}", "mul": "{a} * {b}",
    "div": "_sdiv({a}, {b})", "rem": "_srem({a}, {b})",
    "and": "{a} & {b}", "or": "{a} | {b}", "xor": "{a} ^ {b}",
    "sll": "{a} << ({b} & 63)", "srl": "_srl({a}, {b})",
    "sra": "{a} >> ({b} & 63)",
    "slt": "1 if {a} < {b} else 0", "sle": "1 if {a} <= {b} else 0",
    "seq": "1 if {a} == {b} else 0", "sne": "1 if {a} != {b} else 0",
    "min": "{a} if {a} <= {b} else {b}", "max": "{a} if {a} >= {b} else {b}",
}
#: ops whose result may leave [-2^63, 2^63): they go through the wrap
_INT_WRAP = frozenset(("add", "sub", "mul", "div", "sll", "srl"))

_INT_IMM_BASE = {"addi": "add", "muli": "mul", "andi": "and", "ori": "or",
                 "xori": "xor", "slli": "sll", "srli": "srl", "srai": "sra",
                 "slti": "slt"}

_FP_EXPR = {
    "fadd": "{a} + {b}", "fsub": "{a} - {b}", "fmul": "{a} * {b}",
    "fdiv": "_fdiv({a}, {b})",
    "fmin": "min({a}, {b})", "fmax": "max({a}, {b})",
}
_FP_CMP_OP = {"feq": "==", "flt": "<", "fle": "<="}
_BRANCH_OP = {"beq": "==", "bne": "!=", "blt": "<", "bge": ">="}

_VINT_EXPR = {
    "vadd": "{a} + {b}", "vsub": "{a} - {b}", "vmul": "{a} * {b}",
    "vdiv": "_vdiv({a}, {b})", "vrem": "_vrem({a}, {b})",
    "vand": "{a} & {b}", "vor": "{a} | {b}", "vxor": "{a} ^ {b}",
    "vsll": "np.left_shift({a}, np.asarray({b}) & 63)",
    "vsrl": "_vsrl({a}, {b})",
    "vsra": "{a} >> (np.asarray({b}) & 63)",
    "vmin": "np.minimum({a}, {b})", "vmax": "np.maximum({a}, {b})",
    "vrsub": "{b} - {a}",
}
_VFP_EXPR = {
    "vfadd": "{a} + {b}", "vfsub": "{a} - {b}", "vfmul": "{a} * {b}",
    "vfdiv": "np.divide({a}, {b})",
    "vfmin": "np.minimum({a}, {b})", "vfmax": "np.maximum({a}, {b})",
    "vfrsub": "{b} - {a}",
}
_VINT_CMP_OP = {"vseq": "==", "vsne": "!=", "vslt": "<", "vsle": "<="}
_VFP_CMP_OP = {"vfeq": "==", "vflt": "<", "vfle": "<="}

# unmasked binary vector arithmetic fuses into a single ufunc call
# writing straight into the destination row (no temporary, no cast);
# element-wise ufuncs are alias-safe for dst == src
_VINT_FUSED = {
    "vadd": "np.add({a}, {b}, out={o})",
    "vsub": "np.subtract({a}, {b}, out={o})",
    "vmul": "np.multiply({a}, {b}, out={o})",
    "vand": "np.bitwise_and({a}, {b}, out={o})",
    "vor": "np.bitwise_or({a}, {b}, out={o})",
    "vxor": "np.bitwise_xor({a}, {b}, out={o})",
    "vmin": "np.minimum({a}, {b}, out={o})",
    "vmax": "np.maximum({a}, {b}, out={o})",
    "vrsub": "np.subtract({b}, {a}, out={o})",
    "vsll": "np.left_shift({a}, np.asarray({b}) & 63, out={o})",
    "vsra": "np.right_shift({a}, np.asarray({b}) & 63, out={o})",
}
_VFP_FUSED = {
    "vfadd": "np.add({a}, {b}, out={o})",
    "vfsub": "np.subtract({a}, {b}, out={o})",
    "vfmul": "np.multiply({a}, {b}, out={o})",
    "vfdiv": "np.divide({a}, {b}, out={o})",
    "vfmin": "np.minimum({a}, {b}, out={o})",
    "vfmax": "np.maximum({a}, {b}, out={o})",
    "vfrsub": "np.subtract({b}, {a}, out={o})",
}


def _wrap_write(dst: int, expr: str, out: List[str]) -> None:
    """Emit a wrapped scalar-int register write (s0 writes discarded)."""
    if dst == 0:
        return
    out.append(f"_x = ({expr}) & {hex(_MASK64)}")
    out.append(f"S[{dst}] = _x - {_WRAP_HI} if _x >= {_WRAP_LO} else _x")


def _plain_write(dst: int, expr: str, out: List[str]) -> None:
    """Emit an in-range scalar-int register write (s0 writes discarded)."""
    if dst != 0:
        out.append(f"S[{dst}] = {expr}")


def _addr_expr(ins: Instr) -> str:
    off, base = ins.mem
    bi = base[1]
    return f"S[{bi}] + {off}" if off else f"S[{bi}]"


def _write_vec(dst: int, res: str, masked: bool, fp: bool,
               out: List[str]) -> None:
    """Emit a (possibly masked) vector register write of ``res``."""
    reg = "VF" if fp else "VI"
    dt = "np.float64" if fp else "np.int64"
    if masked:
        out.append(f"_r = np.asarray({res}, dtype={dt})")
        out.append(f"np.copyto({reg}[{dst}, :_vl], _r, where=VM[:_vl])")
    else:
        out.append(f"{reg}[{dst}, :_vl] = np.asarray({res}, dtype={dt})")


def _gen_scalar(ins: Instr, out: List[str]) -> bool:
    """Emit body lines for a non-control scalar op; returns handled."""
    op = ins.op
    expr = _INT_EXPR.get(op)
    if expr is not None:
        e = expr.format(a=f"S[{ins.srcs[0][1]}]", b=f"S[{ins.srcs[1][1]}]")
        if op in _INT_WRAP:
            _wrap_write(ins.dst[1], e, out)
        else:
            _plain_write(ins.dst[1], e, out)
        return True
    base = _INT_IMM_BASE.get(op)
    if base is not None:
        e = _INT_EXPR[base].format(a=f"S[{ins.srcs[0][1]}]", b=repr(ins.imm))
        if base in _INT_WRAP:
            _wrap_write(ins.dst[1], e, out)
        else:
            _plain_write(ins.dst[1], e, out)
        return True
    if op == "li":
        v = ins.imm & _MASK64
        if v >= 0x8000000000000000:
            v -= 0x10000000000000000
        _plain_write(ins.dst[1], repr(v), out)
        return True
    if op in ("nop", "vltcfg", "lsync"):
        return True
    expr = _FP_EXPR.get(op)
    if expr is not None:
        out.append(f"F[{ins.dst[1]}] = " + expr.format(
            a=f"F[{ins.srcs[0][1]}]", b=f"F[{ins.srcs[1][1]}]"))
        return True
    if op == "fsqrt":
        out.append(f"_a = F[{ins.srcs[0][1]}]")
        out.append(f"F[{ins.dst[1]}] = "
                   "math.sqrt(_a) if _a >= 0.0 else math.nan")
        return True
    if op == "fabs":
        out.append(f"F[{ins.dst[1]}] = abs(F[{ins.srcs[0][1]}])")
        return True
    if op == "fneg":
        out.append(f"F[{ins.dst[1]}] = -F[{ins.srcs[0][1]}]")
        return True
    if op == "fmv":
        out.append(f"F[{ins.dst[1]}] = F[{ins.srcs[0][1]}]")
        return True
    cmp = _FP_CMP_OP.get(op)
    if cmp is not None:
        _plain_write(
            ins.dst[1],
            f"1 if F[{ins.srcs[0][1]}] {cmp} F[{ins.srcs[1][1]}] else 0",
            out)
        return True
    if op == "fli":
        out.append(f"F[{ins.dst[1]}] = {float(ins.imm)!r}")
        return True
    if op == "itof":
        out.append(f"F[{ins.dst[1]}] = float(S[{ins.srcs[0][1]}])")
        return True
    if op == "ftoi":
        if ins.dst[1] == 0:
            return True     # pure; write to s0 is discarded
        out.append(f"_a = F[{ins.srcs[0][1]}]")
        out.append("if _a != _a or _a == math.inf or _a == -math.inf:")
        out.append(f"    _x = -{_WRAP_LO}")
        out.append("else:")
        out.append("    _x = int(_a)")
        out.append("    if _x > 0x7FFFFFFFFFFFFFFF:")
        out.append("        _x = 0x7FFFFFFFFFFFFFFF")
        out.append(f"    elif _x < -{_WRAP_LO}:")
        out.append(f"        _x = -{_WRAP_LO}")
        out.append(f"S[{ins.dst[1]}] = _x")
        return True
    if op in ("ld", "fld", "st", "fst"):
        # inline the aligned/in-range fast path; the slow Memory method
        # is only reached on the fault path, where it raises with the
        # exact reference message
        out.append(f"_a = {_addr_expr(ins)}")
        out.append("if _a & 7 or not 0 <= _a < MEMN:")
        if op == "ld":
            out.append("    LDI(_a)")
            if ins.dst[1] != 0:     # load into s0 still faults above
                out.append(f"S[{ins.dst[1]}] = M64[_a >> 3].item()")
        elif op == "fld":
            out.append("    LDF(_a)")
            out.append(f"F[{ins.dst[1]}] = MF64[_a >> 3].item()")
        elif op == "st":
            out.append(f"    STI(_a, S[{ins.srcs[0][1]}])")
            out.append(f"M64[_a >> 3] = S[{ins.srcs[0][1]}]")
        else:
            out.append(f"    STF(_a, F[{ins.srcs[0][1]}])")
            out.append(f"MF64[_a >> 3] = F[{ins.srcs[0][1]}]")
        out.append("AS_APP(_a)")
        return True
    if op == "tid":
        _plain_write(ins.dst[1], "TID", out)
        return True
    if op == "ntid":
        _plain_write(ins.dst[1], "NTID", out)
        return True
    if op == "setvl":
        out.append(f"_r = S[{ins.srcs[0][1]}]")
        out.append(f"_v = _r if _r < {MVL} else {MVL}")
        out.append("if _v < 0:")
        out.append("    _v = 0")
        out.append("VLC[0] = _v")
        _plain_write(ins.dst[1], "_v", out)
        out.append("VL_APP(_v)")
        return True
    return False


def _gen_vector(ins: Instr, out: List[str]) -> None:
    """Emit body lines for one vector op (mirrors ``_execute_vector``)."""
    op = ins.op
    sp = ins.spec
    if "." in op:
        fam, form = op.rsplit(".", 1)
    else:
        fam, form = op, ""
    out.append("_vl = VLC[0]")

    def vi(r: int) -> str:
        return f"VI[{r}, :_vl]"

    def vf(r: int) -> str:
        return f"VF[{r}, :_vl]"

    expr = _VINT_EXPR.get(fam)
    if expr is not None:
        a = vi(ins.srcs[0][1])
        b = (vi(ins.srcs[1][1]) if form == "vv"
             else f"np.int64(S[{ins.srcs[1][1]}])")
        fused = None if ins.masked else _VINT_FUSED.get(fam)
        if fused is not None:
            out.append(fused.format(a=a, b=b, o=f"VI[{ins.dst[1]}, :_vl]"))
        else:
            _write_vec(ins.dst[1], expr.format(a=a, b=b), ins.masked,
                       False, out)
        return
    expr = _VFP_EXPR.get(fam)
    if expr is not None:
        a = vf(ins.srcs[0][1])
        b = (vf(ins.srcs[1][1]) if form == "vv"
             else f"np.float64(F[{ins.srcs[1][1]}])")
        fused = None if ins.masked else _VFP_FUSED.get(fam)
        if fused is not None:
            out.append(fused.format(a=a, b=b, o=f"VF[{ins.dst[1]}, :_vl]"))
        else:
            _write_vec(ins.dst[1], expr.format(a=a, b=b), ins.masked,
                       True, out)
        return
    if fam in ("vfsqrt", "vfneg", "vfabs"):
        a = vf(ins.srcs[0][1])
        res = {"vfsqrt": f"np.sqrt(np.where({a} >= 0, {a}, np.nan))",
               "vfneg": f"-{a}", "vfabs": f"np.abs({a})"}[fam]
        _write_vec(ins.dst[1], res, ins.masked, True, out)
        return
    if fam == "vitof":
        _write_vec(ins.dst[1], f"{vi(ins.srcs[0][1])}.astype(np.float64)",
                   ins.masked, True, out)
        return
    if fam == "vftoi":
        a = vf(ins.srcs[0][1])
        out.append(f"_a = {a}")
        _write_vec(ins.dst[1],
                   "np.trunc(np.where(np.isfinite(_a), _a, 0.0))"
                   ".astype(np.int64)", ins.masked, False, out)
        return
    if fam == "vmv" and form == "v":
        _write_vec(ins.dst[1], vi(ins.srcs[0][1]), ins.masked, False, out)
        return
    if fam == "vmv" and form == "s":
        _write_vec(ins.dst[1],
                   f"np.full(_vl, S[{ins.srcs[0][1]}], dtype=np.int64)",
                   ins.masked, False, out)
        return
    if fam == "vfmv":
        _write_vec(ins.dst[1],
                   f"np.full(_vl, F[{ins.srcs[0][1]}], dtype=np.float64)",
                   ins.masked, True, out)
        return
    cmp = _VINT_CMP_OP.get(fam)
    if cmp is not None:
        a = vi(ins.srcs[0][1])
        b = (vi(ins.srcs[1][1]) if form == "vv"
             else f"np.int64(S[{ins.srcs[1][1]}])")
        out.append(f"VM[:_vl] = {a} {cmp} {b}")
        out.append("VM[_vl:] = False")
        return
    cmp = _VFP_CMP_OP.get(fam)
    if cmp is not None:
        a = vf(ins.srcs[0][1])
        b = (vf(ins.srcs[1][1]) if form == "vv"
             else f"np.float64(F[{ins.srcs[1][1]}])")
        out.append(f"VM[:_vl] = {a} {cmp} {b}")
        out.append("VM[_vl:] = False")
        return
    if fam == "vmerge":
        a = vi(ins.srcs[0][1])
        b = (vi(ins.srcs[1][1]) if form == "vv"
             else f"np.int64(S[{ins.srcs[1][1]}])")
        out.append(f"VI[{ins.dst[1]}, :_vl] = np.where(VM[:_vl], {a}, {b})")
        return
    if fam == "vfmerge":
        a = vf(ins.srcs[0][1])
        b = f"np.float64(F[{ins.srcs[1][1]}])"
        out.append(f"VF[{ins.dst[1]}, :_vl] = np.where(VM[:_vl], {a}, {b})")
        return
    if op == "vmpop":
        _plain_write(ins.dst[1], "int(np.count_nonzero(VM[:_vl]))", out)
        return
    if op == "vmfirst":
        if ins.dst[1] != 0:
            out.append("_nz = np.nonzero(VM[:_vl])[0]")
            _plain_write(ins.dst[1], "int(_nz[0]) if _nz.size else -1", out)
        return
    if op == "viota.m":
        out.append("_m = VM[:_vl].astype(np.int64)")
        out.append(f"VI[{ins.dst[1]}, :_vl] = (np.concatenate("
                   "([0], np.cumsum(_m)[:-1])) if _vl else _m)")
        return
    if op == "vid.v":
        _write_vec(ins.dst[1], "np.arange(_vl, dtype=np.int64)",
                   ins.masked, False, out)
        return
    if op == "vcompress.m":
        out.append(f"_src = VI[{ins.srcs[0][1]}, :_vl][VM[:_vl]]")
        out.append(f"VI[{ins.dst[1]}, :_src.size] = _src")
        return
    if sp.is_reduction:
        src = ins.srcs[0][1]
        sel = "[VM[:_vl]]" if ins.masked else ""
        if op.startswith("vf"):
            out.append(f"_vals = VF[{src}, :_vl]{sel}")
            res = {"vfredsum": "float(_vals.sum()) if _vals.size else 0.0",
                   "vfredmin":
                       "float(_vals.min()) if _vals.size else math.inf",
                   "vfredmax":
                       "float(_vals.max()) if _vals.size else -math.inf"}[op]
            out.append(f"F[{ins.dst[1]}] = {res}")
        else:
            if ins.dst[1] == 0:
                return      # pure reduction into s0: discarded
            out.append(f"_vals = VI[{src}, :_vl]{sel}")
            res = {"vredsum":
                       "int(_vals.sum(dtype=np.int64)) if _vals.size else 0",
                   "vredmin":
                       "int(_vals.min()) if _vals.size"
                       " else 0x7FFFFFFFFFFFFFFF",
                   "vredmax":
                       f"int(_vals.max()) if _vals.size else -{_WRAP_LO}"}[op]
            out.append(f"S[{ins.dst[1]}] = {res}")
        return
    if op in ("vext", "vfext", "vins", "vfins"):
        out.append(f"_i = S[{ins.srcs[1][1]}]")
        out.append(f"if not 0 <= _i < {MVL}:")
        out.append('    raise ExecutionError('
                   f'"element index %d out of range at pc {ins.pc}" % _i)')
        if op == "vext":
            _plain_write(ins.dst[1], f"int(VI[{ins.srcs[0][1]}, _i])", out)
        elif op == "vfext":
            out.append(f"F[{ins.dst[1]}] = float(VF[{ins.srcs[0][1]}, _i])")
        elif op == "vins":
            out.append(f"VI[{ins.dst[1]}, _i] = np.int64(S[{ins.srcs[0][1]}])")
        else:
            out.append(f"VF[{ins.dst[1]}, _i] = F[{ins.srcs[0][1]}]")
        return
    if sp.pool == "vmem":
        if not sp.mem_stride and not sp.mem_indexed and not ins.masked:
            # unit-stride unmasked: O(1) scalar bounds checks plus a
            # contiguous slice instead of fancy indexing; the raises
            # replicate Memory._vindex (alignment checked first, and a
            # zero-vl access checks nothing, like an empty gather)
            out.append(f"_b = {_addr_expr(ins)}")
            out.append("if _vl:")
            out.append("    if _b & 7:")
            out.append("        raise MisalignedAccess("
                       "'vector address %#x not aligned' % _b)")
            out.append("    if _b < 0 or _b + 8 * _vl > MEMN:")
            out.append("        raise MemoryFault("
                       "'vector access outside memory image')")
            out.append("    _lo = _b >> 3")
            if sp.is_load:
                out.append(f"    VI[{ins.dst[1]}, :_vl] = M64[_lo:_lo + _vl]")
            else:
                out.append(f"    M64[_lo:_lo + _vl] = "
                           f"VI[{ins.srcs[0][1]}, :_vl]")
            out.append("AV_APP(_b + _A8[:_vl])")
            return
        if sp.mem_stride:
            out.append(f"_ad = {_addr_expr(ins)} + "
                       f"S[{ins.stride[1]}] * _AR[:_vl]")
        elif sp.mem_indexed:
            out.append(f"_ad = {_addr_expr(ins)} + VI[{ins.vidx[1]}, :_vl]")
        else:
            out.append(f"_ad = {_addr_expr(ins)} + 8 * _AR[:_vl]")
        if ins.masked:
            out.append("_m = VM[:_vl]")
            out.append("_aa = _ad[_m]")
            if sp.is_load:
                out.append(f"VI[{ins.dst[1]}, :_vl][_m] = GATH(_aa)")
            else:
                out.append(f"SCAT(_aa, VI[{ins.srcs[0][1]}, :_vl][_m])")
            out.append("AV_APP(_aa.astype(np.int64, copy=True))")
        else:
            if sp.is_load:
                out.append(f"VI[{ins.dst[1]}, :_vl] = GATH(_ad)")
            else:
                out.append(f"SCAT(_ad, VI[{ins.srcs[0][1]}, :_vl])")
            out.append("AV_APP(_ad.astype(np.int64, copy=True))")
        return
    raise ExecutionError(  # pragma: no cover
        f"no fast-engine handler for vector opcode {op!r}")


# --------------------------------------------------------------------------
# Decoded program: basic blocks compiled to specialized closures
# --------------------------------------------------------------------------

_FACTORY_PRELUDE = """\
def _make(env):
    S = env["s"]; F = env["f"]; VI = env["vi"]; VF = env["vf"]
    VM = env["vm"]; VLC = env["vlc"]
    LDI = env["ldi"]; STI = env["sti"]; LDF = env["ldf"]; STF = env["stf"]
    GATH = env["gath"]; SCAT = env["scat"]
    M64 = env["m64"]; MF64 = env["mf64"]; MEMN = env["memn"]
    AS_APP = env["as_app"]; AV_APP = env["av_app"]; VL_APP = env["vl_app"]
    JR_APP = env["jr_app"]; AMB_APP = env["amb_app"]
    RPT_APP = env["rpt_app"]
    TID = env["tid"]; NTID = env["ntid"]; BAT = env["bat"]
    def _blk():
"""


class _Block:
    """One compiled basic block."""

    __slots__ = ("start", "pcs", "factory", "source", "end_pc")

    def __init__(self, start: int, pcs: np.ndarray,
                 factory: Callable, source: str):
        self.start = start
        self.pcs = pcs          # int64 array of static pcs, in order
        self.end_pc = int(pcs[-1])
        self.factory = factory  # factory(env) -> zero-arg block closure
        self.source = source    # generated Python (debugging aid)


class _DecodedProgram:
    """Per-program static decode shared by all FastExecutor instances."""

    def __init__(self, program: Program):
        self.program = program
        instrs = program.instrs
        n = self.n = len(instrs)

        # -- per-pc static trace columns ---------------------------------
        mnemonics: List[str] = []
        op_gid_of: Dict[str, int] = {}
        op_gid = np.empty(n, dtype=np.int64)
        is_vector = np.zeros(n, dtype=bool)
        is_setvl = np.zeros(n, dtype=bool)
        is_mem = np.zeros(n, dtype=np.int8)
        is_smem = np.zeros(n, dtype=bool)   # scalar ld/st/fld/fst
        is_vmem = np.zeros(n, dtype=bool)   # vector memory ops
        is_jr = np.zeros(n, dtype=bool)
        is_amb = np.zeros(n, dtype=bool)    # cond branch to pc+1
        is_cond = np.zeros(n, dtype=bool)   # cond branch elsewhere
        taken_base = np.full(n, -1, dtype=np.int8)
        tgt_base = np.full(n, -1, dtype=np.int64)
        imm_base = np.full(n, -1, dtype=np.int64)
        r_len = np.zeros(n, dtype=np.int64)
        w_len = np.zeros(n, dtype=np.int64)
        r_parts: List[int] = []
        w_parts: List[int] = []
        for pc, ins in enumerate(instrs):
            sp = ins.spec
            gid = op_gid_of.get(ins.op)
            if gid is None:
                gid = op_gid_of[ins.op] = len(mnemonics)
                mnemonics.append(ins.op)
            op_gid[pc] = gid
            is_vector[pc] = sp.is_vector
            is_setvl[pc] = sp.writes_vl
            if ins.mem is not None:
                is_mem[pc] = 1
                if sp.is_vector:
                    is_vmem[pc] = True
                else:
                    is_smem[pc] = True
            if sp.is_branch:
                if ins.op == "jr":
                    is_jr[pc] = True
                    taken_base[pc] = 1
                elif sp.is_uncond:          # j / jal
                    taken_base[pc] = 1
                    tgt_base[pc] = ins.target
                elif ins.target == pc + 1:
                    is_amb[pc] = True       # outcome recorded dynamically
                    tgt_base[pc] = ins.target
                else:
                    is_cond[pc] = True      # outcome derived from next pc
                    tgt_base[pc] = ins.target
            if sp.is_vltcfg:
                imm_base[pc] = ins.imm
            r = tuple(reg_uid(x) for x in ins.reads())
            w = tuple(reg_uid(x) for x in ins.writes())
            r_len[pc] = len(r)
            w_len[pc] = len(w)
            r_parts.extend(r)
            w_parts.extend(w)
        self.mnemonics = mnemonics
        self.op_gid = op_gid
        self.is_vector = is_vector
        self.is_setvl = is_setvl
        self.is_mem = is_mem
        self.is_smem = is_smem
        self.is_vmem = is_vmem
        self.is_jr = is_jr
        self.is_amb = is_amb
        self.is_cond = is_cond
        self.taken_base = taken_base
        self.tgt_base = tgt_base
        self.imm_base = imm_base
        self.r_len = r_len
        self.w_len = w_len
        self.r_cat = np.asarray(r_parts, dtype=np.int64)
        self.w_cat = np.asarray(w_parts, dtype=np.int64)
        self.r_cat_off = np.zeros(n, dtype=np.int64)
        np.cumsum(r_len[:-1], out=self.r_cat_off[1:])
        self.w_cat_off = np.zeros(n, dtype=np.int64)
        np.cumsum(w_len[:-1], out=self.w_cat_off[1:])

        # -- basic blocks -------------------------------------------------
        leaders = {0}
        for pc, ins in enumerate(instrs):
            sp = ins.spec
            if sp.is_branch or sp.is_barrier or sp.is_halt:
                if pc + 1 < n:
                    leaders.add(pc + 1)
            if sp.is_branch and isinstance(ins.target, int):
                leaders.add(ins.target)
        self.leaders = leaders
        self.blocks: List[_Block] = []
        self.blk_len: List[int] = []
        self.is_rep: List[bool] = []    # self-loop blocks (see below)
        self.bid_by_start: Dict[int, int] = {}
        self._flat = None       # (pcs_flat, blk_off, blk_len_arr) cache
        # cross-run expansion cache: path bytes -> static columns.  The
        # expansion depends only on the decoded program and the block
        # path, so repeated cold runs (config sweeps re-generating the
        # same trace) skip it entirely.  Bounded by total cached ops;
        # oversized paths are never cached.
        self.expand_cache: Dict[bytes, Dict[str, object]] = {}
        self.expand_cached_ops = 0
        self._g = {"np": np, "math": __import__("math"),
                   "_sdiv": _sdiv, "_srem": _srem, "_srl": _srl,
                   "_fdiv": _fdiv, "_vdiv": _vdiv, "_vrem": _vrem,
                   "_vsrl": _vsrl, "ExecutionError": ExecutionError,
                   "MisalignedAccess": MisalignedAccess,
                   "MemoryFault": MemoryFault,
                   "_AR": np.arange(MVL, dtype=np.int64),
                   "_A8": 8 * np.arange(MVL, dtype=np.int64)}
        starts = sorted(leaders)
        # two passes: assign bids first so branch codegen can bake
        # successor bids in as literals
        spans = [self._block_span(s) for s in starts]
        for bid, (s, _) in enumerate(zip(starts, spans)):
            self.bid_by_start[s] = bid
        for s, span in zip(starts, spans):
            self._append_block(s, span)

    # -- block construction -----------------------------------------------

    def _block_span(self, start: int) -> List[int]:
        """The pcs of the block starting at ``start``."""
        pcs = []
        pc = start
        instrs = self.program.instrs
        while True:
            pcs.append(pc)
            sp = instrs[pc].spec
            if sp.is_branch or sp.is_barrier or sp.is_halt:
                break
            if pc + 1 >= self.n or (pc + 1) in self.leaders:
                break
            pc += 1
        return pcs

    def _append_block(self, start: int, pcs: List[int]) -> int:
        instrs = self.program.instrs
        body: List[str] = []
        last = instrs[pcs[-1]]
        sp = last.spec
        rep = (sp.is_branch and last.op in _BRANCH_OP
               and last.target == start)
        for pc in pcs[:-1] if (sp.is_branch or sp.is_barrier or sp.is_halt) \
                else pcs:
            self._gen_one(instrs[pc], body)
        if rep:
            body = self._wrap_rep(last, body)
        elif sp.is_halt:
            body.append("return -1")
        elif sp.is_barrier:
            body.append("return -2")
        elif sp.is_branch:
            self._gen_branch(last, body)
        else:
            # plain fallthrough to the next leader (or off the end)
            nxt = pcs[-1] + 1
            if nxt in self.bid_by_start:
                body.append(f"return {self.bid_by_start[nxt]}")
            else:
                body.append(f"return BAT({nxt})")
        src = _FACTORY_PRELUDE + "".join(
            f"        {line}\n" for line in body) + "    return _blk\n"
        bid = len(self.blocks)
        ns: Dict[str, object] = {}
        exec(compile(src, f"<vlt-fast:{self.program.name}:b{bid}>", "exec"),
             self._g, ns)
        self.blocks.append(_Block(start, np.asarray(pcs, dtype=np.int64),
                                  ns["_make"], src))
        self.blk_len.append(len(pcs))
        self.is_rep.append(rep)
        self._flat = None
        return bid

    #: per-dispatch iteration cap for self-loop blocks: bounds a single
    #: closure call so the driver's max_ops budget keeps getting checked
    _REP_CAP = 4096

    def _wrap_rep(self, last: Instr, body: List[str]) -> List[str]:
        """Wrap a self-loop block body in an in-closure iteration loop.

        A basic block whose conditional terminator branches back to its
        own start (the classic tight scalar loop) iterates entirely
        inside one compiled closure, recording only an iteration count
        (``RPT_APP``); trace expansion replays the count with
        ``np.repeat``.  The per-dispatch cap keeps runaway loops
        answerable to the driver's instruction budget.
        """
        cmp = _BRANCH_OP[last.op]
        cond = f"S[{last.srcs[0][1]}] {cmp} S[{last.srcs[1][1]}]"
        self_bid = self.bid_by_start[last.target]
        nxt = last.pc + 1
        fall = (f"return {self.bid_by_start[nxt]}"
                if nxt in self.bid_by_start else f"return BAT({nxt})")
        out = ["_n = 0", "while True:"]
        out.extend(f"    {line}" for line in body)
        out.extend([
            "    _n += 1",
            f"    if not ({cond}):",
            "        RPT_APP(_n)",
            f"        {fall}",
            f"    if _n == {self._REP_CAP}:",
            "        RPT_APP(_n)",
            f"        return {self_bid}",
        ])
        return out

    def _gen_one(self, ins: Instr, body: List[str]) -> None:
        if ins.spec.is_vector:
            _gen_vector(ins, body)
        elif not _gen_scalar(ins, body):
            raise ExecutionError(    # pragma: no cover
                f"no fast-engine handler for opcode {ins.op!r}")

    def _gen_branch(self, ins: Instr, body: List[str]) -> None:
        op = ins.op
        if op == "j":
            body.append(f"return {self.bid_by_start[ins.target]}")
            return
        if op == "jal":
            _plain_write(ins.dst[1], repr(ins.pc + 1), body)
            body.append(f"return {self.bid_by_start[ins.target]}")
            return
        if op == "jr":
            body.append(f"_t = S[{ins.srcs[0][1]}]")
            body.append("JR_APP(_t)")
            body.append("return BAT(_t)")
            return
        cmp = _BRANCH_OP[op]
        cond = f"S[{ins.srcs[0][1]}] {cmp} S[{ins.srcs[1][1]}]"
        bid_t = self.bid_by_start[ins.target]
        if ins.target == ins.pc + 1:
            # taken and fall-through coincide: record the outcome
            body.append(f"AMB_APP(1 if {cond} else 0)")
            body.append(f"return {bid_t}")
        else:
            nxt = ins.pc + 1
            if nxt in self.bid_by_start:
                body.append(f"return {bid_t} if {cond} else "
                            f"{self.bid_by_start[nxt]}")
            else:       # branch is the program's last instruction
                body.append(f"if {cond}:")
                body.append(f"    return {bid_t}")
                body.append(f"return BAT({nxt})")

    # -- dynamic entry points ----------------------------------------------

    def bid_at(self, pc: int, tid: int) -> int:
        """Block id for an execution entering at ``pc``.

        Leaders resolve directly; a ``jr`` into the middle of a block
        lazily synthesizes (and memoises) a sub-block starting there.
        """
        bid = self.bid_by_start.get(pc)
        if bid is not None:
            return bid
        if not 0 <= pc < self.n:
            raise ExecutionError(f"thread {tid} jumped to invalid pc {pc}")
        bid = self._append_block(pc, self._block_span(pc))
        self.bid_by_start[pc] = bid
        return bid

    def flat(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(pcs_flat, blk_off, blk_len) arrays over all current blocks."""
        if self._flat is None:
            lens = np.asarray(self.blk_len, dtype=np.int64)
            off = np.zeros(lens.size, dtype=np.int64)
            np.cumsum(lens[:-1], out=off[1:])
            self._flat = (np.concatenate([b.pcs for b in self.blocks]),
                          off, lens)
        return self._flat


#: decoded-program cache, keyed by program content digest
_decoded_cache: Dict[str, _DecodedProgram] = {}
_DECODED_CACHE_MAX = 256

#: expansion-cache bounds: skip paths above the per-path op limit and
#: stop caching once a program has this many ops cached in total
_EXPAND_CACHE_PATH_OPS = 100_000
_EXPAND_CACHE_TOTAL_OPS = 400_000


def decoded_for(program: Program) -> _DecodedProgram:
    """The (cached) static decode of ``program``."""
    key = program.digest()
    dp = _decoded_cache.get(key)
    if dp is None:
        if len(_decoded_cache) >= _DECODED_CACHE_MAX:
            _decoded_cache.clear()
        dp = _decoded_cache[key] = _DecodedProgram(program)
    return dp


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------

class _ThreadRun:
    """Per-thread runtime for one FastExecutor run."""

    __slots__ = ("st", "env", "fns", "path", "vls", "jrs", "ambs", "reps",
                 "addrs_s", "addrs_v", "ops_executed")

    def __init__(self, st: ThreadState, mem: Memory, dp: _DecodedProgram):
        self.st = st
        self.path: List[int] = []
        self.vls: List[int] = []
        self.jrs: List[int] = []
        self.ambs: List[int] = []
        self.reps: List[int] = []       # iteration counts of rep blocks
        self.addrs_s: List[int] = []    # scalar memory addresses
        self.addrs_v: List[np.ndarray] = []     # vector address arrays
        self.ops_executed = 0
        tid = st.tid
        self.env = {
            "s": st.s, "f": st.f, "vi": st.v_i, "vf": st.v_f, "vm": st.vm,
            "vlc": [st.vl],
            "ldi": mem.load_i64, "sti": mem.store_i64,
            "ldf": mem.load_f64, "stf": mem.store_f64,
            "gath": mem.gather_i64, "scat": mem.scatter_i64,
            "m64": mem.i64, "mf64": mem.f64, "memn": mem.nbytes,
            "as_app": self.addrs_s.append, "av_app": self.addrs_v.append,
            "vl_app": self.vls.append,
            "jr_app": self.jrs.append, "amb_app": self.ambs.append,
            "rpt_app": self.reps.append,
            "tid": tid, "ntid": st.ntid,
            "bat": lambda pc, _dp=dp, _tid=tid: _dp.bid_at(pc, _tid),
        }
        self.fns: List[Callable[[], int]] = []


class FastExecutor:
    """Drop-in fast replacement for :class:`~.executor.Executor`.

    Same constructor signature, same ``run()`` contract, same ``states``
    / ``mem`` surface for final-state inspection -- but trace generation
    runs over pre-compiled basic blocks and emits columnar arrays
    directly.  Verified bit-identical (npz bytes, digests, final state)
    against the reference executor; see ``tests/test_fast_executor.py``
    and the ``func-diff`` CI job.
    """

    def __init__(self, program: Program, num_threads: int = 1,
                 record_trace: bool = True, max_ops: int = 20_000_000):
        if not program.finalized:
            raise ValueError("program must be finalized (ProgramBuilder.build)")
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.program = program
        self.num_threads = num_threads
        self.record_trace = record_trace
        self.max_ops = max_ops
        self.mem = Memory(program.build_memory())
        self.states = [ThreadState(t, num_threads) for t in range(num_threads)]
        self._dp = decoded_for(program)
        self._threads = [_ThreadRun(st, self.mem, self._dp)
                         for st in self.states]
        self.trace = ProgramTrace(program_name=program.name,
                                  num_threads=num_threads,
                                  threads=[ThreadTrace(t)
                                           for t in range(num_threads)])

    # ------------------------------------------------------------------

    def run(self) -> ProgramTrace:
        """Run all threads to completion; returns the program trace."""
        with np.errstate(all="ignore"):
            while True:
                statuses = []
                for tr in self._threads:
                    if tr.st.halted:
                        statuses.append("halt")
                        continue
                    statuses.append(self._run_phase(tr))
                if all(s == "halt" for s in statuses):
                    break
                if any(s == "halt" for s in statuses):
                    raise ExecutionError(
                        f"barrier deadlock in {self.program.name!r}: some "
                        f"threads halted while others wait at a barrier")
        if self.record_trace:
            self.trace = self._materialize()
        return self.trace

    # ------------------------------------------------------------------

    def _run_phase(self, tr: _ThreadRun) -> str:
        """Execute one thread until it hits a barrier or halts."""
        dp = self._dp
        st = tr.st
        lens = dp.blk_len
        is_rep = dp.is_rep
        reps = tr.reps
        fns = tr.fns
        append = tr.path.append
        n = tr.ops_executed
        budget = self.max_ops
        bid = dp.bid_at(st.pc, st.tid)
        blocks = dp.blocks
        factories_env = tr.env
        while True:
            if bid >= len(fns):
                for b in blocks[len(fns):]:
                    fns.append(b.factory(factories_env))
            append(bid)
            n += lens[bid]
            if n > budget:
                raise ExecutionError(
                    f"thread {st.tid} exceeded {budget} dynamic instructions "
                    f"(infinite loop?) in block at pc {blocks[bid].start}")
            nxt = fns[bid]()
            if is_rep[bid]:
                n += (reps[-1] - 1) * lens[bid]
                if n > budget:
                    raise ExecutionError(
                        f"thread {st.tid} exceeded {budget} dynamic "
                        f"instructions (infinite loop?) in block at pc "
                        f"{blocks[bid].start}")
            if nxt >= 0:
                bid = nxt
                continue
            tr.ops_executed = n
            st.vl = tr.env["vlc"][0]
            if nxt == -2:
                st.barrier_count += 1
                st.pc = blocks[bid].end_pc + 1
                return "barrier"
            st.pc = blocks[bid].end_pc   # parked on the halt, like the oracle
            st.halted = True
            return "halt"

    # ------------------------------------------------------------------
    # Columnar trace materialization
    # ------------------------------------------------------------------

    def _materialize(self) -> ProgramTrace:
        dp = self._dp
        rep_arr = np.asarray(dp.is_rep, dtype=bool)
        shared: Dict[bytes, Dict[str, np.ndarray]] = {}
        threads = []
        for tr in self._threads:
            path = np.asarray(tr.path, dtype=np.int64)
            if tr.reps:
                # rep blocks recorded one path entry per dispatch plus
                # an iteration count: replay the count here
                full = np.ones(path.size, dtype=np.int64)
                full[rep_arr[path]] = tr.reps
                path = np.repeat(path, full)
            key = path.tobytes()
            stat = shared.get(key)
            if stat is None:
                stat = dp.expand_cache.get(key)
            if stat is None:
                stat = self._expand_static(path)
                total = stat["total"]
                if (total <= _EXPAND_CACHE_PATH_OPS
                        and dp.expand_cached_ops + total
                        <= _EXPAND_CACHE_TOTAL_OPS):
                    dp.expand_cache[key] = stat
                    dp.expand_cached_ops += total
            shared[key] = stat
            threads.append(self._thread_columns(tr, stat))
        return ProgramTrace(program_name=self.program.name,
                            num_threads=self.num_threads, threads=threads)

    def _expand_static(self, path: np.ndarray) -> Dict[str, object]:
        """Path-dependent (but thread-independent) column expansion."""
        dp = self._dp
        pcs_flat, blk_off, blk_len = dp.flat()
        lens = blk_len[path]
        total = int(lens.sum())
        ends = np.cumsum(lens)
        idx = np.repeat(blk_off[path] - (ends - lens), lens) \
            + np.arange(total, dtype=np.int64)
        pcs = pcs_flat[idx]

        # per-thread first-appearance opcode table
        ops_g = dp.op_gid[pcs]
        uniq, first = np.unique(ops_g, return_index=True)
        order = np.argsort(first)
        table_gids = uniq[order]
        remap = np.zeros(len(dp.mnemonics), dtype=np.int64)
        remap[table_gids] = np.arange(table_gids.size, dtype=np.int64)
        ops = remap[ops_g]
        op_table = [dp.mnemonics[g] for g in table_gids]

        takens = dp.taken_base[pcs]
        cpos = np.nonzero(dp.is_cond[pcs])[0]
        if cpos.size:
            takens[cpos] = pcs[cpos + 1] == dp.tgt_base[pcs[cpos]]

        rl = dp.r_len[pcs]
        r_off = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(rl, out=r_off[1:])
        r_flat = dp.r_cat[np.repeat(dp.r_cat_off[pcs] - (r_off[1:] - rl), rl)
                          + np.arange(int(r_off[-1]), dtype=np.int64)]
        wl = dp.w_len[pcs]
        w_off = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(wl, out=w_off[1:])
        w_flat = dp.w_cat[np.repeat(dp.w_cat_off[pcs] - (w_off[1:] - wl), wl)
                          + np.arange(int(w_off[-1]), dtype=np.int64)]

        return {
            "pcs": pcs, "ops": ops, "op_table": op_table,
            "imms": dp.imm_base[pcs], "takens": takens,
            "tgts": dp.tgt_base[pcs], "has_addrs": dp.is_mem[pcs],
            "r_off": r_off, "r_flat": r_flat,
            "w_off": w_off, "w_flat": w_flat,
            "vpos": np.nonzero(dp.is_vector[pcs])[0],
            "spos": np.nonzero(dp.is_setvl[pcs])[0],
            "apos": np.nonzero(dp.is_amb[pcs])[0],
            "jpos": np.nonzero(dp.is_jr[pcs])[0],
            "mspos": np.nonzero(dp.is_smem[pcs])[0],
            "mvpos": np.nonzero(dp.is_vmem[pcs])[0],
            "total": total,
        }

    def _thread_columns(self, tr: _ThreadRun,
                        stat: Dict[str, object]) -> ThreadTrace:
        total = stat["total"]
        vpos, spos = stat["vpos"], stat["spos"]
        apos, jpos = stat["apos"], stat["jpos"]
        mspos, mvpos = stat["mspos"], stat["mvpos"]

        vls = np.zeros(total, dtype=np.int64)
        if vpos.size:
            if spos.size:
                j = np.searchsorted(spos, vpos, side="right") - 1
                sv = np.asarray(tr.vls, dtype=np.int64)
                vals = np.where(j >= 0, sv[np.maximum(j, 0)], MVL)
            else:
                vals = np.full(vpos.size, MVL, dtype=np.int64)
            vls[vpos] = vals

        takens = stat["takens"]
        if apos.size:
            takens = takens.copy()
            takens[apos] = np.asarray(tr.ambs, dtype=np.int8)
        tgts = stat["tgts"]
        if jpos.size:
            tgts = tgts.copy()
            tgts[jpos] = np.asarray(tr.jrs, dtype=np.int64)

        a_off = np.zeros(total + 1, dtype=np.int64)
        if mvpos.size and not mspos.size:
            # vector-only memory traffic: one concatenate, offsets from
            # the per-op lengths
            vecs = tr.addrs_v
            vlens = np.fromiter((x.size for x in vecs), dtype=np.int64,
                                count=len(vecs))
            per = np.zeros(total, dtype=np.int64)
            per[mvpos] = vlens
            np.cumsum(per, out=a_off[1:])
            a_flat = (np.concatenate(vecs) if len(vecs) > 1
                      else vecs[0].copy())
        elif mspos.size and not mvpos.size:
            # scalar-only: every record is one address
            per = np.zeros(total, dtype=np.int64)
            per[mspos] = 1
            np.cumsum(per, out=a_off[1:])
            a_flat = np.asarray(tr.addrs_s, dtype=np.int64)
        elif mspos.size:
            vecs = tr.addrs_v
            vlens = np.fromiter((x.size for x in vecs), dtype=np.int64,
                                count=len(vecs))
            per = np.zeros(total, dtype=np.int64)
            per[mspos] = 1
            per[mvpos] = vlens
            np.cumsum(per, out=a_off[1:])
            a_flat = np.empty(int(a_off[-1]), dtype=np.int64)
            a_flat[a_off[mspos]] = np.asarray(tr.addrs_s, dtype=np.int64)
            vtot = int(vlens.sum())
            vidx = (np.repeat(a_off[mvpos] - (np.cumsum(vlens) - vlens),
                              vlens)
                    + np.arange(vtot, dtype=np.int64))
            a_flat[vidx] = (np.concatenate(vecs) if len(vecs) > 1
                            else vecs[0])
        else:
            a_flat = np.empty(0, dtype=np.int64)

        cols = {
            "pcs": stat["pcs"], "ops": stat["ops"], "vls": vls,
            "takens": takens, "tgts": tgts, "imms": stat["imms"],
            "has_addrs": stat["has_addrs"],
            "r_off": stat["r_off"], "w_off": stat["w_off"], "a_off": a_off,
            "r_flat": stat["r_flat"], "w_flat": stat["w_flat"],
            "a_flat": a_flat,
        }
        return thread_trace_from_columns(tr.st.tid, cols, stat["op_table"])


def run_program_fast(program: Program, num_threads: int = 1,
                     record_trace: bool = True,
                     max_ops: int = 20_000_000
                     ) -> Tuple[ProgramTrace, FastExecutor]:
    """Execute ``program`` with the fast engine; returns (trace, executor)."""
    ex = FastExecutor(program, num_threads=num_threads,
                      record_trace=record_trace, max_ops=max_ops)
    trace = ex.run()
    return trace, ex
