"""Byte-addressable simulated memory, NumPy-backed.

All architectural accesses are 64-bit and must be 8-byte aligned (the
workload generators allocate aligned arrays; misalignment indicates a
code-generation bug, so it raises).  The backing store is a single
``uint8`` buffer with ``int64``/``float64`` views, which makes vector
unit-stride/strided/indexed accesses single NumPy fancy-indexing
operations -- the functional simulator's fast path.
"""

from __future__ import annotations

import numpy as np


class MisalignedAccess(Exception):
    """A 64-bit access to a non-8-byte-aligned address."""


class MemoryFault(Exception):
    """An access outside the program's data image."""


class Memory:
    """Flat simulated memory of a fixed byte size."""

    __slots__ = ("nbytes", "u8", "i64", "f64")

    def __init__(self, image: np.ndarray):
        if image.dtype != np.uint8:
            raise TypeError("memory image must be uint8")
        if image.nbytes % 8:
            raise ValueError("memory size must be a multiple of 8 bytes")
        self.nbytes = image.nbytes
        self.u8 = image
        self.i64 = image.view(np.int64)
        self.f64 = image.view(np.float64)

    # -- scalar -------------------------------------------------------------

    def _index(self, addr: int) -> int:
        if addr & 7:
            raise MisalignedAccess(f"address {addr:#x} not 8-byte aligned")
        if not 0 <= addr < self.nbytes:
            raise MemoryFault(f"address {addr:#x} outside [0, {self.nbytes:#x})")
        return addr >> 3

    def load_i64(self, addr: int) -> int:
        return int(self.i64[self._index(addr)])

    def store_i64(self, addr: int, value: int) -> None:
        value &= 0xFFFFFFFFFFFFFFFF
        if value >= 0x8000000000000000:
            value -= 0x10000000000000000
        self.i64[self._index(addr)] = value

    def load_f64(self, addr: int) -> float:
        return float(self.f64[self._index(addr)])

    def store_f64(self, addr: int, value: float) -> None:
        self.f64[self._index(addr)] = value

    # -- vector -------------------------------------------------------------

    def _vindex(self, addrs: np.ndarray) -> np.ndarray:
        if addrs.size and (addrs & 7).any():
            bad = int(addrs[(addrs & 7).nonzero()[0][0]])
            raise MisalignedAccess(f"vector address {bad:#x} not aligned")
        if addrs.size and (int(addrs.min()) < 0
                           or int(addrs.max()) >= self.nbytes):
            raise MemoryFault("vector access outside memory image")
        return addrs >> 3

    def gather_i64(self, addrs: np.ndarray) -> np.ndarray:
        """Load 64-bit words from the given byte addresses (copy)."""
        return self.i64[self._vindex(addrs)]

    def scatter_i64(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Store 64-bit words to the given byte addresses.

        Duplicate addresses take the *last* value in element order,
        matching element-serial hardware semantics (NumPy fancy-index
        assignment has the same last-wins behaviour).
        """
        self.i64[self._vindex(addrs)] = values

    # -- debugging / workload verification ------------------------------------

    def read_f64_array(self, addr: int, count: int) -> np.ndarray:
        """Copy ``count`` f64 words starting at ``addr`` (for self-checks)."""
        idx = self._index(addr)
        return self.f64[idx:idx + count].copy()

    def read_i64_array(self, addr: int, count: int) -> np.ndarray:
        """Copy ``count`` i64 words starting at ``addr`` (for self-checks)."""
        idx = self._index(addr)
        return self.i64[idx:idx + count].copy()
