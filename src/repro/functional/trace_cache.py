"""Content-addressed on-disk cache for functional traces and run results.

Functional traces are deterministic for a given ``(program, num_threads)``
pair, and :meth:`repro.isa.program.Program.digest` gives a stable content
identity for a program -- together they make traces cacheable *across
processes and invocations*: the parallel experiment runner's workers
share one cache directory, and a warm ``vlt-repro all`` rerun replays
every machine configuration with zero trace regenerations.

Layout (everything under one user-chosen root)::

    <root>/traces/<d2>/<digest>-t<threads>.trace.npz   columnar DynOp
                                                       arrays (see
                                                       repro.functional
                                                       .trace)
    <root>/results/<d2>/<key>.result.pkl               pickled RunResult
                                                       keyed by
                                                       (program digest,
                                                       config digest,
                                                       threads,
                                                       max_cycles)

``<d2>`` is the first two hex digits of the digest (git-style fan-out).
Writes go through a same-directory temp file and ``os.replace`` so that
concurrent workers racing on the same key are safe: last writer wins and
readers never observe a partial file.  Any unreadable/corrupt entry is
treated as a miss.

Results use pickle (they are internal machine-generated artifacts keyed
by content digest); traces use the explicit ``allow_pickle=False``
columnar format.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

#: tmp files from :meth:`TraceCache._atomic_write` older than this are
#: considered abandoned (their writer is long dead) and safe to sweep
_ORPHAN_TMP_AGE_S = 3600.0

from .trace import ProgramTrace, trace_from_bytes, trace_to_bytes


def result_key(program_digest: str, config_digest: str, num_threads: int,
               max_cycles: int, engine: str = "event") -> str:
    """Content key for one timing-simulation result.

    The default ("event") engine keeps its historic key so existing
    caches stay warm; other engines get distinct keys -- the engines
    are verified bit-identical, but sharing entries would let a cached
    event-engine number mask a columnar-engine bug.
    """
    raw = (f"vlt-result-v1:{program_digest}:{config_digest}:"
           f"{num_threads}:{max_cycles}")
    if engine != "event":
        raw += f":engine={engine}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


class TraceCache:
    """Content-addressed trace/result store rooted at a directory.

    Hit/miss/store counters accumulate per instance (i.e. per process);
    :meth:`stats` combines them with an on-disk census.

    ``sweep_on_init=True`` stat-walks the tree at construction to remove
    stale ``.tmp`` files (a worker killed between mkstemp and
    ``os.replace`` leaves one behind).  It is opt-in: N service workers
    opening one shared root must not each pay a full tree walk, so only
    long-lived entry points (the CLI, the service parent) sweep -- see
    :meth:`sweep_orphans` for on-demand use.
    """

    def __init__(self, root, sweep_on_init: bool = False) -> None:
        self.root = Path(root)
        self.trace_hits = 0
        self.trace_misses = 0
        self.trace_stores = 0
        self.result_hits = 0
        self.result_misses = 0
        self.result_stores = 0
        self.evictions = 0
        if sweep_on_init:
            self.sweep_orphans()

    # -- paths ---------------------------------------------------------------

    def trace_path(self, program_digest: str, num_threads: int) -> Path:
        return (self.root / "traces" / program_digest[:2]
                / f"{program_digest}-t{num_threads}.trace.npz")

    def result_path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.result.pkl"

    # -- atomic write helper -------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=path.name + ".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- traces --------------------------------------------------------------

    def load_trace(self, program_digest: str,
                   num_threads: int) -> Optional[ProgramTrace]:
        path = self.trace_path(program_digest, num_threads)
        try:
            data = path.read_bytes()
            trace = trace_from_bytes(data)
        except FileNotFoundError:
            self.trace_misses += 1
            return None
        except Exception:
            # corrupt / truncated / wrong-version entry: treat as a miss
            self.trace_misses += 1
            return None
        if trace.num_threads != num_threads:  # pragma: no cover - paranoia
            self.trace_misses += 1
            return None
        self.trace_hits += 1
        self._touch(path)
        return trace

    def store_trace(self, program_digest: str, num_threads: int,
                    trace: ProgramTrace) -> Path:
        path = self.trace_path(program_digest, num_threads)
        self._atomic_write(path, trace_to_bytes(trace))
        self.trace_stores += 1
        return path

    # -- results -------------------------------------------------------------

    def load_result(self, key: str):
        path = self.result_path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.result_misses += 1
            return None
        except Exception:
            self.result_misses += 1
            return None
        self.result_hits += 1
        self._touch(path)
        return result

    def store_result(self, key: str, result) -> Path:
        path = self.result_path(key)
        self._atomic_write(path, pickle.dumps(result, protocol=4))
        self.result_stores += 1
        return path

    # -- maintenance ---------------------------------------------------------

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime so LRU eviction sees the hit.

        Best-effort: a concurrent :meth:`enforce_budget` may have just
        unlinked the entry we served from memory.
        """
        try:
            os.utime(path, None)
        except OSError:
            pass

    @staticmethod
    def _is_tmp(path: Path) -> bool:
        """In-flight / orphaned :meth:`_atomic_write` temp file?

        ``mkstemp`` names are ``<final name>.tmp<random>``; real entries
        (hex digests plus ``.trace.npz`` / ``.result.pkl``) never
        contain ``.tmp``.
        """
        return ".tmp" in path.name

    def sweep_orphans(self, min_age_s: float = _ORPHAN_TMP_AGE_S) -> int:
        """Remove abandoned ``.tmp`` files older than ``min_age_s``.

        Returns the number removed.  Fresh tmp files are left alone --
        they may belong to a live concurrent writer.
        """
        removed = 0
        cutoff = time.time() - min_age_s
        for subdir in ("traces", "results"):
            base = self.root / subdir
            if not base.is_dir():
                continue
            for p in base.rglob("*"):
                try:
                    if (p.is_file() and self._is_tmp(p)
                            and p.stat().st_mtime < cutoff):
                        p.unlink()
                        removed += 1
                except OSError:
                    continue   # raced with another sweeper / writer
        return removed

    def _entry_files(self):
        """Every real cache entry as ``(path, stat)`` (no tmp files)."""
        for subdir in ("traces", "results"):
            base = self.root / subdir
            if not base.is_dir():
                continue
            for p in base.rglob("*"):
                if not p.is_file() or self._is_tmp(p):
                    continue
                try:
                    yield p, p.stat()
                except OSError:
                    continue   # raced with an eviction / clear

    def disk_usage(self) -> int:
        """Total bytes of real cache entries under the root."""
        return sum(st.st_size for _, st in self._entry_files())

    def enforce_budget(self, max_bytes: int) -> int:
        """LRU eviction: delete oldest-mtime entries until the cache
        fits ``max_bytes``; returns the number evicted.

        Recency is entry mtime -- refreshed on every hit by
        :meth:`_touch` -- so hot traces survive and cold ones go first.
        Concurrent writers are safe: eviction only unlinks completed
        entries (never in-flight ``.tmp`` files), and a racing reader
        treats the vanished file as a miss.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = sorted(self._entry_files(), key=lambda e: e[1].st_mtime)
        total = sum(st.st_size for _, st in entries)
        removed = 0
        for path, st in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue   # another evictor got it first
            total -= st.st_size
            removed += 1
        self.evictions += removed
        return removed

    def _census(self, subdir: str) -> Dict[str, int]:
        base = self.root / subdir
        entries = 0
        nbytes = 0
        orphans = 0
        if base.is_dir():
            for p in base.rglob("*"):
                if p.is_file():
                    if self._is_tmp(p):
                        orphans += 1
                        continue
                    entries += 1
                    nbytes += p.stat().st_size
        return {"entries": entries, "bytes": nbytes,
                "orphan_tmp_files": orphans}

    def counters(self) -> Dict[str, int]:
        """This process's hit/miss/store counters as one flat dict.

        The parallel runner snapshots these around every run attempt and
        ships the *delta* back to the parent, so a ``--jobs N`` sweep's
        aggregate cache stats reflect what the workers actually did
        (per-process counters alone silently reset in each worker).
        """
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "trace_stores": self.trace_stores,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_stores": self.result_stores,
            "evictions": self.evictions,
        }

    def stats(self) -> Dict[str, object]:
        """On-disk census plus this process's hit/miss/store counters."""
        return {
            "root": str(self.root),
            "traces": self._census("traces"),
            "results": self._census("results"),
            "counters": self.counters(),
        }

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed.

        Orphaned ``.tmp`` files (of any age) are deleted along with the
        tree but are not counted -- they were never cache entries.
        """
        removed = 0
        for subdir in ("traces", "results"):
            base = self.root / subdir
            if base.is_dir():
                removed += sum(1 for p in base.rglob("*")
                               if p.is_file() and not self._is_tmp(p))
                shutil.rmtree(base)
        return removed
