"""Functional (architectural) simulation: memory, state, interpreter, traces."""

from .executor import ExecutionError, Executor, run_program
from .fast import (FUNC_ENGINES, FastExecutor, run_program_fast,
                   validate_func_engine)
from .memory import Memory, MemoryFault, MisalignedAccess
from .state import ThreadState
from .trace import (TRACE_FORMAT_VERSION, DynOp, ProgramTrace, ThreadTrace,
                    load_trace, save_trace, trace_from_bytes, trace_to_bytes)
from .trace_cache import TraceCache

__all__ = [
    "ExecutionError", "Executor", "run_program",
    "FUNC_ENGINES", "FastExecutor", "run_program_fast",
    "validate_func_engine",
    "Memory", "MemoryFault", "MisalignedAccess",
    "ThreadState", "DynOp", "ProgramTrace", "ThreadTrace",
    "TRACE_FORMAT_VERSION", "load_trace", "save_trace",
    "trace_from_bytes", "trace_to_bytes", "TraceCache",
]
