"""Functional (architectural) simulation: memory, state, interpreter, traces."""

from .executor import ExecutionError, Executor, run_program
from .memory import Memory, MemoryFault, MisalignedAccess
from .state import ThreadState
from .trace import DynOp, ProgramTrace, ThreadTrace

__all__ = [
    "ExecutionError", "Executor", "run_program",
    "Memory", "MemoryFault", "MisalignedAccess",
    "ThreadState", "DynOp", "ProgramTrace", "ThreadTrace",
]
