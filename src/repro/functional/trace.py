"""Dynamic-trace records emitted by the functional simulator.

The timing simulator is trace-driven: it replays :class:`DynOp` streams,
one per software thread, against the microarchitecture model.  A
:class:`DynOp` carries exactly what timing needs -- the static
:class:`~repro.isa.opcodes.OpSpec`, the dense register uids read and
written, the dynamic vector length, the element byte addresses of memory
operations, and branch outcomes -- and nothing else (no data values).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..isa.opcodes import OpSpec, spec

#: the per-thread parallel arrays of the columnar trace layout, in
#: canonical (serialization) order
COLUMN_NAMES = ("pcs", "ops", "vls", "takens", "tgts", "imms", "has_addrs",
                "r_off", "w_off", "a_off", "r_flat", "w_flat", "a_flat")


class DynOp:
    """One dynamic instruction instance in a thread's trace."""

    __slots__ = ("pc", "op", "spec", "reads", "writes", "vl", "addrs",
                 "taken", "tgt", "imm")

    def __init__(self, pc: int, op: str, spec: OpSpec,
                 reads: Tuple[int, ...], writes: Tuple[int, ...],
                 vl: int = 0, addrs: Optional[np.ndarray] = None,
                 taken: Optional[bool] = None, tgt: Optional[int] = None,
                 imm: Optional[int] = None):
        self.pc = pc
        self.op = op
        self.spec = spec
        self.reads = reads      # dense register uids (see isa.registers.reg_uid)
        self.writes = writes
        self.vl = vl            # dynamic vector length (0 for scalar ops)
        self.addrs = addrs      # element byte addresses of active accesses
        self.taken = taken      # branch outcome
        self.tgt = tgt          # branch target pc
        self.imm = imm          # vltcfg thread count, etc.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" vl={self.vl}" if self.spec.is_vector else ""
        return f"<DynOp pc={self.pc} {self.op}{extra}>"


class _LazyOpsView:
    """Read-only sequence facade over a columnar :class:`ThreadTrace`.

    Behaves like the ``List[DynOp]`` the per-event timing machine
    expects, but defers the columnar -> DynOp decode until an element
    is actually touched.  The columnar timing engine only touches ops
    for event emission and error messages, so a plain replay through it
    never pays the decode.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "ThreadTrace"):
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __getitem__(self, i):
        return self._trace.ops[i]

    def __iter__(self):
        return iter(self._trace.ops)


class ThreadTrace:
    """The dynamic trace of one software thread.

    ``ops`` is segmented by barriers only implicitly -- barrier DynOps
    appear in-stream and the timing model synchronises on them.

    A trace holds its ops in one (or both) of two equivalent forms: a
    ``List[DynOp]`` and the columnar parallel arrays of the npz cache
    format.  The reference executor appends DynOps; the fast executor
    and the npz loader attach columns directly and the ``ops`` list is
    materialised lazily on first access, so columnar consumers (the
    columnar timing engine, serialization, bulk stats) never pay a
    per-op decode.
    """

    __slots__ = ("tid", "_ops", "_cols")

    def __init__(self, tid: int, ops: Optional[List[DynOp]] = None):
        self.tid = tid
        self._ops: Optional[List[DynOp]] = [] if ops is None else ops
        self._cols: Optional[Dict[str, object]] = None

    @property
    def ops(self) -> List[DynOp]:
        if self._ops is None:
            cols = self._cols
            self._ops = _ops_from_columns(cols, cols["op_table"])
        return self._ops

    @ops.setter
    def ops(self, value: List[DynOp]) -> None:
        self._ops = value
        self._cols = None

    def ops_view(self) -> Sequence[DynOp]:
        """The ops as a sequence, without forcing materialisation."""
        if self._ops is not None:
            return self._ops
        return _LazyOpsView(self)

    def append(self, op: DynOp) -> None:
        self.ops.append(op)
        self._cols = None   # invalidate any cached columnar view

    def __len__(self) -> int:
        if self._ops is None:
            return int(self._cols["pcs"].size)
        return len(self._ops)

    # -- columnar view -------------------------------------------------------

    def columns(self) -> Dict[str, object]:
        """Flat-array (columnar) view of this thread's ops.

        Returns the same parallel arrays the npz cache format stores
        (see the serialization section below), with ``op_table`` as an
        ordered mnemonic list rather than a mnemonic->id dict.  The
        view is computed once and cached on the instance; traces
        decoded from npz (and traces generated by the fast executor)
        attach their arrays directly, so array consumers (the columnar
        timing engine, bulk analyses) never pay a per-:class:`DynOp`
        encode/decode round-trip.
        """
        cols = self._cols
        if cols is None:
            cols = _encode_thread(self)
            op_ids = cols.pop("op_table")
            cols["op_table"] = [op for op, _ in
                                sorted(op_ids.items(), key=lambda kv: kv[1])]
            self._cols = cols
        return cols

    # -- summary statistics (used by workload characterisation) -------------

    def counts(self) -> Dict[str, int]:
        """Instruction-count summary: total, scalar, vector, element ops."""
        if self._ops is None:
            cols = self._cols
            vec = self._vector_positions(cols)
            return {
                "total": int(cols["pcs"].size),
                "scalar": int(cols["pcs"].size - vec.size),
                "vector": int(vec.size),
                "element_ops": int(cols["vls"][vec].sum()),
            }
        total = len(self.ops)
        vector = sum(1 for o in self.ops if o.spec.is_vector)
        elem_ops = sum(o.vl for o in self.ops if o.spec.is_vector)
        return {
            "total": total,
            "scalar": total - vector,
            "vector": vector,
            "element_ops": elem_ops,
        }

    @staticmethod
    def _vector_positions(cols: Dict[str, object]) -> np.ndarray:
        is_vec = np.array([spec(op).is_vector for op in cols["op_table"]],
                          dtype=bool)
        return np.nonzero(is_vec[cols["ops"]])[0]

    def vector_lengths(self) -> np.ndarray:
        """The dynamic VL of every vector instruction, in order."""
        if self._ops is None:
            cols = self._cols
            return cols["vls"][self._vector_positions(cols)].astype(
                np.int64, copy=True)
        return np.array([o.vl for o in self.ops if o.spec.is_vector],
                        dtype=np.int64)

    def opcode_histogram(self) -> Dict[str, int]:
        """Dynamic instruction counts per mnemonic."""
        hist: Dict[str, int] = {}
        for o in self.ops:
            hist[o.op] = hist.get(o.op, 0) + 1
        return hist

    def pool_histogram(self) -> Dict[str, int]:
        """Dynamic instruction counts per functional-unit pool."""
        hist: Dict[str, int] = {}
        for o in self.ops:
            p = o.spec.pool
            hist[p] = hist.get(p, 0) + 1
        return hist


@dataclass
class ProgramTrace:
    """Traces of all threads of one program execution."""

    program_name: str
    num_threads: int
    threads: List[ThreadTrace] = field(default_factory=list)

    def total_ops(self) -> int:
        return sum(len(t) for t in self.threads)

    def merged_counts(self) -> Dict[str, int]:
        agg: Dict[str, int] = {"total": 0, "scalar": 0, "vector": 0,
                               "element_ops": 0}
        for t in self.threads:
            for k, v in t.counts().items():
                agg[k] += v
        return agg

    def merged_opcode_histogram(self) -> Dict[str, int]:
        """Dynamic instruction counts per mnemonic, across threads."""
        agg: Dict[str, int] = {}
        for t in self.threads:
            for op, n in t.opcode_histogram().items():
                agg[op] = agg.get(op, 0) + n
        return agg


# --------------------------------------------------------------------------
# (De)serialization -- the on-disk trace cache format
# --------------------------------------------------------------------------
#
# Traces are stored columnar: one set of parallel NumPy arrays per
# thread, bundled with a JSON manifest into an .npz container.  DynOps
# carry an :class:`OpSpec` reference, but specs are pure functions of the
# mnemonic, so only an index into a per-file opcode string table is
# stored and ``spec(op)`` rebuilds the reference on load.  Optional
# per-op payloads (memory addresses, register-uid tuples) are flattened
# with offset arrays.  ``allow_pickle`` stays False on both ends.

#: bump when the columnar layout changes; loaders reject other versions.
TRACE_FORMAT_VERSION = 1


def _encode_thread(t: ThreadTrace) -> Dict[str, np.ndarray]:
    n = len(t.ops)
    pcs = np.empty(n, dtype=np.int64)
    vls = np.empty(n, dtype=np.int64)
    takens = np.empty(n, dtype=np.int8)      # -1 none / 0 / 1
    tgts = np.empty(n, dtype=np.int64)       # -1 none
    imms = np.empty(n, dtype=np.int64)       # -1 none (vltcfg imms are >= 1)
    has_addrs = np.zeros(n, dtype=np.int8)
    op_ids: Dict[str, int] = {}
    ops = np.empty(n, dtype=np.int64)
    r_off = np.zeros(n + 1, dtype=np.int64)
    w_off = np.zeros(n + 1, dtype=np.int64)
    a_off = np.zeros(n + 1, dtype=np.int64)
    r_flat: List[int] = []
    w_flat: List[int] = []
    a_parts: List[np.ndarray] = []
    for i, o in enumerate(t.ops):
        pcs[i] = o.pc
        ops[i] = op_ids.setdefault(o.op, len(op_ids))
        vls[i] = o.vl
        takens[i] = -1 if o.taken is None else int(o.taken)
        tgts[i] = -1 if o.tgt is None else o.tgt
        imms[i] = -1 if o.imm is None else o.imm
        r_flat.extend(o.reads)
        w_flat.extend(o.writes)
        r_off[i + 1] = len(r_flat)
        w_off[i + 1] = len(w_flat)
        a_off[i + 1] = a_off[i]
        if o.addrs is not None:
            has_addrs[i] = 1
            a_parts.append(np.asarray(o.addrs, dtype=np.int64))
            a_off[i + 1] += a_parts[-1].size
    return {
        "pcs": pcs, "ops": ops, "vls": vls, "takens": takens,
        "tgts": tgts, "imms": imms, "has_addrs": has_addrs,
        "r_off": r_off, "w_off": w_off, "a_off": a_off,
        "r_flat": np.asarray(r_flat, dtype=np.int64),
        "w_flat": np.asarray(w_flat, dtype=np.int64),
        "a_flat": (np.concatenate(a_parts) if a_parts
                   else np.empty(0, dtype=np.int64)),
        "op_table": op_ids,
    }


def _ops_from_columns(arrays: Dict[str, np.ndarray],
                      op_table: List[str]) -> List[DynOp]:
    """Materialise the ``List[DynOp]`` form of one thread's columns."""
    pcs = arrays["pcs"]
    ops = arrays["ops"]
    vls = arrays["vls"]
    takens = arrays["takens"]
    tgts = arrays["tgts"]
    imms = arrays["imms"]
    has_addrs = arrays["has_addrs"]
    r_off, w_off, a_off = arrays["r_off"], arrays["w_off"], arrays["a_off"]
    r_flat, w_flat, a_flat = (arrays["r_flat"], arrays["w_flat"],
                              arrays["a_flat"])
    specs = [(op, spec(op)) for op in op_table]
    out: List[DynOp] = []
    append = out.append
    for i in range(len(pcs)):
        op, sp = specs[ops[i]]
        taken = None if takens[i] < 0 else bool(takens[i])
        tgt = None if tgts[i] < 0 else int(tgts[i])
        imm = None if imms[i] < 0 else int(imms[i])
        addrs = (a_flat[a_off[i]:a_off[i + 1]].copy()
                 if has_addrs[i] else None)
        append(DynOp(
            int(pcs[i]), op, sp,
            tuple(int(u) for u in r_flat[r_off[i]:r_off[i + 1]]),
            tuple(int(u) for u in w_flat[w_off[i]:w_off[i + 1]]),
            vl=int(vls[i]), addrs=addrs, taken=taken, tgt=tgt, imm=imm))
    return out


def thread_trace_from_columns(tid: int, arrays: Dict[str, np.ndarray],
                              op_table: List[str]) -> ThreadTrace:
    """Build a :class:`ThreadTrace` directly from its columnar arrays.

    The DynOp list is materialised lazily on first ``.ops`` access;
    until then every consumer (columnar timing engine, serialization,
    stats) works straight off the arrays.  ``op_table`` is validated
    eagerly so a corrupt mnemonic table fails here, not at some later
    access.
    """
    for op in op_table:
        spec(op)
    thread = ThreadTrace(tid)
    cols = dict(arrays)
    cols["op_table"] = list(op_table)
    thread._ops = None
    thread._cols = cols
    return thread


def _decode_thread(tid: int, arrays: Dict[str, np.ndarray],
                   op_table: List[str]) -> ThreadTrace:
    return thread_trace_from_columns(tid, arrays, op_table)


def trace_to_bytes(trace: ProgramTrace) -> bytes:
    """Serialize a :class:`ProgramTrace` to a self-contained byte string."""
    arrays: Dict[str, np.ndarray] = {}
    op_tables: List[List[str]] = []
    for t in trace.threads:
        cols = t.columns()   # cached/attached columns; encodes if needed
        op_tables.append(list(cols["op_table"]))
        for name in COLUMN_NAMES:
            arrays[f"t{t.tid}.{name}"] = cols[name]
    manifest = {
        "version": TRACE_FORMAT_VERSION,
        "program_name": trace.program_name,
        "num_threads": trace.num_threads,
        "tids": [t.tid for t in trace.threads],
        "op_tables": op_tables,
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def trace_from_bytes(data: bytes) -> ProgramTrace:
    """Inverse of :func:`trace_to_bytes`.

    Raises ``ValueError`` on an unknown format version.
    """
    with np.load(io.BytesIO(data), allow_pickle=False) as npz:
        manifest = json.loads(bytes(npz["manifest"]).decode("utf-8"))
        if manifest["version"] != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {manifest['version']} "
                f"(expected {TRACE_FORMAT_VERSION})")
        threads = []
        for tid, op_table in zip(manifest["tids"], manifest["op_tables"]):
            arrays = {name: npz[f"t{tid}.{name}"] for name in COLUMN_NAMES}
            threads.append(_decode_thread(tid, arrays, op_table))
    return ProgramTrace(program_name=manifest["program_name"],
                        num_threads=manifest["num_threads"],
                        threads=threads)


def save_trace(trace: ProgramTrace, path) -> int:
    """Write a trace to ``path``; returns the byte count written."""
    data = trace_to_bytes(trace)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def load_trace(path) -> ProgramTrace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as fh:
        return trace_from_bytes(fh.read())
