"""Dynamic-trace records emitted by the functional simulator.

The timing simulator is trace-driven: it replays :class:`DynOp` streams,
one per software thread, against the microarchitecture model.  A
:class:`DynOp` carries exactly what timing needs -- the static
:class:`~repro.isa.opcodes.OpSpec`, the dense register uids read and
written, the dynamic vector length, the element byte addresses of memory
operations, and branch outcomes -- and nothing else (no data values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa.opcodes import OpSpec


class DynOp:
    """One dynamic instruction instance in a thread's trace."""

    __slots__ = ("pc", "op", "spec", "reads", "writes", "vl", "addrs",
                 "taken", "tgt", "imm")

    def __init__(self, pc: int, op: str, spec: OpSpec,
                 reads: Tuple[int, ...], writes: Tuple[int, ...],
                 vl: int = 0, addrs: Optional[np.ndarray] = None,
                 taken: Optional[bool] = None, tgt: Optional[int] = None,
                 imm: Optional[int] = None):
        self.pc = pc
        self.op = op
        self.spec = spec
        self.reads = reads      # dense register uids (see isa.registers.reg_uid)
        self.writes = writes
        self.vl = vl            # dynamic vector length (0 for scalar ops)
        self.addrs = addrs      # element byte addresses of active accesses
        self.taken = taken      # branch outcome
        self.tgt = tgt          # branch target pc
        self.imm = imm          # vltcfg thread count, etc.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" vl={self.vl}" if self.spec.is_vector else ""
        return f"<DynOp pc={self.pc} {self.op}{extra}>"


@dataclass
class ThreadTrace:
    """The dynamic trace of one software thread.

    ``ops`` is segmented by barriers only implicitly -- barrier DynOps
    appear in-stream and the timing model synchronises on them.
    """

    tid: int
    ops: List[DynOp] = field(default_factory=list)

    def append(self, op: DynOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    # -- summary statistics (used by workload characterisation) -------------

    def counts(self) -> Dict[str, int]:
        """Instruction-count summary: total, scalar, vector, element ops."""
        total = len(self.ops)
        vector = sum(1 for o in self.ops if o.spec.is_vector)
        elem_ops = sum(o.vl for o in self.ops if o.spec.is_vector)
        return {
            "total": total,
            "scalar": total - vector,
            "vector": vector,
            "element_ops": elem_ops,
        }

    def vector_lengths(self) -> np.ndarray:
        """The dynamic VL of every vector instruction, in order."""
        return np.array([o.vl for o in self.ops if o.spec.is_vector],
                        dtype=np.int64)

    def opcode_histogram(self) -> Dict[str, int]:
        """Dynamic instruction counts per mnemonic."""
        hist: Dict[str, int] = {}
        for o in self.ops:
            hist[o.op] = hist.get(o.op, 0) + 1
        return hist

    def pool_histogram(self) -> Dict[str, int]:
        """Dynamic instruction counts per functional-unit pool."""
        hist: Dict[str, int] = {}
        for o in self.ops:
            p = o.spec.pool
            hist[p] = hist.get(p, 0) + 1
        return hist


@dataclass
class ProgramTrace:
    """Traces of all threads of one program execution."""

    program_name: str
    num_threads: int
    threads: List[ThreadTrace] = field(default_factory=list)

    def total_ops(self) -> int:
        return sum(len(t) for t in self.threads)

    def merged_counts(self) -> Dict[str, int]:
        agg: Dict[str, int] = {"total": 0, "scalar": 0, "vector": 0,
                               "element_ops": 0}
        for t in self.threads:
            for k, v in t.counts().items():
                agg[k] += v
        return agg

    def merged_opcode_histogram(self) -> Dict[str, int]:
        """Dynamic instruction counts per mnemonic, across threads."""
        agg: Dict[str, int] = {}
        for t in self.threads:
            for op, n in t.opcode_histogram().items():
                agg[op] = agg.get(op, 0) + n
        return agg
