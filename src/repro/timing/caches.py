"""Set-associative cache timing model (tags only, true-LRU).

The timing simulator never moves data -- the functional simulator already
produced correct values -- so caches here track only tags and replacement
state to classify accesses as hits or misses.  Write policy is
write-allocate; write-back traffic is not modelled (the L2's banked
occupancy model dominates vector-store timing, and the paper does not
report writeback effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs.events import CACHE_MISS, Event, EventBus, NULL_BUS


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A single-level set-associative tag array with LRU replacement."""

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int,
                 name: str = "cache", bus: Optional[EventBus] = None):
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line = {assoc * line_bytes}")
        self.name = name
        #: observability event bus; misses are emitted as ``CACHE_MISS``
        #: events timestamped with ``bus.now`` (maintained by the
        #: machine's main loop while tracing is enabled)
        self.bus = bus if bus is not None else NULL_BUS
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        # Per-set MRU-ordered tag lists (index 0 = most recent).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int):
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int) -> bool:
        """Access one address; returns True on hit.  Allocates on miss."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        try:
            pos = ways.index(tag)
        except ValueError:
            self.stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            bus = self.bus
            if bus.enabled:
                bus.emit(Event(bus.now, CACHE_MISS, self.name,
                               arg=self.name))
            return False
        if pos:
            ways.insert(0, ways.pop(pos))
        return True

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or stats."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def line_of(self, addr: int) -> int:
        """Line number containing ``addr`` (for coalescing logic)."""
        return addr // self.line_bytes

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr`` if present (coherence).

        Returns True if a line was invalidated.
        """
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        try:
            ways.remove(tag)
            return True
        except ValueError:
            return False

    def flush(self) -> None:
        """Invalidate all lines (stats retained)."""
        for ways in self._sets:
            ways.clear()
