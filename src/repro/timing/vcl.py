"""Vector unit timing model: control logic (VCL) + multi-lane datapaths.

The vector unit owns the lanes.  Under VLT the lanes are statically
partitioned across the software threads (Section 3.2): partition *p*
serves thread *p* with ``k = lanes / num_threads`` lanes, its own slice
of the VIQ, and per-partition functional-unit state (each of the 3
vector arithmetic FUs and 2 vector memory ports has a datapath per lane,
so a k-lane partition owns a k-lane-wide slice of every FU).

The VCL is *multiplexed*: its total issue bandwidth (2 instructions per
cycle in the base machine) is shared round-robin across partitions --
the paper found a multiplexed VCL with statically-partitioned resources
performs as well as a replicated one (Section 3.2).

Timing rules:

* a vector instruction occupies its FU for ``ceil(VL / k)`` cycles;
* *chaining*: a dependent vector arithmetic/store instruction may issue
  ``chain_delay`` cycles after its producer issues (element-wise
  forwarding); loads do not forward element-wise, so consumers of a
  loaded register wait for the load's completion;
* scalar operands arrive from the SU with a ``su_transfer`` delay, and
  scalar results (reductions, ``vext``, ``vmpop``) return with the same
  delay;
* vector memory instructions occupy a vector memory port for the
  address-generation occupancy and route element accesses through the
  banked L2 (unit-stride coalesced by line; strided/indexed per element).

Datapath-utilization accounting matches Figure 4: per cycle, each of the
``arith_fus * k`` datapaths of a partition is busy (executing an element
operation), partly idle (its FU is active but the instruction's VL does
not cover this lane-slot this cycle), or stalled (FU idle while vector
work is pending in the partition).  Fully-idle datapath-cycles are
derived at end of run.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from ..functional.trace import DynOp
from ..isa.registers import V_BASE, uid_is_scalar
from ..obs.events import (Event, EventBus, NULL_BUS, STALL, VISSUE,
                          StallReason)
from .config import VectorUnitConfig
from .l2 import BankedL2
from .stats import DatapathUtilization, VectorUnitStats


#: Size of the vector-side register-uid namespace (v0..v31 + vm).
_NUM_VSIDE = 33


class VEntry:
    """An in-flight vector instruction inside the VCL."""

    __slots__ = ("dynop", "seq", "sentry", "scalar_unmet", "vec_unmet",
                 "ready", "subscribers", "issued", "transfer")

    def __init__(self, dynop: DynOp, seq: int, sentry, ready: int,
                 transfer: int):
        self.dynop = dynop
        self.seq = seq
        self.sentry = sentry
        self.scalar_unmet = 0
        self.vec_unmet = 0
        self.ready = ready
        self.subscribers: Optional[list] = None
        self.issued = False
        self.transfer = transfer

    def notify(self, time: int) -> None:
        """A scalar producer (SEntry) announced; add the SU->VCL hop."""
        t = time + self.transfer
        if t > self.ready:
            self.ready = t
        self.scalar_unmet -= 1

    def vec_notify(self, time: int) -> None:
        if time > self.ready:
            self.ready = time
        self.vec_unmet -= 1

    def vec_subscribe(self, consumer: "VEntry") -> None:
        if self.subscribers is None:
            self.subscribers = [consumer]
        else:
            self.subscribers.append(consumer)


class _FU:
    """One partition-slice of a vector functional unit."""

    __slots__ = ("busy_until", "start", "occ", "vl")

    def __init__(self) -> None:
        self.busy_until = 0
        self.start = 0
        self.occ = 0
        self.vl = 0


class Partition:
    """The per-thread slice of the vector unit."""

    __slots__ = ("idx", "k", "viq_capacity", "reserved", "arrivals", "viq",
                 "last_writer", "fus", "ports", "last_completion",
                 "rename_budget", "rename_pending", "util")

    def __init__(self, idx: int, k: int, viq_capacity: int,
                 arith_fus: int, mem_ports: int, rename_budget: int = 32):
        self.idx = idx
        self.k = k
        self.viq_capacity = viq_capacity
        self.reserved = 0
        self.arrivals: list = []    # heap of (arrive_time, seq, VEntry)
        self.viq: List[VEntry] = []
        # vector-side last writer: (chain_time, full_time) or VEntry
        self.last_writer: List = [(0, 0)] * _NUM_VSIDE
        self.fus = [_FU() for _ in range(arith_fus)]
        self.ports = [_FU() for _ in range(mem_ports)]
        self.last_completion = 0
        #: physical-register renaming: spare registers beyond the 32
        #: architectural ones (Table 3: 64 physical).  Each in-flight
        #: vector-register writer holds one from dispatch to completion.
        self.rename_budget = rename_budget
        self.rename_pending: list = []   # heap of completion times
        #: per-partition datapath accounting (Figure 4 buckets); summed
        #: across partitions it is exactly the vector unit's utilization
        self.util = DatapathUtilization()

    def rename_in_use(self, cycle: int) -> int:
        """Physical registers currently held by in-flight writers."""
        pend = self.rename_pending
        while pend and pend[0] <= cycle:
            heapq.heappop(pend)
        queued = sum(1 for v in self.viq
                     if any(u >= V_BASE for u in v.dynop.writes))
        arriving = sum(1 for _, _, v in self.arrivals
                       if any(u >= V_BASE for u in v.dynop.writes))
        return len(pend) + queued + arriving

    @property
    def pending(self) -> bool:
        return bool(self.arrivals or self.viq)

    def in_flight(self, cycle: int) -> bool:
        if self.arrivals or self.viq:
            return True
        return any(f.busy_until > cycle for f in self.fus) or \
            any(p.busy_until > cycle for p in self.ports)


class VectorUnit:
    """The whole vector unit: VCL + lanes, partitioned for VLT."""

    def __init__(self, cfg: VectorUnitConfig, l2: BankedL2,
                 lane_split: List[int], bus: Optional[EventBus] = None,
                 invalidate=None):
        self.cfg = cfg
        self.l2 = l2
        self.obs = bus if bus is not None else NULL_BUS
        #: optional coherence callback for vector stores (addrs array)
        self._invalidate = invalidate
        self.stats = VectorUnitStats()
        #: utilization folded from partitions retired by repartition()
        self._folded_util = DatapathUtilization()
        self.partitions: List[Partition] = []
        self._build_partitions(lane_split)
        self._seq = 0
        self._rr = 0
        self.last_completion = 0

    @property
    def util(self) -> DatapathUtilization:
        """Aggregate datapath accounting (Figure 4): the bucket-wise sum
        of every partition -- current and repartitioned-away."""
        u = self._folded_util
        if self.cfg.vu_smt:
            # shared-FU accounting lands on partition 0 only
            return u.merged(self.partitions[0].util) if self.partitions \
                else u
        for part in self.partitions:
            u = u.merged(part.util)
        return u

    def _build_partitions(self, lane_split: List[int]) -> None:
        cfg = self.cfg
        nparts = len(lane_split)
        cap = max(2, cfg.viq_entries // nparts)
        rename = max(1, cfg.phys_vregs - 32)
        if cfg.vu_smt:
            # SMT vector processor: every thread sees all lanes; the
            # physical FUs/ports are shared across thread contexts
            self.partitions = [
                Partition(i, cfg.lanes, cap, cfg.arith_fus, cfg.mem_ports,
                          rename_budget=rename)
                for i in range(nparts)]
            shared_fus = self.partitions[0].fus
            shared_ports = self.partitions[0].ports
            for p in self.partitions[1:]:
                p.fus = shared_fus
                p.ports = shared_ports
            return
        self.partitions = [
            Partition(i, k, cap, cfg.arith_fus, cfg.mem_ports,
                      rename_budget=rename)
            for i, k in enumerate(lane_split)]

    def repartition(self, num_parts: int, cycle: int) -> None:
        """Dynamic VLT reconfiguration (paper Section 3.3).

        Splits the lanes across ``num_parts`` threads.  Must be called
        at a quiesced point (the paper switches at the boundaries of
        large parallel regions where vector registers hold no live
        values); vector-register state is architecturally discarded --
        the functional simulator retains values, but a timing
        repartition while vector work is in flight is a program error.
        """
        if num_parts == len(self.partitions):
            return
        lanes = self.cfg.lanes
        if num_parts < 1 or lanes % num_parts:
            raise ValueError(
                f"cannot split {lanes} lanes across {num_parts} threads")
        if self.busy(cycle):
            raise RuntimeError(
                "vltcfg while vector work is in flight: reconfiguration "
                "is only legal at quiesced region boundaries (Sec. 3.3)")
        # fold the retiring partitions' datapath accounting so the
        # aggregate (Figure 4) survives the reconfiguration
        if self.cfg.vu_smt:
            if self.partitions:
                self._folded_util = \
                    self._folded_util.merged(self.partitions[0].util)
        else:
            for part in self.partitions:
                self._folded_util = self._folded_util.merged(part.util)
        self._build_partitions([lanes // num_parts] * num_parts)
        self._rr = 0

    # -- SU-side interface ------------------------------------------------------

    def can_accept(self, tid: int, cycle: int) -> bool:
        if tid >= len(self.partitions):
            raise RuntimeError(
                f"thread {tid} issued a vector instruction but the lanes "
                f"are partitioned for {len(self.partitions)} threads "
                f"(vltcfg mismatch -- see paper Section 3.3)")
        part = self.partitions[tid]
        if part.reserved >= part.viq_capacity:
            self.stats.viq_full_events += 1
            obs = self.obs
            if obs.enabled:
                obs.emit(Event(cycle, STALL, f"VU.p{part.idx}", dur=1,
                               reason=StallReason.VIQ_FULL))
            return False
        if part.rename_in_use(cycle) >= part.rename_budget:
            self.stats.viq_full_events += 1
            obs = self.obs
            if obs.enabled:
                obs.emit(Event(cycle, STALL, f"VU.p{part.idx}", dur=1,
                               reason=StallReason.VRENAME_FULL))
            return False
        return True

    def partition_idle(self, tid: int, cycle: int) -> bool:
        """True when this thread's vector work has fully drained (used
        by barrier/halt/vltcfg memory-synchronisation semantics).

        A thread with no partition under the current configuration is
        trivially idle.
        """
        if tid >= len(self.partitions):
            return True
        part = self.partitions[tid]
        return not part.in_flight(cycle) and part.last_completion <= cycle

    def dispatch(self, tid: int, sentry, cycle: int,
                 scalar_ready: int, pending: list) -> VEntry:
        """Accept a vector instruction from the SU at dispatch time."""
        part = self.partitions[tid]
        transfer = self.cfg.su_transfer
        self._seq += 1
        arrival = cycle + transfer
        ventry = VEntry(sentry.dynop, self._seq, sentry,
                        max(arrival, scalar_ready + transfer), transfer)
        ventry.scalar_unmet = len(pending)
        for producer in pending:
            producer.subscribe(ventry)
        part.reserved += 1
        heapq.heappush(part.arrivals, (arrival, ventry.seq, ventry))
        return ventry

    # -- per-cycle step -----------------------------------------------------------

    def step(self, cycle: int) -> None:
        for part in self.partitions:
            self._admit(part, cycle)
        self._issue(cycle)
        self._account(cycle)

    def _admit(self, part: Partition, cycle: int) -> None:
        """Move arrived instructions into the VIQ and wire vector deps."""
        arr = part.arrivals
        while arr and arr[0][0] <= cycle:
            _, _, ventry = heapq.heappop(arr)
            lw = part.last_writer
            dynop = ventry.dynop
            for uid in dynop.reads:
                if uid_is_scalar(uid):
                    continue
                w = lw[uid - V_BASE]
                if isinstance(w, tuple):
                    # Consumers use the producer's chain time; values that
                    # cannot be chained (loaded from memory) are encoded by
                    # the producer publishing chain == full completion.
                    t = w[0]
                    if t > ventry.ready:
                        ventry.ready = t
                else:
                    w.vec_subscribe(ventry)
                    ventry.vec_unmet += 1
            for uid in dynop.writes:
                if not uid_is_scalar(uid):
                    lw[uid - V_BASE] = ventry
            part.viq.append(ventry)

    def _issue(self, cycle: int) -> None:
        nparts = len(self.partitions)
        if self.cfg.replicated_vcl:
            # one VCL per thread: full issue width per partition
            for part in self.partitions:
                self._issue_partition(part, cycle, self.cfg.issue_width)
            return
        # multiplexed VCL: the issue width is shared round-robin
        budget = self.cfg.issue_width
        start = self._rr
        self._rr = (start + 1) % nparts
        for k in range(nparts):
            if budget == 0:
                return
            part = self.partitions[(start + k) % nparts]
            budget = self._issue_partition(part, cycle, budget)

    def _issue_partition(self, part: Partition, cycle: int,
                         budget: int) -> int:
        viq = part.viq
        i = 0
        while i < len(viq) and budget:
            ventry = viq[i]
            if (ventry.scalar_unmet or ventry.vec_unmet
                    or ventry.ready > cycle):
                i += 1
                continue
            spec = ventry.dynop.spec
            is_mem = spec.pool == "vmem"
            fu_idx = self._free_unit(
                part.ports if is_mem else part.fus, cycle)
            if fu_idx is None:
                i += 1
                continue
            viq.pop(i)
            part.reserved -= 1
            self._execute(part, ventry, fu_idx, cycle)
            budget -= 1
        return budget

    @staticmethod
    def _free_unit(units: List[_FU], cycle: int) -> Optional[int]:
        for i, u in enumerate(units):
            if u.busy_until <= cycle:
                return i
        return None

    def _execute(self, part: Partition, ventry: VEntry, fu_idx: int,
                 cycle: int) -> None:
        dynop = ventry.dynop
        spec = dynop.spec
        is_mem = spec.pool == "vmem"
        fu = (part.ports if is_mem else part.fus)[fu_idx]
        k = part.k
        vl = dynop.vl
        occ = max(1, -(-vl // k))
        ventry.issued = True
        self.stats.issued += 1
        self.stats.element_ops += vl
        obs = self.obs
        if obs.enabled:
            label = f"port{fu_idx}" if is_mem else f"fu{fu_idx}"
            obs.emit(Event(cycle, VISSUE, f"VU.p{part.idx}", dynop,
                           dur=occ, arg=label))

        fu.busy_until = cycle + occ
        fu.start = cycle
        fu.occ = occ
        fu.vl = vl

        if spec.pool == "vmem":
            addrs = dynop.addrs
            n = 0 if addrs is None else int(addrs.size)
            unit_stride = not (spec.mem_stride or spec.mem_indexed)
            completion = self.l2.vector_access(
                addrs if addrs is not None else _EMPTY,
                cycle + 1, addrs_per_cycle=k, unit_stride=unit_stride)
            if spec.is_store and n and self._invalidate is not None:
                # vector stores write the L2 directly; SU L1 copies of
                # the touched lines go stale (Section 2 coherence)
                self._invalidate(addrs)
            self.stats.mem_instrs += 1
            self.stats.mem_elements += n
            chain = full = completion
        else:
            completion = cycle + occ + spec.latency
            chain = cycle + self.cfg.chain_delay
            full = completion
            if spec.is_load or spec.is_store:  # pragma: no cover
                raise AssertionError("memory op in arithmetic pool")

        if full > self.last_completion:
            self.last_completion = full
        if full > part.last_completion:
            part.last_completion = full
        if any(u >= V_BASE for u in dynop.writes):
            heapq.heappush(part.rename_pending, full)
        lw = part.last_writer
        for uid in dynop.writes:
            if not uid_is_scalar(uid) and lw[uid - V_BASE] is ventry:
                lw[uid - V_BASE] = (chain, full)
        subs = ventry.subscribers
        if subs:
            ventry.subscribers = None
            for c in subs:
                c.vec_notify(chain)

        # Scalar results travel back to the SU.
        writes_scalar = any(uid_is_scalar(u) for u in dynop.writes)
        if writes_scalar:
            ventry.sentry.vu_complete(full + self.cfg.su_transfer)

    # -- utilization accounting (Figure 4) ---------------------------------------

    def _account(self, cycle: int) -> None:
        if self.cfg.vu_smt:
            # shared FUs: account once, "pending" if any context has work
            part = self.partitions[0]
            util = part.util
            pending = any(p.pending for p in self.partitions)
            k = part.k
            for fu in part.fus:
                if fu.busy_until > cycle:
                    i = cycle - fu.start
                    active = k if i < fu.occ - 1 else \
                        max(0, min(k, fu.vl - k * (fu.occ - 1)))
                    util.busy += active
                    util.partly_idle += k - active
                elif pending:
                    util.stalled += k
            return
        for part in self.partitions:
            util = part.util
            k = part.k
            pending = part.pending
            for fu in part.fus:
                if fu.busy_until > cycle:
                    i = cycle - fu.start
                    if i < fu.occ - 1:
                        active = k
                    else:
                        active = fu.vl - k * (fu.occ - 1)
                        if active < 0:
                            active = 0
                        elif active > k:
                            active = k
                    util.busy += active
                    util.partly_idle += k - active
                elif pending:
                    util.stalled += k
                # fully-idle datapath-cycles are derived at end of run

    def partition_utils(self, cycles: int):
        """Per-partition Figure-4 accounting with derived all-idle.

        Returns ``(utils, lanes)`` where ``utils[i]`` is the
        :class:`DatapathUtilization` of partition *i* (all-idle derived
        against ``arith_fus * k * cycles``) and ``lanes[i]`` is its lane
        count.  For an SMT vector unit the FUs are shared, so a single
        row covering all lanes is returned.  Partitions retired by a
        dynamic repartition are not included; their cycles appear only
        in the aggregate :attr:`util` (the stall-attribution report
        shows the difference as an explicit residual row).
        """
        fus = self.cfg.arith_fus
        if self.cfg.vu_smt:
            parts = self.partitions[:1]
        else:
            parts = self.partitions
        utils: List[DatapathUtilization] = []
        lanes: List[int] = []
        for part in parts:
            u = part.util
            total = fus * part.k * cycles
            utils.append(DatapathUtilization(
                busy=u.busy, partly_idle=u.partly_idle, stalled=u.stalled,
                all_idle=max(0, total - u.busy - u.partly_idle - u.stalled)))
            lanes.append(part.k)
        return utils, lanes

    # -- idle detection -----------------------------------------------------------

    def busy(self, cycle: int) -> bool:
        """True while any partition has work (the VU must be stepped)."""
        if self.last_completion > cycle:
            return True
        return any(p.in_flight(cycle) for p in self.partitions)

    def next_event(self, cycle: int) -> int:
        if self.busy(cycle):
            return cycle + 1
        return 1 << 62


_EMPTY = np.empty(0, dtype=np.int64)
