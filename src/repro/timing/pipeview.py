"""Pipeline-event viewer: see what the machine issues, cycle by cycle.

:class:`PipeView` is one consumer of the observability event bus
(:mod:`repro.obs.events`): it subscribes to the instruction-issue event
kinds and renders them as a chronological listing or a per-unit
occupancy strip -- handy for debugging kernels and for teaching what the
timing model does::

    from repro.timing.pipeview import PipeView, simulate_with_pipeview

    view, result = simulate_with_pipeview(prog, BASE, num_threads=1,
                                          max_events=200)
    print(view.listing())
    print(view.strip(width=64))

For richer consumers (Chrome/Perfetto traces, metrics, stall
attribution) attach the sinks in :mod:`repro.obs` to the same bus --
see :func:`repro.timing.run.simulate_traced`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..functional.trace import DynOp
from ..isa.program import Program
from ..obs.events import Event, EventBus, ISSUE, LANE_ISSUE, VISSUE
from .config import MachineConfig
from .machine import Machine
from .run import trace_for
from .stats import RunResult


@dataclass
class PipeEvent:
    cycle: int
    unit: str
    kind: str     # "issue" (scalar/lane) or "vissue" (vector)
    op: str
    pc: int
    vl: int


class PipeView:
    """Bounded collector of pipeline issue events (an event-bus sink).

    Attach it to an :class:`~repro.obs.events.EventBus` (what
    :func:`simulate_with_pipeview` does), or pass it as the legacy
    ``hook=`` argument of :class:`~repro.timing.machine.Machine` --
    both feed the same collector.
    """

    #: legacy kind labels, kept stable for renderings and callers
    _KIND = {ISSUE: "issue", VISSUE: "vissue", LANE_ISSUE: "issue"}

    def __init__(self, max_events: int = 1000,
                 start_cycle: int = 0):
        self.max_events = max_events
        self.start_cycle = start_cycle
        self.events: List[PipeEvent] = []
        self._full = False

    # event-bus sink interface
    def on_event(self, event: Event) -> None:
        kind = self._KIND.get(event.kind)
        if kind is not None:
            self(event.cycle, event.unit, kind, event.dynop)

    # the legacy Machine hook signature
    def __call__(self, cycle: int, unit: str, kind: str,
                 dynop: DynOp) -> None:
        if self._full or cycle < self.start_cycle:
            return
        self.events.append(PipeEvent(cycle, unit, kind, dynop.op,
                                     dynop.pc, dynop.vl))
        if len(self.events) >= self.max_events:
            self._full = True

    @property
    def truncated(self) -> bool:
        return self._full

    def units(self) -> List[str]:
        seen: Dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.unit)
        return sorted(seen)

    # -- renderings ----------------------------------------------------------

    def listing(self, limit: Optional[int] = None) -> str:
        """Chronological event log."""
        rows = ["cycle  unit        event   op"]
        for e in self.events[:limit]:
            extra = f" vl={e.vl}" if e.kind == "vissue" else ""
            rows.append(f"{e.cycle:>5}  {e.unit:<10}  {e.kind:<6}  "
                        f"{e.op}{extra} (pc {e.pc})")
        if self.truncated:
            rows.append(f"... truncated at {self.max_events} events")
        return "\n".join(rows)

    def strip(self, width: int = 72) -> str:
        """Per-unit occupancy strip: one character per cycle.

        ``#`` = at least one issue that cycle, ``.`` = none.  The window
        starts at the first recorded event.
        """
        if not self.events:
            return "(no events)"
        t0 = self.events[0].cycle
        issued: Dict[str, set] = {}
        for e in self.events:
            issued.setdefault(e.unit, set()).add(e.cycle - t0)
        out = [f"cycles {t0}..{t0 + width - 1} (one column per cycle)"]
        for unit in self.units():
            cells = issued.get(unit, set())
            row = "".join("#" if c in cells else "."
                          for c in range(width))
            out.append(f"{unit:<10} |{row}|")
        return "\n".join(out)

    def issues_per_cycle(self) -> Dict[int, int]:
        """Issue-count histogram keyed by cycle."""
        hist: Dict[int, int] = {}
        for e in self.events:
            hist[e.cycle] = hist.get(e.cycle, 0) + 1
        return hist


def simulate_with_pipeview(
        program: Program, cfg: MachineConfig, num_threads: int = 1,
        max_events: int = 1000, start_cycle: int = 0,
        max_cycles: int = 50_000_000) -> Tuple[PipeView, RunResult]:
    """Run a simulation with an attached :class:`PipeView`."""
    view = PipeView(max_events=max_events, start_cycle=start_cycle)
    bus = EventBus()
    bus.attach(view)
    trace = trace_for(program, num_threads)
    machine = Machine(cfg, [t.ops for t in trace.threads],
                      max_cycles=max_cycles, obs=bus)
    result = machine.run()
    result.program_name = trace.program_name
    return view, result
