"""Top-level machine model: wiring, barriers, and the simulation loop.

:class:`Machine` instantiates the configured scalar units, the vector
unit (statically partitioned across the software threads for VLT runs)
or the lanes-as-scalar-cores, and the shared banked L2, then replays the
per-thread dynamic traces cycle by cycle.  Barrier synchronisation is
enforced here: a thread arriving at a ``barrier`` stops fetching; when
the last thread arrives, every waiter resumes after the configured
barrier overhead (the paper's "thread API overhead").

The loop skips ahead over globally-idle stretches (all units waiting on
a known future time), which makes barrier-imbalanced and memory-bound
phases cheap to simulate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..functional.trace import DynOp, ProgramTrace
from ..obs.events import (BARRIER_ARRIVE, BARRIER_RELEASE, Event, EventBus,
                          ISSUE, LANE_ISSUE, VISSUE, VLCFG)
from .config import MachineConfig
from .l2 import BankedL2
from .lane_core import LaneCore
from .scalar_unit import ScalarUnit
from .stats import DatapathUtilization, RunResult
from .vcl import VectorUnit

_FAR_FUTURE = 1 << 62


class SimulationError(Exception):
    """Raised when a run exceeds its cycle budget (likely a model bug)."""


class _LegacyHookSink:
    """Adapts the historic ``hook(cycle, unit, kind, dynop)`` callable to
    the event bus; lane issues keep their legacy ``"issue"`` kind."""

    _KIND = {ISSUE: "issue", VISSUE: "vissue", LANE_ISSUE: "issue"}

    def __init__(self, hook) -> None:
        self._hook = hook

    def on_event(self, event: Event) -> None:
        kind = self._KIND.get(event.kind)
        if kind is not None:
            self._hook(event.cycle, event.unit, kind, event.dynop)


class Machine:
    """A configured machine replaying one multi-threaded program trace."""

    def __init__(self, cfg: MachineConfig, traces: List[List[DynOp]],
                 max_cycles: int = 50_000_000, hook=None,
                 obs: Optional[EventBus] = None):
        self.cfg = cfg
        self.num_threads = len(traces)
        self.max_cycles = max_cycles
        #: observability event bus; a fresh disabled bus (the null-sink
        #: fast path) unless the caller supplies one with sinks attached
        self.obs = obs if obs is not None else EventBus()
        #: legacy event hook ``hook(cycle, unit, kind, dynop)``, adapted
        #: onto the event bus (see :mod:`repro.timing.pipeview`)
        self.hook = hook
        if hook is not None:
            self.obs.attach(_LegacyHookSink(hook))
        self.l2 = BankedL2(cfg.l2, bus=self.obs)
        self.sus: List[ScalarUnit] = [
            ScalarUnit(self, i, su_cfg, self.l2)
            for i, su_cfg in enumerate(cfg.scalar_units)]
        self.lane_cores: List[LaneCore] = []
        self.vu: Optional[VectorUnit] = None
        #: tid -> ("su", ScalarUnit, Context) or ("lane", LaneCore, None)
        self._threads: Dict[int, Tuple] = {}
        self._finish: List[Optional[int]] = [None] * self.num_threads
        self._halted_count = 0
        self._barrier_arrived = 0
        self._barrier_latest = 0
        self.barrier_count = 0
        self.barrier_release_cycles: List[int] = []

        # Code is loader-resident in the L2: pre-touch its lines so
        # I-cache refills cost an L2 hit, not a cold main-memory miss
        # (the paper measures steady-state regions).  Setup noise is
        # suppressed on the event bus -- these are not simulated misses.
        max_pc = max((max(op.pc for op in t) if t else 0) for t in traces) \
            if traces else 0
        from .scalar_unit import CODE_BASE, INSTR_BYTES
        line = cfg.l2.line
        self.obs.suppress()
        try:
            for addr in range(CODE_BASE,
                              CODE_BASE + (max_pc + 1) * INSTR_BYTES + line,
                              line):
                self.l2.tags.access(addr)
        finally:
            self.obs.unsuppress()

        if cfg.lane_scalar_mode:
            self.lane_cores = [
                LaneCore(self, i, cfg.lane_core, self.l2)
                for i in range(cfg.vu.lanes)]
            for tid, (lane, _) in enumerate(cfg.placement(self.num_threads)):
                core = self.lane_cores[lane]
                core.add_thread(tid, traces[tid])
                self._threads[tid] = ("lane", core, None)
        else:
            if cfg.vu is not None:
                line = cfg.l2.line
                self.vu = VectorUnit(
                    cfg.vu, self.l2, cfg.lane_partitions(self.num_threads),
                    bus=self.obs,
                    invalidate=lambda addrs: self.l1d_invalidate_lines(
                        addrs, line))
            for tid, (u, _ctx) in enumerate(cfg.placement(self.num_threads)):
                ctx = self.sus[u].add_thread(tid, traces[tid])
                self._threads[tid] = ("su", self.sus[u], ctx)

    # -- barrier / completion callbacks -----------------------------------------

    def barrier_arrive(self, tid: int, time: int) -> None:
        self._barrier_arrived += 1
        obs = self.obs
        if obs.enabled:
            obs.emit(Event(time, BARRIER_ARRIVE, f"t{tid}",
                           arg=self.barrier_count))
        if time > self._barrier_latest:
            self._barrier_latest = time
        if self._barrier_arrived == self.num_threads:
            release = self._barrier_latest + self.cfg.barrier_overhead
            self._barrier_arrived = 0
            self._barrier_latest = 0
            self.barrier_count += 1
            self.barrier_release_cycles.append(release)
            if obs.enabled:
                obs.emit(Event(time, BARRIER_RELEASE, f"t{tid}",
                               dur=max(0, release - time),
                               arg=self.barrier_count - 1))
            for kind, unit, ctx in self._threads.values():
                if kind == "su":
                    if ctx.waiting_barrier:
                        ctx.waiting_barrier = False
                        if release > ctx.fetch_stalled_until:
                            ctx.fetch_stalled_until = release
                else:
                    if unit.waiting_barrier:
                        unit.resume(release)

    def thread_halted(self, tid: int, time: int) -> None:
        if self._finish[tid] is None:
            self._finish[tid] = time
            self._halted_count += 1

    def l1d_invalidate(self, addr: int, except_su=None) -> None:
        """Coherence: drop the L1D line holding ``addr`` everywhere but
        the writing SU (the hardware L1/L2 coherence of Section 2)."""
        for su in self.sus:
            if su is not except_su:
                su.l1d.invalidate(addr)

    def l1d_invalidate_lines(self, addrs, line: int) -> None:
        """Vector-store coherence: invalidate every touched line in all
        SU L1Ds (vector stores write the L2 directly)."""
        if not self.sus:
            return
        seen = set()
        for a in addrs:
            ln = int(a) // line
            if ln not in seen:
                seen.add(ln)
                for su in self.sus:
                    su.l1d.invalidate(ln * line)

    def vltcfg_request(self, tid: int, n: int, cycle: int) -> None:
        """Dynamic VLT reconfiguration (``vltcfg n``; Section 3.3).

        ``n = 0`` means "one partition per software thread" (the static
        default).  All threads of an SPMD program execute the same
        ``vltcfg`` in the same barrier-delimited phase; the first
        arrival repartitions, the rest are no-ops.
        """
        if self.vu is None:
            return
        if n == 0:
            n = self.num_threads
        self.vu.repartition(n, cycle)
        obs = self.obs
        if obs.enabled:
            obs.emit(Event(cycle, VLCFG, f"t{tid}", arg=n))

    # -- main loop ------------------------------------------------------------------

    def run(self) -> RunResult:
        return self._result(self.run_loop())

    def run_loop(self) -> int:
        """Advance the machine to completion; returns the final cycle.

        Split out from :meth:`run` so callers (host-side profiling, the
        ``profile`` CLI verb) can time the replay loop separately from
        result assembly.
        """
        cycle = 0
        sus = self.sus
        vu = self.vu
        cores = self.lane_cores
        obs = self.obs
        obs_on = obs.enabled
        while True:
            if obs_on:
                obs.now = cycle
            vu_busy = vu is not None and vu.busy(cycle)
            for su in sus:
                su.step(cycle)
            if vu_busy:
                vu.step(cycle)
                # steps may have dispatched new vector work this cycle
                vu_busy = vu.busy(cycle)
            elif vu is not None:
                vu_busy = vu.busy(cycle)
            for core in cores:
                core.step(cycle)

            if self._halted_count == self.num_threads:
                drained = all(su.all_done or not su.contexts for su in sus)
                if drained and not vu_busy:
                    break

            nxt = cycle + 1
            best = _FAR_FUTURE
            for su in sus:
                t = su.next_event(cycle)
                if t < best:
                    best = t
            if vu_busy:
                best = nxt
            for core in cores:
                t = core.next_event(cycle)
                if t < best:
                    best = t
            if best > nxt and best < _FAR_FUTURE:
                cycle = best
            elif best >= _FAR_FUTURE and self._halted_count < self.num_threads:
                raise SimulationError(
                    f"{self.cfg.name}: no unit can make progress at cycle "
                    f"{cycle} with {self.num_threads - self._halted_count} "
                    f"threads unfinished (model deadlock)")
            else:
                cycle = nxt
            if cycle > self.max_cycles:
                raise SimulationError(
                    f"{self.cfg.name}: exceeded {self.max_cycles} cycles")

        return cycle

    # -- result assembly ---------------------------------------------------------------

    def _result(self, cycles: int) -> RunResult:
        util = DatapathUtilization()
        vu_stats = None
        part_utils: List[DatapathUtilization] = []
        part_lanes: List[int] = []
        if self.vu is not None:
            vu_stats = self.vu.stats
            u = self.vu.util
            total = self.cfg.vu.arith_fus * self.cfg.vu.lanes * cycles
            util = DatapathUtilization(
                busy=u.busy, partly_idle=u.partly_idle, stalled=u.stalled,
                all_idle=max(0, total - u.busy - u.partly_idle - u.stalled))
            part_utils, part_lanes = self.vu.partition_utils(cycles)
        su_stats = []
        for su in self.sus:
            s = su.stats
            s.branch_lookups = su.bpred.lookups
            s.branch_mispredicts = su.bpred.mispredicts
            s.l1i_accesses = su.l1i.stats.accesses
            s.l1i_misses = su.l1i.stats.misses
            s.l1d_accesses = su.l1d.stats.accesses
            s.l1d_misses = su.l1d.stats.misses
            su_stats.append(s)
        return RunResult(
            config_name=self.cfg.name,
            program_name="",
            num_threads=self.num_threads,
            cycles=cycles,
            utilization=util,
            scalar_units=su_stats,
            vector_unit=vu_stats,
            lane_cores=[c.stats for c in self.lane_cores],
            thread_finish=[f if f is not None else cycles
                           for f in self._finish],
            barrier_count=self.barrier_count,
            l2_bank_conflict_cycles=self.l2.stats.bank_conflict_cycles,
            phase_release_cycles=list(self.barrier_release_cycles),
            partition_utilization=part_utils,
            partition_lanes=part_lanes,
        )


#: replay engines selectable throughout the stack (simulate/CLI/runner)
ENGINES = ("event", "columnar")


def validate_engine(engine: str) -> str:
    """Check an engine name; returns it unchanged or raises ValueError."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown timing engine {engine!r} (choose from "
            f"{', '.join(ENGINES)})")
    return engine


def TimingMachine(cfg: MachineConfig, traces, max_cycles: int = 50_000_000,
                  hook=None, obs: Optional[EventBus] = None,
                  engine: str = "event", columns=None):
    """Build a timing machine with the selected replay engine.

    ``engine="event"`` returns the per-event :class:`Machine` (the
    oracle); ``engine="columnar"`` returns a
    :class:`~repro.timing.columnar.ColumnarMachine`, the array-replay
    engine verified bit-identical against the oracle.  Both expose the
    same ``run`` / ``run_loop`` / ``_result`` surface.  ``columns`` (the
    per-thread ``ThreadTrace.columns()`` views) is only meaningful for
    the columnar engine; when omitted it is derived from ``traces``.
    """
    validate_engine(engine)
    if engine == "columnar":
        from .columnar import ColumnarMachine
        return ColumnarMachine(cfg, traces, max_cycles=max_cycles,
                               hook=hook, obs=obs, columns=columns)
    return Machine(cfg, traces, max_cycles=max_cycles, hook=hook, obs=obs)


def run_traces(cfg: MachineConfig, trace: ProgramTrace,
               max_cycles: int = 50_000_000,
               obs: Optional[EventBus] = None,
               profiler=None, engine: str = "event") -> RunResult:
    """Replay a functional :class:`ProgramTrace` on configuration ``cfg``.

    ``obs`` attaches an observability event bus; ``profiler`` (a
    :class:`repro.obs.hostprof.PhaseProfiler`) records host wall-time
    for the ``setup`` / ``replay`` / ``stats`` simulation phases;
    ``engine`` selects the replay engine (see :func:`TimingMachine`).
    The columnar engine simulates straight off the trace's flat arrays
    (``ThreadTrace.columns()``, cached on the trace) rather than the
    per-op DynOp lists.
    """
    validate_engine(engine)

    def build():
        if engine == "columnar":
            # Replay straight off the flat arrays; hand the machine lazy
            # DynOp views so a trace that only exists in columnar form
            # (fast executor, npz cache) is never decoded per-op unless
            # event emission / error reporting actually touches an op.
            cols = [t.columns() for t in trace.threads]
            ops = [t.ops_view() for t in trace.threads]
        else:
            cols = None
            ops = [t.ops for t in trace.threads]
        return TimingMachine(cfg, ops, max_cycles=max_cycles, obs=obs,
                             engine=engine, columns=cols)

    if profiler is None:
        result = build().run()
    else:
        with profiler.phase("setup"):
            machine = build()
        with profiler.phase("replay"):
            cycle = machine.run_loop()
        with profiler.phase("stats"):
            result = machine._result(cycle)
    result.program_name = trace.program_name
    return result
