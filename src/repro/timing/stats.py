"""Run statistics: cycle counts, per-unit counters, datapath utilization.

The :class:`DatapathUtilization` bucket definitions follow Figure 4 of
the paper exactly.  There are ``arith_fus * lanes`` arithmetic datapaths
(24 in the base machine).  Every datapath-cycle is classified as:

* ``busy``        -- executing an element operation,
* ``partly_idle`` -- its FU is executing an instruction whose vector
  length leaves this lane slot empty this cycle (short-VL waste),
* ``stalled``     -- its FU is idle although vector instructions are
  pending in the partition (dependences / issue bandwidth),
* ``all_idle``    -- no vector work exists for its partition at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class DatapathUtilization:
    """Datapath-cycle accounting across all lanes (Figure 4)."""

    busy: int = 0
    partly_idle: int = 0
    stalled: int = 0
    all_idle: int = 0

    @property
    def total(self) -> int:
        return self.busy + self.partly_idle + self.stalled + self.all_idle

    def fractions(self) -> Dict[str, float]:
        t = self.total or 1
        return {"busy": self.busy / t, "partly_idle": self.partly_idle / t,
                "stalled": self.stalled / t, "all_idle": self.all_idle / t}

    def merged(self, other: "DatapathUtilization") -> "DatapathUtilization":
        return DatapathUtilization(
            busy=self.busy + other.busy,
            partly_idle=self.partly_idle + other.partly_idle,
            stalled=self.stalled + other.stalled,
            all_idle=self.all_idle + other.all_idle)


@dataclass
class ScalarUnitStats:
    fetched: int = 0
    issued: int = 0
    committed: int = 0
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    fetch_stall_cycles: int = 0
    dispatch_stall_viq: int = 0


@dataclass
class VectorUnitStats:
    issued: int = 0
    element_ops: int = 0
    mem_instrs: int = 0
    mem_elements: int = 0
    viq_full_events: int = 0


@dataclass
class LaneCoreStats:
    issued: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    load_stall_cycles: int = 0
    branch_mispredicts: int = 0


@dataclass
class RunResult:
    """Everything a timing-simulation run produces."""

    config_name: str
    program_name: str
    num_threads: int
    cycles: int
    utilization: DatapathUtilization = field(default_factory=DatapathUtilization)
    scalar_units: List[ScalarUnitStats] = field(default_factory=list)
    vector_unit: Optional[VectorUnitStats] = None
    lane_cores: List[LaneCoreStats] = field(default_factory=list)
    thread_finish: List[int] = field(default_factory=list)
    barrier_count: int = 0
    l2_bank_conflict_cycles: int = 0
    #: cycle of each barrier release -- phase boundaries for the
    #: opportunity metric (Table 4)
    phase_release_cycles: List[int] = field(default_factory=list)

    def phase_durations(self) -> List[int]:
        """Cycle count of each barrier-delimited phase (last phase ends
        at program completion)."""
        bounds = [0] + list(self.phase_release_cycles) + [self.cycles]
        return [b - a for a, b in zip(bounds, bounds[1:])]

    @property
    def total_issued_scalar(self) -> int:
        return sum(s.issued for s in self.scalar_units)

    def summary(self) -> str:
        lines = [
            f"run {self.program_name} on {self.config_name} "
            f"({self.num_threads} threads): {self.cycles} cycles",
        ]
        if self.vector_unit is not None:
            vu = self.vector_unit
            lines.append(
                f"  vector: {vu.issued} instrs, {vu.element_ops} element ops")
            fr = self.utilization.fractions()
            lines.append(
                "  datapaths: busy {busy:.1%}, partly-idle {partly_idle:.1%}, "
                "stalled {stalled:.1%}, all-idle {all_idle:.1%}".format(**fr))
        for i, s in enumerate(self.scalar_units):
            lines.append(f"  SU{i}: fetched {s.fetched}, issued {s.issued}")
        for i, s in enumerate(self.lane_cores):
            if s.issued:
                lines.append(f"  lane{i}: issued {s.issued}")
        return "\n".join(lines)
