"""Run statistics: cycle counts, per-unit counters, datapath utilization.

The :class:`DatapathUtilization` bucket definitions follow Figure 4 of
the paper exactly.  There are ``arith_fus * lanes`` arithmetic datapaths
(24 in the base machine).  Every datapath-cycle is classified as:

* ``busy``        -- executing an element operation,
* ``partly_idle`` -- its FU is executing an instruction whose vector
  length leaves this lane slot empty this cycle (short-VL waste),
* ``stalled``     -- its FU is idle although vector instructions are
  pending in the partition (dependences / issue bandwidth),
* ``all_idle``    -- no vector work exists for its partition at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry


@dataclass
class DatapathUtilization:
    """Datapath-cycle accounting across all lanes (Figure 4)."""

    busy: int = 0
    partly_idle: int = 0
    stalled: int = 0
    all_idle: int = 0

    @property
    def total(self) -> int:
        return self.busy + self.partly_idle + self.stalled + self.all_idle

    def fractions(self) -> Dict[str, float]:
        """Bucket shares of all datapath-cycles.

        An empty accounting (``total == 0`` -- a run with no vector work
        at all, or a unit that never stepped) has no meaningful
        fractions; returning all-zeros here used to silently satisfy
        "sums to ~0" checks downstream.  An empty dict is returned
        instead so callers must handle the empty-run case explicitly.
        """
        t = self.total
        if t == 0:
            return {}
        return {"busy": self.busy / t, "partly_idle": self.partly_idle / t,
                "stalled": self.stalled / t, "all_idle": self.all_idle / t}

    def merged(self, other: "DatapathUtilization") -> "DatapathUtilization":
        """Bucket-wise sum.

        Invariants preserved: ``merged(x).total == self.total + x.total``
        and merging an empty accounting is the identity, so an
        empty-merged-with-empty result still reports ``fractions() ==
        {}`` rather than fabricating a breakdown.
        """
        return DatapathUtilization(
            busy=self.busy + other.busy,
            partly_idle=self.partly_idle + other.partly_idle,
            stalled=self.stalled + other.stalled,
            all_idle=self.all_idle + other.all_idle)


@dataclass
class ScalarUnitStats:
    fetched: int = 0
    issued: int = 0
    committed: int = 0
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    fetch_stall_cycles: int = 0
    dispatch_stall_viq: int = 0


@dataclass
class VectorUnitStats:
    issued: int = 0
    element_ops: int = 0
    mem_instrs: int = 0
    mem_elements: int = 0
    viq_full_events: int = 0


@dataclass
class LaneCoreStats:
    issued: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    load_stall_cycles: int = 0
    branch_mispredicts: int = 0


@dataclass
class RunResult:
    """Everything a timing-simulation run produces."""

    config_name: str
    program_name: str
    num_threads: int
    cycles: int
    utilization: DatapathUtilization = field(default_factory=DatapathUtilization)
    scalar_units: List[ScalarUnitStats] = field(default_factory=list)
    vector_unit: Optional[VectorUnitStats] = None
    lane_cores: List[LaneCoreStats] = field(default_factory=list)
    thread_finish: List[int] = field(default_factory=list)
    barrier_count: int = 0
    l2_bank_conflict_cycles: int = 0
    #: cycle of each barrier release -- phase boundaries for the
    #: opportunity metric (Table 4)
    phase_release_cycles: List[int] = field(default_factory=list)
    #: per-partition datapath accounting (same buckets as
    #: :attr:`utilization`; bucket-wise they sum to it exactly, modulo a
    #: residual from dynamic repartitioning that the stall-attribution
    #: report surfaces explicitly).  Populated for vector-unit runs.
    partition_utilization: List[DatapathUtilization] = \
        field(default_factory=list)
    #: lanes per partition, parallel to :attr:`partition_utilization`
    partition_lanes: List[int] = field(default_factory=list)
    #: observability metrics registry (only populated when the run was
    #: traced, e.g. via :func:`repro.timing.run.simulate_traced`)
    metrics: Optional["MetricsRegistry"] = None

    def phase_durations(self) -> List[int]:
        """Cycle count of each barrier-delimited phase (last phase ends
        at program completion)."""
        bounds = [0] + list(self.phase_release_cycles) + [self.cycles]
        return [b - a for a, b in zip(bounds, bounds[1:])]

    @property
    def total_issued_scalar(self) -> int:
        return sum(s.issued for s in self.scalar_units)

    def summary(self) -> str:
        lines = [
            f"run {self.program_name} on {self.config_name} "
            f"({self.num_threads} threads): {self.cycles} cycles",
        ]
        if self.vector_unit is not None:
            vu = self.vector_unit
            lines.append(
                f"  vector: {vu.issued} instrs, {vu.element_ops} element ops")
            fr = self.utilization.fractions()
            if fr:
                lines.append(
                    "  datapaths: busy {busy:.1%}, partly-idle "
                    "{partly_idle:.1%}, stalled {stalled:.1%}, all-idle "
                    "{all_idle:.1%}".format(**fr))
        for i, s in enumerate(self.scalar_units):
            lines.append(f"  SU{i}: fetched {s.fetched}, issued {s.issued}")
        for i, s in enumerate(self.lane_cores):
            if s.issued:
                miss = (s.icache_misses / s.icache_accesses
                        if s.icache_accesses else 0.0)
                lines.append(
                    f"  lane{i}: issued {s.issued}, I$ misses "
                    f"{s.icache_misses}/{s.icache_accesses} ({miss:.1%})")
        lines.append(
            f"  L2 bank-conflict cycles: {self.l2_bank_conflict_cycles}")
        return "\n".join(lines)
