"""Vector lanes re-engineered as scalar cores (paper Section 5).

For parallel-but-not-vectorizable code, each lane is augmented with a
4 KB instruction cache and sequencing logic and runs one scalar thread
as a **2-way in-order** processor.  Key modelling points, following the
paper:

* no per-lane data cache: every load/store goes to the banked L2 (the
  10-cycle hit latency is tolerable because the lanes already have
  queueing resources for access decoupling -- modelled as scoreboarded
  loads plus *decoupled slip*: while the in-order execute stream is
  stalled on an operand, later loads whose addresses are ready may issue
  ahead, up to ``decouple_depth`` instructions and subject to
  register-hazard checks -- the access/execute decoupling of [14] that
  the paper leans on);
* lane I-cache misses are forwarded to the scalar unit for service,
  modelled as an L2 access plus a fixed forwarding overhead;
* out-of-order execution within a lane is not possible: issue stops at
  the first instruction whose operands are not ready;
* a small bimodal predictor with a shallow-pipeline mispredict penalty.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..functional.trace import DynOp
from ..isa.registers import NUM_REG_UIDS
from ..obs.events import Event, LANE_ISSUE, STALL, StallReason
from .branch import BimodalPredictor
from .caches import Cache
from .config import LaneCoreConfig
from .l2 import BankedL2
from .stats import LaneCoreStats

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

from .scalar_unit import CODE_BASE, INSTR_BYTES


class LaneCore:
    """One lane operating as an independent 2-way in-order scalar core."""

    def __init__(self, machine: "Machine", lane_idx: int,
                 cfg: LaneCoreConfig, l2: BankedL2):
        self.machine = machine
        self.lane_idx = lane_idx
        self.cfg = cfg
        self.l2 = l2
        self.obs = machine.obs
        self.stats = LaneCoreStats()
        self.icache = Cache(cfg.icache_kib * 1024, 1, cfg.icache_line,
                            name=f"lane{lane_idx}-I$", bus=self.obs)
        self.bpred = BimodalPredictor(cfg.bpred_entries)
        self.tid: Optional[int] = None
        self.trace: List[DynOp] = []
        self.idx = 0
        self.reg_ready = [0] * NUM_REG_UIDS
        self.stall_until = 0
        self.last_done = 0
        self.last_iline = -1
        self.waiting_barrier = False
        self.halted = True  # no thread assigned yet
        self.finish_time: Optional[int] = None
        #: trace indices of loads issued early by decoupled slip
        self.pre_issued: set = set()

    def add_thread(self, tid: int, trace: List[DynOp]) -> None:
        self.tid = tid
        self.trace = trace
        self.halted = False

    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        if self.halted or self.waiting_barrier:
            return
        if self.stall_until > cycle:
            # execute stream stalled: the access stream keeps running
            self._slip(cycle, 2)
            return
        budget = self.cfg.width
        mem_slots = 2  # two memory ports per lane (Table 3)
        trace = self.trace
        reg_ready = self.reg_ready

        while budget:
            if self.idx in self.pre_issued:
                # load already issued by decoupled slip
                self.pre_issued.discard(self.idx)
                self.idx += 1
                continue
            dynop = trace[self.idx]
            spec = dynop.spec

            iline = (CODE_BASE + dynop.pc * INSTR_BYTES) // self.cfg.icache_line
            if iline != self.last_iline:
                self.stats.icache_accesses += 1
                self.last_iline = iline
                if not self.icache.access(iline * self.cfg.icache_line):
                    self.stats.icache_misses += 1
                    self.stall_until = self.l2.access(
                        iline * self.cfg.icache_line, cycle) \
                        + self.cfg.imiss_extra
                    obs = self.obs
                    if obs.enabled:
                        obs.emit(Event(cycle, STALL,
                                       f"lane{self.lane_idx}", dynop,
                                       dur=self.stall_until - cycle,
                                       reason=StallReason.LANE_IMISS))
                    return

            if spec.is_vector:
                raise RuntimeError(
                    "vector instruction in a scalar lane-core thread "
                    f"(pc {dynop.pc}, op {dynop.op!r})")
            if spec.is_barrier:
                self.idx += 1
                self.waiting_barrier = True
                self.machine.barrier_arrive(
                    self.tid, max(cycle, self.last_done))
                return
            if spec.is_halt:
                self.idx += 1
                self.halted = True
                self.finish_time = max(cycle, self.last_done)
                self.machine.thread_halted(self.tid, self.finish_time)
                return
            if spec.is_vltcfg:
                self.idx += 1
                self.stall_until = cycle + self.machine.cfg.vltcfg_overhead
                return

            # In-order: block on the first not-ready instruction (but let
            # ready loads slip ahead through the decoupling queue).
            ready = cycle
            for uid in dynop.reads:
                t = reg_ready[uid]
                if t > ready:
                    ready = t
            if ready > cycle:
                self.stall_until = ready
                self.stats.load_stall_cycles += ready - cycle
                obs = self.obs
                if obs.enabled:
                    obs.emit(Event(cycle, STALL, f"lane{self.lane_idx}",
                                   dynop, dur=ready - cycle,
                                   reason=StallReason.OPERAND))
                self._slip(cycle, mem_slots)
                return

            if spec.pool == "mem":
                if mem_slots == 0:
                    return
                mem_slots -= 1
                addr = int(dynop.addrs[0])
                if spec.is_load:
                    done = self.l2.access(addr, cycle + spec.latency)
                else:
                    self.l2.access(addr, cycle + spec.latency)
                    # lane stores write the L2; SU L1 copies go stale
                    self.machine.l1d_invalidate(addr)
                    done = cycle + spec.latency
            else:
                done = cycle + spec.latency

            for uid in dynop.writes:
                reg_ready[uid] = done
            if done > self.last_done:
                self.last_done = done
            self.stats.issued += 1
            obs = self.obs
            if obs.enabled:
                obs.emit(Event(cycle, LANE_ISSUE, f"lane{self.lane_idx}",
                               dynop, dur=done - cycle))
            self.idx += 1
            budget -= 1

            if spec.is_branch and not spec.is_uncond:
                correct = self.bpred.predict_and_update(dynop.pc, dynop.taken)
                if not correct:
                    self.stats.branch_mispredicts += 1
                    self.stall_until = done + self.cfg.mispredict_penalty
                    if obs.enabled:
                        obs.emit(Event(
                            cycle, STALL, f"lane{self.lane_idx}", dynop,
                            dur=self.stall_until - cycle,
                            reason=StallReason.LANE_MISPREDICT))
                    return

    # ------------------------------------------------------------------

    def _slip(self, cycle: int, budget: int) -> None:
        """Decoupled access-stream slip.

        While the in-order execute stream is stalled on an operand, the
        lane's access resources keep running: later *loads* and the
        *integer ops that feed their addresses* may issue if their
        operands are ready -- the access/execute decoupling of the
        paper's citation [14], which the lanes implement with their
        vector-memory queuing resources (Sections 2 and 5).

        Hazard rules (register-level, conservative): an instruction may
        slip only if no unissued earlier instruction writes any of its
        sources (true dependence) and none reads or writes its
        destination (anti/output dependence).  FP instructions never
        slip (they are the execute stream); stores never slip; slip
        stops at control boundaries and is bounded by
        ``decouple_depth`` instructions and ``budget`` issues per cycle
        (the lane is still a 2-wide machine).  Memory-order hazards are
        not modelled, as in the rest of the timing simulator.
        """
        trace = self.trace
        reg_ready = self.reg_ready
        mem_slots = 2
        written: set = set()
        read: set = set()
        head = trace[self.idx]
        written.update(head.writes)
        read.update(head.reads)
        limit = min(len(trace), self.idx + 1 + self.cfg.decouple_depth)
        for j in range(self.idx + 1, limit):
            if budget == 0:
                return
            if j in self.pre_issued:
                continue
            op = trace[j]
            spec = op.spec
            if spec.is_barrier or spec.is_halt or spec.is_vltcfg \
                    or spec.is_vector:
                return
            # candidates: loads, and scalar-integer address arithmetic
            is_addr_op = (spec.pool == "arith" and not spec.is_branch
                          and op.writes
                          and all(u < 32 for u in op.writes))
            if (spec.is_load and mem_slots > 0) or is_addr_op:
                dst = op.writes[0] if op.writes else None
                hazard = (dst is None or dst in written or dst in read
                          or any(u in written for u in op.reads))
                if not hazard and all(reg_ready[u] <= cycle
                                      for u in op.reads):
                    if spec.is_load:
                        done = self.l2.access(int(op.addrs[0]),
                                              cycle + spec.latency)
                        mem_slots -= 1
                    else:
                        done = cycle + spec.latency
                    reg_ready[dst] = done
                    if done > self.last_done:
                        self.last_done = done
                    self.pre_issued.add(j)
                    self.stats.issued += 1
                    obs = self.obs
                    if obs.enabled:
                        obs.emit(Event(cycle, LANE_ISSUE,
                                       f"lane{self.lane_idx}", op,
                                       dur=done - cycle, arg="slip"))
                    budget -= 1
                    continue
            written.update(op.writes)
            read.update(op.reads)

    def resume(self, at: int) -> None:
        """Barrier release: resume fetching at cycle ``at``."""
        self.waiting_barrier = False
        self.stall_until = max(self.stall_until, at)

    def next_event(self, cycle: int) -> int:
        if self.halted or self.waiting_barrier:
            return 1 << 62
        # even while the execute stream is stalled, the decoupled access
        # stream may issue work next cycle, so stay schedulable
        return cycle + 1
