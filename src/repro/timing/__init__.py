"""Cycle-level timing simulation of the VLT vector processor."""

from .branch import BimodalPredictor
from .caches import Cache, CacheStats
from .config import (BASE, CMT, CONFIGS, V2_CMP, V2_CMP_H, V2_SMT, V4_CMP,
                     V4_CMP_H, V4_CMT, V4_SMT, VLT_SCALAR, L2Config,
                     LaneCoreConfig, MachineConfig, ScalarUnitConfig,
                     VectorUnitConfig, base_config, get_config)
from .l2 import BankedL2, L2Stats
from .lane_core import LaneCore
from .columnar import ColumnarMachine
from .machine import (ENGINES, Machine, SimulationError, TimingMachine,
                      run_traces, validate_engine)
from .pipeview import PipeView, simulate_with_pipeview
from .run import (TracedRun, clear_trace_cache, simulate, simulate_traced,
                  trace_for)
from .scalar_unit import ScalarUnit
from .stats import (DatapathUtilization, LaneCoreStats, RunResult,
                    ScalarUnitStats, VectorUnitStats)
from .vcl import VectorUnit

__all__ = [
    "BimodalPredictor", "Cache", "CacheStats",
    "BASE", "CMT", "CONFIGS", "V2_CMP", "V2_CMP_H", "V2_SMT", "V4_CMP",
    "V4_CMP_H", "V4_CMT", "V4_SMT", "VLT_SCALAR", "L2Config",
    "LaneCoreConfig", "MachineConfig", "ScalarUnitConfig",
    "VectorUnitConfig", "base_config", "get_config",
    "BankedL2", "L2Stats", "LaneCore", "Machine", "SimulationError",
    "ColumnarMachine", "ENGINES", "TimingMachine", "validate_engine",
    "PipeView", "simulate_with_pipeview",
    "run_traces", "clear_trace_cache", "simulate", "simulate_traced",
    "TracedRun", "trace_for",
    "ScalarUnit", "DatapathUtilization", "LaneCoreStats", "RunResult",
    "ScalarUnitStats", "VectorUnitStats", "VectorUnit",
]
