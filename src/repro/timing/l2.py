"""Banked L2 cache + main-memory timing model.

The L2 is the vector unit's first memory level (vector accesses bypass
the small L1s, Section 2) and the backing store for SU L1 misses and
lane-core accesses.  It is modelled as:

* one logical set-associative tag array (hit/miss classification), and
* ``banks`` independent bank servers, line-interleaved, each occupied
  ``bank_busy`` cycles per access -- the source of stride/conflict
  behaviour for vector memory instructions.

``access`` handles one scalar-side line access; ``vector_access``
handles an element-address vector, issuing ``addrs_per_cycle`` addresses
per cycle (the lane address generators of one vector memory port) and
returning both the completion time of the slowest element and the
element-level hit statistics.  Unit-stride accesses are coalesced to one
bank transaction per distinct line, which is what gives unit-stride its
paper-described advantage over large-stride/indexed accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..obs.events import BANK_CONFLICT, Event, EventBus, NULL_BUS
from .caches import Cache
from .config import L2Config


@dataclass
class L2Stats:
    scalar_accesses: int = 0
    vector_elements: int = 0
    vector_line_txns: int = 0
    bank_conflict_cycles: int = 0


class BankedL2:
    """Shared multi-banked L2 with per-bank occupancy."""

    def __init__(self, cfg: L2Config, bus: Optional[EventBus] = None):
        self.cfg = cfg
        self.bus = bus if bus is not None else NULL_BUS
        self.tags = Cache(cfg.size_kib * 1024, cfg.assoc, cfg.line, name="L2",
                          bus=self.bus)
        self.bank_free: List[int] = [0] * cfg.banks
        self.stats = L2Stats()

    # -- scalar / line-granular ------------------------------------------------

    def access(self, addr: int, now: int) -> int:
        """One line access (SU L1 miss or lane-core access); returns done time."""
        cfg = self.cfg
        bank = (addr // cfg.line) % cfg.banks
        start = max(now, self.bank_free[bank])
        self.bank_free[bank] = start + cfg.bank_busy
        self.stats.scalar_accesses += 1
        self.stats.bank_conflict_cycles += start - now
        if start > now and self.bus.enabled:
            self.bus.emit(Event(now, BANK_CONFLICT, f"L2.bank{bank}",
                                dur=start - now, arg=bank))
        hit = self.tags.access(addr)
        return start + (cfg.hit_latency if hit else cfg.miss_latency)

    # -- vector ------------------------------------------------------------------

    def vector_access(self, addrs: np.ndarray, now: int,
                      addrs_per_cycle: int, unit_stride: bool) -> int:
        """Service a vector memory instruction's element addresses.

        ``addrs_per_cycle`` is the number of addresses the issuing
        partition generates per cycle (lanes in the partition, per port).
        Returns the cycle at which the *last* element completes.
        """
        cfg = self.cfg
        n = int(addrs.size)
        if n == 0:
            return now + cfg.hit_latency
        self.stats.vector_elements += n

        line = cfg.line
        if unit_stride:
            # Coalesce: one bank transaction per distinct line; the whole
            # group of elements in a line completes with that transaction.
            lines = np.unique(addrs // line)
            elems_per_line = max(1, line // 8)
            issue_times = now + (np.arange(lines.size) * elems_per_line
                                 ) // addrs_per_cycle
            done = now
            bus = self.bus
            for i, ln in enumerate(lines):
                t = int(issue_times[i])
                bank = int(ln) % cfg.banks
                start = max(t, self.bank_free[bank])
                self.bank_free[bank] = start + cfg.bank_busy
                self.stats.bank_conflict_cycles += start - t
                if start > t and bus.enabled:
                    bus.emit(Event(t, BANK_CONFLICT, f"L2.bank{bank}",
                                   dur=start - t, arg=bank))
                hit = self.tags.access(int(ln) * line)
                fin = start + (cfg.hit_latency if hit else cfg.miss_latency)
                if fin > done:
                    done = fin
            self.stats.vector_line_txns += int(lines.size)
            return done

        # Strided / indexed: every element is its own bank transaction.
        banks = ((addrs // line) % cfg.banks).astype(np.int64)
        issue_times = now + np.arange(n) // addrs_per_cycle
        done = now
        bank_free = self.bank_free
        tags_access = self.tags.access
        hit_lat, miss_lat, busy = cfg.hit_latency, cfg.miss_latency, cfg.bank_busy
        addrs_list = addrs.tolist()
        banks_list = banks.tolist()
        times_list = issue_times.tolist()
        bus = self.bus
        for i in range(n):
            b = banks_list[i]
            t = times_list[i]
            start = bank_free[b] if bank_free[b] > t else t
            bank_free[b] = start + busy
            self.stats.bank_conflict_cycles += start - t
            if start > t and bus.enabled:
                bus.emit(Event(t, BANK_CONFLICT, f"L2.bank{b}",
                               dur=start - t, arg=b))
            fin = start + (hit_lat if tags_access(addrs_list[i]) else miss_lat)
            if fin > done:
                done = fin
        self.stats.vector_line_txns += n
        return done
