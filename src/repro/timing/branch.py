"""Bimodal (2-bit saturating counter) branch predictor.

Conditional branches index a table of 2-bit counters by pc.
Unconditional control transfers (``j``/``jal``/``jr``) are treated as
always predicted (a BTB is assumed); the trace supplies actual outcomes,
so the predictor only decides *whether the frontend stalls* -- wrong-path
fetch cannot be modelled from a correct-path trace, and the resulting
redirect-stall approximation is standard for trace-driven simulators.
"""

from __future__ import annotations

from typing import List


class BimodalPredictor:
    """Array of 2-bit saturating counters, initialised weakly taken."""

    __slots__ = ("_table", "_mask", "lookups", "mispredicts")

    def __init__(self, entries: int = 4096):
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self._table: List[int] = [2] * entries  # 0..3; >=2 predicts taken
        self._mask = entries - 1
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, train on ``taken``; True if correct."""
        idx = pc & self._mask
        ctr = self._table[idx]
        predicted = ctr >= 2
        if taken and ctr < 3:
            self._table[idx] = ctr + 1
        elif not taken and ctr > 0:
            self._table[idx] = ctr - 1
        self.lookups += 1
        correct = predicted == taken
        if not correct:
            self.mispredicts += 1
        return correct

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups
