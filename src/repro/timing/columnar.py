"""Columnar replay engine: the timing core driven off flat trace arrays.

:class:`ColumnarMachine` replays the same dynamic traces as the
per-event :class:`~repro.timing.machine.Machine` (the oracle), but
simulates directly over the columnar NumPy arrays of the trace cache
format (``ThreadTrace.columns()``) instead of materialising per-op
``SEntry``/``VEntry`` objects.  All per-op bookkeeping lives in flat
parallel arrays indexed by trace position; the per-op operand tuples,
latencies, pools and behavioural flags are derived once per trace (and
cached on the columns dict), so the hot loop touches only ints and
lists.

Two accelerations sit on top of the faithful port -- both are exact,
verified bit-identical against the oracle (cycles, final state,
committed-op streams) by ``vlt-repro diff``:

* **cycle-window batching** -- the idle-skip of the event loop is
  extended to windows where the vector unit is busy: scalar-unit
  frontends drained behind a barrier/halt/lsync report a *drain bound*,
  and the vector unit exposes ``next_action`` / ``fast_forward`` so a
  provably-eventless window ``[c+1, best)`` is replayed as one batched
  datapath-accounting update (closed form per FU) plus a round-robin
  advance, instead of per-cycle no-op steps;

* **steady-state memoisation** -- taken backward branches anchor a
  period detector.  When two consecutive anchor visits show the same
  cadence, the full normalised machine state (ROBs, queues, register
  timestamps, VIQ, FUs, bank timers -- everything, relative to the
  anchor cycle and per-context trace positions) is fingerprinted and
  cache/predictor mutations are recorded copy-on-write.  If the next
  visit reproduces the fingerprint, the recorded cache sets and
  predictor counters, and the trace itself repeats for ``k`` more
  periods, the machine jumps ``k`` periods at once: timestamps shift
  uniformly, positions advance by the per-context period delta, and
  every statistics counter advances by ``k`` times its per-period
  delta.  Obs-enabled runs disable memoisation (events must be emitted
  cycle by cycle), making tracing behaviour-identical by construction.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..functional.trace import DynOp
from ..isa.opcodes import spec
from ..isa.registers import NUM_REG_UIDS, V_BASE, VL_UID
from ..obs.events import (BARRIER_ARRIVE, BARRIER_RELEASE, COMMIT, Event,
                          EventBus, ISSUE, STALL, VISSUE, VLCFG, StallReason)
from .branch import BimodalPredictor
from .caches import Cache
from .config import MachineConfig, ScalarUnitConfig, VectorUnitConfig
from .l2 import BankedL2
from .lane_core import LaneCore
from .scalar_unit import CODE_BASE, INSTR_BYTES
from .stats import DatapathUtilization, RunResult, ScalarUnitStats, \
    VectorUnitStats

_FAR_FUTURE = 1 << 62

#: vector-side register-uid namespace size (v0..v31 + vm), as in vcl
_NUM_VSIDE = 33

# -- per-op behavioural flags (derived once per opcode table) ---------------

_F_VECTOR = 1 << 0
_F_LOAD = 1 << 1
_F_STORE = 1 << 2
_F_COND_BRANCH = 1 << 3
_F_BARRIER = 1 << 4
_F_HALT = 1 << 5
_F_LSYNC = 1 << 6
_F_VLTCFG = 1 << 7
_F_STRIDED = 1 << 8          # vmem op with non-unit stride (strided/indexed)
_F_WRITES_SCALAR = 1 << 9    # writes any scalar-side uid (incl. vl)
_F_WRITES_VREG = 1 << 10     # writes any vector-side uid (holds a rename reg)
_F_WAIT = _F_BARRIER | _F_HALT | _F_LSYNC

_P_ARITH, _P_MEM, _P_VARITH, _P_VMEM, _P_NONE = range(5)
_POOL_CODE = {"arith": _P_ARITH, "mem": _P_MEM, "varith": _P_VARITH,
              "vmem": _P_VMEM, "none": _P_NONE}


class _Cols:
    """Derived static per-thread columnar data (shared across runs).

    Wraps one ``ThreadTrace.columns()`` dict with per-op latency / pool /
    flag expansions and plain-list views of the hot columns (python list
    indexing beats 0-d ndarray extraction in the interpreter loop).
    """

    __slots__ = ("n", "ops", "pcs", "vls", "takens", "tgts", "imms",
                 "r_off", "w_off", "a_off", "r_flat", "w_flat", "a_flat",
                 "rcnt", "wcnt", "acnt", "flags", "lat", "pool", "pc",
                 "vl", "taken", "imm", "addr0", "reads", "writes",
                 "anchor", "_ilines")

    def __init__(self, cols: Dict[str, object]):
        specs = [spec(m) for m in cols["op_table"]]
        lat_tab = np.array([s.latency for s in specs] or [0], dtype=np.int64)
        pool_tab = np.array([_POOL_CODE[s.pool] for s in specs] or [0],
                            dtype=np.int64)
        flag_tab = np.zeros(max(1, len(specs)), dtype=np.int64)
        for j, s in enumerate(specs):
            f = 0
            if s.is_vector:
                f |= _F_VECTOR
            if s.is_load:
                f |= _F_LOAD
            if s.is_store:
                f |= _F_STORE
            if s.is_branch and not s.is_uncond:
                f |= _F_COND_BRANCH
            if s.is_barrier:
                f |= _F_BARRIER
            if s.is_halt:
                f |= _F_HALT
            if s.is_lsync:
                f |= _F_LSYNC
            if s.is_vltcfg:
                f |= _F_VLTCFG
            if s.mem_stride or s.mem_indexed:
                f |= _F_STRIDED
            flag_tab[j] = f
        ops = np.asarray(cols["ops"])
        self.ops = ops
        self.pcs = np.asarray(cols["pcs"])
        self.vls = np.asarray(cols["vls"])
        self.takens = np.asarray(cols["takens"])
        self.tgts = np.asarray(cols["tgts"])
        self.imms = np.asarray(cols["imms"])
        self.r_off = np.asarray(cols["r_off"])
        self.w_off = np.asarray(cols["w_off"])
        self.a_off = np.asarray(cols["a_off"])
        self.r_flat = np.asarray(cols["r_flat"])
        self.w_flat = np.asarray(cols["w_flat"])
        self.a_flat = np.asarray(cols["a_flat"])
        n = int(ops.size)
        self.n = n
        flags = flag_tab[ops]
        # operand-derived flags: any() over each op's w_off window, done
        # for all ops at once with a cumulative-sum-at-offsets trick
        w_scalar = (self.w_flat < V_BASE) | (self.w_flat == VL_UID)
        cs = np.concatenate(([0], np.cumsum(w_scalar)))
        flags = flags | np.where(
            cs[self.w_off[1:]] - cs[self.w_off[:-1]] > 0, _F_WRITES_SCALAR, 0)
        cs = np.concatenate(([0], np.cumsum(self.w_flat >= V_BASE)))
        flags = flags | np.where(
            cs[self.w_off[1:]] - cs[self.w_off[:-1]] > 0, _F_WRITES_VREG, 0)
        self.flags = flags.tolist()
        self.lat = lat_tab[ops].tolist()
        self.pool = pool_tab[ops].tolist()
        self.pc = self.pcs.tolist()
        self.vl = self.vls.tolist()
        self.taken = self.takens.tolist()
        self.imm = self.imms.tolist()
        # first element address per op (-1 when the op carries none)
        self.acnt = np.diff(self.a_off)
        addr0 = np.full(n, -1, dtype=np.int64)
        nz = np.nonzero(self.acnt)[0]
        addr0[nz] = self.a_flat[self.a_off[:-1][nz]]
        self.addr0 = addr0.tolist()
        self.rcnt = np.diff(self.r_off)
        self.wcnt = np.diff(self.w_off)
        rl = self.r_flat.tolist()
        ro = self.r_off.tolist()
        self.reads = [rl[ro[i]:ro[i + 1]] for i in range(n)]
        wl = self.w_flat.tolist()
        wo = self.w_off.tolist()
        self.writes = [wl[wo[i]:wo[i + 1]] for i in range(n)]
        # steady-state anchors: taken backward conditional branches
        anchor = (((flags & _F_COND_BRANCH) != 0) & (self.takens == 1)
                  & (self.tgts >= 0) & (self.tgts <= self.pcs))
        self.anchor = anchor.tolist()
        self._ilines: Dict[int, List[int]] = {}

    def ilines(self, line: int) -> List[int]:
        """Per-op I-cache line index for the given line size (cached)."""
        cached = self._ilines.get(line)
        if cached is None:
            cached = ((CODE_BASE + self.pcs * INSTR_BYTES) // line).tolist()
            self._ilines[line] = cached
        return cached


def _derive(cols_dict: Dict[str, object]) -> _Cols:
    """The :class:`_Cols` view of a columns dict, cached on the dict so
    repeated runs over one trace skip re-derivation."""
    d = cols_dict.get("_derived")
    if d is None:
        d = _Cols(cols_dict)
        cols_dict["_derived"] = d
    return d


# -- copy-on-write recorders for steady-state detection ----------------------

class _RecCache(Cache):
    """Cache whose mutations can be recorded copy-on-write.

    While recorder dicts are attached, every set about to be mutated is
    snapshotted (first touch only) into each dict; the steady-state
    detector compares the snapshots against the live sets one period
    later.  With no recorder attached the overhead is one truthiness
    check per access.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._recs: List[dict] = []

    def _snapshot(self, addr: int) -> None:
        set_idx = (addr // self.line_bytes) % self.num_sets
        ways = self._sets[set_idx]
        for d in self._recs:
            if set_idx not in d:
                d[set_idx] = ways[:]

    def access(self, addr: int) -> bool:
        if self._recs:
            self._snapshot(addr)
        return super().access(addr)

    def invalidate(self, addr: int) -> bool:
        if self._recs:
            self._snapshot(addr)
        return super().invalidate(addr)

    def rec_equal(self, d: dict) -> bool:
        sets = self._sets
        return all(sets[i] == ways for i, ways in d.items())


class _RecPredictor(BimodalPredictor):
    """Bimodal predictor with the same copy-on-write recording."""

    def __init__(self, entries: int):
        super().__init__(entries)
        self._recs: List[dict] = []

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        if self._recs:
            idx = pc & self._mask
            ctr = self._table[idx]
            for d in self._recs:
                if idx not in d:
                    d[idx] = ctr
        return super().predict_and_update(pc, taken)

    def rec_equal(self, d: dict) -> bool:
        table = self._table
        return all(table[i] == v for i, v in d.items())


# -- trace periodicity (vectorised) -----------------------------------------

def _match_len(a: np.ndarray, f2: int, d: int) -> int:
    """Length of the run from ``f2`` on that equals the run ``d`` back."""
    x = a[f2:]
    if x.size == 0:
        return 0
    y = a[f2 - d:f2 - d + x.size]
    neq = x != y
    idx = int(np.argmax(neq))
    return idx if neq[idx] else int(x.size)


def _periods_ahead(cols: _Cols, f2: int, d: int) -> int:
    """Whole ``d``-op periods from ``f2`` on that exactly repeat the
    period ending at ``f2`` (all columns, including operand payloads)."""
    m = None
    for arr in (cols.ops, cols.pcs, cols.vls, cols.takens, cols.tgts,
                cols.imms, cols.rcnt, cols.wcnt, cols.acnt):
        ml = _match_len(arr, f2, d)
        m = ml if m is None else min(m, ml)
        if m < d:
            return 0
    k = m // d
    for flat, off in ((cols.r_flat, cols.r_off), (cols.w_flat, cols.w_off),
                      (cols.a_flat, cols.a_off)):
        fo = int(off[f2])
        po = fo - int(off[f2 - d])
        if po <= 0:
            continue
        kf = _match_len(flat, fo, po) // po
        if kf < k:
            k = kf
        if k == 0:
            return 0
    return k


def _ops_equal(cols: _Cols, p: int, q: int) -> bool:
    """Positions ``p`` and ``q`` carry the identical dynamic op."""
    if (cols.ops[p] != cols.ops[q] or cols.pc[p] != cols.pc[q]
            or cols.vl[p] != cols.vl[q] or cols.taken[p] != cols.taken[q]
            or cols.imm[p] != cols.imm[q]
            or cols.reads[p] != cols.reads[q]
            or cols.writes[p] != cols.writes[q]):
        return False
    ao = cols.a_off
    a1 = cols.a_flat[ao[p]:ao[p + 1]]
    a2 = cols.a_flat[ao[q]:ao[q + 1]]
    return a1.size == a2.size and bool(np.array_equal(a1, a2))


# -- scalar unit -------------------------------------------------------------

class _Ctx:
    """One SMT hardware context; per-op state lives in position-indexed
    parallel lists (the columnar replacement for SEntry objects)."""

    __slots__ = ("su", "ctx_idx", "tid", "ops", "cols", "n", "fetch_idx",
                 "rob", "last_writer", "fetch_stalled_until",
                 "blocked_on_branch", "waiting_barrier", "halted",
                 "finish_time", "last_iline", "window_limit", "iline",
                 "ready", "unmet", "vunmet", "done", "subs", "vsubs",
                 "seqno", "misp")

    def __init__(self, su: "_ColScalarUnit", ctx_idx: int, tid: int,
                 ops: List[DynOp], cols: _Cols, window_limit: int):
        self.su = su
        self.ctx_idx = ctx_idx
        self.tid = tid
        self.ops = ops                  # DynOp refs, for event emission only
        self.cols = cols
        self.n = cols.n
        self.fetch_idx = 0
        self.rob: List[int] = []        # trace positions, FIFO
        #: per-uid completion time (>= 0) or in-flight producer encoded
        #: as -(pos + 1)
        self.last_writer: List[int] = [0] * NUM_REG_UIDS
        self.fetch_stalled_until = 0
        self.blocked_on_branch: Optional[int] = None
        self.waiting_barrier = False
        self.halted = False
        self.finish_time: Optional[int] = None
        self.last_iline = -1
        self.window_limit = window_limit
        self.iline = cols.ilines(su.cfg.l1_line)
        n = cols.n
        self.ready = [0] * n        # SEntry.ready_time / VEntry.ready
        self.unmet = [0] * n        # SEntry.unmet / VEntry.scalar_unmet
        self.vunmet = [0] * n       # VEntry.vec_unmet
        self.done: List[Optional[int]] = [None] * n
        self.subs: List[Optional[list]] = [None] * n    # scalar subscribers
        self.vsubs: List[Optional[list]] = [None] * n   # vector subscribers
        self.seqno = [0] * n
        self.misp: set = set()      # positions with a pending mispredict


class _ColScalarUnit:
    """Positional port of :class:`~repro.timing.scalar_unit.ScalarUnit`."""

    def __init__(self, machine: "ColumnarMachine", index: int,
                 cfg: ScalarUnitConfig, l2: BankedL2):
        self.machine = machine
        self.index = index
        self.cfg = cfg
        self.l2 = l2
        self.obs = machine.obs
        self.stats = ScalarUnitStats()
        self.l1i = _RecCache(cfg.l1i_kib * 1024, cfg.l1_assoc, cfg.l1_line,
                             name=f"SU{index}-L1I", bus=self.obs)
        self.l1d = _RecCache(cfg.l1d_kib * 1024, cfg.l1_assoc, cfg.l1_line,
                             name=f"SU{index}-L1D", bus=self.obs)
        self.bpred = _RecPredictor(cfg.bpred_entries)
        self.contexts: List[_Ctx] = []
        self.rob_occupancy = 0
        self._seq = 0
        self._ready_heap: list = []     # (ready_time, seq, ctx, pos)
        self._issueq_arith: list = []   # (seq, ctx, pos)
        self._issueq_mem: list = []
        self._fetch_rr = 0
        self._commit_rr = 0
        vu_cfg = machine.cfg.vu
        self._vu_transfer = vu_cfg.su_transfer if vu_cfg is not None else 0

    def add_thread(self, tid: int, ops: List[DynOp], cols: _Cols) -> _Ctx:
        ctx = _Ctx(self, len(self.contexts), tid, ops, cols,
                   self.cfg.window)
        self.contexts.append(ctx)
        return ctx

    # -- event plumbing ------------------------------------------------------

    def announce(self, ctx: _Ctx, pos: int, time: int) -> None:
        """Positional SEntry.announce: publish a completion time."""
        lw = ctx.last_writer
        key = -(pos + 1)
        for uid in ctx.cols.writes[pos]:
            if lw[uid] == key:
                lw[uid] = time
        subs = ctx.subs[pos]
        if subs:
            ctx.subs[pos] = None
            flags = ctx.cols.flags
            ready = ctx.ready
            unmet = ctx.unmet
            transfer = self._vu_transfer
            heap = self._ready_heap
            seqno = ctx.seqno
            for c in subs:
                if flags[c] & _F_VECTOR:
                    # VEntry.notify: add the SU->VCL hop, never schedule
                    t = time + transfer
                    if t > ready[c]:
                        ready[c] = t
                    unmet[c] -= 1
                else:
                    if time > ready[c]:
                        ready[c] = time
                    unmet[c] -= 1
                    if unmet[c] == 0:
                        heapq.heappush(heap, (ready[c], seqno[c], ctx, c))

    # -- main per-cycle step -------------------------------------------------

    def step(self, cycle: int) -> None:
        self._commit(cycle)
        self._wakeup(cycle)
        self._issue(cycle)
        self._frontend(cycle)

    def _commit(self, cycle: int) -> None:
        budget = self.cfg.width
        nctx = len(self.contexts)
        if nctx == 0:
            return
        start = self._commit_rr
        self._commit_rr = (start + 1) % nctx
        obs = self.obs
        obs_on = obs.enabled
        for k in range(nctx):
            ctx = self.contexts[(start + k) % nctx]
            rob = ctx.rob
            done = ctx.done
            while budget and rob:
                head = rob[0]
                d = done[head]
                if d is None or d > cycle:
                    break
                rob.pop(0)
                self.rob_occupancy -= 1
                self.stats.committed += 1
                budget -= 1
                if obs_on:
                    obs.emit(Event(cycle, COMMIT,
                                   f"SU{self.index}.c{ctx.ctx_idx}",
                                   ctx.ops[head]))
            if budget == 0:
                return

    def _wakeup(self, cycle: int) -> None:
        heap = self._ready_heap
        while heap and heap[0][0] <= cycle:
            _, seq, ctx, pos = heapq.heappop(heap)
            if ctx.cols.pool[pos] == _P_MEM:
                heapq.heappush(self._issueq_mem, (seq, ctx, pos))
            else:
                heapq.heappush(self._issueq_arith, (seq, ctx, pos))

    def _issue(self, cycle: int) -> None:
        budget = self.cfg.width
        arith_slots = self.cfg.arith_units
        mem_slots = self.cfg.mem_ports
        qa, qm = self._issueq_arith, self._issueq_mem
        while budget:
            pick_arith: Optional[bool] = None
            if qa and arith_slots:
                if qm and mem_slots:
                    pick_arith = qa[0][0] < qm[0][0]
                else:
                    pick_arith = True
            elif qm and mem_slots:
                pick_arith = False
            if pick_arith is None:
                return
            if pick_arith:
                _, ctx, pos = heapq.heappop(qa)
                arith_slots -= 1
            else:
                _, ctx, pos = heapq.heappop(qm)
                mem_slots -= 1
            self._execute(ctx, pos, cycle)
            budget -= 1

    def _execute(self, ctx: _Ctx, pos: int, cycle: int) -> None:
        cols = ctx.cols
        fl = cols.flags[pos]
        lat = cols.lat[pos]
        self.stats.issued += 1
        if fl & _F_LOAD:
            addr = cols.addr0[pos]
            self.stats.l1d_accesses += 1
            if self.l1d.access(addr):
                done = cycle + lat + self.cfg.l1_hit_latency
            else:
                self.stats.l1d_misses += 1
                done = self.l2.access(addr, cycle + lat
                                      + self.cfg.l1_hit_latency)
        elif fl & _F_STORE:
            addr = cols.addr0[pos]
            self.stats.l1d_accesses += 1
            if not self.l1d.access(addr):
                self.stats.l1d_misses += 1
                self.l2.access(addr, cycle + lat)  # fill bandwidth
            self.machine.l1d_invalidate(addr, except_su=self)
            done = cycle + lat
        else:
            done = cycle + lat
        ctx.done[pos] = done
        self.announce(ctx, pos, done)
        obs = self.obs
        if obs.enabled:
            obs.emit(Event(cycle, ISSUE,
                           f"SU{self.index}.c{ctx.ctx_idx}", ctx.ops[pos],
                           dur=done - cycle))
        if ctx.misp and pos in ctx.misp:
            ctx.misp.discard(pos)
            fsu = done + self.cfg.mispredict_penalty
            if fsu > ctx.fetch_stalled_until:
                ctx.fetch_stalled_until = fsu
            self.stats.fetch_stall_cycles += \
                max(0, ctx.fetch_stalled_until - cycle)
            if obs.enabled and ctx.fetch_stalled_until > cycle:
                obs.emit(Event(
                    cycle, STALL, f"SU{self.index}.c{ctx.ctx_idx}",
                    ctx.ops[pos], dur=ctx.fetch_stalled_until - cycle,
                    reason=StallReason.BRANCH_MISPREDICT))
            if ctx.blocked_on_branch == pos:
                ctx.blocked_on_branch = None

    # -- frontend ------------------------------------------------------------

    def _can_fetch(self, ctx: _Ctx, cycle: int) -> bool:
        return (not ctx.halted and not ctx.waiting_barrier
                and ctx.blocked_on_branch is None
                and ctx.fetch_stalled_until <= cycle
                and ctx.fetch_idx < ctx.n
                and len(ctx.rob) < ctx.window_limit
                and self.rob_occupancy < self.cfg.window)

    def _frontend(self, cycle: int) -> None:
        nctx = len(self.contexts)
        if nctx == 0:
            return
        budget = self.cfg.width
        start = self._fetch_rr
        self._fetch_rr = (start + 1) % nctx
        for k in range(nctx):
            if budget == 0:
                return
            ctx = self.contexts[(start + k) % nctx]
            budget = self._fetch_ctx(ctx, cycle, budget)

    def _fetch_ctx(self, ctx: _Ctx, cycle: int, budget: int) -> int:
        cols = ctx.cols
        flags = cols.flags
        machine = self.machine
        while budget and self._can_fetch(ctx, cycle):
            pos = ctx.fetch_idx
            fl = flags[pos]

            iline = ctx.iline[pos]
            if iline != ctx.last_iline:
                self.stats.l1i_accesses += 1
                ctx.last_iline = iline
                if not self.l1i.access(iline * self.cfg.l1_line):
                    self.stats.l1i_misses += 1
                    ctx.fetch_stalled_until = self.l2.access(
                        iline * self.cfg.l1_line, cycle)
                    self.stats.fetch_stall_cycles += \
                        ctx.fetch_stalled_until - cycle
                    obs = self.obs
                    if obs.enabled:
                        obs.emit(Event(
                            cycle, STALL,
                            f"SU{self.index}.c{ctx.ctx_idx}", ctx.ops[pos],
                            dur=ctx.fetch_stalled_until - cycle,
                            reason=StallReason.L1I_MISS))
                    return budget

            if fl & (_F_BARRIER | _F_HALT):
                vu = machine.vu
                if ctx.rob or (vu is not None
                               and not vu.partition_idle(ctx.tid, cycle)):
                    return budget
                ctx.fetch_idx += 1
                if fl & _F_BARRIER:
                    ctx.waiting_barrier = True
                    machine.barrier_arrive(ctx.tid, cycle)
                else:
                    ctx.halted = True
                    ctx.finish_time = cycle
                    machine.thread_halted(ctx.tid, cycle)
                return budget
            if fl & _F_LSYNC:
                vu = machine.vu
                if vu is not None and not vu.partition_idle(ctx.tid, cycle):
                    return budget
                ctx.fetch_idx += 1
                budget -= 1
                continue
            if fl & _F_VLTCFG:
                vu = machine.vu
                imm = cols.imm[pos]
                n = imm if imm > 0 else machine.num_threads
                if vu is None or n == len(vu.partitions):
                    ctx.fetch_idx += 1
                    budget -= 1
                    continue
                if ctx.rob or vu.busy(cycle):
                    return budget
                ctx.fetch_idx += 1
                machine.vltcfg_request(ctx.tid, n, cycle)
                ctx.fetch_stalled_until = cycle + machine.cfg.vltcfg_overhead
                return budget

            if fl & _F_VECTOR:
                vu = machine.vu
                if vu is None:
                    raise RuntimeError(
                        f"vector instruction {ctx.ops[pos].op!r} on machine "
                        f"{machine.cfg.name!r} without a vector unit")
                if not vu.can_accept(ctx.tid, cycle):
                    self.stats.dispatch_stall_viq += 1
                    return budget
                scalar_ready, pending = self._dispatch_vector(ctx, pos, cycle)
                vu.dispatch(ctx.tid, ctx, pos, cycle, scalar_ready, pending)
                ctx.fetch_idx += 1
                budget -= 1
                self.stats.fetched += 1
                continue

            self._dispatch(ctx, pos, cycle)
            ctx.fetch_idx += 1
            budget -= 1
            self.stats.fetched += 1

            if fl & _F_COND_BRANCH:
                self.stats.branch_lookups += 1
                pc = cols.pc[pos]
                correct = self.bpred.predict_and_update(
                    pc, cols.taken[pos] == 1)
                if ctx is machine._anchor_ctx and cols.anchor[pos]:
                    machine._anchor_pc = pc
                if not correct:
                    self.stats.branch_mispredicts += 1
                    ctx.misp.add(pos)
                    ctx.blocked_on_branch = pos
                    return budget
        return budget

    def _dispatch(self, ctx: _Ctx, pos: int, cycle: int) -> None:
        self._seq += 1
        seq = self._seq
        lw = ctx.last_writer
        unmet = 0
        ready = cycle + 1
        subs = ctx.subs
        for uid in ctx.cols.reads[pos]:
            w = lw[uid]
            if w >= 0:
                if w > ready:
                    ready = w
            else:
                p = -w - 1
                s = subs[p]
                if s is None:
                    subs[p] = [pos]
                else:
                    s.append(pos)
                unmet += 1
        ctx.ready[pos] = ready
        ctx.unmet[pos] = unmet
        ctx.vunmet[pos] = 0
        ctx.done[pos] = None
        ctx.seqno[pos] = seq
        subs[pos] = None
        key = -(pos + 1)
        for uid in ctx.cols.writes[pos]:
            lw[uid] = key
        if unmet == 0:
            heapq.heappush(self._ready_heap, (ready, seq, ctx, pos))
        ctx.rob.append(pos)
        self.rob_occupancy += 1

    def _dispatch_vector(self, ctx: _Ctx, pos: int,
                         cycle: int) -> Tuple[int, list]:
        self._seq += 1
        lw = ctx.last_writer
        scalar_ready = cycle + 1
        pending: List[int] = []
        for uid in ctx.cols.reads[pos]:
            if uid >= V_BASE and uid != VL_UID:
                continue
            w = lw[uid]
            if w >= 0:
                if w > scalar_ready:
                    scalar_ready = w
            else:
                pending.append(-w - 1)
        writes_scalar = False
        key = -(pos + 1)
        for uid in ctx.cols.writes[pos]:
            if uid < V_BASE or uid == VL_UID:
                lw[uid] = key
                writes_scalar = True
        ctx.ready[pos] = cycle + 1
        ctx.unmet[pos] = 0
        ctx.vunmet[pos] = 0
        ctx.seqno[pos] = self._seq
        ctx.subs[pos] = None
        ctx.vsubs[pos] = None
        ctx.done[pos] = None if writes_scalar else cycle + 1
        ctx.rob.append(pos)
        self.rob_occupancy += 1
        return scalar_ready, pending

    # -- idle detection ------------------------------------------------------

    def _fetch_wait_bound(self, ctx: _Ctx, cycle: int) -> Optional[int]:
        """If fetching this context now is provably a pure no-op until a
        known future cycle, return that cycle; else None.

        Only barrier/halt/lsync heads waiting on vector drain qualify --
        their fetch attempt touches nothing (the I-line is already
        current) and the drain completion time is known exactly."""
        pos = ctx.fetch_idx
        fl = ctx.cols.flags[pos]
        if not fl & _F_WAIT:
            return None
        if ctx.iline[pos] != ctx.last_iline:
            return None
        vu = self.machine.vu
        if vu is None:
            return None
        if not fl & _F_LSYNC and ctx.rob:
            return None
        if vu.partition_idle(ctx.tid, cycle):
            return None
        return vu.drain_bound(ctx.tid, cycle)

    def next_event(self, cycle: int) -> int:
        best = None
        if self._issueq_arith or self._issueq_mem:
            return cycle + 1
        nxt = cycle + 1
        for ctx in self.contexts:
            if ctx.halted or ctx.waiting_barrier:
                continue
            if self._can_fetch(ctx, cycle):
                t = self._fetch_wait_bound(ctx, cycle)
                if t is None:
                    return nxt
                if best is None or t < best:
                    best = t
            if ctx.rob:
                d = ctx.done[ctx.rob[0]]
                if d is not None:
                    t = d if d > nxt else nxt
                    if best is None or t < best:
                        best = t
            if ctx.fetch_stalled_until > cycle \
                    and ctx.blocked_on_branch is None:
                t = ctx.fetch_stalled_until
                if best is None or t < best:
                    best = t
        if self._ready_heap:
            t = self._ready_heap[0][0]
            if t < nxt:
                t = nxt
            if best is None or t < best:
                best = t
        return best if best is not None else _FAR_FUTURE

    def fast_forward(self, cycle: int, target: int) -> None:
        """Replay the RR rotation of the event machine's spin cycles.

        While the VU is busy the event machine steps every cycle, and
        each step rotates the fetch/commit round-robin pointers even
        when nothing else happens.  A window skip over those cycles must
        apply the same rotation to stay arbitration-identical.
        """
        nctx = len(self.contexts)
        if nctx:
            steps = target - cycle - 1
            self._fetch_rr = (self._fetch_rr + steps) % nctx
            self._commit_rr = (self._commit_rr + steps) % nctx

    @property
    def all_done(self) -> bool:
        return all(ctx.halted and not ctx.rob for ctx in self.contexts)


# -- vector unit -------------------------------------------------------------

class _VFU:
    """One partition-slice of a vector functional unit (as in vcl)."""

    __slots__ = ("busy_until", "start", "occ", "vl")

    def __init__(self) -> None:
        self.busy_until = 0
        self.start = 0
        self.occ = 0
        self.vl = 0


class _ColPartition:
    """Positional port of the VCL :class:`~repro.timing.vcl.Partition`."""

    __slots__ = ("idx", "k", "viq_capacity", "reserved", "arrivals", "viq",
                 "lw_chain", "lw_full", "lw_prod", "fus", "ports",
                 "last_completion", "rename_budget", "rename_pending",
                 "util")

    def __init__(self, idx: int, k: int, viq_capacity: int,
                 arith_fus: int, mem_ports: int, rename_budget: int = 32):
        self.idx = idx
        self.k = k
        self.viq_capacity = viq_capacity
        self.reserved = 0
        self.arrivals: list = []        # heap of (arrive_time, seq, ctx, pos)
        self.viq: List[Tuple[_Ctx, int]] = []
        # vector-side last writer, split into (chain, full) timestamps
        # plus an in-flight producer slot ((ctx, pos) or None)
        self.lw_chain = [0] * _NUM_VSIDE
        self.lw_full = [0] * _NUM_VSIDE
        self.lw_prod: List[Optional[Tuple[_Ctx, int]]] = [None] * _NUM_VSIDE
        self.fus = [_VFU() for _ in range(arith_fus)]
        self.ports = [_VFU() for _ in range(mem_ports)]
        self.last_completion = 0
        self.rename_budget = rename_budget
        self.rename_pending: list = []   # heap of completion times
        self.util = DatapathUtilization()

    def rename_in_use(self, cycle: int) -> int:
        pend = self.rename_pending
        while pend and pend[0] <= cycle:
            heapq.heappop(pend)
        queued = sum(1 for (c, p) in self.viq
                     if c.cols.flags[p] & _F_WRITES_VREG)
        arriving = sum(1 for (_, _, c, p) in self.arrivals
                       if c.cols.flags[p] & _F_WRITES_VREG)
        return len(pend) + queued + arriving

    @property
    def pending(self) -> bool:
        return bool(self.arrivals or self.viq)

    def in_flight(self, cycle: int) -> bool:
        if self.arrivals or self.viq:
            return True
        return any(f.busy_until > cycle for f in self.fus) or \
            any(p.busy_until > cycle for p in self.ports)

    def drain_end(self) -> int:
        """Latest busy/completion time of this partition's datapath."""
        end = self.last_completion
        for u in self.fus:
            if u.busy_until > end:
                end = u.busy_until
        for u in self.ports:
            if u.busy_until > end:
                end = u.busy_until
        return end


class _ColVectorUnit:
    """Positional port of :class:`~repro.timing.vcl.VectorUnit`, with the
    window-batched ``next_action`` / ``fast_forward`` extension."""

    def __init__(self, cfg: VectorUnitConfig, l2: BankedL2,
                 lane_split: List[int], bus: EventBus, invalidate=None):
        self.cfg = cfg
        self.l2 = l2
        self.obs = bus
        self._invalidate = invalidate
        self.stats = VectorUnitStats()
        self._folded_util = DatapathUtilization()
        self.partitions: List[_ColPartition] = []
        self._build_partitions(lane_split)
        self._seq = 0
        self._rr = 0
        self.last_completion = 0

    @property
    def util(self) -> DatapathUtilization:
        u = self._folded_util
        if self.cfg.vu_smt:
            return u.merged(self.partitions[0].util) if self.partitions \
                else u
        for part in self.partitions:
            u = u.merged(part.util)
        return u

    def _build_partitions(self, lane_split: List[int]) -> None:
        cfg = self.cfg
        nparts = len(lane_split)
        cap = max(2, cfg.viq_entries // nparts)
        rename = max(1, cfg.phys_vregs - 32)
        if cfg.vu_smt:
            self.partitions = [
                _ColPartition(i, cfg.lanes, cap, cfg.arith_fus,
                              cfg.mem_ports, rename_budget=rename)
                for i in range(nparts)]
            shared_fus = self.partitions[0].fus
            shared_ports = self.partitions[0].ports
            for p in self.partitions[1:]:
                p.fus = shared_fus
                p.ports = shared_ports
            return
        self.partitions = [
            _ColPartition(i, k, cap, cfg.arith_fus, cfg.mem_ports,
                          rename_budget=rename)
            for i, k in enumerate(lane_split)]

    def repartition(self, num_parts: int, cycle: int) -> None:
        if num_parts == len(self.partitions):
            return
        lanes = self.cfg.lanes
        if num_parts < 1 or lanes % num_parts:
            raise ValueError(
                f"cannot split {lanes} lanes across {num_parts} threads")
        if self.busy(cycle):
            raise RuntimeError(
                "vltcfg while vector work is in flight: reconfiguration "
                "is only legal at quiesced region boundaries (Sec. 3.3)")
        if self.cfg.vu_smt:
            if self.partitions:
                self._folded_util = \
                    self._folded_util.merged(self.partitions[0].util)
        else:
            for part in self.partitions:
                self._folded_util = self._folded_util.merged(part.util)
        self._build_partitions([lanes // num_parts] * num_parts)
        self._rr = 0

    # -- SU-side interface ---------------------------------------------------

    def can_accept(self, tid: int, cycle: int) -> bool:
        if tid >= len(self.partitions):
            raise RuntimeError(
                f"thread {tid} issued a vector instruction but the lanes "
                f"are partitioned for {len(self.partitions)} threads "
                f"(vltcfg mismatch -- see paper Section 3.3)")
        part = self.partitions[tid]
        if part.reserved >= part.viq_capacity:
            self.stats.viq_full_events += 1
            obs = self.obs
            if obs.enabled:
                obs.emit(Event(cycle, STALL, f"VU.p{part.idx}", dur=1,
                               reason=StallReason.VIQ_FULL))
            return False
        if part.rename_in_use(cycle) >= part.rename_budget:
            self.stats.viq_full_events += 1
            obs = self.obs
            if obs.enabled:
                obs.emit(Event(cycle, STALL, f"VU.p{part.idx}", dur=1,
                               reason=StallReason.VRENAME_FULL))
            return False
        return True

    def partition_idle(self, tid: int, cycle: int) -> bool:
        if tid >= len(self.partitions):
            return True
        part = self.partitions[tid]
        return not part.in_flight(cycle) and part.last_completion <= cycle

    def dispatch(self, tid: int, ctx: _Ctx, pos: int, cycle: int,
                 scalar_ready: int, pending: List[int]) -> None:
        part = self.partitions[tid]
        transfer = self.cfg.su_transfer
        self._seq += 1
        arrival = cycle + transfer
        ctx.ready[pos] = max(arrival, scalar_ready + transfer)
        ctx.unmet[pos] = len(pending)
        subs = ctx.subs
        for p in pending:
            s = subs[p]
            if s is None:
                subs[p] = [pos]
            else:
                s.append(pos)
        part.reserved += 1
        heapq.heappush(part.arrivals, (arrival, self._seq, ctx, pos))

    # -- per-cycle step ------------------------------------------------------

    def step(self, cycle: int) -> None:
        for part in self.partitions:
            self._admit(part, cycle)
        self._issue(cycle)
        self._account(cycle)

    def _admit(self, part: _ColPartition, cycle: int) -> None:
        arr = part.arrivals
        while arr and arr[0][0] <= cycle:
            _, _, ctx, pos = heapq.heappop(arr)
            ready = ctx.ready
            for uid in ctx.cols.reads[pos]:
                if uid < V_BASE or uid == VL_UID:
                    continue
                i = uid - V_BASE
                prod = part.lw_prod[i]
                if prod is None:
                    t = part.lw_chain[i]
                    if t > ready[pos]:
                        ready[pos] = t
                else:
                    pctx, pp = prod
                    vs = pctx.vsubs[pp]
                    if vs is None:
                        pctx.vsubs[pp] = [(ctx, pos)]
                    else:
                        vs.append((ctx, pos))
                    ctx.vunmet[pos] += 1
            for uid in ctx.cols.writes[pos]:
                if uid >= V_BASE and uid != VL_UID:
                    part.lw_prod[uid - V_BASE] = (ctx, pos)
            part.viq.append((ctx, pos))

    def _issue(self, cycle: int) -> None:
        nparts = len(self.partitions)
        if self.cfg.replicated_vcl:
            for part in self.partitions:
                self._issue_partition(part, cycle, self.cfg.issue_width)
            return
        budget = self.cfg.issue_width
        start = self._rr
        self._rr = (start + 1) % nparts
        for k in range(nparts):
            if budget == 0:
                return
            part = self.partitions[(start + k) % nparts]
            budget = self._issue_partition(part, cycle, budget)

    def _issue_partition(self, part: _ColPartition, cycle: int,
                         budget: int) -> int:
        viq = part.viq
        i = 0
        while i < len(viq) and budget:
            ctx, pos = viq[i]
            if (ctx.unmet[pos] or ctx.vunmet[pos]
                    or ctx.ready[pos] > cycle):
                i += 1
                continue
            is_mem = ctx.cols.pool[pos] == _P_VMEM
            units = part.ports if is_mem else part.fus
            fu_idx = None
            for j, u in enumerate(units):
                if u.busy_until <= cycle:
                    fu_idx = j
                    break
            if fu_idx is None:
                i += 1
                continue
            viq.pop(i)
            part.reserved -= 1
            self._execute(part, ctx, pos, is_mem, fu_idx, cycle)
            budget -= 1
        return budget

    def _execute(self, part: _ColPartition, ctx: _Ctx, pos: int,
                 is_mem: bool, fu_idx: int, cycle: int) -> None:
        cols = ctx.cols
        fl = cols.flags[pos]
        fu = (part.ports if is_mem else part.fus)[fu_idx]
        k = part.k
        vl = cols.vl[pos]
        occ = max(1, -(-vl // k))
        self.stats.issued += 1
        self.stats.element_ops += vl
        obs = self.obs
        if obs.enabled:
            label = f"port{fu_idx}" if is_mem else f"fu{fu_idx}"
            obs.emit(Event(cycle, VISSUE, f"VU.p{part.idx}", ctx.ops[pos],
                           dur=occ, arg=label))

        fu.busy_until = cycle + occ
        fu.start = cycle
        fu.occ = occ
        fu.vl = vl

        if is_mem:
            ao = cols.a_off
            addrs = cols.a_flat[ao[pos]:ao[pos + 1]]
            n = int(addrs.size)
            completion = self.l2.vector_access(
                addrs, cycle + 1, addrs_per_cycle=k,
                unit_stride=not fl & _F_STRIDED)
            if fl & _F_STORE and n and self._invalidate is not None:
                self._invalidate(addrs)
            self.stats.mem_instrs += 1
            self.stats.mem_elements += n
            chain = full = completion
        else:
            completion = cycle + occ + cols.lat[pos]
            chain = cycle + self.cfg.chain_delay
            full = completion

        if full > self.last_completion:
            self.last_completion = full
        if full > part.last_completion:
            part.last_completion = full
        if fl & _F_WRITES_VREG:
            heapq.heappush(part.rename_pending, full)
        me = (ctx, pos)
        for uid in cols.writes[pos]:
            if uid >= V_BASE and uid != VL_UID:
                i = uid - V_BASE
                if part.lw_prod[i] == me:
                    part.lw_prod[i] = None
                    part.lw_chain[i] = chain
                    part.lw_full[i] = full
        vs = ctx.vsubs[pos]
        if vs:
            ctx.vsubs[pos] = None
            for cctx, cp in vs:
                if chain > cctx.ready[cp]:
                    cctx.ready[cp] = chain
                cctx.vunmet[cp] -= 1
        if fl & _F_WRITES_SCALAR:
            # scalar results travel back to the SU (VEntry.sentry callback)
            t = full + self.cfg.su_transfer
            ctx.done[pos] = t
            ctx.su.announce(ctx, pos, t)

    # -- utilization accounting ----------------------------------------------

    def _account(self, cycle: int) -> None:
        if self.cfg.vu_smt:
            part = self.partitions[0]
            util = part.util
            pending = any(p.pending for p in self.partitions)
            k = part.k
            for fu in part.fus:
                if fu.busy_until > cycle:
                    i = cycle - fu.start
                    active = k if i < fu.occ - 1 else \
                        max(0, min(k, fu.vl - k * (fu.occ - 1)))
                    util.busy += active
                    util.partly_idle += k - active
                elif pending:
                    util.stalled += k
            return
        for part in self.partitions:
            util = part.util
            k = part.k
            pending = part.pending
            for fu in part.fus:
                if fu.busy_until > cycle:
                    i = cycle - fu.start
                    if i < fu.occ - 1:
                        active = k
                    else:
                        active = fu.vl - k * (fu.occ - 1)
                        if active < 0:
                            active = 0
                        elif active > k:
                            active = k
                    util.busy += active
                    util.partly_idle += k - active
                elif pending:
                    util.stalled += k

    def partition_utils(self, cycles: int):
        fus = self.cfg.arith_fus
        if self.cfg.vu_smt:
            parts = self.partitions[:1]
        else:
            parts = self.partitions
        utils: List[DatapathUtilization] = []
        lanes: List[int] = []
        for part in parts:
            u = part.util
            total = fus * part.k * cycles
            utils.append(DatapathUtilization(
                busy=u.busy, partly_idle=u.partly_idle, stalled=u.stalled,
                all_idle=max(0, total - u.busy - u.partly_idle - u.stalled)))
            lanes.append(part.k)
        return utils, lanes

    # -- idle detection / window batching ------------------------------------

    def busy(self, cycle: int) -> bool:
        if self.last_completion > cycle:
            return True
        return any(p.in_flight(cycle) for p in self.partitions)

    def drain_bound(self, tid: int, cycle: int) -> Optional[int]:
        """First cycle at which ``partition_idle(tid)`` becomes true, or
        None when instructions are still queued (drain time unknown)."""
        if tid >= len(self.partitions):
            return None
        part = self.partitions[tid]
        if part.arrivals or part.viq:
            return None
        end = part.drain_end()
        nxt = cycle + 1
        return end if end > nxt else nxt

    def next_action(self, cycle: int) -> int:
        """Earliest future cycle at which stepping the (busy) vector unit
        can do anything beyond per-cycle accounting.  Conservative: any
        ready-but-blocked instruction pins the result to ``cycle + 1``."""
        nxt = cycle + 1
        best = None
        queued = False
        for part in self.partitions:
            arr = part.arrivals
            if arr:
                queued = True
                t = arr[0][0]
                if t <= nxt:
                    return nxt
                if best is None or t < best:
                    best = t
            if part.viq:
                queued = True
                for ctx, pos in part.viq:
                    if ctx.unmet[pos] or ctx.vunmet[pos]:
                        continue
                    t = ctx.ready[pos]
                    if t <= nxt:
                        return nxt
                    if best is None or t < best:
                        best = t
        if not queued:
            end = self.last_completion
            for part in self.partitions:
                t = part.drain_end()
                if t > end:
                    end = t
            t = end if end > nxt else nxt
            if best is None or t < best:
                best = t
        return best if best is not None else nxt

    def fast_forward(self, cycle: int, target: int) -> None:
        """Replay the per-cycle effects of stepping through the no-op
        window ``[cycle + 1, target)`` in closed form: the round-robin
        pointer advance and the datapath accounting."""
        t0 = cycle + 1
        if target <= t0:
            return
        if not self.cfg.replicated_vcl and self.partitions:
            self._rr = (self._rr + (target - t0)) % len(self.partitions)
        self._account_window(t0, target)

    def _account_window(self, t0: int, t1: int) -> None:
        span = t1 - t0
        if self.cfg.vu_smt:
            parts = self.partitions[:1]
            pending_smt = any(p.pending for p in self.partitions)
        else:
            parts = self.partitions
            pending_smt = False
        for part in parts:
            util = part.util
            k = part.k
            pending = pending_smt if self.cfg.vu_smt else part.pending
            for fu in part.fus:
                bu = fu.busy_until
                bcnt = (bu if bu < t1 else t1) - t0
                if bcnt > 0:
                    last = bu - 1
                    if t0 <= last < t1:
                        # the final occupied cycle covers the VL remainder
                        active = fu.vl - k * (fu.occ - 1)
                        if active < 0:
                            active = 0
                        elif active > k:
                            active = k
                        util.busy += k * (bcnt - 1) + active
                        util.partly_idle += k - active
                    else:
                        util.busy += k * bcnt
                    if pending and bcnt < span:
                        util.stalled += k * (span - bcnt)
                elif pending:
                    util.stalled += k * span


# -- steady-state memoisation ------------------------------------------------

#: consecutive fingerprint mismatches at one anchor before blacklisting it
_SS_MAX_FAILS = 4
#: concurrently armed anchors (recorder overhead is per attached dict)
_SS_MAX_ARMED = 2


class _Armed:
    """Snapshot taken when an anchor pc shows a stable cadence."""

    __slots__ = ("cycle", "fetch", "period", "delta", "fp", "fetch_base",
                 "seq_base", "vseq", "stat_base", "util_objs", "util_base",
                 "folded_obj", "folded_base", "bc", "rel_len", "recs")


class ColumnarMachine:
    """Array-replay timing machine, bit-identical to :class:`Machine`.

    ``columns`` supplies the per-thread ``ThreadTrace.columns()`` views
    (derived from ``traces`` when omitted); ``steady_skip=False``
    disables the period memoisation (the window batching remains), which
    the equivalence tests use to pin skip-vs-noskip identity.
    """

    def __init__(self, cfg: MachineConfig, traces: List[List[DynOp]],
                 max_cycles: int = 50_000_000, hook=None,
                 obs: Optional[EventBus] = None, columns=None,
                 steady_skip: bool = True):
        from .machine import _LegacyHookSink
        self.cfg = cfg
        self.num_threads = len(traces)
        self.max_cycles = max_cycles
        self.obs = obs if obs is not None else EventBus()
        self.hook = hook
        if hook is not None:
            self.obs.attach(_LegacyHookSink(hook))
        if columns is None:
            from ..functional.trace import ThreadTrace
            columns = []
            for tid, ops in enumerate(traces):
                tt = ThreadTrace(tid)
                tt.ops = list(ops)
                columns.append(tt.columns())
        self._cols = [_derive(c) for c in columns]
        self.l2 = BankedL2(cfg.l2, bus=self.obs)
        # swap the L2 tag array for the recordable variant up front, so
        # the code pre-touch below lands in the recorded object
        l2c = cfg.l2
        self.l2.tags = _RecCache(l2c.size_kib * 1024, l2c.assoc, l2c.line,
                                 name="L2", bus=self.obs)
        self.sus: List[_ColScalarUnit] = [
            _ColScalarUnit(self, i, su_cfg, self.l2)
            for i, su_cfg in enumerate(cfg.scalar_units)]
        self.lane_cores: List[LaneCore] = []
        self.vu: Optional[_ColVectorUnit] = None
        self._threads: Dict[int, Tuple] = {}
        self._finish: List[Optional[int]] = [None] * self.num_threads
        self._halted_count = 0
        self._barrier_arrived = 0
        self._barrier_latest = 0
        self.barrier_count = 0
        self.barrier_release_cycles: List[int] = []

        # pre-touch code lines in the L2 (as the event machine does)
        max_pc = max((int(c.pcs.max()) if c.n else 0)
                     for c in self._cols) if self._cols else 0
        line = cfg.l2.line
        self.obs.suppress()
        try:
            for addr in range(CODE_BASE,
                              CODE_BASE + (max_pc + 1) * INSTR_BYTES + line,
                              line):
                self.l2.tags.access(addr)
        finally:
            self.obs.unsuppress()

        if cfg.lane_scalar_mode:
            self.lane_cores = [
                LaneCore(self, i, cfg.lane_core, self.l2)
                for i in range(cfg.vu.lanes)]
            for tid, (lane, _) in enumerate(cfg.placement(self.num_threads)):
                core = self.lane_cores[lane]
                core.add_thread(tid, traces[tid])
                self._threads[tid] = ("lane", core, None)
        else:
            if cfg.vu is not None:
                self.vu = _ColVectorUnit(
                    cfg.vu, self.l2, cfg.lane_partitions(self.num_threads),
                    bus=self.obs,
                    invalidate=lambda addrs: self.l1d_invalidate_lines(
                        addrs, line))
            for tid, (u, _ctx) in enumerate(cfg.placement(self.num_threads)):
                ctx = self.sus[u].add_thread(tid, traces[tid],
                                             self._cols[tid])
                self._threads[tid] = ("su", self.sus[u], ctx)

        # steady-state machinery
        self._ss_enabled = steady_skip
        self._anchor_ctx: Optional[_Ctx] = None
        self._anchor_pc = -1
        self._ss_hist: Dict[int, Tuple[int, int]] = {}
        self._ss_armed: Dict[int, _Armed] = {}
        self._ss_fail: Dict[int, int] = {}
        self._ss_dead: set = set()
        self._cells = None
        self._recorders: List = [self.l2.tags]
        for su in self.sus:
            self._recorders += [su.l1i, su.l1d, su.bpred]

    # -- barrier / completion callbacks (as in Machine) ----------------------

    def barrier_arrive(self, tid: int, time: int) -> None:
        self._barrier_arrived += 1
        obs = self.obs
        if obs.enabled:
            obs.emit(Event(time, BARRIER_ARRIVE, f"t{tid}",
                           arg=self.barrier_count))
        if time > self._barrier_latest:
            self._barrier_latest = time
        if self._barrier_arrived == self.num_threads:
            release = self._barrier_latest + self.cfg.barrier_overhead
            self._barrier_arrived = 0
            self._barrier_latest = 0
            self.barrier_count += 1
            self.barrier_release_cycles.append(release)
            if obs.enabled:
                obs.emit(Event(time, BARRIER_RELEASE, f"t{tid}",
                               dur=max(0, release - time),
                               arg=self.barrier_count - 1))
            for kind, unit, ctx in self._threads.values():
                if kind == "su":
                    if ctx.waiting_barrier:
                        ctx.waiting_barrier = False
                        if release > ctx.fetch_stalled_until:
                            ctx.fetch_stalled_until = release
                else:
                    if unit.waiting_barrier:
                        unit.resume(release)

    def thread_halted(self, tid: int, time: int) -> None:
        if self._finish[tid] is None:
            self._finish[tid] = time
            self._halted_count += 1

    def l1d_invalidate(self, addr: int, except_su=None) -> None:
        for su in self.sus:
            if su is not except_su:
                su.l1d.invalidate(addr)

    def l1d_invalidate_lines(self, addrs, line: int) -> None:
        if not self.sus:
            return
        seen = set()
        for a in addrs:
            ln = int(a) // line
            if ln not in seen:
                seen.add(ln)
                for su in self.sus:
                    su.l1d.invalidate(ln * line)

    def vltcfg_request(self, tid: int, n: int, cycle: int) -> None:
        if self.vu is None:
            return
        if n == 0:
            n = self.num_threads
        self.vu.repartition(n, cycle)
        obs = self.obs
        if obs.enabled:
            obs.emit(Event(cycle, VLCFG, f"t{tid}", arg=n))

    # -- main loop -----------------------------------------------------------

    def run(self) -> RunResult:
        return self._result(self.run_loop())

    def run_loop(self) -> int:
        from .machine import SimulationError
        cycle = 0
        sus = self.sus
        vu = self.vu
        cores = self.lane_cores
        obs = self.obs
        obs_on = obs.enabled
        ss_on = (self._ss_enabled and not obs_on and not cores
                 and bool(sus) and bool(sus[0].contexts))
        self._anchor_ctx = sus[0].contexts[0] if ss_on else None
        self._anchor_pc = -1
        while True:
            if obs_on:
                obs.now = cycle
            vu_busy = vu is not None and vu.busy(cycle)
            for su in sus:
                su.step(cycle)
            if vu_busy:
                vu.step(cycle)
                vu_busy = vu.busy(cycle)
            elif vu is not None:
                vu_busy = vu.busy(cycle)
            for core in cores:
                core.step(cycle)

            if self._halted_count == self.num_threads:
                drained = all(su.all_done or not su.contexts for su in sus)
                if drained and not vu_busy:
                    break

            if ss_on and self._anchor_pc >= 0:
                pc = self._anchor_pc
                self._anchor_pc = -1
                if pc not in self._ss_dead:
                    jumped = self._ss_anchor(pc, cycle)
                    if jumped is not None:
                        # state is post-step at the landing cycle; fall
                        # through to the next-event computation directly
                        cycle = jumped
                        vu_busy = vu is not None and vu.busy(cycle)

            nxt = cycle + 1
            best = _FAR_FUTURE
            for su in sus:
                t = su.next_event(cycle)
                if t < best:
                    best = t
            if vu_busy:
                t = vu.next_action(cycle)
                if t < best:
                    best = t
                if best >= _FAR_FUTURE:
                    best = nxt
            for core in cores:
                t = core.next_event(cycle)
                if t < best:
                    best = t
            if best > nxt and best < _FAR_FUTURE:
                if vu_busy:
                    # the event machine steps every cycle while the VU
                    # is busy: batch those steps' side effects
                    vu.fast_forward(cycle, best)
                    for su in sus:
                        su.fast_forward(cycle, best)
                cycle = best
            elif best >= _FAR_FUTURE and self._halted_count < self.num_threads:
                raise SimulationError(
                    f"{self.cfg.name}: no unit can make progress at cycle "
                    f"{cycle} with {self.num_threads - self._halted_count} "
                    f"threads unfinished (model deadlock)")
            else:
                cycle = nxt
            if cycle > self.max_cycles:
                raise SimulationError(
                    f"{self.cfg.name}: exceeded {self.max_cycles} cycles")

        return cycle

    # -- steady-state detection ----------------------------------------------

    def _ss_anchor(self, pc: int, cycle: int) -> Optional[int]:
        """An anchor branch at ``pc`` was dispatched this cycle: try to
        jump over repeated periods, else (re-)arm the detector."""
        ctx = self._anchor_ctx
        f = ctx.fetch_idx
        hist = self._ss_hist
        prev = hist.get(pc)
        hist[pc] = (cycle, f)
        armed = self._ss_armed.pop(pc, None)
        if armed is not None:
            for r, d in armed.recs:
                # by identity: two recorders' dicts may compare equal
                r._recs = [x for x in r._recs if x is not d]
            if (cycle - armed.cycle == armed.period
                    and f - armed.fetch == armed.delta):
                jumped = self._ss_try_jump(armed, cycle)
                if jumped is not None and jumped >= 0:
                    self._ss_fail[pc] = 0
                    return jumped
                if jumped == -1:     # state matched, trace ran out of room
                    self._ss_fail[pc] = 0
                else:
                    fails = self._ss_fail.get(pc, 0) + 1
                    self._ss_fail[pc] = fails
                    if fails >= _SS_MAX_FAILS:
                        self._ss_dead.add(pc)
                        return None
            # cadence mismatch is not a strike: the loop may be settling
        if prev is not None and len(self._ss_armed) < _SS_MAX_ARMED:
            period = cycle - prev[0]
            delta = f - prev[1]
            if period > 0 and delta > 0:
                self._ss_arm(pc, cycle, f, period, delta)
        return None

    def _ss_cells(self) -> list:
        """Every statistics counter that accrues during the replay loop,
        as (object, attribute) cells for per-period delta scaling."""
        cells = []
        for su in self.sus:
            s = su.stats
            for attr in ("fetched", "issued", "committed",
                         "branch_lookups", "branch_mispredicts",
                         "l1i_accesses", "l1i_misses", "l1d_accesses",
                         "l1d_misses", "fetch_stall_cycles",
                         "dispatch_stall_viq"):
                cells.append((s, attr))
            cells.append((su.bpred, "lookups"))
            cells.append((su.bpred, "mispredicts"))
            for c in (su.l1i, su.l1d):
                cells.append((c.stats, "accesses"))
                cells.append((c.stats, "misses"))
        cells.append((self.l2.tags.stats, "accesses"))
        cells.append((self.l2.tags.stats, "misses"))
        ls = self.l2.stats
        for attr in ("scalar_accesses", "vector_elements",
                     "vector_line_txns", "bank_conflict_cycles"):
            cells.append((ls, attr))
        if self.vu is not None:
            vs = self.vu.stats
            for attr in ("issued", "element_ops", "mem_instrs",
                         "mem_elements", "viq_full_events"):
                cells.append((vs, attr))
        return cells

    def _ss_arm(self, pc: int, cycle: int, f: int, period: int,
                delta: int) -> None:
        fp, _ = self._ss_fingerprint(cycle)
        if self._cells is None:
            self._cells = self._ss_cells()
        a = _Armed()
        a.cycle = cycle
        a.fetch = f
        a.period = period
        a.delta = delta
        a.fp = fp
        a.fetch_base = {c: c.fetch_idx
                        for su in self.sus for c in su.contexts}
        a.seq_base = {su: su._seq for su in self.sus}
        vu = self.vu
        a.vseq = vu._seq if vu is not None else 0
        a.stat_base = [getattr(o, at) for o, at in self._cells]
        if vu is not None:
            a.util_objs = [p.util for p in vu.partitions]
            a.util_base = [(u.busy, u.partly_idle, u.stalled)
                           for u in a.util_objs]
            a.folded_obj = vu._folded_util
            a.folded_base = (a.folded_obj.busy, a.folded_obj.partly_idle,
                             a.folded_obj.stalled)
        else:
            a.util_objs = []
            a.util_base = []
            a.folded_obj = None
            a.folded_base = None
        a.bc = self.barrier_count
        a.rel_len = len(self.barrier_release_cycles)
        a.recs = []
        for r in self._recorders:
            d: dict = {}
            r._recs.append(d)
            a.recs.append((r, d))
        self._ss_armed[pc] = a

    def _ss_fingerprint(self, C: int):
        """Normalised full-machine state: times relative to ``C`` (stale
        past values collapse to 0), trace positions relative to each
        context's fetch index, sequence numbers relative to each unit's
        counter.  Two cycles with equal fingerprints behave identically
        modulo those shifts.  Also collects every live (ctx, pos)."""
        live = []
        sus_fp = []
        for su in self.sus:
            sb = su._seq
            ctx_fps = []
            for ctx in su.contexts:
                f = ctx.fetch_idx
                ready = ctx.ready
                done = ctx.done
                unmet = ctx.unmet
                vunmet = ctx.vunmet
                seqno = ctx.seqno
                subs = ctx.subs
                misp = ctx.misp
                rob_fp = []
                for p in ctx.rob:
                    live.append((ctx, p))
                    d = done[p]
                    s = subs[p]
                    r = ready[p]
                    rob_fp.append((
                        p - f,
                        None if d is None else (d - C if d > C else 0),
                        unmet[p], vunmet[p],
                        r - C if r > C else 0,
                        seqno[p] - sb,
                        p in misp,
                        None if s is None else tuple(c - f for c in s)))
                lw_fp = []
                for v in ctx.last_writer:
                    if v >= 0:
                        lw_fp.append(v - C if v > C else 0)
                    else:
                        lw_fp.append((-v - 1 - f,))
                bob = ctx.blocked_on_branch
                fsu = ctx.fetch_stalled_until
                ctx_fps.append((
                    ctx.halted, ctx.waiting_barrier, ctx.last_iline,
                    fsu - C if fsu > C else 0,
                    None if bob is None else bob - f,
                    ctx.finish_time,
                    tuple(rob_fp), tuple(lw_fp),
                    tuple(sorted(p - f for p in misp))))
            heap_fp = tuple(
                (t - C if t > C else 0, s - sb, hc.ctx_idx,
                 p - hc.fetch_idx)
                for (t, s, hc, p) in su._ready_heap)
            qa_fp = tuple((s - sb, hc.ctx_idx, p - hc.fetch_idx)
                          for (s, hc, p) in su._issueq_arith)
            qm_fp = tuple((s - sb, hc.ctx_idx, p - hc.fetch_idx)
                          for (s, hc, p) in su._issueq_mem)
            sus_fp.append((su._fetch_rr, su._commit_rr, su.rob_occupancy,
                           heap_fp, qa_fp, qm_fp, tuple(ctx_fps)))
        vu = self.vu
        vu_fp = None
        if vu is not None:
            vb = vu._seq
            parts_fp = []
            for part in vu.partitions:
                arr_fp = []
                for (t, s, actx, p) in part.arrivals:
                    live.append((actx, p))
                    arr_fp.append((t - C if t > C else 0, s - vb,
                                   actx.ctx_idx, p - actx.fetch_idx))
                viq_fp = []
                for (vctx, p) in part.viq:
                    live.append((vctx, p))
                    vs = vctx.vsubs[p]
                    r = vctx.ready[p]
                    viq_fp.append((
                        vctx.ctx_idx, p - vctx.fetch_idx,
                        vctx.unmet[p], vctx.vunmet[p],
                        r - C if r > C else 0,
                        None if vs is None else tuple(
                            (cc.ctx_idx, cp - cc.fetch_idx)
                            for (cc, cp) in vs)))
                pend = part.rename_pending
                while pend and pend[0] <= C:
                    heapq.heappop(pend)
                prod_fp = []
                for i in range(_NUM_VSIDE):
                    pr = part.lw_prod[i]
                    if pr is None:
                        ch = part.lw_chain[i]
                        fu_ = part.lw_full[i]
                        prod_fp.append((ch - C if ch > C else 0,
                                        fu_ - C if fu_ > C else 0))
                    else:
                        pctx, pp = pr
                        prod_fp.append((pctx.ctx_idx,
                                        pp - pctx.fetch_idx, True))
                fu_fp = tuple(
                    (u.busy_until - C, u.start - C, u.occ, u.vl)
                    if u.busy_until > C else 0
                    for u in part.fus + part.ports)
                lc = part.last_completion
                parts_fp.append((
                    part.k, part.viq_capacity, part.reserved,
                    part.rename_budget, tuple(arr_fp), tuple(viq_fp),
                    tuple(prod_fp), tuple(t - C for t in pend), fu_fp,
                    lc - C if lc > C else 0))
            lc = vu.last_completion
            vu_fp = (vu._rr, len(vu.partitions),
                     lc - C if lc > C else 0, tuple(parts_fp))
        lat = self._barrier_latest
        mach_fp = (self._barrier_arrived,
                   0 if self._barrier_arrived == 0 else
                   (lat - C if lat > C else 0),
                   self._halted_count, tuple(self._finish),
                   tuple(b - C if b > C else 0 for b in self.l2.bank_free))
        return (tuple(sus_fp), vu_fp, mach_fp), live

    def _ss_try_jump(self, armed: _Armed, C: int) -> Optional[int]:
        """Return the landing cycle after jumping k periods, -1 when the
        state matches but no whole period fits, None on mismatch."""
        fp, live = self._ss_fingerprint(C)
        if fp != armed.fp:
            return None
        for r, d in armed.recs:
            if not r.rec_equal(d):
                return None
        vu = self.vu
        if vu is not None:
            if armed.folded_obj is not vu._folded_util:
                return None
            if len(armed.util_objs) != len(vu.partitions):
                return None
            for u, p in zip(armed.util_objs, vu.partitions):
                if u is not p.util:
                    return None
        P = armed.period
        deltas = {}
        for su in self.sus:
            for ctx in su.contexts:
                d = ctx.fetch_idx - armed.fetch_base.get(ctx, -1)
                if d < 0:
                    return None
                deltas[ctx] = d
        # every in-flight op must equal its image one period back
        for (ctx, p) in live:
            q = p - deltas[ctx]
            if q < 0 or not _ops_equal(ctx.cols, p, q):
                return None
        # how many more whole periods does the trace itself repeat?
        k = None
        for ctx, d in deltas.items():
            if d == 0:
                continue        # positionally frozen across the period
            kt = _periods_ahead(ctx.cols, ctx.fetch_idx, d)
            if k is None or kt < k:
                k = kt
        if k is None:
            return None
        kmax = (self.max_cycles - C) // P
        if k > kmax:
            k = kmax
        if k <= 0:
            return -1
        self._ss_jump(armed, C, k, deltas, live)
        return C + k * P

    def _ss_jump(self, armed: _Armed, C: int, k: int, deltas: dict,
                 live: list) -> None:
        """Advance the whole machine by k periods in closed form."""
        P = armed.period
        kP = k * P
        per_ctx: Dict[_Ctx, set] = {}
        for (ctx, p) in live:
            per_ctx.setdefault(ctx, set()).add(p)
        for su in self.sus:
            kseq = k * (su._seq - armed.seq_base[su])
            su._seq += kseq
            for ctx in su.contexts:
                kd = k * deltas[ctx]
                ready = ctx.ready
                done = ctx.done
                unmet = ctx.unmet
                vunmet = ctx.vunmet
                seqno = ctx.seqno
                subs = ctx.subs
                vsubs = ctx.vsubs
                for p in sorted(per_ctx.get(ctx, ()), reverse=True):
                    q = p + kd
                    ready[q] = ready[p] + kP
                    dv = done[p]
                    done[q] = None if dv is None else dv + kP
                    unmet[q] = unmet[p]
                    vunmet[q] = vunmet[p]
                    seqno[q] = seqno[p] + kseq
                    sl = subs[p]
                    subs[q] = None if sl is None else [c + kd for c in sl]
                    vl_ = vsubs[p]
                    vsubs[q] = None if vl_ is None else \
                        [(cc, cp + kd) for (cc, cp) in vl_]
                ctx.rob = [p + kd for p in ctx.rob]
                ctx.misp = {p + kd for p in ctx.misp}
                if ctx.blocked_on_branch is not None:
                    ctx.blocked_on_branch += kd
                ctx.fetch_idx += kd
                ctx.fetch_stalled_until += kP
                lw = ctx.last_writer
                for i in range(NUM_REG_UIDS):
                    v = lw[i]
                    lw[i] = v + kP if v >= 0 else v - kd
            su._ready_heap = [
                (t + kP, s + kseq, hc, p + k * deltas[hc])
                for (t, s, hc, p) in su._ready_heap]
            su._issueq_arith = [
                (s + kseq, hc, p + k * deltas[hc])
                for (s, hc, p) in su._issueq_arith]
            su._issueq_mem = [
                (s + kseq, hc, p + k * deltas[hc])
                for (s, hc, p) in su._issueq_mem]
        vu = self.vu
        if vu is not None:
            kv = k * (vu._seq - armed.vseq)
            vu._seq += kv
            vu.last_completion += kP
            seen = set()
            for part in vu.partitions:
                part.arrivals = [
                    (t + kP, s + kv, ac, p + k * deltas[ac])
                    for (t, s, ac, p) in part.arrivals]
                part.viq = [(vc, p + k * deltas[vc])
                            for (vc, p) in part.viq]
                for i in range(_NUM_VSIDE):
                    pr = part.lw_prod[i]
                    if pr is None:
                        part.lw_chain[i] += kP
                        part.lw_full[i] += kP
                    else:
                        part.lw_prod[i] = (pr[0],
                                           pr[1] + k * deltas[pr[0]])
                part.rename_pending = [t + kP
                                       for t in part.rename_pending]
                part.last_completion += kP
                for u in part.fus:
                    if id(u) not in seen:       # smt shares FU objects
                        seen.add(id(u))
                        u.busy_until += kP
                        u.start += kP
                for u in part.ports:
                    if id(u) not in seen:
                        seen.add(id(u))
                        u.busy_until += kP
                        u.start += kP
        self.l2.bank_free = [b + kP for b in self.l2.bank_free]
        dbc = self.barrier_count - armed.bc
        if dbc:
            self.barrier_count += k * dbc
        rel = self.barrier_release_cycles
        tail = rel[armed.rel_len:]
        if tail:
            for j in range(1, k + 1):
                jp = j * P
                rel.extend(r + jp for r in tail)
        for (o, at), base in zip(self._cells, armed.stat_base):
            cur = getattr(o, at)
            if cur != base:
                setattr(o, at, cur + k * (cur - base))
        if vu is not None:
            for u, (b, pi, st) in zip(armed.util_objs, armed.util_base):
                u.busy += k * (u.busy - b)
                u.partly_idle += k * (u.partly_idle - pi)
                u.stalled += k * (u.stalled - st)
            fo = vu._folded_util
            fb = armed.folded_base
            fo.busy += k * (fo.busy - fb[0])
            fo.partly_idle += k * (fo.partly_idle - fb[1])
            fo.stalled += k * (fo.stalled - fb[2])
        kd_anchor = k * deltas[self._anchor_ctx]
        self._ss_hist = {pc: (c + kP, f + kd_anchor)
                         for pc, (c, f) in self._ss_hist.items()}

    # -- result assembly (as in Machine) -------------------------------------

    def _result(self, cycles: int) -> RunResult:
        util = DatapathUtilization()
        vu_stats = None
        part_utils: List[DatapathUtilization] = []
        part_lanes: List[int] = []
        if self.vu is not None:
            vu_stats = self.vu.stats
            u = self.vu.util
            total = self.cfg.vu.arith_fus * self.cfg.vu.lanes * cycles
            util = DatapathUtilization(
                busy=u.busy, partly_idle=u.partly_idle, stalled=u.stalled,
                all_idle=max(0, total - u.busy - u.partly_idle - u.stalled))
            part_utils, part_lanes = self.vu.partition_utils(cycles)
        su_stats = []
        for su in self.sus:
            s = su.stats
            s.branch_lookups = su.bpred.lookups
            s.branch_mispredicts = su.bpred.mispredicts
            s.l1i_accesses = su.l1i.stats.accesses
            s.l1i_misses = su.l1i.stats.misses
            s.l1d_accesses = su.l1d.stats.accesses
            s.l1d_misses = su.l1d.stats.misses
            su_stats.append(s)
        return RunResult(
            config_name=self.cfg.name,
            program_name="",
            num_threads=self.num_threads,
            cycles=cycles,
            utilization=util,
            scalar_units=su_stats,
            vector_unit=vu_stats,
            lane_cores=[c.stats for c in self.lane_cores],
            thread_finish=[f if f is not None else cycles
                           for f in self._finish],
            barrier_count=self.barrier_count,
            l2_bank_conflict_cycles=self.l2.stats.bank_conflict_cycles,
            phase_release_cycles=list(self.barrier_release_cycles),
            partition_utilization=part_utils,
            partition_lanes=part_lanes,
        )


