"""Machine configurations (paper Table 3 plus the VLT design space).

The base machine mirrors Table 3 of the paper:

* Scalar unit: 4-way out-of-order superscalar, 64-entry window/ROB,
  4 arithmetic units, 2 memory ports, 16 KB 2-way L1 I/D caches.
* Vector control: 2-way issue, 32-entry VIQ, 32-entry window.
* 8 vector lanes, 3 arithmetic datapaths + 2 memory ports per lane,
  64 physical vector registers (8 elements per lane).
* Memory: 4 MB 4-way 16-bank L2, 10-cycle hit, 100-cycle miss.

The named VLT configurations follow Section 4.1/Table 2 notation:
``V{n}-{SMT,CMP,CMT}{-h}`` for *n* vector threads with multiplexed,
replicated, or hybrid scalar units (``-h`` = heterogeneous: first SU
4-way, the rest 2-way).  ``CMT`` (no suffix digits) is the pure-CMP
comparison machine of Section 7.2: two 4-way 2-way-SMT scalar units
*without* the vector unit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ScalarUnitConfig:
    """One superscalar scalar unit (SU), possibly SMT."""

    width: int = 4              # fetch/issue/retire width
    window: int = 64            # instruction window / ROB entries
    arith_units: int = 4
    mem_ports: int = 2
    smt_contexts: int = 1
    l1_line: int = 64
    l1i_kib: int = 16
    l1d_kib: int = 16
    l1_assoc: int = 2
    l1_hit_latency: int = 2
    mispredict_penalty: int = 8
    bpred_entries: int = 4096

    def __post_init__(self):
        if self.width < 1 or self.window < 1:
            raise ValueError("SU width/window must be >= 1")
        if self.arith_units < 1 or self.mem_ports < 1:
            raise ValueError("SU needs at least one ALU and one mem port")
        if self.smt_contexts < 1:
            raise ValueError("smt_contexts must be >= 1")
        if self.bpred_entries & (self.bpred_entries - 1):
            raise ValueError("bpred_entries must be a power of two")

    def halved(self) -> "ScalarUnitConfig":
        """The paper's 2-way SU: identical caches, half the resources."""
        return replace(self, width=2, window=32, arith_units=2, mem_ports=1)


@dataclass(frozen=True)
class VectorUnitConfig:
    """The vector unit: control logic (VCL) + lanes."""

    lanes: int = 8
    issue_width: int = 2        # VCL instructions issued per cycle (shared)
    viq_entries: int = 32       # vector instruction queue (statically split)
    arith_fus: int = 3          # vector arithmetic FUs (datapath per lane each)
    mem_ports: int = 2          # vector memory ports (address per lane each)
    chain_delay: int = 2        # producer-issue to consumer-issue chain slack
    phys_vregs: int = 64
    su_transfer: int = 2        # SU<->VCL scalar communication latency
    #: replicate the VCL per VLT thread (each partition gets the full
    #: issue width) instead of multiplexing one VCL across partitions.
    #: The paper found multiplexing performs as well as replication at
    #: negligible area (Section 3.2); this knob reproduces that claim.
    replicated_vcl: bool = False
    #: model an *SMT vector processor* (Espasa et al., the paper's
    #: citation [11]) instead of VLT: every thread sees all lanes and
    #: the threads share the physical vector FUs/ports.  The paper
    #: argues this attacks idle FUs (low ILP) while VLT attacks idle
    #: lanes (low DLP) -- an orthogonal problem (Section 3.1); the
    #: comparison bench quantifies that orthogonality.
    vu_smt: bool = False

    def __post_init__(self):
        if self.lanes < 1:
            raise ValueError("vector unit needs at least one lane")
        if self.issue_width < 1 or self.viq_entries < 1:
            raise ValueError("VCL issue width / VIQ size must be >= 1")
        if self.arith_fus < 1 or self.mem_ports < 1:
            raise ValueError("lanes need arithmetic FUs and memory ports")
        if self.phys_vregs < 33:
            raise ValueError(
                "need more physical than architectural (32) vector regs")


@dataclass(frozen=True)
class L2Config:
    """Shared multi-banked L2 cache."""

    size_kib: int = 4096
    assoc: int = 4
    banks: int = 16
    line: int = 64
    hit_latency: int = 10
    miss_latency: int = 100
    # Bank occupancy per access: the X1-class L2 sustains one access per
    # bank per cycle (16 banks serve the 16 addresses/cycle the lanes
    # can generate, Section 2).
    bank_busy: int = 1

    def __post_init__(self):
        if self.banks < 1 or self.bank_busy < 1:
            raise ValueError("L2 needs >= 1 bank with >= 1 cycle occupancy")
        if self.line < 8 or self.line & (self.line - 1):
            raise ValueError("L2 line size must be a power of two >= 8")
        if self.size_kib * 1024 % (self.assoc * self.line):
            raise ValueError("L2 size must divide into assoc * line sets")
        if self.miss_latency < self.hit_latency:
            raise ValueError("miss latency below hit latency")


@dataclass(frozen=True)
class LaneCoreConfig:
    """A vector lane re-engineered as a scalar core (paper Section 5)."""

    width: int = 2              # 2-way in-order
    icache_kib: int = 4
    icache_line: int = 64
    mispredict_penalty: int = 3
    bpred_entries: int = 512
    imiss_extra: int = 4        # forward-to-SU overhead on lane I$ misses
    #: access-decoupling depth: loads may slip ahead of a stalled
    #: consumer by up to this many instructions.  The lanes reuse their
    #: vector-memory queuing resources (64 elements deep per port,
    #: paper Sections 2 and 5), so a deep run-ahead window is faithful.
    decouple_depth: int = 48


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: scalar units + vector unit + memory system."""

    name: str
    scalar_units: Tuple[ScalarUnitConfig, ...] = (ScalarUnitConfig(),)
    vu: Optional[VectorUnitConfig] = VectorUnitConfig()
    l2: L2Config = L2Config()
    lane_core: LaneCoreConfig = LaneCoreConfig()
    #: Software threads execute on the lanes-as-scalar-cores instead of SUs.
    lane_scalar_mode: bool = False
    #: Barrier release overhead in cycles (the paper's "thread API overhead").
    barrier_overhead: int = 30
    #: One-time lane-repartitioning overhead applied at ``vltcfg``.
    vltcfg_overhead: int = 16

    @property
    def total_contexts(self) -> int:
        """Hardware thread contexts available for software threads."""
        if self.lane_scalar_mode:
            return self.vu.lanes
        return sum(su.smt_contexts for su in self.scalar_units)

    def placement(self, num_threads: int) -> List[Tuple[int, int]]:
        """Map software threads to hardware contexts.

        Returns a list of ``(unit_index, context_index)``; in lane-scalar
        mode ``unit_index`` is the lane index and ``context_index`` 0.
        Threads fill units breadth-first (one per SU before doubling up)
        so that replicated configurations spread load, then SMT contexts,
        matching the paper's placements (e.g. V4-CMT: threads 0,1 on
        SU0's two contexts, threads 2,3 on SU1's).
        """
        if self.lane_scalar_mode:
            if num_threads > self.vu.lanes:
                raise ValueError(
                    f"{self.name}: {num_threads} threads > {self.vu.lanes} lanes")
            return [(t, 0) for t in range(num_threads)]
        # Contexts fill depth-first within an SU, keeping sibling threads on
        # the same SU (the paper's V4-CMT pairs threads per SU).
        ordered: List[Tuple[int, int]] = []
        for u, su in enumerate(self.scalar_units):
            for ctx in range(su.smt_contexts):
                ordered.append((u, ctx))
        if num_threads > len(ordered):
            raise ValueError(
                f"{self.name}: {num_threads} threads > {len(ordered)} contexts")
        return ordered[:num_threads]

    def digest(self) -> str:
        """Stable content digest of every machine parameter (hex SHA-256).

        Used (with the program digest) to key the on-disk result cache:
        editing any configuration field invalidates cached results.
        """
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True,
                             default=str)
        return hashlib.sha256(
            b"vlt-config-v1\0" + payload.encode("utf-8")).hexdigest()

    def lane_partitions(self, num_threads: int) -> List[int]:
        """Lanes assigned to each VLT thread (equal static split)."""
        if self.vu is None:
            return []
        lanes = self.vu.lanes
        if num_threads > lanes:
            raise ValueError("more threads than lanes")
        base = lanes // num_threads
        if base * num_threads != lanes:
            raise ValueError(
                f"lanes ({lanes}) not divisible by threads ({num_threads})")
        return [base] * num_threads


# --------------------------------------------------------------------------
# Named configurations
# --------------------------------------------------------------------------

_SU4 = ScalarUnitConfig()
_SU2 = _SU4.halved()


def base_config(lanes: int = 8, name: Optional[str] = None) -> MachineConfig:
    """The base vector processor of Table 3 (``lanes`` sweepable, Fig. 1)."""
    return MachineConfig(
        name=name or (f"base-{lanes}lane" if lanes != 8 else "base"),
        scalar_units=(_SU4,),
        vu=VectorUnitConfig(lanes=lanes),
    )


def _smt(su: ScalarUnitConfig, contexts: int) -> ScalarUnitConfig:
    return replace(su, smt_contexts=contexts)


#: The named design-space points of Sections 4 and 7.
CONFIGS: Dict[str, MachineConfig] = {}


def _register(cfg: MachineConfig) -> MachineConfig:
    CONFIGS[cfg.name] = cfg
    return cfg


BASE = _register(base_config())

# -- 2 vector threads -------------------------------------------------------
V2_SMT = _register(MachineConfig(
    name="V2-SMT", scalar_units=(_smt(_SU4, 2),)))
V2_CMP = _register(MachineConfig(
    name="V2-CMP", scalar_units=(_SU4, _SU4)))
V2_CMP_H = _register(MachineConfig(
    name="V2-CMP-h", scalar_units=(_SU4, _SU2)))

# -- 4 vector threads -------------------------------------------------------
V4_SMT = _register(MachineConfig(
    name="V4-SMT", scalar_units=(_smt(_SU4, 4),)))
V4_CMT = _register(MachineConfig(
    name="V4-CMT", scalar_units=(_smt(_SU4, 2), _smt(_SU4, 2))))
V4_CMP = _register(MachineConfig(
    name="V4-CMP", scalar_units=(_SU4, _SU4, _SU4, _SU4)))
V4_CMP_H = _register(MachineConfig(
    name="V4-CMP-h", scalar_units=(_SU4, _SU2, _SU2, _SU2)))

# -- scalar-thread machines (Section 7.2) ------------------------------------
#: V4-CMT running 8 scalar threads on the lanes (lanes as 2-way cores).
VLT_SCALAR = _register(MachineConfig(
    name="VLT-scalar", scalar_units=(_smt(_SU4, 2), _smt(_SU4, 2)),
    lane_scalar_mode=True))
#: The CMP comparison point: V4-CMT's scalar units without the vector unit.
CMT = _register(MachineConfig(
    name="CMT", scalar_units=(_smt(_SU4, 2), _smt(_SU4, 2)), vu=None))


#: lane-swept base machines (Figure 1) resolve by name too, so a run
#: spec can reference any configuration as plain data.
_BASE_LANES_RE = re.compile(r"^base-(\d+)lane$")


def get_config(name: str) -> MachineConfig:
    """Look up a configuration by name.

    Besides the registered design-space points (:data:`CONFIGS`), the
    lane-swept base machines named ``base-<n>lane`` (as produced by
    :func:`base_config`) resolve here, so every configuration the
    experiment harness sweeps is addressable as a plain string.
    """
    try:
        return CONFIGS[name]
    except KeyError:
        m = _BASE_LANES_RE.match(name)
        if m and int(m.group(1)) >= 1:
            return base_config(lanes=int(m.group(1)))
        raise KeyError(f"unknown machine configuration {name!r}; "
                       f"known: {sorted(CONFIGS)} or 'base-<n>lane'") from None
