"""Out-of-order superscalar scalar-unit (SU) timing model, with SMT.

The SU is trace-driven: each hardware context replays one software
thread's :class:`~repro.functional.trace.DynOp` stream.  The model
implements, per cycle:

* **frontend** -- ``width`` instructions per cycle shared round-robin
  across SMT contexts; L1 I-cache modelling at line granularity; a
  bimodal predictor gating fetch past conditional branches (on a
  mispredict, fetch stops until the branch executes, plus a redirect
  penalty -- the standard trace-driven approximation, since wrong-path
  instructions are not in the trace);
* **dispatch** -- into the ROB/window, shared dynamically across SMT
  contexts; renaming is implicit (the trace is data-race-free per thread
  and the model tracks only true dependences, i.e. perfect renaming,
  which the physical register files of such designs approximate);
* **issue** -- up to ``width`` ready instructions per cycle, oldest
  first, limited by ``arith_units`` and ``mem_ports``; loads probe the
  L1D and fall through to the shared banked L2;
* **commit** -- in-order per context, ``width`` per cycle shared.

Vector instructions flow through the frontend and are handed to the
vector unit (VCL) once dispatched, holding a reserved VIQ slot as
backpressure; they retire from the SU's ROB without waiting for vector
completion (they can no longer fault -- Tarantula-style early retirement)
except when they produce a scalar result, in which case the consuming
side waits for the VCL's completion callback.

Wake-up is event-driven (producer-issue notifications and a ready-time
heap), so per-cycle cost is O(issue width), not O(window).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, TYPE_CHECKING

from ..functional.trace import DynOp
from ..isa.registers import NUM_REG_UIDS, uid_is_scalar
from ..obs.events import COMMIT, Event, ISSUE, STALL, StallReason
from .branch import BimodalPredictor
from .caches import Cache
from .config import ScalarUnitConfig
from .l2 import BankedL2
from .stats import ScalarUnitStats

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: Instruction memory is disjoint from data memory at this base address.
CODE_BASE = 0x4000_0000
#: Architectural instruction size in bytes (for I-cache line behaviour).
INSTR_BYTES = 4


class SEntry:
    """An in-flight scalar-unit instruction (ROB entry)."""

    __slots__ = ("dynop", "ctx", "seq", "unmet", "ready_time", "issued",
                 "done_time", "subscribers", "mispredicted", "is_vector")

    def __init__(self, dynop: DynOp, ctx: "Context", seq: int, cycle: int):
        self.dynop = dynop
        self.ctx = ctx
        self.seq = seq
        self.unmet = 0
        self.ready_time = cycle + 1
        self.issued = False
        self.done_time: Optional[int] = None
        self.subscribers: Optional[list] = None
        self.mispredicted = False
        self.is_vector = dynop.spec.is_vector

    def notify(self, time: int) -> None:
        """A producer announced its completion time."""
        if time > self.ready_time:
            self.ready_time = time
        self.unmet -= 1
        if self.unmet == 0:
            self.ctx.su.schedule_ready(self)

    def subscribe(self, consumer) -> None:
        if self.subscribers is None:
            self.subscribers = [consumer]
        else:
            self.subscribers.append(consumer)

    def announce(self, time: int) -> None:
        """Publish this entry's completion time to register consumers."""
        ctx = self.ctx
        for uid in self.dynop.writes:
            if ctx.last_writer[uid] is self:
                ctx.last_writer[uid] = time
        subs = self.subscribers
        if subs:
            self.subscribers = None
            for c in subs:
                c.notify(time)

    def vu_complete(self, time: int) -> None:
        """Callback from the vector unit for scalar-result vector ops."""
        self.done_time = time
        self.announce(time)


class Context:
    """One SMT hardware context replaying one software thread."""

    __slots__ = ("su", "ctx_idx", "tid", "trace", "fetch_idx", "rob",
                 "last_writer", "fetch_stalled_until", "blocked_on_branch",
                 "waiting_barrier", "halted", "finish_time", "last_iline",
                 "window_limit")

    def __init__(self, su: "ScalarUnit", ctx_idx: int, tid: int,
                 trace: List[DynOp], window_limit: int):
        self.su = su
        self.ctx_idx = ctx_idx
        self.tid = tid
        self.trace = trace
        self.fetch_idx = 0
        self.rob: List[SEntry] = []          # used as a FIFO (pop from front)
        self.last_writer: List = [0] * NUM_REG_UIDS
        self.fetch_stalled_until = 0
        self.blocked_on_branch: Optional[SEntry] = None
        self.waiting_barrier = False
        self.halted = False
        self.finish_time: Optional[int] = None
        self.last_iline = -1
        self.window_limit = window_limit

    @property
    def done_fetching(self) -> bool:
        return self.fetch_idx >= len(self.trace)

    def can_fetch(self, cycle: int) -> bool:
        return (not self.halted and not self.waiting_barrier
                and self.blocked_on_branch is None
                and self.fetch_stalled_until <= cycle
                and not self.done_fetching
                and len(self.rob) < self.window_limit
                and self.su.rob_occupancy < self.su.cfg.window)


class ScalarUnit:
    """One SU instance (possibly multi-context) inside a machine."""

    def __init__(self, machine: "Machine", index: int,
                 cfg: ScalarUnitConfig, l2: BankedL2):
        self.machine = machine
        self.index = index
        self.cfg = cfg
        self.l2 = l2
        self.obs = machine.obs
        self.stats = ScalarUnitStats()
        self.l1i = Cache(cfg.l1i_kib * 1024, cfg.l1_assoc, cfg.l1_line,
                         name=f"SU{index}-L1I", bus=self.obs)
        self.l1d = Cache(cfg.l1d_kib * 1024, cfg.l1_assoc, cfg.l1_line,
                         name=f"SU{index}-L1D", bus=self.obs)
        self.bpred = BimodalPredictor(cfg.bpred_entries)
        self.contexts: List[Context] = []
        #: total in-flight entries across contexts (the shared ROB --
        #: SMT contexts share the window dynamically, per-context capped
        #: only by the full window size)
        self.rob_occupancy = 0
        self._seq = 0
        self._ready_heap: list = []     # (ready_time, seq, entry)
        self._issueq_arith: list = []   # (seq, entry)
        self._issueq_mem: list = []
        self._fetch_rr = 0
        self._commit_rr = 0

    # -- setup ---------------------------------------------------------------

    def add_thread(self, tid: int, trace: List[DynOp]) -> Context:
        ctx = Context(self, len(self.contexts), tid, trace, self.cfg.window)
        self.contexts.append(ctx)
        return ctx

    # -- event plumbing --------------------------------------------------------

    def schedule_ready(self, entry: SEntry) -> None:
        heapq.heappush(self._ready_heap,
                       (entry.ready_time, entry.seq, entry))

    # -- main per-cycle step ---------------------------------------------------

    def step(self, cycle: int) -> None:
        self._commit(cycle)
        self._wakeup(cycle)
        self._issue(cycle)
        self._frontend(cycle)

    # -- commit ----------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        budget = self.cfg.width
        nctx = len(self.contexts)
        if nctx == 0:
            return
        start = self._commit_rr
        self._commit_rr = (start + 1) % nctx
        obs = self.obs
        obs_on = obs.enabled
        for k in range(nctx):
            ctx = self.contexts[(start + k) % nctx]
            rob = ctx.rob
            while budget and rob:
                head = rob[0]
                if head.done_time is None or head.done_time > cycle:
                    break
                rob.pop(0)
                self.rob_occupancy -= 1
                self.stats.committed += 1
                budget -= 1
                if obs_on:
                    obs.emit(Event(cycle, COMMIT,
                                   f"SU{self.index}.c{ctx.ctx_idx}",
                                   head.dynop))
            if budget == 0:
                return

    # -- wakeup / issue ----------------------------------------------------------

    def _wakeup(self, cycle: int) -> None:
        heap = self._ready_heap
        while heap and heap[0][0] <= cycle:
            _, seq, entry = heapq.heappop(heap)
            if entry.dynop.spec.pool == "mem":
                heapq.heappush(self._issueq_mem, (seq, entry))
            else:
                heapq.heappush(self._issueq_arith, (seq, entry))

    def _issue(self, cycle: int) -> None:
        budget = self.cfg.width
        arith_slots = self.cfg.arith_units
        mem_slots = self.cfg.mem_ports
        qa, qm = self._issueq_arith, self._issueq_mem
        while budget:
            pick_arith: Optional[bool] = None
            if qa and arith_slots:
                if qm and mem_slots:
                    pick_arith = qa[0][0] < qm[0][0]
                else:
                    pick_arith = True
            elif qm and mem_slots:
                pick_arith = False
            if pick_arith is None:
                return
            if pick_arith:
                _, entry = heapq.heappop(qa)
                arith_slots -= 1
            else:
                _, entry = heapq.heappop(qm)
                mem_slots -= 1
            self._execute(entry, cycle)
            budget -= 1

    def _execute(self, entry: SEntry, cycle: int) -> None:
        dynop = entry.dynop
        spec = dynop.spec
        entry.issued = True
        self.stats.issued += 1
        if spec.is_load:
            addr = int(dynop.addrs[0])
            self.stats.l1d_accesses += 1
            if self.l1d.access(addr):
                done = cycle + spec.latency + self.cfg.l1_hit_latency
            else:
                self.stats.l1d_misses += 1
                done = self.l2.access(addr, cycle + spec.latency
                                      + self.cfg.l1_hit_latency)
        elif spec.is_store:
            addr = int(dynop.addrs[0])
            self.stats.l1d_accesses += 1
            if not self.l1d.access(addr):
                self.stats.l1d_misses += 1
                self.l2.access(addr, cycle + spec.latency)  # fill bandwidth
            # coherence: peer L1s drop their copy of this line
            self.machine.l1d_invalidate(addr, except_su=self)
            done = cycle + spec.latency
        else:
            done = cycle + spec.latency
        entry.done_time = done
        entry.announce(done)
        obs = self.obs
        if obs.enabled:
            obs.emit(Event(cycle, ISSUE,
                           f"SU{self.index}.c{entry.ctx.ctx_idx}", dynop,
                           dur=done - cycle))
        if entry.mispredicted:
            ctx = entry.ctx
            ctx.fetch_stalled_until = max(ctx.fetch_stalled_until,
                                          done + self.cfg.mispredict_penalty)
            self.stats.fetch_stall_cycles += \
                max(0, ctx.fetch_stalled_until - cycle)
            if obs.enabled and ctx.fetch_stalled_until > cycle:
                obs.emit(Event(
                    cycle, STALL, f"SU{self.index}.c{ctx.ctx_idx}", dynop,
                    dur=ctx.fetch_stalled_until - cycle,
                    reason=StallReason.BRANCH_MISPREDICT))
            if ctx.blocked_on_branch is entry:
                ctx.blocked_on_branch = None

    # -- frontend (fetch + dispatch) ------------------------------------------------

    def _frontend(self, cycle: int) -> None:
        nctx = len(self.contexts)
        if nctx == 0:
            return
        budget = self.cfg.width
        start = self._fetch_rr
        self._fetch_rr = (start + 1) % nctx
        for k in range(nctx):
            if budget == 0:
                return
            ctx = self.contexts[(start + k) % nctx]
            budget = self._fetch_ctx(ctx, cycle, budget)

    def _fetch_ctx(self, ctx: Context, cycle: int, budget: int) -> int:
        while budget and ctx.can_fetch(cycle):
            dynop = ctx.trace[ctx.fetch_idx]
            spec = dynop.spec

            # I-cache at line granularity.
            iline = (CODE_BASE + dynop.pc * INSTR_BYTES) // self.cfg.l1_line
            if iline != ctx.last_iline:
                self.stats.l1i_accesses += 1
                ctx.last_iline = iline
                if not self.l1i.access(iline * self.cfg.l1_line):
                    self.stats.l1i_misses += 1
                    ctx.fetch_stalled_until = self.l2.access(
                        iline * self.cfg.l1_line, cycle)
                    self.stats.fetch_stall_cycles += \
                        ctx.fetch_stalled_until - cycle
                    obs = self.obs
                    if obs.enabled:
                        obs.emit(Event(
                            cycle, STALL,
                            f"SU{self.index}.c{ctx.ctx_idx}", dynop,
                            dur=ctx.fetch_stalled_until - cycle,
                            reason=StallReason.L1I_MISS))
                    return budget

            if spec.is_barrier or spec.is_halt:
                # memory-synchronisation semantics: all prior scalar work
                # committed AND this thread's vector work drained
                vu = self.machine.vu
                if ctx.rob or (vu is not None
                               and not vu.partition_idle(ctx.tid, cycle)):
                    return budget
                ctx.fetch_idx += 1
                if spec.is_barrier:
                    ctx.waiting_barrier = True
                    self.machine.barrier_arrive(ctx.tid, cycle)
                else:
                    ctx.halted = True
                    ctx.finish_time = cycle
                    self.machine.thread_halted(ctx.tid, cycle)
                return budget
            if spec.is_lsync:
                # memory-ordering fence: hold fetch until this thread's
                # vector accesses have drained (paper Section 2's
                # compiler-generated memory barriers)
                vu = self.machine.vu
                if vu is not None and not vu.partition_idle(ctx.tid, cycle):
                    return budget
                ctx.fetch_idx += 1
                budget -= 1
                continue
            if spec.is_vltcfg:
                vu = self.machine.vu
                n = dynop.imm or self.machine.num_threads
                if vu is None or n == len(vu.partitions):
                    # no change: a cheap configuration check
                    ctx.fetch_idx += 1
                    budget -= 1
                    continue
                # an actual repartition quiesces the whole vector unit
                # (the paper switches at region boundaries, Section 3.3)
                if ctx.rob or vu.busy(cycle):
                    return budget
                ctx.fetch_idx += 1
                self.machine.vltcfg_request(ctx.tid, n, cycle)
                ctx.fetch_stalled_until = cycle + self.machine.cfg.vltcfg_overhead
                return budget

            if spec.is_vector:
                vu = self.machine.vu
                if vu is None:
                    raise RuntimeError(
                        f"vector instruction {dynop.op!r} on machine "
                        f"{self.machine.cfg.name!r} without a vector unit")
                if not vu.can_accept(ctx.tid, cycle):
                    self.stats.dispatch_stall_viq += 1
                    return budget
                entry, scalar_ready, pending = self._dispatch_vector(
                    ctx, dynop, cycle)
                vu.dispatch(ctx.tid, entry, cycle, scalar_ready, pending)
                ctx.fetch_idx += 1
                budget -= 1
                self.stats.fetched += 1
                continue

            entry = self._dispatch(ctx, dynop, cycle)
            ctx.fetch_idx += 1
            budget -= 1
            self.stats.fetched += 1

            if spec.is_branch and not spec.is_uncond:
                self.stats.branch_lookups += 1
                correct = self.bpred.predict_and_update(dynop.pc, dynop.taken)
                if not correct:
                    self.stats.branch_mispredicts += 1
                    entry.mispredicted = True
                    ctx.blocked_on_branch = entry
                    return budget
        return budget

    def _dispatch(self, ctx: Context, dynop: DynOp, cycle: int) -> SEntry:
        """Allocate a ROB entry for a scalar op and wire true dependences."""
        self._seq += 1
        entry = SEntry(dynop, ctx, self._seq, cycle)
        lw = ctx.last_writer
        unmet = 0
        ready = cycle + 1
        for uid in dynop.reads:
            w = lw[uid]
            if isinstance(w, int):
                if w > ready:
                    ready = w
            else:
                w.subscribe(entry)
                unmet += 1
        entry.ready_time = ready
        entry.unmet = unmet
        for uid in dynop.writes:
            lw[uid] = entry
        if unmet == 0:
            self.schedule_ready(entry)
        ctx.rob.append(entry)
        self.rob_occupancy += 1
        return entry

    def _dispatch_vector(self, ctx: Context, dynop: DynOp, cycle: int):
        """Allocate a ROB entry for a vector op.

        Returns ``(entry, scalar_ready, pending)``: the known lower bound
        on scalar-operand readiness and the list of in-flight scalar
        producers the VCL entry must subscribe to.  Vector-register
        dependences are the VCL's business.  The entry retires from the
        SU ROB immediately (it can no longer fault) unless it produces a
        scalar result, in which case it completes via the VCL callback.
        """
        self._seq += 1
        entry = SEntry(dynop, ctx, self._seq, cycle)
        lw = ctx.last_writer
        scalar_ready = cycle + 1
        pending: List[SEntry] = []
        for uid in dynop.reads:
            if not uid_is_scalar(uid):
                continue
            w = lw[uid]
            if isinstance(w, int):
                if w > scalar_ready:
                    scalar_ready = w
            else:
                pending.append(w)
        writes_scalar = False
        for uid in dynop.writes:
            if uid_is_scalar(uid):
                lw[uid] = entry
                writes_scalar = True
        if not writes_scalar:
            entry.done_time = cycle + 1
        ctx.rob.append(entry)
        self.rob_occupancy += 1
        return entry, scalar_ready, pending

    # -- idle detection ---------------------------------------------------------

    def next_event(self, cycle: int) -> int:
        """Earliest future cycle at which this SU can make progress."""
        best = None

        def consider(t: Optional[int]) -> None:
            nonlocal best
            if t is not None and (best is None or t < best):
                best = t

        if self._issueq_arith or self._issueq_mem:
            return cycle + 1
        for ctx in self.contexts:
            if ctx.halted or ctx.waiting_barrier:
                continue
            if ctx.can_fetch(cycle):
                return cycle + 1
            if ctx.rob:
                head = ctx.rob[0]
                if head.done_time is not None:
                    consider(max(cycle + 1, head.done_time))
            if (ctx.blocked_on_branch is None and not ctx.done_fetching
                    and len(ctx.rob) >= ctx.window_limit):
                # window-full: progress at next commit
                pass
            if ctx.fetch_stalled_until > cycle and ctx.blocked_on_branch is None:
                consider(ctx.fetch_stalled_until)
        if self._ready_heap:
            consider(max(cycle + 1, self._ready_heap[0][0]))
        return best if best is not None else 1 << 62

    @property
    def all_done(self) -> bool:
        return all(ctx.halted and not ctx.rob for ctx in self.contexts)
