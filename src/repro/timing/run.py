"""High-level simulation API: program -> functional trace -> timing result.

This is the entry point most callers (examples, harness, tests) use::

    from repro.timing import simulate
    from repro.timing.config import BASE

    result = simulate(program, BASE, num_threads=1)
    print(result.cycles)

Functional traces are deterministic for a given ``(program, num_threads)``
pair, so :func:`trace_for` memoises them -- the experiment harness replays
the same trace against many machine configurations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..functional.executor import Executor
from ..functional.trace import ProgramTrace
from ..isa.program import Program
from .config import MachineConfig
from .machine import run_traces
from .stats import RunResult

_trace_cache: Dict[Tuple[int, int], ProgramTrace] = {}


def trace_for(program: Program, num_threads: int,
              max_ops: int = 20_000_000) -> ProgramTrace:
    """Functional trace of ``program`` with ``num_threads`` (memoised).

    The cache key is the program object's identity -- workload builders
    construct a fresh Program per parameter set, so identity is the right
    equality here.
    """
    key = (id(program), num_threads)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    ex = Executor(program, num_threads=num_threads, record_trace=True,
                  max_ops=max_ops)
    trace = ex.run()
    _trace_cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop memoised functional traces (tests / memory hygiene)."""
    _trace_cache.clear()


def simulate(program: Program, cfg: MachineConfig, num_threads: int = 1,
             max_cycles: int = 50_000_000,
             trace: Optional[ProgramTrace] = None) -> RunResult:
    """Run ``program`` on machine ``cfg`` and return timing results."""
    if trace is None:
        trace = trace_for(program, num_threads)
    elif trace.num_threads != num_threads:
        raise ValueError("supplied trace has a different thread count")
    return run_traces(cfg, trace, max_cycles=max_cycles)
