"""High-level simulation API: program -> functional trace -> timing result.

This is the entry point most callers (examples, harness, tests) use::

    from repro.timing import simulate
    from repro.timing.config import BASE

    result = simulate(program, BASE, num_threads=1)
    print(result.cycles)

Functional traces are deterministic for a given ``(program, num_threads)``
pair, so :func:`trace_for` memoises them -- the experiment harness replays
the same trace against many machine configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..functional.executor import Executor
from ..functional.trace import ProgramTrace
from ..functional.trace_cache import TraceCache
from ..isa.program import Program
from ..obs.events import EventBus, EventLog
from ..obs.hostprof import PhaseProfiler
from ..obs.metrics import MetricsRegistry, MetricsSink
from .config import MachineConfig
from .machine import run_traces
from .stats import RunResult

#: in-process memo: (program content digest, num_threads) -> trace.
#: Keying by content rather than ``id(program)`` is load-bearing: a
#: garbage-collected Program's id can be reused by a *different* program,
#: silently aliasing two programs to one trace -- and an identity key
#: cannot back a persistent or cross-process cache at all.
_trace_cache: Dict[Tuple[str, int], ProgramTrace] = {}

#: optional on-disk cache shared across processes and invocations
_disk_cache: Optional[TraceCache] = None

#: fallback profiler used when a call site passes none (lets a sweep
#: driver account for every trace generation in one place)
_default_profiler: Optional[PhaseProfiler] = None


def set_trace_cache_dir(path) -> Optional[TraceCache]:
    """Enable (or, with ``None``, disable) the on-disk trace cache.

    Returns the active :class:`TraceCache`.  The disk cache is keyed by
    program content digest, so it is shared safely between concurrent
    worker processes and survives across ``vlt-repro`` invocations.
    """
    global _disk_cache
    _disk_cache = None if path is None else TraceCache(path)
    return _disk_cache


def get_trace_cache() -> Optional[TraceCache]:
    """The active on-disk trace cache, if any."""
    return _disk_cache


def set_default_profiler(profiler: Optional[PhaseProfiler]) -> None:
    """Install a fallback :class:`PhaseProfiler` for unprofiled calls."""
    global _default_profiler
    _default_profiler = profiler


def trace_for(program: Program, num_threads: int,
              max_ops: int = 20_000_000,
              profiler: Optional[PhaseProfiler] = None) -> ProgramTrace:
    """Functional trace of ``program`` with ``num_threads`` (memoised).

    The cache key is the program's *content digest*
    (:meth:`~repro.isa.program.Program.digest`), so two structurally
    identical programs share one trace, a rebuilt program hits the
    cache, and -- when :func:`set_trace_cache_dir` enabled one -- traces
    are also served from / stored to the on-disk cache.
    """
    if profiler is None:
        profiler = _default_profiler
    key = (program.digest(), num_threads)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    disk = _disk_cache
    if disk is not None:
        if profiler is None:
            trace = disk.load_trace(key[0], num_threads)
        else:
            with profiler.phase("trace_cache_load"):
                trace = disk.load_trace(key[0], num_threads)
        if trace is not None:
            _trace_cache[key] = trace
            return trace
    ex = Executor(program, num_threads=num_threads, record_trace=True,
                  max_ops=max_ops)
    if profiler is None:
        trace = ex.run()
    else:
        with profiler.phase("trace_generation"):
            trace = ex.run()
    _trace_cache[key] = trace
    if disk is not None:
        if profiler is None:
            disk.store_trace(key[0], num_threads, trace)
        else:
            with profiler.phase("trace_cache_store"):
                disk.store_trace(key[0], num_threads, trace)
    return trace


def clear_trace_cache() -> None:
    """Drop memoised functional traces (tests / memory hygiene).

    Only the in-process memo is dropped; an on-disk cache enabled via
    :func:`set_trace_cache_dir` keeps its entries (use
    :meth:`TraceCache.clear` for that).
    """
    _trace_cache.clear()


def simulate(program: Program, cfg: MachineConfig, num_threads: int = 1,
             max_cycles: int = 50_000_000,
             trace: Optional[ProgramTrace] = None,
             obs: Optional[EventBus] = None,
             profiler: Optional[PhaseProfiler] = None,
             engine: str = "event") -> RunResult:
    """Run ``program`` on machine ``cfg`` and return timing results.

    ``obs`` attaches an observability event bus (see :mod:`repro.obs`);
    ``profiler`` records host-side wall time per simulation phase.
    Neither affects simulated cycle counts.  ``engine`` picks the replay
    engine -- ``"event"`` (the per-event oracle) or ``"columnar"`` (the
    NumPy array-replay engine, verified bit-identical).
    """
    if profiler is None:
        profiler = _default_profiler
    if trace is None:
        trace = trace_for(program, num_threads, profiler=profiler)
    elif trace.num_threads != num_threads:
        raise ValueError("supplied trace has a different thread count")
    return run_traces(cfg, trace, max_cycles=max_cycles, obs=obs,
                      profiler=profiler, engine=engine)


@dataclass
class TracedRun:
    """Everything a fully-instrumented simulation run produces."""

    result: RunResult
    events: EventLog
    metrics: MetricsRegistry
    metrics_sink: MetricsSink
    profiler: PhaseProfiler


def simulate_traced(program: Program, cfg: MachineConfig,
                    num_threads: int = 1,
                    max_cycles: int = 50_000_000,
                    trace: Optional[ProgramTrace] = None,
                    max_events: int = 1_000_000,
                    kinds: Optional[frozenset] = None,
                    start_cycle: int = 0,
                    engine: str = "event") -> TracedRun:
    """Run with the full observability stack attached.

    Wires an :class:`EventLog` (for exporters), a :class:`MetricsSink`
    (VL distribution, stall breakdown, bank-conflict timeline) and a
    :class:`PhaseProfiler` onto one event bus, runs the simulation, and
    returns a :class:`TracedRun`.  ``result.metrics`` is populated with
    the collected registry.
    """
    bus = EventBus()
    log = EventLog(max_events=max_events, kinds=kinds,
                   start_cycle=start_cycle)
    sink = MetricsSink()
    bus.attach(log)
    bus.attach(sink)
    prof = PhaseProfiler()
    result = simulate(program, cfg, num_threads=num_threads,
                      max_cycles=max_cycles, trace=trace, obs=bus,
                      profiler=prof, engine=engine)
    result.metrics = sink.registry
    return TracedRun(result=result, events=log, metrics=sink.registry,
                     metrics_sink=sink, profiler=prof)
