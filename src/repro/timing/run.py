"""High-level simulation API: program -> functional trace -> timing result.

This is the entry point most callers (examples, harness, tests) use::

    from repro.timing import simulate
    from repro.timing.config import BASE

    result = simulate(program, BASE, num_threads=1)
    print(result.cycles)

Functional traces are deterministic for a given ``(program, num_threads)``
pair, so :func:`trace_for` memoises them -- the experiment harness replays
the same trace against many machine configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..functional.executor import Executor
from ..functional.trace import ProgramTrace
from ..isa.program import Program
from ..obs.events import EventBus, EventLog
from ..obs.hostprof import PhaseProfiler
from ..obs.metrics import MetricsRegistry, MetricsSink
from .config import MachineConfig
from .machine import run_traces
from .stats import RunResult

_trace_cache: Dict[Tuple[int, int], ProgramTrace] = {}


def trace_for(program: Program, num_threads: int,
              max_ops: int = 20_000_000,
              profiler: Optional[PhaseProfiler] = None) -> ProgramTrace:
    """Functional trace of ``program`` with ``num_threads`` (memoised).

    The cache key is the program object's identity -- workload builders
    construct a fresh Program per parameter set, so identity is the right
    equality here.
    """
    key = (id(program), num_threads)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    ex = Executor(program, num_threads=num_threads, record_trace=True,
                  max_ops=max_ops)
    if profiler is None:
        trace = ex.run()
    else:
        with profiler.phase("trace_generation"):
            trace = ex.run()
    _trace_cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop memoised functional traces (tests / memory hygiene)."""
    _trace_cache.clear()


def simulate(program: Program, cfg: MachineConfig, num_threads: int = 1,
             max_cycles: int = 50_000_000,
             trace: Optional[ProgramTrace] = None,
             obs: Optional[EventBus] = None,
             profiler: Optional[PhaseProfiler] = None) -> RunResult:
    """Run ``program`` on machine ``cfg`` and return timing results.

    ``obs`` attaches an observability event bus (see :mod:`repro.obs`);
    ``profiler`` records host-side wall time per simulation phase.
    Neither affects simulated cycle counts.
    """
    if trace is None:
        trace = trace_for(program, num_threads, profiler=profiler)
    elif trace.num_threads != num_threads:
        raise ValueError("supplied trace has a different thread count")
    return run_traces(cfg, trace, max_cycles=max_cycles, obs=obs,
                      profiler=profiler)


@dataclass
class TracedRun:
    """Everything a fully-instrumented simulation run produces."""

    result: RunResult
    events: EventLog
    metrics: MetricsRegistry
    metrics_sink: MetricsSink
    profiler: PhaseProfiler


def simulate_traced(program: Program, cfg: MachineConfig,
                    num_threads: int = 1,
                    max_cycles: int = 50_000_000,
                    trace: Optional[ProgramTrace] = None,
                    max_events: int = 1_000_000,
                    kinds: Optional[frozenset] = None,
                    start_cycle: int = 0) -> TracedRun:
    """Run with the full observability stack attached.

    Wires an :class:`EventLog` (for exporters), a :class:`MetricsSink`
    (VL distribution, stall breakdown, bank-conflict timeline) and a
    :class:`PhaseProfiler` onto one event bus, runs the simulation, and
    returns a :class:`TracedRun`.  ``result.metrics`` is populated with
    the collected registry.
    """
    bus = EventBus()
    log = EventLog(max_events=max_events, kinds=kinds,
                   start_cycle=start_cycle)
    sink = MetricsSink()
    bus.attach(log)
    bus.attach(sink)
    prof = PhaseProfiler()
    result = simulate(program, cfg, num_threads=num_threads,
                      max_cycles=max_cycles, trace=trace, obs=bus,
                      profiler=prof)
    result.metrics = sink.registry
    return TracedRun(result=result, events=log, metrics=sink.registry,
                     metrics_sink=sink, profiler=prof)
