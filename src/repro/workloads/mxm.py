"""mxm -- dense matrix multiply (Table 4: 96% vect, avg VL 64.0).

The paper's long-vector poster child: compiled with the mini-vectorizer,
the j loop (unit stride in both B and C) is vectorized at full MVL=64,
so the 8-lane machine is saturated by a single thread and VLT offers no
opportunity (the paper excludes mxm/sage from the VLT experiments for
this reason; we use it for Figure 1 lane scaling).

The matrix is rectangular (M x K times K x N with N = MVL) to keep
simulation time proportional to useful vector work while preserving the
average-VL-64 profile of the paper's square mxm.
"""

from __future__ import annotations

import numpy as np

from ..compiler import (Array, CompileOptions, Kernel, Loop, Reduce, Var,
                        compile_kernel)
from ..functional.executor import Executor
from ..isa.program import Program
from ..isa.registers import MVL
from .base import VerificationError, Workload, register


@register
class MXM(Workload):
    """Dense matmul C = A @ B, vectorized along unit-stride rows of C."""

    name = "mxm"
    vectorizable = True
    compiled = True
    parallel_phases = None  # entirely parallel

    M = 20
    K = 20
    N = MVL

    def build(self, scalar_only: bool = False,
              strategy: str = "auto") -> Program:
        if scalar_only:
            raise ValueError("mxm has no scalar-threads flavour")
        rng = np.random.default_rng(42)
        a = rng.random((self.M, self.K))
        bm = rng.random((self.K, self.N))
        self._a, self._b = a, bm

        i, j, k = Var("i"), Var("j"), Var("k")
        A = Array("A", (self.M, self.K), a)
        B = Array("B", (self.K, self.N), bm)
        C = Array("C", (self.M, self.N))
        kern = Kernel("mxm", [
            Loop(i, self.M, [
                Loop(k, self.K, [
                    Loop(j, self.N,
                         [Reduce("+", C[i, j], A[i, k] * B[k, j])],
                         parallel=True),
                ]),
            ], parallel=True),
        ])
        return compile_kernel(
            kern, CompileOptions(vectorize=True, policy="maxvl",
                                 threads=True, memory_kib=256,
                                 strategy=strategy))

    def verify(self, ex: Executor, program: Program) -> None:
        got = ex.mem.read_f64_array(program.symbol_addr("C"),
                                    self.M * self.N).reshape(self.M, self.N)
        want = self._a @ self._b
        if not np.allclose(got, want, rtol=1e-10):
            raise VerificationError(
                f"mxm mismatch: max err {np.abs(got - want).max():.3e}")
