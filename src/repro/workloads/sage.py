"""sage -- hydrodynamics modelling proxy (Table 4: 94% vect, avg VL 63.8).

SAGE is a Lagrangian hydrodynamics code; the published characteristics
(94% vectorization, average vector length ~64) say its time is spent in
long unit-stride sweeps over cell arrays.  The proxy is a 1-D
compressible-flow update: per timestep, an equation-of-state pass, an
artificial-viscosity pass, and velocity/energy/density updates, all
elementwise over ``N`` cells (``N`` a multiple of MVL so every strip is
full length), inside a serial time loop.  Compiled with the
mini-vectorizer; the time loop's control is executed redundantly by all
SPMD threads with a barrier per sweep.
"""

from __future__ import annotations

import numpy as np

from ..compiler import (Array, Assign, CompileOptions, Kernel, Loop, Var,
                        compile_kernel)
from ..functional.executor import Executor
from ..isa.program import Program
from ..isa.registers import MVL
from .base import VerificationError, Workload, register


@register
class Sage(Workload):
    """1-D hydro sweep proxy with the paper's sage vector profile."""

    name = "sage"
    vectorizable = True
    compiled = True
    parallel_phases = None

    N = 4 * MVL      # cells
    STEPS = 6
    GAMMA_M1 = 0.4   # ideal-gas (gamma - 1)
    CQ = 0.25        # artificial-viscosity coefficient
    DT = 0.05

    def build(self, scalar_only: bool = False,
              strategy: str = "auto") -> Program:
        if scalar_only:
            raise ValueError("sage has no scalar-threads flavour")
        rng = np.random.default_rng(7)
        rho0 = 1.0 + 0.1 * rng.random(self.N)
        u0 = 0.01 * rng.standard_normal(self.N)
        e0 = 2.0 + 0.1 * rng.random(self.N)
        self._init = (rho0, u0, e0)

        x, t = Var("x"), Var("t")
        rho = Array("rho", (self.N,), rho0)
        u = Array("u", (self.N,), u0)
        e = Array("e", (self.N,), e0)
        p = Array("p", (self.N,))
        q = Array("q", (self.N,))
        kern = Kernel("sage", [
            Loop(t, self.STEPS, [
                Loop(x, self.N, [
                    Assign(p[x], rho[x] * e[x] * self.GAMMA_M1),
                    Assign(q[x], rho[x] * (u[x] * u[x]) * self.CQ),
                    Assign(u[x], u[x] - (p[x] + q[x]) * self.DT),
                    Assign(e[x], e[x] - p[x] * u[x] * self.DT),
                    Assign(rho[x], rho[x] + rho[x] * u[x] * self.DT),
                ], parallel=True),
            ]),
        ])
        return compile_kernel(
            kern, CompileOptions(vectorize=True, policy="maxvl",
                                 threads=True, memory_kib=256,
                                 strategy=strategy))

    def _reference(self):
        rho, u, e = (a.copy() for a in self._init)
        for _ in range(self.STEPS):
            p = rho * e * self.GAMMA_M1
            q = rho * (u * u) * self.CQ
            u = u - (p + q) * self.DT
            e = e - p * u * self.DT
            rho = rho + rho * u * self.DT
        return rho, u, e

    def verify(self, ex: Executor, program: Program) -> None:
        rho_w, u_w, e_w = self._reference()
        for name, want in (("rho", rho_w), ("u", u_w), ("e", e_w)):
            got = ex.mem.read_f64_array(program.symbol_addr(name), self.N)
            if not np.allclose(got, want, rtol=1e-10):
                raise VerificationError(
                    f"sage {name} mismatch: "
                    f"max err {np.abs(got - want).max():.3e}")
