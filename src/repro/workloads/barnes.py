"""barnes -- Barnes-Hut galaxy simulation proxy (SPLASH-2)
(Table 4: parallel but not vectorizable; 98% opportunity).

The force-calculation phase of Barnes-Hut: every body walks a tree of
mass cells and either accepts a cell's centre-of-mass approximation or
*opens* the cell and visits its children through an index table (the
pointer-chasing, branchy traversal that defeats vectorization).  Per
interaction there is plenty of instruction-level parallelism -- the
dx/dy/dz difference, square and accumulate chains are independent, and
the acceptance test feeds a divide -- which is why barnes, unlike
radix/ocean, gains nothing from trading two wide out-of-order cores for
eight simple in-order lanes (Figure 6: VLT approximately equals CMT).

Phases: centre-of-mass build (parallel over cells), force calculation
(parallel over bodies), serial energy audit.
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..isa.builder import F, ProgramBuilder, S, V
from ..isa.program import Program
from .base import VerificationError, Workload, register
from .common import (S0, counted_loop, emit_chunk, parallel_barrier,
                     serial_section, spmd_prologue)

NBODY = 96
NCELL = 32          # top-level cells
NCHILD = 2          # children per opened cell
BODIES_PER_CELL = NBODY // NCELL
OPEN_R2 = 0.08      # cells closer than this are opened
EPS = 0.01


@register
class Barnes(Workload):
    """Tree-walk force calculation with open/accept branching."""

    name = "barnes"
    vectorizable = False
    parallel_phases = [True, True, False]

    def build(self, scalar_only: bool = False) -> Program:
        rng = np.random.default_rng(29)
        pos = rng.random((NBODY, 3))
        mass = 0.5 + rng.random(NBODY)
        # children positions/masses: synthetic sub-cells of each cell
        child_pos = rng.random((NCELL * NCHILD, 3))
        child_mass = 0.25 + 0.5 * rng.random(NCELL * NCHILD)
        self._pos, self._mass = pos, mass
        self._child_pos, self._child_mass = child_pos, child_mass

        b = ProgramBuilder("barnes", memory_kib=512)
        b.data_f64("px", pos[:, 0]); b.data_f64("py", pos[:, 1])
        b.data_f64("pz", pos[:, 2]); b.data_f64("m", mass)
        b.data_f64("cx", NCELL); b.data_f64("cy", NCELL)
        b.data_f64("cz", NCELL); b.data_f64("cm", NCELL)
        b.data_f64("chx", child_pos[:, 0]); b.data_f64("chy", child_pos[:, 1])
        b.data_f64("chz", child_pos[:, 2]); b.data_f64("chm", child_mass)
        # child index table: cell c's children are chidx[2c], chidx[2c+1]
        chidx = np.arange(NCELL * NCHILD, dtype=np.int64)
        rng.shuffle(chidx)
        self._chidx = chidx
        b.data_i64("chidx", chidx)
        b.data_f64("ax", NBODY); b.data_f64("ay", NBODY)
        b.data_f64("az", NBODY)
        b.data_f64("energy", 1)
        spmd_prologue(b)

        # ---- phase 1: cell centres of mass (parallel over cells) ----------
        lo, hi, t0 = S(1), S(2), S(3)
        emit_chunk(b, NCELL, lo, hi, t0)
        cell = S(4)
        with counted_loop(b, cell, hi, start=lo):
            base = S(5)
            b.op("muli", base, cell, BODIES_PER_CELL * 8)
            sx, sy, sz, sm = F(1), F(2), F(3), F(4)
            for f in (sx, sy, sz, sm):
                b.op("fli", f, 0.0)
            k, kend = S(6), S(7)
            b.op("li", kend, BODIES_PER_CELL)
            addr = S(8)
            b.mv(addr, base)
            with counted_loop(b, k, kend):
                b.op("fld", F(5), (b.addr_of("px"), addr))
                b.op("fld", F(6), (b.addr_of("py"), addr))
                b.op("fld", F(7), (b.addr_of("pz"), addr))
                b.op("fld", F(8), (b.addr_of("m"), addr))
                b.op("fmul", F(5), F(5), F(8))
                b.op("fmul", F(6), F(6), F(8))
                b.op("fmul", F(7), F(7), F(8))
                b.op("fadd", sx, sx, F(5))
                b.op("fadd", sy, sy, F(6))
                b.op("fadd", sz, sz, F(7))
                b.op("fadd", sm, sm, F(8))
                b.op("addi", addr, addr, 8)
            ca = S(8)
            b.op("slli", ca, cell, 3)
            b.op("fdiv", F(5), sx, sm)
            b.op("fst", F(5), (b.addr_of("cx"), ca))
            b.op("fdiv", F(5), sy, sm)
            b.op("fst", F(5), (b.addr_of("cy"), ca))
            b.op("fdiv", F(5), sz, sm)
            b.op("fst", F(5), (b.addr_of("cz"), ca))
            b.op("fst", sm, (b.addr_of("cm"), ca))
        parallel_barrier(b)

        # ---- phase 2: force walk (parallel over bodies) --------------------
        emit_chunk(b, NBODY, lo, hi, t0)
        body = S(4)
        with counted_loop(b, body, hi, start=lo):
            ba = S(5)
            b.op("slli", ba, body, 3)
            bx, by, bz = F(1), F(2), F(3)
            b.op("fld", bx, (b.addr_of("px"), ba))
            b.op("fld", by, (b.addr_of("py"), ba))
            b.op("fld", bz, (b.addr_of("pz"), ba))
            # two accumulator triples: even-indexed cells fold into acc,
            # odd-indexed into acc2 (merged at the end) so the two kick
            # chains of a cell pair interleave on an in-order core
            accx, accy, accz = F(4), F(5), F(6)
            acc2x, acc2y, acc2z = F(23), F(24), F(25)
            for f in (accx, accy, accz, acc2x, acc2y, acc2z):
                b.op("fli", f, 0.0)
            fopen = F(26)
            b.op("fli", fopen, OPEN_R2)

            pair, pend = S(6), S(7)
            b.op("li", pend, NCELL // 2)
            d0 = (F(7), F(8), F(9))      # cell 2p deltas
            d1 = (F(15), F(16), F(17))   # cell 2p+1 deltas
            r2_0, r2_1 = F(10), F(18)
            m0, m1 = F(11), F(19)
            with counted_loop(b, pair, pend):
                ca = S(8)
                b.op("slli", ca, pair, 4)       # byte offset of cell 2p
                # load both cells' COM + mass up-front (8 decoupled loads)
                b.op("fld", d0[0], (b.addr_of("cx"), ca))
                b.op("fld", d0[1], (b.addr_of("cy"), ca))
                b.op("fld", d0[2], (b.addr_of("cz"), ca))
                b.op("fld", m0, (b.addr_of("cm"), ca))
                b.op("fld", d1[0], (b.addr_of("cx") + 8, ca))
                b.op("fld", d1[1], (b.addr_of("cy") + 8, ca))
                b.op("fld", d1[2], (b.addr_of("cz") + 8, ca))
                b.op("fld", m1, (b.addr_of("cm") + 8, ca))
                for d, r2 in ((d0, r2_0), (d1, r2_1)):
                    b.op("fsub", d[0], d[0], bx)
                    b.op("fsub", d[1], d[1], by)
                    b.op("fsub", d[2], d[2], bz)
                t0f, t1f = F(12), F(20)
                b.op("fmul", r2_0, d0[0], d0[0])
                b.op("fmul", r2_1, d1[0], d1[0])
                b.op("fmul", t0f, d0[1], d0[1])
                b.op("fmul", t1f, d1[1], d1[1])
                b.op("fadd", r2_0, r2_0, t0f)
                b.op("fadd", r2_1, r2_1, t1f)
                b.op("fmul", t0f, d0[2], d0[2])
                b.op("fmul", t1f, d1[2], d1[2])
                b.op("fadd", r2_0, r2_0, t0f)
                b.op("fadd", r2_1, r2_1, t1f)

                near0, near1 = S(9), S(10)
                b.op("flt", near0, r2_0, fopen)
                b.op("flt", near1, r2_1, fopen)
                anyopen = S(11)
                b.op("or", anyopen, near0, near1)
                slow_lbl = b.genlabel("slow")
                done_lbl = b.genlabel("pdone")
                b.op("bne", anyopen, S0, slow_lbl)
                # fast path: both accepted -- interleaved double kick
                self._emit_kick_pair(b, d0, r2_0, m0, (accx, accy, accz),
                                     d1, r2_1, m1, (acc2x, acc2y, acc2z))
                b.op("j", done_lbl)
                # slow path: handle each cell of the pair individually
                b.label(slow_lbl)
                for half, (d, r2, m, near, accs) in enumerate((
                        (d0, r2_0, m0, near0, (accx, accy, accz)),
                        (d1, r2_1, m1, near1, (acc2x, acc2y, acc2z)))):
                    open_lbl = b.genlabel(f"open{half}")
                    next_lbl = b.genlabel(f"next{half}")
                    b.op("bne", near, S0, open_lbl)
                    self._emit_kick(b, d[0], d[1], d[2], r2, m, *accs)
                    b.op("j", next_lbl)
                    b.label(open_lbl)
                    # visit the two children through the index table
                    ia = S(12)
                    b.op("slli", ia, pair, 5)          # cell 2p * 16 bytes
                    b.op("addi", ia, ia, half * 16)    # this cell's entry
                    for ch in range(NCHILD):
                        ci = S(13)
                        b.op("ld", ci, (b.addr_of("chidx") + ch * 8, ia))
                        b.op("slli", ci, ci, 3)
                        b.op("fld", d[0], (b.addr_of("chx"), ci))
                        b.op("fld", d[1], (b.addr_of("chy"), ci))
                        b.op("fld", d[2], (b.addr_of("chz"), ci))
                        b.op("fsub", d[0], d[0], bx)
                        b.op("fsub", d[1], d[1], by)
                        b.op("fsub", d[2], d[2], bz)
                        b.op("fmul", r2, d[0], d[0])
                        b.op("fld", m, (b.addr_of("chm"), ci))
                        b.op("fmul", F(12), d[1], d[1])
                        b.op("fadd", r2, r2, F(12))
                        b.op("fmul", F(12), d[2], d[2])
                        b.op("fadd", r2, r2, F(12))
                        self._emit_kick(b, d[0], d[1], d[2], r2, m, *accs)
                    b.label(next_lbl)
                b.label(done_lbl)
            b.op("fadd", accx, accx, acc2x)
            b.op("fadd", accy, accy, acc2y)
            b.op("fadd", accz, accz, acc2z)
            b.op("fst", accx, (b.addr_of("ax"), ba))
            b.op("fst", accy, (b.addr_of("ay"), ba))
            b.op("fst", accz, (b.addr_of("az"), ba))
        parallel_barrier(b)

        # ---- phase 3: serial energy audit ----------------------------------
        with serial_section(b):
            acc = F(1)
            b.op("fli", acc, 0.0)
            i, iend = S(1), S(2)
            b.op("li", iend, NBODY)
            addr = S(3)
            b.op("li", addr, 0)
            with counted_loop(b, i, iend):
                b.op("fld", F(2), (b.addr_of("ax"), addr))
                b.op("fmul", F(2), F(2), F(2))
                b.op("fadd", acc, acc, F(2))
                b.op("fld", F(2), (b.addr_of("ay"), addr))
                b.op("fmul", F(2), F(2), F(2))
                b.op("fadd", acc, acc, F(2))
                b.op("fld", F(2), (b.addr_of("az"), addr))
                b.op("fmul", F(2), F(2), F(2))
                b.op("fadd", acc, acc, F(2))
                b.op("addi", addr, addr, 8)
            b.op("li", S(4), b.addr_of("energy"))
            b.op("fst", acc, (0, S(4)))
        b.op("halt")
        return b.build()

    def _emit_kick_pair(self, b, d0, r20, m0, acc0, d1, r21, m1, acc1):
        """Two independent kicks with interleaved chains (fast path).

        Per-accumulator operation order is identical to
        :meth:`_emit_kick`, so results are bit-exact with the reference;
        only the interleaving across the two chains differs.
        """
        e0, e1 = F(13), F(21)
        feps = F(14)
        b.op("fli", feps, EPS)
        b.op("fadd", r20, r20, feps)
        b.op("fadd", r21, r21, feps)
        b.op("fsqrt", e0, r20)
        b.op("fsqrt", e1, r21)
        b.op("fmul", e0, e0, r20)
        b.op("fmul", e1, e1, r21)
        b.op("fdiv", e0, m0, e0)
        b.op("fdiv", e1, m1, e1)
        t0, t1 = F(14), F(22)
        for axis in range(3):
            b.op("fmul", t0, d0[axis], e0)
            b.op("fmul", t1, d1[axis], e1)
            b.op("fadd", acc0[axis], acc0[axis], t0)
            b.op("fadd", acc1[axis], acc1[axis], t1)

    def _emit_kick(self, b, dx, dy, dz, r2, fm, accx, accy, accz):
        """acc += m * d / ((r2+eps) * sqrt(r2+eps)) -- one divide, one sqrt."""
        b.op("fli", F(13), EPS)
        b.op("fadd", r2, r2, F(13))
        b.op("fsqrt", F(13), r2)
        b.op("fmul", F(13), F(13), r2)       # (r2+eps)^1.5
        b.op("fdiv", F(13), fm, F(13))       # m / denom
        b.op("fmul", F(14), dx, F(13))
        b.op("fadd", accx, accx, F(14))
        b.op("fmul", F(14), dy, F(13))
        b.op("fadd", accy, accy, F(14))
        b.op("fmul", F(14), dz, F(13))
        b.op("fadd", accz, accz, F(14))

    # ------------------------------------------------------------------

    def _reference(self):
        pos, mass = self._pos, self._mass
        cpos = np.zeros((NCELL, 3))
        cmass = np.zeros(NCELL)
        for c in range(NCELL):
            sl = slice(c * BODIES_PER_CELL, (c + 1) * BODIES_PER_CELL)
            w = mass[sl]
            cmass[c] = w.sum()
            cpos[c] = (pos[sl] * w[:, None]).sum(axis=0) / cmass[c]
        acc = np.zeros((NBODY, 3))

        def kick(a, d, r2, m):
            denom = (r2 + EPS) * np.sqrt(r2 + EPS)
            return a + m * d / denom

        for i in range(NBODY):
            # even-indexed cells fold into one accumulator, odd-indexed
            # into another, merged at the end (mirrors the simulator's
            # interleaved pair schedule; per-accumulator order identical)
            halves = [np.zeros(3), np.zeros(3)]
            for c in range(NCELL):
                a = halves[c & 1]
                d = cpos[c] - pos[i]
                r2 = (d * d).sum()
                if r2 < OPEN_R2:
                    for ch in range(NCHILD):
                        ci = self._chidx[2 * c + ch]
                        dd = self._child_pos[ci] - pos[i]
                        rr2 = (dd * dd).sum()
                        a = kick(a, dd, rr2, self._child_mass[ci])
                else:
                    a = kick(a, d, r2, cmass[c])
                halves[c & 1] = a
            acc[i] = halves[0] + halves[1]
        energy = (acc ** 2).sum()
        return acc, energy

    def verify(self, ex: Executor, program: Program) -> None:
        want_acc, want_e = self._reference()
        mem = ex.mem
        got = np.stack([
            mem.read_f64_array(program.symbol_addr("ax"), NBODY),
            mem.read_f64_array(program.symbol_addr("ay"), NBODY),
            mem.read_f64_array(program.symbol_addr("az"), NBODY)], axis=1)
        if not np.allclose(got, want_acc, rtol=1e-9):
            raise VerificationError("barnes: accelerations mismatch")
        got_e = mem.read_f64_array(program.symbol_addr("energy"), 1)[0]
        if not np.isclose(got_e, want_e, rtol=1e-9):
            raise VerificationError("barnes: energy mismatch")
