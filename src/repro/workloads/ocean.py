"""ocean -- eddy currents in an ocean basin (SPLASH-2 proxy)
(Table 4: parallel but not vectorizable; 96% opportunity).

The SPLASH-2 ocean kernel's time goes into red-black Gauss-Seidel
relaxation sweeps of elliptic solvers.  Red-black sweeps with a shared
convergence test defeat the vectorizer (the paper lists ocean with no
vectorization at all), but rows parallelise cleanly across threads with
a barrier per colour.  Per-thread ILP is low -- each point update is a
short chain of adds feeding a multiply, between dependent loads -- which
is exactly why eight simple lane-cores beat two wide SMT cores on it
(Figure 6).

The grid is sized so the working set exceeds a 16 KB L1, as in the
paper's runs (CMT threads miss to the banked L2 just like lane cores).
The final residual reduction is the small serial tail.
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..isa.builder import F, ProgramBuilder, S
from ..isa.program import Program
from .base import VerificationError, Workload, register
from .common import (R_TID, counted_loop, emit_chunk, parallel_barrier,
                     serial_section, spmd_prologue)

G = 58             # grid edge including boundary; interior is (G-2)^2
ITERS = 3
H2 = 0.01


@register
class Ocean(Workload):
    """Red-black Gauss-Seidel relaxation, scalar, row-parallel."""

    name = "ocean"
    vectorizable = False
    parallel_phases = [True, True] * ITERS + [True, False]

    def build(self, scalar_only: bool = False) -> Program:
        rng = np.random.default_rng(23)
        u0 = rng.random((G, G))
        f = rng.random((G, G))
        self._u0, self._f = u0, f

        b = ProgramBuilder("ocean", memory_kib=512)
        b.data_f64("u", u0.reshape(-1))
        b.data_f64("f", f.reshape(-1))
        b.data_f64("resid", 1)
        spmd_prologue(b)

        interior = G - 2
        for _ in range(ITERS):
            for colour in (0, 1):
                lo, hi, t0 = S(1), S(2), S(3)
                emit_chunk(b, interior, lo, hi, t0)
                row = S(4)
                fh2, fq = F(21), F(22)
                b.op("fli", fh2, H2)
                b.op("fli", fq, 0.25)
                with counted_loop(b, row, hi, start=lo):
                    i = S(5)                   # grid row = row + 1
                    b.op("addi", i, row, 1)
                    # first interior column of this colour in row i:
                    # j0 = 1 + ((i + colour) & 1)
                    j = S(6)
                    b.op("addi", j, i, colour)
                    b.op("andi", j, j, 1)
                    b.op("addi", j, j, 1)
                    # address of u[i][j0]
                    ua = S(8)
                    b.op("muli", ua, i, G * 8)
                    t1 = S(9)
                    b.op("slli", t1, j, 3)
                    b.op("add", ua, ua, t1)
                    # UNROLL x 4: same-colour points are independent, so
                    # the loads of four points issue back-to-back and the
                    # update chains interleave -- the schedule a compiler
                    # produces for a 2-way in-order core with decoupled
                    # 10-cycle loads (paper Section 5).
                    grp = S(10)
                    gend = S(11)
                    b.op("li", gend, (G - 2) // 8)
                    up = [F(1), F(2), F(3), F(4)]
                    dn = [F(5), F(6), F(7), F(8)]
                    lf = [F(9), F(10), F(11), F(12)]
                    rt = [F(13), F(14), F(15), F(16)]
                    fc = [F(17), F(18), F(19), F(20)]
                    with counted_loop(b, grp, gend):
                        for q in range(4):
                            o = q * 16
                            b.op("fld", up[q], (b.addr_of("u") - G * 8 + o, ua))
                            b.op("fld", dn[q], (b.addr_of("u") + G * 8 + o, ua))
                            b.op("fld", lf[q], (b.addr_of("u") - 8 + o, ua))
                            b.op("fld", rt[q], (b.addr_of("u") + 8 + o, ua))
                            b.op("fld", fc[q], (b.addr_of("f") + o, ua))
                        for q in range(4):
                            b.op("fadd", up[q], up[q], dn[q])
                            b.op("fadd", lf[q], lf[q], rt[q])
                        for q in range(4):
                            b.op("fmul", fc[q], fc[q], fh2)
                            b.op("fadd", up[q], up[q], lf[q])
                        for q in range(4):
                            b.op("fsub", up[q], up[q], fc[q])
                            b.op("fmul", up[q], up[q], fq)
                        for q in range(4):
                            b.op("fst", up[q], (b.addr_of("u") + q * 16, ua))
                        b.op("addi", ua, ua, 64)
                parallel_barrier(b)

        # residual reduction: per-thread row partials (parallel, with
        # four partial accumulators so the loads pipeline), then a tiny
        # thread-0 combine -- SPLASH-2 ocean reduces in parallel too.
        parts = b.data_f64("resid_parts", 8)
        lo, hi, t0 = S(1), S(2), S(3)
        emit_chunk(b, G - 2, lo, hi, t0)
        accs = [F(1), F(2), F(3), F(4)]
        for f in accs:
            b.op("fli", f, 0.0)
        row = S(4)
        with counted_loop(b, row, hi, start=lo):
            i = S(5)
            b.op("addi", i, row, 1)
            ua = S(6)
            b.op("muli", ua, i, G * 8)
            b.op("addi", ua, ua, b.addr_of("u") + 8)
            grp, gend = S(7), S(8)
            b.op("li", gend, (G - 2) // 4)
            with counted_loop(b, grp, gend):
                for q in range(4):
                    b.op("fld", F(5 + q), (q * 8, ua))
                for q in range(4):
                    b.op("fadd", accs[q], accs[q], F(5 + q))
                b.op("addi", ua, ua, 32)
        b.op("fadd", accs[0], accs[0], accs[1])
        b.op("fadd", accs[2], accs[2], accs[3])
        b.op("fadd", accs[0], accs[0], accs[2])
        pa = S(5)
        b.op("slli", pa, R_TID, 3)
        b.op("addi", pa, pa, parts.addr)
        b.op("fst", accs[0], (0, pa))
        parallel_barrier(b)
        with serial_section(b):
            acc = F(1)
            b.op("fli", acc, 0.0)
            pa = S(1)
            b.op("li", pa, parts.addr)
            t, tend = S(2), S(3)
            b.op("li", tend, 8)
            with counted_loop(b, t, tend):
                b.op("fld", F(2), (0, pa))
                b.op("fadd", acc, acc, F(2))
                b.op("addi", pa, pa, 8)
            b.op("li", S(4), b.addr_of("resid"))
            b.op("fst", acc, (0, S(4)))
        b.op("halt")
        return b.build()

    # ------------------------------------------------------------------

    def _reference(self):
        u = self._u0.copy()
        f = self._f
        for _ in range(ITERS):
            for colour in (0, 1):
                for i in range(1, G - 1):
                    j0 = 1 + ((i + colour) & 1)
                    for j in range(j0, G - 1, 2):
                        u[i, j] = 0.25 * (u[i - 1, j] + u[i + 1, j]
                                          + u[i, j - 1] + u[i, j + 1]
                                          - H2 * f[i, j])
        resid = u[1:G - 1, 1:G - 1].sum()
        return u, resid

    def verify(self, ex: Executor, program: Program) -> None:
        want_u, want_r = self._reference()
        got = ex.mem.read_f64_array(program.symbol_addr("u"),
                                    G * G).reshape(G, G)
        if not np.allclose(got, want_u, rtol=1e-12):
            raise VerificationError("ocean: grid mismatch")
        got_r = ex.mem.read_f64_array(program.symbol_addr("resid"), 1)[0]
        # per-thread partial sums reorder the reduction; compare loosely
        if not np.isclose(got_r, want_r, rtol=1e-9):
            raise VerificationError("ocean: residual mismatch")
