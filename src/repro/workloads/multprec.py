"""multprec -- multiprecision array arithmetic
(Table 4: 71% vect, avg VL 25.2, common VLs 23, 24, 64).

Arbitrary-precision fixed-point numbers stored as ``D = 24`` digits of
base 2^20 in int64 words.  For an array of ``M`` numbers the kernel
computes, per number (parallel across numbers):

* ``R = X + Y`` and ``P = X * SC`` digit-wise (VL 24 integer vector ops),
* two vectorised carry-save passes: split each digit into value and
  carry (VL 24), then add the carries into the next-higher digits with a
  shifted-by-one-word vector pass (VL 23 -- the source of the paper's
  "23" common vector length),
* one final *scalar* sequential carry propagation (the inherently serial
  digit recurrence that keeps multiprec at ~71% vectorization).

A frame-level masking/checksum pass over the flattened digit arrays runs
at VL 64, and a serial audit phase (thread 0) closes the program.
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..isa.builder import F, ProgramBuilder, S, V
from ..isa.program import Program
from .base import VerificationError, Workload, register
from .common import (R_TID, counted_loop, emit_chunk, parallel_barrier,
                     serial_section, spmd_prologue)

D = 24                 # digits per number
BASE_BITS = 20
MASK = (1 << BASE_BITS) - 1
M = 48                 # numbers
SC = 37                # small scalar multiplier
SERIAL_NUMBERS = 28    # numbers audited in the serial phase


def _value(digits: np.ndarray) -> int:
    return sum(int(d) << (BASE_BITS * k) for k, d in enumerate(digits))


@register
class MultPrec(Workload):
    """Multiprecision digit-array arithmetic with VL 23/24/64 profile."""

    name = "multprec"
    vectorizable = True
    parallel_phases = [True, True, False]

    def build(self, scalar_only: bool = False) -> Program:
        if scalar_only:
            raise ValueError("multprec has no scalar-threads flavour")
        rng = np.random.default_rng(5)
        x = rng.integers(0, 1 << (BASE_BITS - 1), size=(M, D), dtype=np.int64)
        y = rng.integers(0, 1 << (BASE_BITS - 1), size=(M, D), dtype=np.int64)
        # keep the top digit small so no final carry overflows the width
        x[:, -1] &= 0x3FF
        y[:, -1] &= 0x3FF
        self._x, self._y = x, y

        b = ProgramBuilder("multprec", memory_kib=512)
        b.data_i64("X", x.reshape(-1))
        b.data_i64("Y", y.reshape(-1))
        b.data_i64("R", M * D)
        b.data_i64("P", M * D)
        b.data_i64("ctmp", 8 * D)        # per-thread carry scratch
        b.data_i64("masked", M * D)
        b.data_i64("check", 2)

        spmd_prologue(b)

        # ------------- phase 1: per-number arithmetic (parallel) -----------
        lo, hi, t0 = S(1), S(2), S(3)
        emit_chunk(b, M, lo, hi, t0)
        num = S(4)
        vlen = S(5)
        mask_r = S(6)
        b.op("li", mask_r, MASK)
        shift_r = S(7)
        b.op("li", shift_r, BASE_BITS)
        sc_r = S(8)
        b.op("li", sc_r, SC)
        # per-thread carry scratch base
        csc = S(9)
        b.op("muli", csc, R_TID, D * 8)
        b.op("addi", csc, csc, b.addr_of("ctmp"))

        with counted_loop(b, num, hi, start=lo):
            off = S(10)
            b.op("muli", off, num, D * 8)
            xa, ya, ra, pa = S(11), S(12), S(13), S(14)
            b.op("addi", xa, off, b.addr_of("X"))
            b.op("addi", ya, off, b.addr_of("Y"))
            b.op("addi", ra, off, b.addr_of("R"))
            b.op("addi", pa, off, b.addr_of("P"))

            b.op("li", t0, D)
            b.op("setvl", vlen, t0)
            # R = X + Y ; P = X * SC  (digit-wise)
            b.op("vld", V(1), (0, xa))
            b.op("vld", V(2), (0, ya))
            b.op("vadd.vv", V(3), V(1), V(2))
            b.op("vst", V(3), (0, ra))
            b.op("vmul.vs", V(4), V(1), sc_r)
            b.op("vst", V(4), (0, pa))

            # two vector carry-save passes for each result
            for res_a in (ra, pa):
                for _ in range(2):
                    b.op("li", t0, D)
                    b.op("setvl", vlen, t0)
                    b.op("vld", V(1), (0, res_a))
                    b.op("vsra.vs", V(2), V(1), shift_r)   # carries
                    b.op("vand.vs", V(3), V(1), mask_r)    # digit values
                    b.op("vst", V(3), (0, res_a))
                    b.op("vst", V(2), (0, csc))
                    b.op("li", t0, D - 1)                  # VL 23 shifted add
                    b.op("setvl", vlen, t0)
                    b.op("vld", V(4), (0, csc))
                    b.op("vld", V(5), (8, res_a))
                    b.op("vadd.vv", V(5), V(5), V(4))
                    b.op("vst", V(5), (8, res_a))

            # final scalar sequential carry propagation (exact)
            for res_a in (ra, pa):
                carry = S(15)
                b.op("li", carry, 0)
                k, kend = S(16), S(17)
                b.op("li", kend, D)
                da = S(18)
                b.mv(da, res_a)
                with counted_loop(b, k, kend):
                    v = S(19)
                    b.op("ld", v, (0, da))
                    b.op("add", v, v, carry)
                    b.op("sra", carry, v, shift_r)
                    b.op("and", v, v, mask_r)
                    b.op("st", v, (0, da))
                    b.op("addi", da, da, 8)
        parallel_barrier(b)

        # ------------- phase 2: flattened masking pass (parallel, VL 64) ----
        lo2, hi2 = S(1), S(2)
        total = M * D
        emit_chunk(b, total // 64, lo2, hi2, S(3))   # strips of 64
        strip = S(4)
        b.op("li", t0, 64)
        b.op("setvl", vlen, t0)
        b.op("li", mask_r, 0xFFFF)
        with counted_loop(b, strip, hi2, start=lo2):
            addr = S(10)
            b.op("muli", addr, strip, 64 * 8)
            b.op("addi", addr, addr, b.addr_of("R"))
            out = S(11)
            b.op("muli", out, strip, 64 * 8)
            b.op("addi", out, out, b.addr_of("masked"))
            b.op("vld", V(1), (0, addr))
            b.op("vand.vs", V(2), V(1), mask_r)
            b.op("vst", V(2), (0, out))
        parallel_barrier(b)

        # ------------- phase 3: serial audit (thread 0) ---------------------
        with serial_section(b):
            acc = S(1)
            b.op("li", acc, 0)
            n, nend = S(2), S(3)
            b.op("li", nend, SERIAL_NUMBERS)
            with counted_loop(b, n, nend):
                da = S(4)
                b.op("muli", da, n, D * 8)
                b.op("addi", da, da, b.addr_of("R"))
                k, kend = S(5), S(6)
                b.op("li", kend, D)
                with counted_loop(b, k, kend):
                    v = S(7)
                    b.op("ld", v, (0, da))
                    b.op("muli", v, v, 3)
                    b.op("add", acc, acc, v)
                    b.op("addi", da, da, 8)
            b.op("li", S(8), b.addr_of("check"))
            b.op("st", acc, (0, S(8)))
        b.op("halt")
        return b.build()

    # ------------------------------------------------------------------

    def verify(self, ex: Executor, program: Program) -> None:
        x, y = self._x, self._y
        mem = ex.mem
        r = mem.read_i64_array(program.symbol_addr("R"), M * D).reshape(M, D)
        p = mem.read_i64_array(program.symbol_addr("P"), M * D).reshape(M, D)
        if (r < 0).any() or (r > MASK).any():
            raise VerificationError("multprec: R digits not normalised")
        if (p < 0).any() or (p > MASK).any():
            raise VerificationError("multprec: P digits not normalised")
        for i in range(M):
            if _value(r[i]) != _value(x[i]) + _value(y[i]):
                raise VerificationError(f"multprec: R[{i}] wrong value")
            if _value(p[i]) != _value(x[i]) * SC:
                raise VerificationError(f"multprec: P[{i}] wrong value")
        masked = mem.read_i64_array(program.symbol_addr("masked"), M * D)
        if not np.array_equal(masked, r.reshape(-1) & 0xFFFF):
            raise VerificationError("multprec: masked pass wrong")
        check = mem.read_i64_array(program.symbol_addr("check"), 1)[0]
        want = int((r[:SERIAL_NUMBERS] * 3).sum())
        if check != want:
            raise VerificationError("multprec: serial checksum wrong")
