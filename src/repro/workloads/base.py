"""Workload abstraction and registry.

Each paper application (Table 4) is a :class:`Workload` subclass that

* builds a self-contained SPMD :class:`~repro.isa.program.Program`
  (optionally in a ``scalar_only`` flavour for the lanes-as-cores
  experiments, where the lane cores cannot execute vector instructions),
* verifies its own results against a NumPy reference after functional
  execution (the simulated kernels compute real answers), and
* declares which barrier-delimited phases are parallel, which drives the
  Table 4 "opportunity" metric.

Programs are SPMD: the same binary runs with any supported thread count
(``tid``/``ntid`` chunking), which is exactly how the VLT experiments
vary thread counts across machine configurations.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple, Type

from ..functional.executor import Executor
from ..isa.program import Program


class VerificationError(AssertionError):
    """A workload's simulated output does not match its reference."""


class Workload(abc.ABC):
    """One application from the paper's Table 4."""

    #: canonical application name (Table 4 spelling)
    name: str = ""
    #: does the base (non-scalar_only) flavour contain vector code?
    vectorizable: bool = True
    #: is the program built by the mini-compiler (and therefore able to
    #: honour a vectorization strategy)?  Hand-written apps ignore the
    #: strategy knob entirely.
    compiled: bool = False
    #: thread counts the program supports
    thread_counts: Tuple[int, ...] = (1, 2, 4, 8)
    #: per barrier-delimited phase: does VLT multithreading apply?
    #: None means every phase is parallel.
    parallel_phases: Optional[List[bool]] = None

    def __init__(self) -> None:
        self._cache: Dict[Tuple[bool, str], Program] = {}

    # -- to implement --------------------------------------------------------

    @abc.abstractmethod
    def build(self, scalar_only: bool = False) -> Program:
        """Construct the program (uncached).

        Compiled workloads (``compiled = True``) additionally accept a
        ``strategy`` keyword selecting the vectorization strategy.
        """

    @abc.abstractmethod
    def verify(self, ex: Executor, program: Program) -> None:
        """Raise :class:`VerificationError` unless results are correct."""

    # -- provided -------------------------------------------------------------

    def program(self, scalar_only: bool = False,
                strategy: str = "auto") -> Program:
        """Cached program instance for the requested flavour.

        Non-vectorizable apps have a single flavour (``build`` ignores
        ``scalar_only``), so the cache key is canonicalised to ``False``
        for them: both flavours alias one Program regardless of which
        was requested first.  The vectorization ``strategy`` is likewise
        canonicalised to ``"auto"`` for hand-written (non-``compiled``)
        apps and for the scalar flavour (no vector code to reshape), so
        a full-matrix strategy sweep aliases rather than duplicates the
        programs the strategy cannot affect.  Unknown strategy names
        raise :class:`repro.compiler.VectorizationError`.
        """
        from ..compiler import VectStrategy
        strategy = VectStrategy.parse(strategy).value
        flavour = scalar_only and self.vectorizable
        if not self.compiled or flavour:
            strategy = "auto"
        key = (flavour, strategy)
        if key not in self._cache:
            if self.compiled and strategy != "auto":
                prog = self.build(scalar_only=scalar_only,
                                  strategy=strategy)
            else:
                prog = self.build(scalar_only=scalar_only)
            # gate every workload program through the static verifier
            # once per build; LintError here means the workload itself
            # is wrong, not the simulator
            from ..verify import check  # deferred: verify imports timing
            check(prog)
            self._cache[key] = prog
        return self._cache[key]

    def run_and_verify(self, num_threads: int = 1,
                       scalar_only: bool = False,
                       strategy: str = "auto") -> Executor:
        """Functional run + self-check; returns the executor."""
        prog = self.program(scalar_only=scalar_only, strategy=strategy)
        ex = Executor(prog, num_threads=num_threads, record_trace=False)
        ex.run()
        self.verify(ex, prog)
        return ex

    def phase_parallel_mask(self, nphases: int) -> List[bool]:
        """Parallel/serial flag per phase, padded/truncated to nphases."""
        if self.parallel_phases is None:
            return [True] * nphases
        mask = list(self.parallel_phases)
        if len(mask) < nphases:
            # repeat the declared pattern (time-stepped workloads)
            reps = -(-nphases // len(mask))
            mask = (mask * reps)[:nphases]
        return mask[:nphases]


#: name -> workload class; populated by ``register``.
_REGISTRY: Dict[str, Type[Workload]] = {}
_INSTANCES: Dict[str, Workload] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise ValueError(f"workload class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str) -> Workload:
    """Singleton workload instance by name (programs are cached on it)."""
    if name not in _INSTANCES:
        try:
            _INSTANCES[name] = _REGISTRY[name]()
        except KeyError:
            raise KeyError(f"unknown workload {name!r}; "
                           f"known: {sorted(_REGISTRY)}") from None
    return _INSTANCES[name]


def all_workload_names() -> List[str]:
    """Registered workload names in Table 4 order."""
    order = ["mxm", "sage", "mpenc", "trfd", "multprec", "bt",
             "radix", "ocean", "barnes"]
    return [n for n in order if n in _REGISTRY] + sorted(
        set(_REGISTRY) - set(order))


def compiled_workload_names() -> List[str]:
    """Names of the mini-compiler-built workloads (strategy-sweepable)."""
    return [n for n in all_workload_names() if _REGISTRY[n].compiled]


def reset_workload_instances() -> None:
    """Drop cached instances/programs (tests)."""
    _INSTANCES.clear()
