"""Shared helpers for hand-written SPMD workload kernels.

Hand-written workloads (the short-vector and scalar applications, whose
control structure is too irregular for the mini-compiler) use these
helpers for the standard SPMD patterns: the thread prologue, static
chunking of an iteration range across threads, and thread-0-only serial
sections.

Register conventions for hand-written kernels:

* ``s28`` holds ``tid`` and ``s29`` holds ``ntid`` after
  :func:`spmd_prologue`;
* everything else is the kernel author's business.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

from ..isa.builder import ProgramBuilder, S
from ..isa.registers import Reg

#: Conventional registers for thread id / thread count.
R_TID = S(28)
R_NTID = S(29)
S0 = S(0)


def spmd_prologue(b: ProgramBuilder) -> Tuple[Reg, Reg]:
    """Emit the SPMD prologue (vltcfg + tid/ntid); returns (tid, ntid)."""
    b.op("vltcfg", 0)
    b.op("tid", R_TID)
    b.op("ntid", R_NTID)
    return R_TID, R_NTID


def emit_chunk(b: ProgramBuilder, n: int, lo: Reg, hi: Reg,
               tmp: Reg) -> None:
    """Compute this thread's static chunk ``[lo, hi)`` of ``range(n)``.

    ``chunk = ceil(n / ntid); lo = min(tid*chunk, n); hi = min(lo+chunk, n)``.
    """
    b.op("li", tmp, n)
    b.op("addi", lo, R_NTID, -1)
    b.op("add", lo, lo, tmp)
    b.op("div", lo, lo, R_NTID)          # lo = chunk
    b.op("mul", hi, R_TID, lo)           # hi = tid*chunk
    b.op("add", lo, hi, lo)              # lo = tid*chunk + chunk
    b.op("min", hi, hi, tmp)
    b.op("min", lo, lo, tmp)
    # swap: we computed (start in hi, end in lo); normalise to (lo, hi)
    b.op("add", tmp, hi, S0)
    b.op("add", hi, lo, S0)
    b.op("add", lo, tmp, S0)


@contextmanager
def serial_section(b: ProgramBuilder) -> Iterator[None]:
    """Thread-0-only block followed by a barrier (serial program phase)."""
    skip = b.genlabel("serial")
    b.op("bne", R_TID, S0, skip)
    yield
    b.label(skip)
    b.op("barrier")


def parallel_barrier(b: ProgramBuilder) -> None:
    """End-of-parallel-phase barrier."""
    b.op("barrier")


def emit_parallel_reduce_f64(b: ProgramBuilder, value: Reg,
                             parts_symbol: str, out_symbol: str,
                             tmp: Reg, facc: Reg, ftmp: Reg) -> None:
    """Standard SPMD sum-reduction of one f64 ``value`` per thread.

    Each thread stores ``value`` (an f-register) into its slot of the
    8-entry ``parts_symbol`` array; after a barrier, thread 0 sums the
    slots into ``out_symbol`` and a trailing barrier publishes it.
    Unused slots must be zero (the data image guarantees this on first
    use).  Clobbers ``tmp`` (s-reg) and ``facc``/``ftmp`` (f-regs).
    """
    b.op("slli", tmp, R_TID, 3)
    b.op("addi", tmp, tmp, b.addr_of(parts_symbol))
    b.op("fst", value, (0, tmp))
    parallel_barrier(b)
    with serial_section(b):
        b.op("li", tmp, b.addr_of(parts_symbol))
        b.op("fli", facc, 0.0)
        for i in range(8):
            b.op("fld", ftmp, (i * 8, tmp))
            b.op("fadd", facc, facc, ftmp)
        b.op("li", tmp, b.addr_of(out_symbol))
        b.op("fst", facc, (0, tmp))


@contextmanager
def counted_loop(b: ProgramBuilder, var: Reg, bound: Reg,
                 start: Reg | int = 0) -> Iterator[None]:
    """``for var in [start, bound)`` -- emits guard + bottom-test loop.

    ``bound`` must already hold the end value; ``start`` may be a
    register or a small constant.
    """
    if isinstance(start, int):
        b.op("li", var, start)
    else:
        b.mv(var, start)
    head = b.genlabel("loop")
    exit_ = b.genlabel("endloop")
    b.op("bge", var, bound, exit_)
    b.label(head)
    yield
    b.op("addi", var, var, 1)
    b.op("blt", var, bound, head)
    b.label(exit_)
