"""radix -- parallel LSD radix sort (SPLASH-2 structure)
(Table 4: 6% vect, avg VL 62.3; parallel but essentially scalar).

A stable least-significant-digit radix sort of 16-bit keys, 8 bits per
pass, with the SPLASH-2 parallel structure the paper ran:

1. **histogram** (parallel): each thread counts its chunk into four
   private sub-histograms (even/odd interleaved streams), the classic
   unroll-by-4 scheduling that lets an in-order core overlap its
   long-latency loads;
2. **bucket totals** (parallel): each thread owns a range of buckets and
   computes, per bucket, the total count and each thread's exclusive
   offset within the bucket;
3. **global bases** (parallel): each thread derives the global base of
   its bucket range by a redundant prefix walk and finalises the
   per-thread start table;
4. **scatter** (parallel, stable): each thread re-reads its chunk in
   order and places keys via its start-table cursors (unrolled by two
   with a same-bucket collision check);
5. **checksums**: per-thread partial sums over three prefix lengths --
   the vectorized fraction of radix (VL 64 strips with 52- and
   24-element tails, matching Table 4's common VLs); ``scalar_only``
   flavour computes the same sums with scalar loops (lane cores cannot
   run vector code);
6. a tiny thread-0 reduction of the checksum partials.

The 1024-buckets-era working set of the paper is represented by sizing
the sub-histograms plus key streams to overflow a 16 KB L1, so CMT
threads miss to the banked L2 just as lane-core threads do.
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..isa.builder import ProgramBuilder, S, V
from ..isa.program import Program
from .base import VerificationError, Workload, register
from .common import (R_NTID, R_TID, S0, counted_loop, emit_chunk,
                     parallel_barrier, serial_section, spmd_prologue)

N = 8192
BITS = 8
BUCKETS = 1 << BITS
PASSES = 16 // BITS            # 16-bit keys
MAXT = 8
NSUB = 4                       # private sub-histograms per thread
#: checksum prefix lengths: full, 64x64+52, 32x64+24
CK_LENS = (N, 64 * 64 + 52, 32 * 64 + 24)


@register
class Radix(Workload):
    """Stable parallel LSD radix sort; self-checks against np.sort."""

    name = "radix"
    vectorizable = True
    # per pass: hist, totals, bases, scatter, ck-partials (all parallel),
    # ck-reduce (serial)
    parallel_phases = [True, True, True, True, True, False] * PASSES + [False]

    def build(self, scalar_only: bool = False) -> Program:
        rng = np.random.default_rng(17)
        keys = rng.integers(0, 1 << 16, size=N, dtype=np.int64)
        self._keys = keys

        b = ProgramBuilder("radix", memory_kib=768)
        b.data_i64("A", keys)
        b.data_i64("B", N)
        b.data_i64("hist", MAXT * NSUB * BUCKETS)
        b.data_i64("start", MAXT * BUCKETS)
        b.data_i64("btot", BUCKETS)
        b.data_i64("ckpart", MAXT * len(CK_LENS))
        b.data_i64("cksum", PASSES * len(CK_LENS))
        spmd_prologue(b)

        bufs = ["A", "B"]
        for p in range(PASSES):
            self._emit_pass(b, p, bufs[p % 2], bufs[(p + 1) % 2],
                            scalar_only)
        with serial_section(b):
            pass  # final synchronisation point
        b.op("halt")
        return b.build()

    # ------------------------------------------------------------------

    def _emit_pass(self, b: ProgramBuilder, p: int, src: str, dst: str,
                   scalar_only: bool) -> None:
        shift = p * BITS
        lo, hi, t0 = S(1), S(2), S(3)

        # ================= phase 1: sub-histograms (parallel) ============
        hb = S(5)      # this thread's hist base (4 sub-histograms)
        b.op("muli", hb, R_TID, NSUB * BUCKETS * 8)
        b.op("addi", hb, hb, b.addr_of("hist"))
        # clear the four sub-histograms
        d, dend = S(6), S(7)
        b.op("li", dend, NSUB * BUCKETS)
        addr = S(8)
        b.mv(addr, hb)
        with counted_loop(b, d, dend):
            b.op("st", S0, (0, addr))
            b.op("addi", addr, addr, 8)

        emit_chunk(b, N, lo, hi, t0)
        i = S(4)
        ka = S(9)
        b.op("slli", ka, lo, 3)
        b.op("addi", ka, ka, b.addr_of(src))
        # chunk sizes are multiples of NSUB (N and MAXT are powers of 2)
        quads = S(6)
        b.op("sub", quads, hi, lo)
        b.op("srli", quads, quads, 2)
        with counted_loop(b, i, quads):
            ks = [S(10), S(11), S(12), S(13)]
            for u in range(NSUB):
                b.op("ld", ks[u], (u * 8, ka))
            for u in range(NSUB):
                b.op("srli", ks[u], ks[u], shift)
                b.op("andi", ks[u], ks[u], BUCKETS - 1)
                b.op("slli", ks[u], ks[u], 3)
                # sub-histogram u: disjoint from the others, so the four
                # count updates below are independent
                b.op("addi", ks[u], ks[u], u * BUCKETS * 8)
                b.op("add", ks[u], ks[u], hb)
            cs = [S(14), S(15), S(16), S(17)]
            for u in range(NSUB):
                b.op("ld", cs[u], (0, ks[u]))
            for u in range(NSUB):
                b.op("addi", cs[u], cs[u], 1)
                b.op("st", cs[u], (0, ks[u]))
            b.op("addi", ka, ka, NSUB * 8)
        parallel_barrier(b)

        # ===== phase 2: bucket totals + per-thread relative offsets ======
        # thread t owns buckets [t*RANGE, (t+1)*RANGE)
        rng_lo, rng_hi = S(15), S(16)
        rangesz = S(17)
        b.op("li", rangesz, BUCKETS)
        b.op("div", rangesz, rangesz, R_NTID)
        b.op("mul", rng_lo, R_TID, rangesz)
        b.op("add", rng_hi, rng_lo, rangesz)
        with counted_loop(b, d, rng_hi, start=rng_lo):
            doff = S(8)
            b.op("slli", doff, d, 3)
            run = S(9)
            b.op("li", run, 0)
            t, tend = S(10), S(11)
            b.mv(tend, R_NTID)
            vs = (S(18), S(19), S(20), S(21))
            with counted_loop(b, t, tend):
                ha = S(12)
                b.op("muli", ha, t, NSUB * BUCKETS * 8)
                b.op("add", ha, ha, doff)
                # distinct destination registers so the four loads
                # pipeline on an in-order lane core
                for u in range(NSUB):
                    b.op("ld", vs[u],
                         (b.addr_of("hist") + u * BUCKETS * 8, ha))
                tot = S(13)
                b.op("add", tot, vs[0], vs[1])
                b.op("add", tot, tot, vs[2])
                b.op("add", tot, tot, vs[3])
                sa = S(14)
                b.op("muli", sa, t, BUCKETS * 8)
                b.op("add", sa, sa, doff)
                b.op("st", run, (b.addr_of("start"), sa))
                b.op("add", run, run, tot)
            b.op("st", run, (b.addr_of("btot"), doff))
        parallel_barrier(b)

        # ===== phase 3: global bucket bases (redundant prefix walk) ======
        rangesz, rng_lo, rng_hi = S(15), S(16), S(17)
        b.op("li", rangesz, BUCKETS)
        b.op("div", rangesz, rangesz, R_NTID)
        b.op("mul", rng_lo, R_TID, rangesz)
        b.op("add", rng_hi, rng_lo, rangesz)
        base = S(5)
        b.op("li", base, 0)
        ba = S(9)
        b.op("li", ba, b.addr_of("btot"))
        # rng_lo is a multiple of 4: walk four-wide with distinct
        # registers so the loads pipeline
        quads3 = S(8)
        b.op("srli", quads3, rng_lo, 2)
        vs = (S(18), S(19), S(20), S(21))
        with counted_loop(b, d, quads3):
            for u in range(4):
                b.op("ld", vs[u], (u * 8, ba))
            b.op("add", base, base, vs[0])
            b.op("add", base, base, vs[1])
            b.op("add", base, base, vs[2])
            b.op("add", base, base, vs[3])
            b.op("addi", ba, ba, 32)
        with counted_loop(b, d, rng_hi, start=rng_lo):
            doff = S(8)
            b.op("slli", doff, d, 3)
            tot = S(9)
            b.op("ld", tot, (b.addr_of("btot"), doff))
            t, tend = S(10), S(11)
            b.mv(tend, R_NTID)
            with counted_loop(b, t, tend):
                sa = S(12)
                b.op("muli", sa, t, BUCKETS * 8)
                b.op("add", sa, sa, doff)
                v = S(13)
                b.op("ld", v, (b.addr_of("start"), sa))
                b.op("add", v, v, base)
                b.op("st", v, (b.addr_of("start"), sa))
            b.op("add", base, base, tot)
        parallel_barrier(b)

        # ================= phase 4: stable scatter (parallel) ============
        sa0 = S(5)
        b.op("muli", sa0, R_TID, BUCKETS * 8)
        b.op("addi", sa0, sa0, b.addr_of("start"))
        emit_chunk(b, N, lo, hi, t0)
        b.op("slli", ka, lo, 3)
        b.op("addi", ka, ka, b.addr_of(src))
        pairs = S(6)
        b.op("sub", pairs, hi, lo)
        b.op("srli", pairs, pairs, 1)
        with counted_loop(b, i, pairs):
            k0, k1 = S(10), S(11)
            b.op("ld", k0, (0, ka))
            b.op("ld", k1, (8, ka))
            d0, d1 = S(12), S(13)
            b.op("srli", d0, k0, shift)
            b.op("andi", d0, d0, BUCKETS - 1)
            b.op("srli", d1, k1, shift)
            b.op("andi", d1, d1, BUCKETS - 1)
            a0, a1 = S(14), S(15)
            b.op("slli", a0, d0, 3)
            b.op("add", a0, a0, sa0)
            b.op("slli", a1, d1, 3)
            b.op("add", a1, a1, sa0)
            collide = b.genlabel(f"coll{p}")
            done = b.genlabel(f"scdone{p}")
            b.op("beq", d0, d1, collide)
            off0, off1 = S(16), S(17)
            b.op("ld", off0, (0, a0))
            b.op("ld", off1, (0, a1))
            w0, w1 = S(18), S(19)
            b.op("slli", w0, off0, 3)
            b.op("slli", w1, off1, 3)
            b.op("st", k0, (b.addr_of(dst), w0))
            b.op("st", k1, (b.addr_of(dst), w1))
            b.op("addi", off0, off0, 1)
            b.op("addi", off1, off1, 1)
            b.op("st", off0, (0, a0))
            b.op("st", off1, (0, a1))
            b.op("j", done)
            b.label(collide)                        # same bucket: sequential
            b.op("ld", off0, (0, a0))
            b.op("slli", w0, off0, 3)
            b.op("st", k0, (b.addr_of(dst), w0))
            b.op("st", k1, (b.addr_of(dst) + 8, w0))
            b.op("addi", off0, off0, 2)
            b.op("st", off0, (0, a0))
            b.label(done)
            b.op("addi", ka, ka, 16)
        parallel_barrier(b)

        # ===== phase 5: checksum partials over this thread's chunk ========
        # thread t sums dst[lo, min(hi, L)) for each prefix length L
        emit_chunk(b, N, lo, hi, t0)
        for ci, ln in enumerate(CK_LENS):
            up = S(5)
            b.op("li", up, ln)
            b.op("min", up, up, hi)
            acc_s = S(6)
            b.op("li", acc_s, 0)
            if scalar_only:
                # four-wide unrolled sum (chunk/prefix cuts are all
                # multiples of 4 by construction) with distinct load
                # registers, so the loads pipeline on a lane core
                addr2 = S(7)
                b.op("slli", addr2, lo, 3)
                b.op("addi", addr2, addr2, b.addr_of(dst))
                j = S(8)
                q4 = S(9)
                b.op("sub", q4, up, lo)
                b.op("max", q4, q4, S0)
                b.op("srli", q4, q4, 2)
                vs = (S(10), S(11), S(12), S(13))
                with counted_loop(b, j, q4):
                    for u in range(4):
                        b.op("ld", vs[u], (u * 8, addr2))
                    b.op("add", acc_s, acc_s, vs[0])
                    b.op("add", acc_s, acc_s, vs[1])
                    b.op("add", acc_s, acc_s, vs[2])
                    b.op("add", acc_s, acc_s, vs[3])
                    b.op("addi", addr2, addr2, 32)
            else:
                rem, vl = S(7), S(8)
                b.op("sub", rem, up, lo)
                b.op("max", rem, rem, S0)
                addr2 = S(9)
                b.op("slli", addr2, lo, 3)
                b.op("addi", addr2, addr2, b.addr_of(dst))
                head = b.genlabel(f"ckl{p}_{ci}")
                tail = b.genlabel(f"cke{p}_{ci}")
                b.op("beq", rem, S0, tail)
                b.label(head)
                b.op("setvl", vl, rem)
                b.op("vld", V(1), (0, addr2))
                b.op("vredsum", S(10), V(1))
                b.op("add", acc_s, acc_s, S(10))
                b.op("slli", S(11), vl, 3)
                b.op("add", addr2, addr2, S(11))
                b.op("sub", rem, rem, vl)
                b.op("bne", rem, S0, head)
                b.label(tail)
            slot = S(7)
            b.op("muli", slot, R_TID, len(CK_LENS) * 8)
            b.op("addi", slot, slot, ci * 8)
            b.op("st", acc_s, (b.addr_of("ckpart"), slot))
        parallel_barrier(b)

        # ===== phase 6: reduce checksum partials (thread 0) ===============
        with serial_section(b):
            for ci in range(len(CK_LENS)):
                acc_s = S(5)
                b.op("li", acc_s, 0)
                t, tend = S(6), S(7)
                b.mv(tend, R_NTID)
                with counted_loop(b, t, tend):
                    slot = S(8)
                    b.op("muli", slot, t, len(CK_LENS) * 8)
                    b.op("addi", slot, slot, ci * 8)
                    v = S(9)
                    b.op("ld", v, (b.addr_of("ckpart"), slot))
                    b.op("add", acc_s, acc_s, v)
                out = S(8)
                b.op("li", out, (p * len(CK_LENS) + ci) * 8)
                b.op("st", acc_s, (b.addr_of("cksum"), out))

    # ------------------------------------------------------------------

    def verify(self, ex: Executor, program: Program) -> None:
        keys = self._keys
        mem = ex.mem
        got = mem.read_i64_array(program.symbol_addr("A"), N)
        want = np.sort(keys)
        if not np.array_equal(got, want):
            raise VerificationError("radix: output not sorted correctly")
        cks = mem.read_i64_array(program.symbol_addr("cksum"),
                                 PASSES * len(CK_LENS))
        cur = keys.copy()
        idx = 0
        for p in range(PASSES):
            digits = (cur >> (p * BITS)) & (BUCKETS - 1)
            cur = cur[np.argsort(digits, kind="stable")]
            for ln in CK_LENS:
                if cks[idx] != int(cur[:ln].sum()):
                    raise VerificationError(
                        f"radix: checksum {idx} wrong (pass {p})")
                idx += 1
