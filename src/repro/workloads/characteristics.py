"""Workload characterisation -- reproduces the paper's Table 4.

For each application we measure, from a single-thread functional trace
and a base-machine timing run:

* **% Vect** -- percentage of vectorization measured in operations:
  vector element operations / (element operations + scalar instructions);
* **Avg VL** -- mean dynamic vector length over vector instructions;
* **Common VLs** -- the most frequent dynamic vector lengths;
* **% Opportunity** -- percentage of base-machine execution time spent
  in barrier-delimited phases the workload declares parallel (the time
  VLT multithreading can attack).

The paper's published values are kept alongside for the harness to print
paper-vs-measured rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..timing.config import BASE
from ..timing.run import simulate, trace_for
from .base import Workload, get_workload


@dataclass
class AppCharacteristics:
    """One row of Table 4."""

    name: str
    pct_vect: float
    avg_vl: float
    common_vls: Tuple[int, ...]
    pct_opportunity: Optional[float]
    total_instructions: int

    def row(self) -> Tuple[str, str, str, str, str]:
        opp = "-" if self.pct_opportunity is None else \
            f"{self.pct_opportunity:.0f}"
        avl = "-" if not self.avg_vl else f"{self.avg_vl:.1f}"
        cvl = ", ".join(str(v) for v in self.common_vls) or "-"
        return (self.name, f"{self.pct_vect:.0f}", avl, cvl, opp)


#: Paper Table 4 values: (%vect, avg VL, common VLs, %opportunity).
PAPER_TABLE4: Dict[str, Tuple[Optional[float], Optional[float],
                              Tuple[int, ...], Optional[float]]] = {
    "mxm": (96, 64.0, (64,), None),
    "sage": (94, 63.8, (64,), None),
    "mpenc": (76, 11.2, (8, 16, 64), 78),
    "trfd": (73, 22.7, (4, 20, 30, 35), 99),
    "multprec": (71, 25.2, (23, 24, 64), 81),
    "bt": (46, 7.0, (5, 10, 12), 70),
    "radix": (6, 62.3, (24, 52, 64), 90),
    "ocean": (None, None, (), 96),
    "barnes": (None, None, (), 98),
}

#: Applications with no VLT opportunity column in the paper (long vectors).
NO_OPPORTUNITY = ("mxm", "sage")


def characterize(name: str, measure_opportunity: bool = True
                 ) -> AppCharacteristics:
    """Measure one application's Table 4 row."""
    w = get_workload(name)
    prog = w.program()
    trace = trace_for(prog, 1)
    counts = trace.merged_counts()
    elem = counts["element_ops"]
    scal = counts["scalar"]
    pct_vect = 100.0 * elem / (elem + scal) if (elem + scal) else 0.0

    vls = np.concatenate([t.vector_lengths() for t in trace.threads]) \
        if counts["vector"] else np.empty(0, dtype=np.int64)
    avg_vl = float(vls.mean()) if vls.size else 0.0
    freq = Counter(vls.tolist())
    common = tuple(sorted(v for v, _ in freq.most_common(4)))

    opportunity: Optional[float] = None
    if measure_opportunity and name not in NO_OPPORTUNITY:
        result = simulate(prog, BASE, num_threads=1, trace=trace)
        durations = result.phase_durations()
        mask = w.phase_parallel_mask(len(durations))
        par = sum(d for d, m in zip(durations, mask) if m)
        opportunity = 100.0 * par / result.cycles if result.cycles else 0.0

    return AppCharacteristics(
        name=name, pct_vect=pct_vect, avg_vl=avg_vl, common_vls=common,
        pct_opportunity=opportunity,
        total_instructions=counts["total"])


def characterize_all(names: Optional[List[str]] = None,
                     measure_opportunity: bool = True
                     ) -> List[AppCharacteristics]:
    from .base import all_workload_names
    return [characterize(n, measure_opportunity)
            for n in (names or all_workload_names())]
