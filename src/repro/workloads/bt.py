"""bt -- NAS block-tridiagonal benchmark proxy
(Table 4: 46% vect, avg VL 7.0, common VLs 5, 10, 12).

Solves ``NL`` independent block-tridiagonal systems (one per grid line,
parallel across threads) of ``NC = 12`` cells with 5x5 blocks, by the
block Thomas algorithm -- the computational core of NAS BT.  The vector
profile matches the paper's bt:

* VL 5  -- block rows: G = inv(B') @ C products, h/back-substitution
  matrix-vector stages;
* VL 10 -- Gauss-Jordan inversion of the 5x5 pivot blocks operates on
  augmented ``[B' | I]`` rows of length 10;
* VL 12 -- per-line cell-scaling passes over the ``NC = 12`` cells;
* ~half the operations are scalar: coefficient assembly from the grid
  state, the ``B' = B - A G`` block product, and the
  ``t = r - A h`` stage are scalar loops (the loops of BT a vectorizing
  compiler does not vectorize), which is what pins bt at ~46%
  vectorization in the paper.

Each system is verified against a dense ``numpy.linalg.solve`` of the
assembled block-tridiagonal matrix.
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..isa.builder import F, ProgramBuilder, S, V
from ..isa.program import Program
from .base import VerificationError, Workload, register
from .common import (R_TID, S0, counted_loop, emit_chunk, parallel_barrier,
                     serial_section, spmd_prologue)

NL = 4          # independent lines (parallel dimension)
NC = 12         # cells per line (the VL-12 length)
BS = 5          # block size
W_COEF = (0.3, 0.7, 1.1, 1.9, 2.3)

# assembly coefficients (shared with the NumPy reference)
CA1, CA2, ADIAG = 0.08, 0.015, 0.01
CC1, CC2, CDIAG = 0.06, 0.02, 0.02
CB1, CB2, BDIAG = 0.10, 0.03, 4.0
CR = 1.7
CS = 0.25

_BLK = BS * BS * 8      # bytes per 5x5 block
_ROW = BS * 8           # bytes per block row
_AUGROW = 2 * BS * 8    # bytes per augmented row


def _assemble(u: np.ndarray, s: np.ndarray):
    """NumPy twin of the in-simulator assembly (exact same formulas)."""
    w = np.array(W_COEF)
    A = np.zeros((NL, NC, BS, BS))
    Bm = np.zeros((NL, NC, BS, BS))
    C = np.zeros((NL, NC, BS, BS))
    r = np.zeros((NL, NC, BS))
    for l in range(NL):
        for c in range(NC):
            ui = u[l, c]
            A[l, c] = CA1 * np.outer(ui, w) + CA2 * np.outer(w, w)
            C[l, c] = CC1 * np.outer(ui, w) + CC2 * np.outer(w, w)
            Bm[l, c] = CB1 * np.outer(ui, ui) + CB2 * np.outer(w, ui)
            A[l, c] += ADIAG * np.eye(BS)
            C[l, c] += CDIAG * np.eye(BS)
            Bm[l, c] += np.diag(BDIAG + ui)
            r[l, c] = s[l, c] * (1.0 + CR * ui)
    return A, Bm, C, r


@register
class BT(Workload):
    """Block-tridiagonal Thomas solver with the paper's bt profile."""

    name = "bt"
    vectorizable = True
    thread_counts = (1, 2, 4)
    parallel_phases = [True, True, False]

    def build(self, scalar_only: bool = False) -> Program:
        if scalar_only:
            raise ValueError("bt has no scalar-threads flavour")
        rng = np.random.default_rng(13)
        u = rng.random((NL, NC, BS))
        self._u = u

        b = ProgramBuilder("bt", memory_kib=768)
        b.data_f64("u", u.reshape(-1))
        b.data_f64("w", np.array(W_COEF))
        b.data_f64("s", NL * NC)
        for nm in ("A", "B", "C", "G"):
            b.data_f64(nm, NL * NC * BS * BS)
        for nm in ("r", "h", "x"):
            b.data_f64(nm, NL * NC * BS)
        b.data_f64("aug", 8 * BS * 2 * BS)   # per-thread [B' | I] scratch
        b.data_f64("tv", 8 * BS)             # per-thread temp vector
        b.data_f64("check", 1)

        spmd_prologue(b)

        # ---------------- phase 1: cell scaling (parallel, VL 12) ----------
        lo, hi, t0 = S(1), S(2), S(3)
        emit_chunk(b, NL, lo, hi, t0)
        line = S(4)
        vlen = S(5)
        stride = S(6)
        b.op("li", stride, BS * 8)           # u[l, c, 0] has stride BS words
        with counted_loop(b, line, hi, start=lo):
            ua = S(7)
            b.op("muli", ua, line, NC * BS * 8)
            b.op("addi", ua, ua, b.addr_of("u"))
            sa = S(8)
            b.op("muli", sa, line, NC * 8)
            b.op("addi", sa, sa, b.addr_of("s"))
            b.op("li", t0, NC)
            b.op("setvl", vlen, t0)
            f1 = F(1)
            b.op("fli", f1, CS)
            b.op("vlds", V(1), (0, ua), stride)      # u[l, :, 0]
            b.op("vfmul.vv", V(2), V(1), V(1))
            b.op("vfmul.vs", V(2), V(2), f1)
            b.op("fli", f1, 1.0)
            b.op("vfadd.vs", V(2), V(2), f1)
            b.op("vst", V(2), (0, sa))
        parallel_barrier(b)

        # ---------------- phase 2: assemble + solve (parallel) -------------
        lo, hi = S(1), S(2)
        emit_chunk(b, NL, lo, hi, t0)
        with counted_loop(b, line, hi, start=lo):
            self._emit_line(b)
        parallel_barrier(b)

        # ------- phase 3: serial residual audit ||Mx - rhs||^2 --------------
        # BT's non-parallelized tail (the paper reports 70% opportunity):
        # thread 0 recomputes the block-tridiagonal residual serially.
        with serial_section(b):
            acc = F(1)
            b.op("fli", acc, 0.0)
            l, lend = S(1), S(2)
            b.op("li", lend, NL)
            with counted_loop(b, l, lend):
                c, cend2 = S(3), S(4)
                b.op("li", cend2, NC)
                with counted_loop(b, c, cend2):
                    gidx = S(5)                     # global cell index
                    b.op("muli", gidx, l, NC)
                    b.op("add", gidx, gidx, c)
                    ca = S(6)
                    b.op("muli", ca, gidx, BS * BS * 8)
                    va = S(7)
                    b.op("muli", va, gidx, BS * 8)
                    i, iend2 = S(8), S(9)
                    b.op("li", iend2, BS)
                    with counted_loop(b, i, iend2):
                        facc = F(2)
                        ria = S(10)
                        b.op("slli", ria, i, 3)
                        b.op("add", ria, ria, va)
                        b.op("fld", facc, (b.addr_of("r"), ria))
                        b.op("fneg", facc, facc)
                        rowo = S(10)
                        b.op("muli", rowo, i, BS * 8)
                        b.op("add", rowo, rowo, ca)
                        m, mend = S(11), S(12)
                        b.op("li", mend, BS)
                        # B x_c
                        xo = S(13)
                        b.mv(xo, va)
                        bo = S(14)
                        b.mv(bo, rowo)
                        with counted_loop(b, m, mend):
                            b.op("fld", F(3), (b.addr_of("B"), bo))
                            b.op("fld", F(4), (b.addr_of("x"), xo))
                            b.op("fmul", F(3), F(3), F(4))
                            b.op("fadd", facc, facc, F(3))
                            b.op("addi", bo, bo, 8)
                            b.op("addi", xo, xo, 8)
                        # A x_{c-1} (if c > 0)
                        skipA = b.genlabel("skipA")
                        b.op("beq", c, S0, skipA)
                        b.op("addi", xo, va, -(BS * 8))
                        b.mv(bo, rowo)
                        with counted_loop(b, m, mend):
                            b.op("fld", F(3), (b.addr_of("A"), bo))
                            b.op("fld", F(4), (b.addr_of("x"), xo))
                            b.op("fmul", F(3), F(3), F(4))
                            b.op("fadd", facc, facc, F(3))
                            b.op("addi", bo, bo, 8)
                            b.op("addi", xo, xo, 8)
                        b.label(skipA)
                        # C x_{c+1} (if c < NC-1)
                        skipC = b.genlabel("skipC")
                        tcmp = S(15)
                        b.op("li", tcmp, NC - 1)
                        b.op("beq", c, tcmp, skipC)
                        b.op("addi", xo, va, BS * 8)
                        b.mv(bo, rowo)
                        with counted_loop(b, m, mend):
                            b.op("fld", F(3), (b.addr_of("C"), bo))
                            b.op("fld", F(4), (b.addr_of("x"), xo))
                            b.op("fmul", F(3), F(3), F(4))
                            b.op("fadd", facc, facc, F(3))
                            b.op("addi", bo, bo, 8)
                            b.op("addi", xo, xo, 8)
                        b.label(skipC)
                        b.op("fmul", facc, facc, facc)
                        b.op("fadd", acc, acc, facc)
            b.op("li", S(16), b.addr_of("check"))
            b.op("fst", acc, (0, S(16)))
        b.op("halt")
        return b.build()

    # ------------------------------------------------------------------
    # per-line emission (runs with `line` in S(4))
    # ------------------------------------------------------------------

    def _emit_line(self, b: ProgramBuilder) -> None:
        line = S(4)
        t0 = S(3)
        # line base offsets
        blkbase = S(7)     # byte offset of (line, 0) block
        b.op("muli", blkbase, line, NC * BS * BS * 8)
        vecbase = S(8)     # byte offset of (line, 0) vector
        b.op("muli", vecbase, line, NC * BS * 8)
        auga = S(9)        # per-thread augmented scratch
        b.op("muli", auga, R_TID, BS * 2 * BS * 8)
        b.op("addi", auga, auga, b.addr_of("aug"))
        tva = S(10)        # per-thread temp vector
        b.op("muli", tva, R_TID, BS * 8)
        b.op("addi", tva, tva, b.addr_of("tv"))

        cell = S(11)
        cend = S(12)
        b.op("li", cend, NC)
        with counted_loop(b, cell, cend):
            self._emit_assemble(b, blkbase, vecbase, cell)

        with counted_loop(b, cell, cend):
            self._emit_forward(b, blkbase, vecbase, auga, tva, cell)

        self._emit_backward(b, blkbase, vecbase, tva)

    # -- scalar assembly of A, B, C, r for one cell -------------------------

    def _emit_assemble(self, b: ProgramBuilder, blkbase, vecbase, cell):
        """Scalar coefficient assembly (the non-vectorized loops of BT)."""
        t0 = S(3)
        ca = S(13)         # cell block byte offset
        b.op("muli", ca, cell, BS * BS * 8)
        b.op("add", ca, ca, blkbase)
        va = S(14)         # cell vector byte offset
        b.op("muli", va, cell, BS * 8)
        b.op("add", va, va, vecbase)
        ua = S(15)
        b.op("addi", ua, va, b.addr_of("u"))

        i, j = S(16), S(17)
        bend = S(18)
        b.op("li", bend, BS)
        fi, fj, fw_i, fw_j, ft = F(1), F(2), F(3), F(4), F(5)
        # assembly coefficients hoisted out of the element loops
        c_a1, c_a2, c_c1, c_c2, c_b1, c_b2 = (F(8), F(9), F(10), F(11),
                                              F(12), F(13))
        for reg, val in ((c_a1, CA1), (c_a2, CA2), (c_c1, CC1),
                         (c_c2, CC2), (c_b1, CB1), (c_b2, CB2)):
            b.op("fli", reg, val)
        wbase = b.addr_of("w")
        with counted_loop(b, i, bend):
            uia = S(19)
            b.op("slli", uia, i, 3)
            b.op("add", uia, uia, ua)
            b.op("fld", fi, (0, uia))           # u_i
            wia = S(20)
            b.op("slli", wia, i, 3)
            b.op("fld", fw_i, (wbase, wia))     # w_i
            rowoff = S(21)
            b.op("muli", rowoff, i, BS * 8)
            with counted_loop(b, j, bend):
                uja = S(22)
                b.op("slli", uja, j, 3)
                wja = S(23)
                b.op("add", wja, uja, S0)
                b.op("fld", fw_j, (wbase, wja))     # w_j
                b.op("add", uja, uja, ua)
                b.op("fld", fj, (0, uja))           # u_j
                ea = S(24)                           # element byte offset
                b.op("slli", ea, j, 3)
                b.op("add", ea, ea, rowoff)
                b.op("add", ea, ea, ca)
                uw, ww = F(14), F(15)                # shared products
                b.op("fmul", uw, fi, fw_j)           # u_i * w_j
                b.op("fmul", ww, fw_i, fw_j)         # w_i * w_j
                # A and C: c1*u_i*w_j + c2*w_i*w_j
                for name, c1r, c2r in (("A", c_a1, c_a2), ("C", c_c1, c_c2)):
                    b.op("fmul", ft, uw, c1r)
                    b.op("fmul", F(7), ww, c2r)
                    b.op("fadd", ft, ft, F(7))
                    b.op("fst", ft, (b.addr_of(name), ea))
                # B: cb1*u_i*u_j + cb2*w_i*u_j
                b.op("fmul", uw, fi, fj)             # u_i * u_j
                b.op("fmul", ww, fw_i, fj)           # w_i * u_j
                b.op("fmul", ft, uw, c_b1)
                b.op("fmul", F(7), ww, c_b2)
                b.op("fadd", ft, ft, F(7))
                b.op("fst", ft, (b.addr_of("B"), ea))
            # r_i = s * (1 + CR*u_i)
            sa = S(22)
            b.op("muli", sa, cell, 8)
            ln = S(23)
            b.op("muli", ln, S(4), NC * 8)
            b.op("add", sa, sa, ln)
            fs = F(6)
            b.op("fld", fs, (b.addr_of("s"), sa))
            b.op("fli", F(7), CR)
            b.op("fmul", ft, fi, F(7))
            b.op("fli", F(7), 1.0)
            b.op("fadd", ft, ft, F(7))
            b.op("fmul", ft, ft, fs)
            ra = S(24)
            b.op("slli", ra, i, 3)
            b.op("add", ra, ra, va)
            b.op("fst", ft, (b.addr_of("r"), ra))
            # diagonal fixups: A += ADIAG, C += CDIAG, B += BDIAG + u_i
            da = S(22)
            b.op("muli", da, i, (BS + 1) * 8)
            b.op("add", da, da, ca)
            for name, dval in (("A", ADIAG), ("C", CDIAG)):
                b.op("fld", ft, (b.addr_of(name), da))
                b.op("fli", F(6), dval)
                b.op("fadd", ft, ft, F(6))
                b.op("fst", ft, (b.addr_of(name), da))
            b.op("fld", ft, (b.addr_of("B"), da))
            b.op("fli", F(6), BDIAG)
            b.op("fadd", ft, ft, F(6))
            b.op("fadd", ft, ft, fi)
            b.op("fst", ft, (b.addr_of("B"), da))

    # -- forward elimination for one cell -----------------------------------

    def _emit_forward(self, b: ProgramBuilder, blkbase, vecbase, auga,
                      tva, cell):
        t0 = S(3)
        ca = S(13)
        b.op("muli", ca, cell, BS * BS * 8)
        b.op("add", ca, ca, blkbase)
        va = S(14)
        b.op("muli", va, cell, BS * 8)
        b.op("add", va, va, vecbase)

        # ---- build aug = [B' | I] ------------------------------------
        # B' = B - A @ G_prev (scalar block product; B' = B at cell 0)
        first = b.genlabel("first_cell")
        have_bp = b.genlabel("have_bp")
        i, j, m = S(16), S(17), S(18)
        bend = S(19)
        b.op("li", bend, BS)
        gprev = S(15)
        b.op("addi", gprev, ca, -(BS * BS * 8))   # (line, cell-1) block

        b.op("beq", cell, S0, first)
        # vector row-accumulate form: aug_row_i = B_row_i - sum_m A[i][m] *
        # Gprev_row_m (VL 5), the form the X1 compiler emits for block ops
        vlen0 = S(20)
        b.op("li", t0, BS)
        b.op("setvl", vlen0, t0)
        ba0 = S(21)
        b.op("addi", ba0, ca, b.addr_of("B"))
        ga0 = S(22)
        b.op("addi", ga0, gprev, b.addr_of("G"))
        dst0 = S(23)
        b.mv(dst0, auga)
        aoff0 = S(24)
        b.op("add", aoff0, ca, S0)                 # A row base (bytes)
        with counted_loop(b, i, bend):
            b.op("vld", V(1), (0, ba0))            # acc = B row i
            for mm in range(BS):
                b.op("fld", F(1), (b.addr_of("A") + mm * 8, aoff0))
                b.op("vld", V(2), (mm * _ROW, ga0))
                b.op("vfmul.vs", V(2), V(2), F(1))
                b.op("vfsub.vv", V(1), V(1), V(2))
            b.op("vst", V(1), (0, dst0))
            b.op("addi", ba0, ba0, _ROW)
            b.op("addi", aoff0, aoff0, _ROW)
            b.op("addi", dst0, dst0, _AUGROW)
        b.op("j", have_bp)

        b.label(first)      # cell 0: B' = B (copy rows, VL 5)
        b.op("li", t0, BS)
        vlen = S(20)
        b.op("setvl", vlen, t0)
        src = S(21)
        b.op("addi", src, ca, b.addr_of("B"))
        dst = S(22)
        b.mv(dst, auga)
        with counted_loop(b, i, bend):
            b.op("vld", V(1), (0, src))
            b.op("vst", V(1), (0, dst))
            b.op("addi", src, src, _ROW)
            b.op("addi", dst, dst, _AUGROW)
        b.label(have_bp)

        # right half = identity
        b.op("li", t0, BS)
        vlen = S(20)
        b.op("setvl", vlen, t0)
        zv = V(1)
        fz = F(1)
        b.op("fli", fz, 0.0)
        b.op("vfmv.s", zv, fz)
        dst = S(21)
        b.op("addi", dst, auga, BS * 8)
        fone = F(2)
        b.op("fli", fone, 1.0)
        for p in range(BS):
            b.op("vst", zv, (p * _AUGROW, dst))
            b.op("fst", fone, (p * _AUGROW + p * 8, dst))

        # ---- Gauss-Jordan on augmented rows (VL 10) --------------------
        b.op("li", t0, 2 * BS)
        b.op("setvl", vlen, t0)
        for p in range(BS):
            piv = F(1)
            b.op("fld", piv, (p * _AUGROW + p * 8, auga))
            b.op("fli", F(2), 1.0)
            b.op("fdiv", piv, F(2), piv)
            b.op("vld", V(1), (p * _AUGROW, auga))
            b.op("vfmul.vs", V(1), V(1), piv)
            b.op("vst", V(1), (p * _AUGROW, auga))
            for rr in range(BS):
                if rr == p:
                    continue
                fac = F(2)
                b.op("fld", fac, (rr * _AUGROW + p * 8, auga))
                b.op("vld", V(2), (rr * _AUGROW, auga))
                b.op("vfmul.vs", V(3), V(1), fac)
                b.op("vfsub.vv", V(2), V(2), V(3))
                b.op("vst", V(2), (rr * _AUGROW, auga))

        # ---- G = inv @ C (vector, VL 5) --------------------------------
        b.op("li", t0, BS)
        b.op("setvl", vlen, t0)
        inva = S(21)
        b.op("addi", inva, auga, BS * 8)         # right half rows
        cca = S(22)
        b.op("addi", cca, ca, b.addr_of("C"))
        gga = S(23)
        b.op("addi", gga, ca, b.addr_of("G"))
        fz = F(1)
        b.op("fli", fz, 0.0)
        for r in range(BS):
            b.op("vfmv.s", V(1), fz)             # acc
            for mm in range(BS):
                b.op("fld", F(2), (r * _AUGROW + mm * 8, inva))
                b.op("vld", V(2), (mm * _ROW, cca))
                b.op("vfmul.vs", V(2), V(2), F(2))
                b.op("vfadd.vv", V(1), V(1), V(2))
            b.op("vst", V(1), (r * _ROW, gga))

        # ---- t = r - A @ h_prev (scalar; t = r at cell 0) ---------------
        hprev = S(24)
        b.op("addi", hprev, va, -(BS * 8))
        rra = S(25)
        b.op("addi", rra, va, b.addr_of("r"))
        tcopy = b.genlabel("tcopy")
        tdone = b.genlabel("tdone")
        b.op("beq", cell, S0, tcopy)
        with counted_loop(b, i, bend):
            facc = F(1)
            ria = S(26)
            b.op("slli", ria, i, 3)
            b.op("add", ria, ria, rra)
            b.op("fld", facc, (0, ria))
            aoff = S(26)
            b.op("muli", aoff, i, BS * 8)
            b.op("add", aoff, aoff, ca)
            hoff = S(27)
            b.op("addi", hoff, hprev, b.addr_of("h"))
            with counted_loop(b, m, bend):
                b.op("fld", F(2), (b.addr_of("A"), aoff))
                b.op("fld", F(3), (0, hoff))
                b.op("fmul", F(2), F(2), F(3))
                b.op("fsub", facc, facc, F(2))
                b.op("addi", aoff, aoff, 8)
                b.op("addi", hoff, hoff, 8)
            tia = S(26)
            b.op("slli", tia, i, 3)
            b.op("add", tia, tia, tva)
            b.op("fst", facc, (0, tia))
        b.op("j", tdone)
        b.label(tcopy)
        b.op("vld", V(1), (0, rra))
        b.op("vst", V(1), (0, tva))
        b.label(tdone)

        # ---- h = inv @ t (vector dot rows, VL 5) ------------------------
        hha = S(26)
        b.op("addi", hha, va, b.addr_of("h"))
        b.op("vld", V(2), (0, tva))
        for r in range(BS):
            # row r of inv is strided inside aug right half (VL 5)
            sreg = S(27)
            b.op("li", sreg, 8)
            b.op("vld", V(1), (r * _AUGROW, inva))
            b.op("vfmul.vv", V(3), V(1), V(2))
            b.op("vfredsum", F(1), V(3))
            b.op("fst", F(1), (r * 8, hha))

    # -- back substitution for one line --------------------------------------

    def _emit_backward(self, b: ProgramBuilder, blkbase, vecbase, tva):
        t0 = S(3)
        vlen = S(13)
        b.op("li", t0, BS)
        b.op("setvl", vlen, t0)
        # x[NC-1] = h[NC-1]
        va = S(14)
        b.op("addi", va, vecbase, (NC - 1) * BS * 8)
        b.op("vld", V(1), (b.addr_of("h"), va))
        b.op("vst", V(1), (b.addr_of("x"), va))
        # walk cells NC-2 .. 0
        cell = S(15)
        b.op("li", cell, NC - 2)
        head = b.genlabel("bk")
        exit_ = b.genlabel("bkend")
        b.op("blt", cell, S0, exit_)
        b.label(head)
        ca = S(16)
        b.op("muli", ca, cell, BS * BS * 8)
        b.op("add", ca, ca, blkbase)
        b.op("muli", va, cell, BS * 8)
        b.op("add", va, va, vecbase)
        xna = S(17)
        b.op("addi", xna, va, BS * 8)          # x[cell+1]
        b.op("vld", V(2), (b.addr_of("x"), xna))
        gga = S(18)
        b.op("addi", gga, ca, b.addr_of("G"))
        for r in range(BS):
            b.op("vld", V(1), (r * _ROW, gga))
            b.op("vfmul.vv", V(3), V(1), V(2))
            b.op("vfredsum", F(1), V(3))
            b.op("fst", F(1), (r * 8, tva))
        b.op("vld", V(1), (b.addr_of("h"), va))
        b.op("vld", V(3), (0, tva))
        b.op("vfsub.vv", V(1), V(1), V(3))
        b.op("vst", V(1), (b.addr_of("x"), va))
        b.op("addi", cell, cell, -1)
        b.op("bge", cell, S0, head)
        b.label(exit_)

    # ------------------------------------------------------------------

    def _reference(self):
        u = self._u
        s = 1.0 + CS * u[:, :, 0] ** 2
        A, Bm, C, r = _assemble(u, s)
        X = np.zeros((NL, NC, BS))
        for l in range(NL):
            n = NC * BS
            M = np.zeros((n, n))
            rhs = np.zeros(n)
            for c in range(NC):
                M[c * BS:(c + 1) * BS, c * BS:(c + 1) * BS] = Bm[l, c]
                if c > 0:
                    M[c * BS:(c + 1) * BS, (c - 1) * BS:c * BS] = A[l, c]
                if c < NC - 1:
                    M[c * BS:(c + 1) * BS, (c + 1) * BS:(c + 2) * BS] = C[l, c]
                rhs[c * BS:(c + 1) * BS] = r[l, c]
            X[l] = np.linalg.solve(M, rhs).reshape(NC, BS)
        return X

    def verify(self, ex: Executor, program: Program) -> None:
        want = self._reference()
        got = ex.mem.read_f64_array(program.symbol_addr("x"),
                                    NL * NC * BS).reshape(NL, NC, BS)
        if not np.allclose(got, want, rtol=1e-6, atol=1e-8):
            raise VerificationError(
                f"bt solution mismatch: max err "
                f"{np.abs(got - want).max():.3e}")
        resid = ex.mem.read_f64_array(program.symbol_addr("check"), 1)[0]
        if not resid < 1e-12:
            raise VerificationError(
                f"bt residual audit failed: ||Mx-r||^2 = {resid:.3e}")
