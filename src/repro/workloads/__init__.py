"""The nine applications of the paper's Table 4, self-checking.

Importing this package registers every workload; use
:func:`get_workload` / :func:`all_workload_names` to enumerate them.
"""

from .base import (VerificationError, Workload, all_workload_names,
                   compiled_workload_names, get_workload, register,
                   reset_workload_instances)
from .characteristics import (PAPER_TABLE4, AppCharacteristics,
                              characterize, characterize_all)

# Register all workloads.
from . import mxm, sage, mpenc, trfd, multprec, bt, radix, ocean, barnes  # noqa: E402,F401

__all__ = [
    "VerificationError", "Workload", "all_workload_names",
    "compiled_workload_names", "get_workload", "register",
    "reset_workload_instances", "PAPER_TABLE4",
    "AppCharacteristics", "characterize", "characterize_all",
]
