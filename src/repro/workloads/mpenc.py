"""mpenc -- video encoding proxy
(Table 4: 76% vect, avg VL 11.2, common VLs 8, 16, 64).

A motion-estimated block encoder over one frame pair, with the vector
profile of the paper's mpenc: most vector work runs at the 8x8-block
row length (VL 8, SAD motion search + residuals), coefficient
quantisation runs on groups of 16 (VL 16), and a few frame-level passes
run at full rows (VL 64).  A scalar "entropy coding" phase (thread 0
only) provides the ~22% of execution time VLT cannot accelerate.

Phases (barrier-delimited):
  1. per-block encode: 4-candidate SAD search, residual, quantise,
     reconstruct  (parallel across blocks)
  2. frame energy of the reconstructed frame  (parallel across rows)
  3. entropy-coding checksum  (serial, thread 0)
"""

from __future__ import annotations

import numpy as np

from ..functional.executor import Executor
from ..isa.builder import F, ProgramBuilder, S, V
from ..isa.program import Program
from .base import VerificationError, Workload, register
from .common import (R_TID, S0, counted_loop, emit_chunk,
                     parallel_barrier, serial_section, spmd_prologue)

# Frame geometry: H x W visible pixels inside a padded HS x WS buffer so
# candidate offsets never read out of bounds.
H, W = 32, 64
PAD = 8
HS, WS = H + PAD, W + PAD
B = 8                                  # block edge
NBX, NBY = W // B, H // B              # 8 x 4 = 32 blocks
NBLK = NBX * NBY
CANDS = ((0, 0), (1, 0), (0, 1), (1, 1))
QSCALE = 0.125
ENTROPY_COEFFS = 64                    # coefficients sampled per block


def _frames(rng: np.random.Generator):
    ref = np.zeros((HS, WS))
    cur = np.zeros((HS, WS))
    ref[:H + 2, :W + 2] = rng.random((H + 2, W + 2))
    # current frame = reference shifted by (1, 1) plus noise, so motion
    # search has a meaningful (and per-block varying) winner
    cur[:H, :W] = ref[1:H + 1, 1:W + 1] + 0.01 * rng.random((H, W))
    return ref, cur


@register
class MPEnc(Workload):
    """Block video-encoder proxy with the paper's mpenc vector profile."""

    name = "mpenc"
    vectorizable = True
    parallel_phases = [True, True, False]

    def build(self, scalar_only: bool = False) -> Program:
        if scalar_only:
            raise ValueError("mpenc has no scalar-threads flavour")
        rng = np.random.default_rng(3)
        ref, cur = _frames(rng)
        self._ref, self._cur = ref, cur

        b = ProgramBuilder("mpenc", memory_kib=512)
        b.data_f64("ref", ref.reshape(-1))
        b.data_f64("cur", cur.reshape(-1))
        b.data_f64("res", NBLK * B * B)      # per-block residuals (contig.)
        b.data_f64("q", NBLK * B * B)        # quantised coefficients
        b.data_f64("recon", NBLK * B * B)    # reconstructed coefficients
        b.data_f64("best", NBLK)             # winning candidate index
        b.data_f64("energy", 1)
        b.data_f64("checksum", 1)

        spmd_prologue(b)

        # ---------------- phase 1: per-block encode (parallel) --------------
        lo, hi, t0 = S(1), S(2), S(3)
        emit_chunk(b, NBLK, lo, hi, t0)
        blk = S(4)
        with counted_loop(b, blk, hi, start=lo):
            bx, by = S(5), S(6)
            b.op("li", t0, NBX)
            b.op("rem", bx, blk, t0)
            b.op("div", by, blk, t0)
            # pixel origin of the block in the padded frame
            orig = S(7)
            b.op("muli", orig, by, B * WS)
            b.op("muli", t0, bx, B)
            b.op("add", orig, orig, t0)

            vlen = S(8)
            b.op("li", t0, B)
            b.op("setvl", vlen, t0)

            cbase = S(9)                      # current-frame block address
            b.op("slli", cbase, orig, 3)
            b.op("addi", cbase, cbase, b.addr_of("cur"))

            best_sad, best_cand = F(1), S(10)
            b.op("fli", best_sad, 1e18)
            b.op("li", best_cand, 0)

            # -- SAD over the candidate offsets (VL 8 rows) --
            for ci, (dx, dy) in enumerate(CANDS):
                rbase = S(11)
                b.op("muli", rbase, by, B * WS)
                b.op("muli", t0, bx, B)
                b.op("add", rbase, rbase, t0)
                b.op("addi", rbase, rbase, dy * WS + dx)
                b.op("slli", rbase, rbase, 3)
                b.op("addi", rbase, rbase, b.addr_of("ref"))

                sad = F(2)
                b.op("fli", sad, 0.0)
                ca, ra = S(12), S(13)
                b.mv(ca, cbase)
                b.mv(ra, rbase)
                row = S(14)
                rows_end = S(15)
                b.op("li", rows_end, B)
                with counted_loop(b, row, rows_end):
                    b.op("vld", V(1), (0, ca))
                    b.op("vld", V(2), (0, ra))
                    b.op("vfsub.vv", V(3), V(1), V(2))
                    b.op("vfabs.v", V(3), V(3))
                    b.op("vfredsum", F(3), V(3))
                    b.op("fadd", sad, sad, F(3))
                    b.op("addi", ca, ca, WS * 8)
                    b.op("addi", ra, ra, WS * 8)
                # keep the candidate with strictly smaller SAD
                cmp = S(16)
                b.op("flt", cmp, sad, best_sad)
                skip = b.genlabel(f"cand{ci}")
                b.op("beq", cmp, S0, skip)
                b.op("fmv", best_sad, sad)
                b.op("li", best_cand, ci)
                b.label(skip)

            # record the winner
            t1 = S(11)
            b.op("slli", t1, blk, 3)
            b.op("addi", t1, t1, b.addr_of("best"))
            fb = F(2)
            b.op("itof", fb, best_cand)
            b.op("fst", fb, (0, t1))

            # -- residual against the winning candidate (VL 8 rows) --
            # recompute the winner's ref base via a small branch tree
            rbase = S(11)
            b.op("muli", rbase, by, B * WS)
            b.op("muli", t0, bx, B)
            b.op("add", rbase, rbase, t0)
            done_lbl = b.genlabel("orig_done")
            for ci, (dx, dy) in enumerate(CANDS):
                nxt = b.genlabel(f"or{ci}")
                b.op("li", t0, ci)
                b.op("bne", best_cand, t0, nxt)
                b.op("addi", rbase, rbase, dy * WS + dx)
                b.op("j", done_lbl)
                b.label(nxt)
            b.label(done_lbl)
            b.op("slli", rbase, rbase, 3)
            b.op("addi", rbase, rbase, b.addr_of("ref"))

            resa = S(12)
            b.op("muli", resa, blk, B * B * 8)
            b.op("addi", resa, resa, b.addr_of("res"))
            ca, ra, wa = S(13), S(14), S(15)
            b.mv(ca, cbase)
            b.mv(ra, rbase)
            b.mv(wa, resa)
            row = S(16)
            rows_end = S(17)
            b.op("li", rows_end, B)
            with counted_loop(b, row, rows_end):
                b.op("vld", V(1), (0, ca))
                b.op("vld", V(2), (0, ra))
                b.op("vfsub.vv", V(3), V(1), V(2))
                b.op("vst", V(3), (0, wa))
                b.op("addi", ca, ca, WS * 8)
                b.op("addi", ra, ra, WS * 8)
                b.op("addi", wa, wa, B * 8)

            # -- quantise + reconstruct in groups of 16 (VL 16) --
            b.op("li", t0, 16)
            b.op("setvl", vlen, t0)
            qs = F(2)
            b.op("fli", qs, QSCALE)
            iqs = F(3)
            b.op("fli", iqs, 1.0 / QSCALE)
            qa, ra2 = S(13), S(14)
            b.op("muli", qa, blk, B * B * 8)
            b.op("addi", ra2, qa, b.addr_of("recon"))
            b.op("addi", qa, qa, b.addr_of("q"))
            b.mv(wa, resa)
            grp = S(16)
            grp_end = S(17)
            b.op("li", grp_end, (B * B) // 16)
            with counted_loop(b, grp, grp_end):
                b.op("vld", V(1), (0, wa))
                b.op("vfmul.vs", V(2), V(1), qs)
                b.op("vst", V(2), (0, qa))
                b.op("vfmul.vs", V(3), V(2), iqs)   # dequantise
                b.op("vst", V(3), (0, ra2))
                b.op("addi", wa, wa, 16 * 8)
                b.op("addi", qa, qa, 16 * 8)
                b.op("addi", ra2, ra2, 16 * 8)
        parallel_barrier(b)

        # ---------------- phase 2: frame energy (parallel, VL 64) -----------
        lo2, hi2 = S(1), S(2)
        emit_chunk(b, H, lo2, hi2, S(3))
        rowv = S(4)
        facc = F(1)
        b.op("fli", facc, 0.0)
        vlen = S(5)
        b.op("li", S(6), W)
        b.op("setvl", vlen, S(6))
        with counted_loop(b, rowv, hi2, start=lo2):
            addr = S(7)
            b.op("muli", addr, rowv, WS * 8)
            b.op("addi", addr, addr, b.addr_of("cur"))
            b.op("vld", V(1), (0, addr))
            b.op("vfmul.vv", V(2), V(1), V(1))
            b.op("vfredsum", F(2), V(2))
            b.op("fadd", facc, facc, F(2))
        # accumulate per-thread partial into the shared slot, one thread at
        # a time (simple barrier-ordered accumulation: thread t adds on
        # round t) -- here we instead store per-thread partials and let
        # thread 0 sum them in the serial phase.
        parts = b.data_f64("energy_parts", 8)
        addr = S(7)
        b.op("slli", addr, R_TID, 3)
        b.op("addi", addr, addr, parts.addr)
        b.op("fst", facc, (0, addr))
        parallel_barrier(b)

        # ---------------- phase 3: entropy coding checksum (serial) ---------
        with serial_section(b):
            # sum the energy partials
            ea = S(1)
            b.op("li", ea, parts.addr)
            eacc = F(1)
            b.op("fli", eacc, 0.0)
            i8 = S(2)
            end8 = S(3)
            b.op("li", end8, 8)
            with counted_loop(b, i8, end8):
                b.op("fld", F(2), (0, ea))
                b.op("fadd", eacc, eacc, F(2))
                b.op("addi", ea, ea, 8)
            b.op("li", S(4), b.addr_of("energy"))
            b.op("fst", eacc, (0, S(4)))

            # dependent scalar walk over sampled coefficients (models the
            # inherently serial entropy coder)
            ck = F(1)
            b.op("fli", ck, 0.0)
            blk2, bend = S(1), S(2)
            b.op("li", bend, NBLK)
            with counted_loop(b, blk2, bend):
                qa = S(3)
                b.op("muli", qa, blk2, B * B * 8)
                b.op("addi", qa, qa, b.addr_of("q"))
                ci, cend = S(4), S(5)
                b.op("li", cend, ENTROPY_COEFFS)
                with counted_loop(b, ci, cend):
                    b.op("fld", F(2), (0, qa))
                    b.op("fmul", F(2), F(2), F(2))
                    b.op("fadd", ck, ck, F(2))
                    b.op("addi", qa, qa, 8 * (B * B // ENTROPY_COEFFS))
            b.op("li", S(6), b.addr_of("checksum"))
            b.op("fst", ck, (0, S(6)))

        b.op("halt")
        return b.build()

    # ------------------------------------------------------------------

    def _reference(self):
        ref, cur = self._ref, self._cur
        res = np.zeros((NBLK, B, B))
        q = np.zeros((NBLK, B, B))
        recon = np.zeros((NBLK, B, B))
        best = np.zeros(NBLK)
        for blk in range(NBLK):
            bx, by = blk % NBX, blk // NBX
            y0, x0 = by * B, bx * B
            cblk = cur[y0:y0 + B, x0:x0 + B]
            best_sad, best_c = 1e18, 0
            for ci, (dx, dy) in enumerate(CANDS):
                rblk = ref[y0 + dy:y0 + dy + B, x0 + dx:x0 + dx + B]
                sad = np.abs(cblk - rblk).sum()
                if sad < best_sad:
                    best_sad, best_c = sad, ci
            best[blk] = best_c
            dx, dy = CANDS[best_c]
            rblk = ref[y0 + dy:y0 + dy + B, x0 + dx:x0 + dx + B]
            res[blk] = cblk - rblk
            q[blk] = res[blk] * QSCALE
            recon[blk] = q[blk] / QSCALE
        energy = (cur[:H, :W] ** 2).sum()
        step = B * B // ENTROPY_COEFFS
        ck = (q.reshape(NBLK, -1)[:, ::step] ** 2).sum()
        return best, res, q, recon, energy, ck

    def verify(self, ex: Executor, program: Program) -> None:
        best_w, res_w, q_w, recon_w, energy_w, ck_w = self._reference()
        mem = ex.mem
        best = mem.read_f64_array(program.symbol_addr("best"), NBLK)
        if not np.array_equal(best, best_w):
            raise VerificationError("mpenc: wrong motion winners")
        for name, want in (("res", res_w), ("q", q_w), ("recon", recon_w)):
            got = mem.read_f64_array(program.symbol_addr(name),
                                     NBLK * B * B)
            if not np.allclose(got, want.reshape(-1), rtol=1e-10):
                raise VerificationError(f"mpenc: {name} mismatch")
        energy = mem.read_f64_array(program.symbol_addr("energy"), 1)[0]
        if not np.isclose(energy, energy_w, rtol=1e-9):
            raise VerificationError("mpenc: energy mismatch")
        ck = mem.read_f64_array(program.symbol_addr("checksum"), 1)[0]
        if not np.isclose(ck, ck_w, rtol=1e-9):
            raise VerificationError("mpenc: checksum mismatch")
