"""trfd -- two-electron integral transformation proxy
(Table 4: 73% vect, avg VL 22.7, common VLs 4, 20, 30, 35).

TRFD (PERFECT Club) performs a four-index integral transformation whose
inner loops run over triangular index ranges -- the classic source of
*medium and short* vectors.  The proxy keeps that structure: per
"pair" index ``i`` (parallel across threads), a triangular transform of
length ``i + 4`` (vector lengths 4..35) plus fixed-length contraction
passes of 20, 30 and 35 elements, matching the paper's reported common
vector lengths.  Compiled with the mini-vectorizer; the short vectors
leave lanes idle on the base machine, which is exactly the VLT
opportunity (99% of time is in the parallel transform).
"""

from __future__ import annotations

import numpy as np

from ..compiler import (Array, Assign, CompileOptions, Kernel, Loop, Reduce,
                        Var, compile_kernel)
from ..functional.executor import Executor
from ..isa.program import Program
from .base import VerificationError, Workload, register


@register
class TRFD(Workload):
    """Triangular integral-transformation proxy with VLs 4..35."""

    name = "trfd"
    vectorizable = True
    compiled = True
    parallel_phases = None

    NP = 32          # pair indices (outer parallel loop)
    L20, L30, L35 = 20, 30, 35
    W = 36           # row width of the triangular workspace (>= NP+4)

    def build(self, scalar_only: bool = False,
              strategy: str = "auto") -> Program:
        if scalar_only:
            raise ValueError("trfd has no scalar-threads flavour")
        rng = np.random.default_rng(11)
        npair, w = self.NP, self.W
        xin = rng.random((npair, w))
        c20 = rng.random((npair, self.L20))
        c30 = rng.random((npair, self.L30))
        c35 = rng.random((npair, self.L35))
        self._in = (xin, c20, c30, c35)

        i, j, k, m, q2 = Var("i"), Var("j"), Var("k"), Var("m"), Var("q")
        Xin = Array("Xin", (npair, w), xin)
        C20 = Array("C20", (npair, self.L20), c20)
        C30 = Array("C30", (npair, self.L30), c30)
        C35 = Array("C35", (npair, self.L35), c35)
        T = Array("T", (npair, w))
        S = Array("S", (npair, 1))

        kern = Kernel("trfd", [
            Loop(i, npair, [
                # triangular transform: VL = i + 4 (4..35)
                Loop(j, i + 4,
                     [Assign(T[i, j], Xin[i, j] * 0.5 + Xin[i, j] * Xin[i, j])],
                     parallel=True),
                # fixed-length contractions: VLs 20, 30, 35
                Loop(k, self.L20,
                     [Reduce("+", S[i, 0], C20[i, k] * Xin[i, k])],
                     parallel=True),
                Loop(m, self.L30,
                     [Assign(T[i, m], T[i, m] + C30[i, m] * 0.25)],
                     parallel=True),
                Loop(q2, self.L35,
                     [Assign(T[i, q2], T[i, q2] + C35[i, q2] * 0.125)],
                     parallel=True),
            ], parallel=True),
        ])
        return compile_kernel(
            kern, CompileOptions(vectorize=True, policy="innermost",
                                 threads=True, memory_kib=256,
                                 strategy=strategy))

    def _reference(self):
        xin, c20, c30, c35 = self._in
        npair, w = self.NP, self.W
        T = np.zeros((npair, w))
        S = np.zeros(npair)
        for i in range(npair):
            n = i + 4
            T[i, :n] = xin[i, :n] * 0.5 + xin[i, :n] ** 2
            S[i] += (c20[i] * xin[i, :self.L20]).sum()
            T[i, :self.L30] += c30[i] * 0.25
            T[i, :self.L35] += c35[i] * 0.125
        return T, S

    def verify(self, ex: Executor, program: Program) -> None:
        T_w, S_w = self._reference()
        got_t = ex.mem.read_f64_array(program.symbol_addr("T"),
                                      self.NP * self.W
                                      ).reshape(self.NP, self.W)
        got_s = ex.mem.read_f64_array(program.symbol_addr("S"), self.NP)
        if not np.allclose(got_t, T_w, rtol=1e-10):
            raise VerificationError("trfd T mismatch")
        if not np.allclose(got_s, S_w, rtol=1e-10):
            raise VerificationError("trfd S mismatch")
