"""repro -- reproduction of "Vector Lane Threading" (ICPP 2006).

A cycle-level simulation study of VLT: running short-vector or scalar
threads on the idle lanes of a multi-lane vector processor.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.

Subpackages
-----------
``repro.isa``        the X1-flavoured vector ISA (assembler + builder)
``repro.functional`` architectural simulator producing dynamic traces
``repro.timing``     cycle-level timing models (SU, VCL, lanes, caches)
``repro.compiler``   loop-nest vectorizing compiler + outer-loop threading
``repro.workloads``  the nine paper applications, self-checking
``repro.area``       the Alpha-derived area model (Tables 1-2)
``repro.harness``    experiment drivers for every figure and table
"""

__version__ = "1.0.0"
