#!/usr/bin/env python
"""Dynamic VLT reconfiguration (paper Section 3.3).

"The program can use a different number of VLT threads in different
phases, depending on the DLP available in each phase."  This example
builds a two-phase SPMD program:

* phase A: one thread runs long-vector work (VL 64) -- it wants all 8
  lanes;
* phase B: four threads run short-vector work (VL 8) -- each is happy
  with 2 lanes.

With ``vltcfg 1`` before phase A and ``vltcfg 4`` before phase B, each
phase gets the partitioning it wants; a static 4-way split forces the
long vectors of phase A through a 2-lane partition.

Run:  python examples/dynamic_reconfiguration.py
"""

from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import V4_CMP


def program(phase_a_partitions: int):
    return assemble(f"""
    .program phased
    tid s1
    li s2, 64                       # define the vector inputs once
    setvl s3, s2
    fli f1, 1.5
    fli f2, 0.25
    vfmv.s v2, f1
    vfmv.s v3, f2
    vltcfg {phase_a_partitions}     # phase A partitioning
    bne s1, s0, skip_a              # phase A runs on thread 0 only
    li s10, 0
    li s11, 100
rep_a:                              # long vectors: wants all the lanes
    li s2, 64
    setvl s3, s2
    vfadd.vv v1, v2, v3
    vfmul.vv v4, v1, v2
    vfadd.vv v5, v4, v1
    addi s10, s10, 1
    blt s10, s11, rep_a
skip_a:
    barrier
    vltcfg 4                        # phase B: 4 threads x 2 lanes
    li s10, 0
    li s11, 80
rep_b:                              # short vectors: 2 lanes suffice
    li s2, 8
    setvl s3, s2
    vfadd.vv v1, v2, v3
    vfmul.vv v4, v1, v2
    addi s10, s10, 1
    blt s10, s11, rep_b
    barrier
    halt
    """)


def main() -> None:
    dynamic = simulate(program(1), V4_CMP, num_threads=4)
    static = simulate(program(4), V4_CMP, num_threads=4)

    print("two-phase kernel on the V4-CMP machine (4 threads):\n")
    print(f"  static 4-way partitioning : {static.cycles:>6} cycles")
    print(f"  dynamic vltcfg 1 -> 4     : {dynamic.cycles:>6} cycles "
          f"({static.cycles / dynamic.cycles:.2f}x)")
    print(f"\nphase boundaries (dynamic): "
          f"{dynamic.phase_release_cycles} of {dynamic.cycles}")
    print("\nvltcfg repartitions the lanes at quiesced region boundaries")
    print("(the paper's single ISA extension), so high-DLP phases keep")
    print("all 8 lanes while low-DLP phases trade them for threads.")


if __name__ == "__main__":
    main()
