#!/usr/bin/env python
"""VLT with vector threads: the paper's core experiment, in miniature.

A motion-search-style kernel (the mpenc profile: per-block sums of
squared differences over 8-element rows) is compiled from the loop-nest
IR with OpenMP-style outer-loop threading.  Per block there is a short
VL-8 vector reduction plus an unavoidable scalar tail (accumulate,
addressing, control) -- and on the base 8-lane machine that scalar tail
plus the short vectors leave most of the machine idle.  VLT partitions
the lanes across 2 or 4 threads whose scalar streams run on replicated
scalar units (V2-CMP / V4-CMP), recovering the throughput: the paper's
Figures 3 and 4.

Run:  python examples/vlt_short_vectors.py
"""

import numpy as np

from repro.compiler import (Array, CompileOptions, Kernel, Loop, Reduce,
                            Var, compile_kernel)
from repro.functional import Executor
from repro.timing import simulate
from repro.timing.config import BASE, V2_CMP, V4_CMP

NBLOCKS = 128
BL = 8          # block row length: short vectors


def build_program():
    rng = np.random.default_rng(0)
    x = rng.random((NBLOCKS, BL))
    y = rng.random((NBLOCKS, BL))
    i, j = Var("i"), Var("j")
    X = Array("X", (NBLOCKS, BL), x)
    Y = Array("Y", (NBLOCKS, BL), y)
    S = Array("S", (NBLOCKS, 1))
    # per-block sum of squared differences (blocks parallel, rows VL=8)
    diff = (X[i, j] - Y[i, j]) * (X[i, j] - Y[i, j])
    kern = Kernel("blocksad", [
        Loop(i, NBLOCKS, [
            Loop(j, BL, [Reduce("+", S[i, 0], diff)], parallel=True),
        ], parallel=True),
    ])
    prog = compile_kernel(kern, CompileOptions(threads=True,
                                               policy="innermost"))
    return prog, x, y


def main() -> None:
    prog, x, y = build_program()

    # functional check at 4 threads
    ex = Executor(prog, num_threads=4)
    ex.run()
    got = ex.mem.read_f64_array(prog.symbol_addr("S"), NBLOCKS)
    assert np.allclose(got, ((x - y) ** 2).sum(axis=1))
    print("functional result verified (4 threads)\n")

    runs = [("base (1 thread, 8 lanes)", BASE, 1),
            ("V2-CMP (2 threads x 4 lanes)", V2_CMP, 2),
            ("V4-CMP (4 threads x 2 lanes)", V4_CMP, 4)]
    base_cycles = None
    print(f"{'configuration':<30} {'cycles':>8} {'speedup':>8}  "
          f"busy/stall/idle")
    for label, cfg, nt in runs:
        r = simulate(prog, cfg, num_threads=nt)
        base_cycles = base_cycles or r.cycles
        f = r.utilization.fractions()
        print(f"{label:<30} {r.cycles:>8} "
              f"{base_cycles / r.cycles:>7.2f}x  "
              f"{f['busy']:.0%}/{f['stalled']:.0%}"
              f"/{f['all_idle'] + f['partly_idle']:.0%}")
    print("\nVLT turns idle lane slots into thread-level parallelism "
          "(paper Figs. 3-4): the short-vector reductions cannot use 8 "
          "lanes, but 4 threads with replicated scalar units can.")


if __name__ == "__main__":
    main()
