#!/usr/bin/env python
"""Scalar threads on the vector lanes vs a conventional CMP (Figure 6).

Runs the paper's non-vectorizable applications -- here ocean (red-black
relaxation) -- in two ways:

* **VLT-scalar**: 8 scalar threads, one per lane, each lane operating
  as a 2-way in-order core with a 4 KB I-cache and decoupled L2 access;
* **CMT**: the same program with 4 threads on two 4-way out-of-order,
  2-way-SMT scalar units (the V4-CMT machine without its vector unit).

Run:  python examples/scalar_threads_on_lanes.py
"""

from repro.timing import simulate
from repro.timing.config import CMT, VLT_SCALAR
from repro.workloads import get_workload


def main() -> None:
    for name in ("ocean", "radix", "barnes"):
        w = get_workload(name)
        # lane cores cannot execute vector instructions: use the
        # scalar-only program flavour for both machines (same binary)
        prog = w.program(scalar_only=True)
        w.run_and_verify(num_threads=8, scalar_only=True)

        vlt = simulate(prog, VLT_SCALAR, num_threads=8)
        cmt = simulate(prog, CMT, num_threads=4)
        print(f"{name:8s}  CMT(4 thr): {cmt.cycles:>7} cycles   "
              f"VLT-lanes(8 thr): {vlt.cycles:>7} cycles   "
              f"VLT speedup: {cmt.cycles / vlt.cycles:4.2f}x")

    print("\npaper: ~2x for radix/ocean, parity for barnes.  We reproduce")
    print("the direction (ocean ahead, radix/barnes parity); see")
    print("EXPERIMENTS.md for the gap analysis against the 2x claim.")


if __name__ == "__main__":
    main()
