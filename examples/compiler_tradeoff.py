#!/usr/bin/env python
"""The vector-length vs stride trade-off (paper Section 3.1).

In a loop nest, one loop may offer long vectors while another offers
unit-stride accesses.  A classic example: sweeping the *columns* of a
row-major matrix.  Vectorizing the row index i gives long vectors but
strided memory; vectorizing the column index j gives unit-stride memory
but short vectors.  This example compiles the same kernel under the
mini-vectorizer's three policies and times each on the base machine --
and then shows the paper's resolution: VLT lets you take the unit-stride
loop AND recover utilization by threading the other loop.

A second tradeoff lives one level down: once a loop is chosen, *how*
should its trip count meet the 64-element MVL?  The default strategy
strip-mines with a masked tail; ``padding`` rounds the trip count up to
a full strip (legal only when the slack elements are provably dead);
``peeling`` splits the remainder into a scalar epilogue.  The second
half of this example compiles a 100-element loop (64 + a 36-tail) under
every strategy and shows the cycle and vector-length consequences.
See docs/compiler.md for the strategy catalogue.

Run:  python examples/compiler_tradeoff.py
"""

import numpy as np

from repro.compiler import (STRATEGY_NAMES, Array, Assign, CompileOptions,
                            Kernel, Loop, Var, compile_kernel)
from repro.functional import Executor
from repro.timing import simulate
from repro.timing.config import BASE, V4_CMP

ROWS, COLS = 64, 8     # tall matrix: long strided i, short contiguous j
N = 100                # deliberately NOT a multiple of MVL=64: 64 + 36


def build(policy: str, threads: bool = False):
    rng = np.random.default_rng(1)
    data = rng.random((ROWS, COLS))
    i, j = Var("i"), Var("j")
    A = Array("A", (ROWS, COLS), data)
    B = Array("B", (ROWS, COLS))
    kern = Kernel("sweep", [
        Loop(i, ROWS, [
            Loop(j, COLS, [Assign(B[i, j], A[i, j] * 2.0 + 1.0)],
                 parallel=True),
        ], parallel=True),
    ])
    prog = compile_kernel(kern, CompileOptions(policy=policy,
                                               threads=threads))
    return prog, data


def build_strategy(strategy: str):
    """A 100-element saxpy-style loop under one tail strategy."""
    rng = np.random.default_rng(2)
    data = rng.random(N)
    i = Var("i")
    A = Array("A", (N,), data)
    B = Array("B", (N,))
    kern = Kernel("strips", [
        Loop(i, N, [Assign(B[i], A[i] * 3.0 - 1.0)], parallel=True),
    ])
    return compile_kernel(kern, CompileOptions(strategy=strategy)), data


def verify(prog, data, nt=1):
    ex = Executor(prog, num_threads=nt)
    ex.run()
    got = ex.mem.read_f64_array(prog.symbol_addr("B"),
                                ROWS * COLS).reshape(ROWS, COLS)
    assert np.allclose(got, data * 2.0 + 1.0)


def main() -> None:
    print(f"matrix {ROWS}x{COLS} (row-major): i gives VL {ROWS} at "
          f"stride {COLS}; j gives VL {COLS} at stride 1\n")

    print(f"{'policy':<34}{'cycles':>8}   notes")
    for policy, note in (
            ("maxvl", "vectorizes i: long vectors, strided memory"),
            ("unitstride", "vectorizes j: short vectors, contiguous"),
            ("innermost", "no interchange (same as unitstride here)")):
        prog, data = build(policy)
        verify(prog, data)
        r = simulate(prog, BASE)
        print(f"{policy:<34}{r.cycles:>8}   {note}")

    # the paper's resolution: take unit stride, thread the outer loop
    prog, data = build("unitstride", threads=True)
    verify(prog, data, nt=4)
    r = simulate(prog, V4_CMP, num_threads=4)
    print(f"{'unitstride + VLT (4 threads)':<34}{r.cycles:>8}   "
          f"unit stride AND high lane utilization")
    print("\nVLT breaks the trade-off: vectorize for stride, thread for "
          "utilization (Section 3.1).")

    # second act: how should a 100-element loop meet the 64-element MVL?
    from repro.timing.run import trace_for
    print(f"\n{N}-element loop (one full strip + a 36-element tail):\n")
    print(f"{'strategy':<34}{'cycles':>8}   dynamic VLs")
    for strategy in STRATEGY_NAMES:
        prog, data = build_strategy(strategy)
        ex = Executor(prog, num_threads=1)
        ex.run()
        got = ex.mem.read_f64_array(prog.symbol_addr("B"), N)
        assert np.allclose(got, data * 3.0 - 1.0)   # slack never leaks
        r = simulate(prog, BASE)
        vls = trace_for(prog, 1).threads[0].vector_lengths()
        profile = ", ".join(f"{vl}x{c}" for vl, c in
                            zip(*np.unique(vls, return_counts=True))) \
            or "none (scalar epilogue only)"
        print(f"{strategy:<34}{r.cycles:>8}   {profile}")
    print("\npadding buys a full second strip (the slack elements are "
          "dead stores);\npeeling trades the masked tail for 36 scalar "
          "iterations.")


if __name__ == "__main__":
    main()
