#!/usr/bin/env python
"""Quickstart: write a vector kernel, execute it, and time it.

This walks the full pipeline of the library on a DAXPY kernel:

1. write assembly for the X1-flavoured VLT ISA,
2. run it on the functional simulator (real data, self-checked),
3. replay its trace on the cycle-level timing simulator,
4. sweep the number of vector lanes (the paper's Figure 1 axis).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.functional import Executor
from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import base_config

N = 512

SRC = f"""
.program daxpy
.memory 64
.space x {N * 8}
.space y {N * 8}
    li   s1, {N}        # element count
    fli  f1, 2.5        # alpha
    li   s2, &x
    li   s3, &y
loop:
    setvl s4, s1        # strip-mine: vl = min(remaining, 64)
    vld  v1, 0(s2)
    vld  v2, 0(s3)
    vfmul.vs v3, v1, f1
    vfadd.vv v4, v3, v2
    vst  v4, 0(s3)      # y = alpha*x + y
    sub  s1, s1, s4
    slli s5, s4, 3
    add  s2, s2, s5
    add  s3, s3, s5
    bne  s1, s0, loop
    halt
"""


def main() -> None:
    prog = assemble(SRC)
    print(f"assembled {len(prog.instrs)} instructions\n")

    # -- functional execution (with a twist: initialise memory first) ----
    ex = Executor(prog)
    x = np.arange(N, dtype=np.float64)
    y = np.ones(N)
    ex.mem.f64[prog.symbol_addr("x") // 8:][:N] = x
    ex.mem.f64[prog.symbol_addr("y") // 8:][:N] = y
    trace = ex.run()

    got = ex.mem.read_f64_array(prog.symbol_addr("y"), N)
    assert np.allclose(got, 2.5 * x + 1.0), "DAXPY result wrong!"
    counts = trace.merged_counts()
    print(f"functional: {counts['total']} instructions "
          f"({counts['vector']} vector, {counts['element_ops']} element ops)"
          f" -- result verified against NumPy\n")

    # -- timing: sweep the lanes -----------------------------------------
    print(f"{'lanes':>5}  {'cycles':>8}  {'speedup':>7}  datapath busy")
    base_cycles = None
    for lanes in (1, 2, 4, 8):
        r = simulate(prog, base_config(lanes=lanes))
        base_cycles = base_cycles or r.cycles
        busy = r.utilization.fractions()["busy"]
        print(f"{lanes:>5}  {r.cycles:>8}  {base_cycles / r.cycles:>6.2f}x"
              f"  {busy:>6.1%}")
    print("\nlong vectors scale with lanes -- the paper's Figure 1 for mxm.")


if __name__ == "__main__":
    main()
