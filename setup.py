"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build their
editable wheel.  This shim lets ``pip install -e . --no-use-pep517`` (or
``python setup.py develop``) perform a classic editable install instead.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
