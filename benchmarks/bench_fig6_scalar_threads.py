"""Figure 6: 8 scalar threads on the vector lanes vs the 2-core CMT.

Paper: ~2x for radix and ocean, parity for barnes.  Our reproduction
gets the *direction* (ocean clearly ahead on the lanes; radix and barnes
at parity) but not the full 2x -- our out-of-order CMT baseline
tolerates L2 latency better than the paper's (see EXPERIMENTS.md for
the gap analysis and bench_ablations.py for the sensitivity of this
result to the lanes' access-decoupling depth).
"""

from repro.harness import experiments as E
from repro.harness import report as R

from .conftest import run_once


def test_fig6_scalar_threads(benchmark, capsys):
    res = run_once(benchmark, lambda: E.fig6_scalar_threads())
    with capsys.disabled():
        print()
        print(R.render_fig6(res))

    r = {app: res.speedup(app) for app in res.cycles}
    # ocean: the lanes win (paper: 2.2x; we reproduce the direction)
    assert r["ocean"] >= 1.25
    # radix: at least parity-class (paper: 2.0x)
    assert r["radix"] >= 0.85
    # barnes: parity (paper: ~1.1x) -- neither side wins big
    assert 0.75 <= r["barnes"] <= 1.45
