"""Simulator-throughput benchmarks (the one suite where repeated timing
measurements, pytest-benchmark's real job, make sense)."""

from repro.isa import assemble
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE
from repro.timing.run import trace_for

_SRC = """
.space x 8192
li s5, 0
li s6, 40
rep:
li s1, 64
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfmul.vs v2, v1, f1
vfadd.vv v3, v2, v1
vst v3, 0(s3)
li s4, 0
inner:
addi s4, s4, 1
slti s7, s4, 20
bne s7, s0, inner
addi s5, s5, 1
blt s5, s6, rep
halt
"""


def test_functional_simulation_speed(benchmark):
    prog = assemble(_SRC)

    def run():
        clear_trace_cache()
        return trace_for(prog, 1)

    trace = benchmark(run)
    assert trace.total_ops() > 2000


def test_timing_simulation_speed(benchmark):
    prog = assemble(_SRC)
    trace = trace_for(prog, 1)

    def run():
        return simulate(prog, BASE, trace=trace)

    result = benchmark(run)
    assert result.cycles > 1000


def test_end_to_end_speed(benchmark):
    prog = assemble(_SRC)

    def run():
        clear_trace_cache()
        return simulate(prog, BASE)

    result = benchmark(run)
    assert result.cycles > 1000
