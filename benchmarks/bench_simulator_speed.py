"""Simulator-throughput benchmarks (the one suite where repeated timing
measurements, pytest-benchmark's real job, make sense).

Besides the pytest-benchmark numbers, this module writes a
machine-readable ``BENCH_simulator_speed.json`` next to the repo root:
simulated ops/sec and cycles/sec per machine configuration, plus the
host-side phase profile (trace generation / setup / replay / stats)
from :class:`repro.obs.PhaseProfiler`.  Future PRs diff that file to
catch simulator-speed regressions.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.isa import assemble
from repro.obs import PhaseProfiler
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE, get_config
from repro.timing.run import trace_for

_SRC = """
.space x 8192
li s5, 0
li s6, 40
rep:
li s1, 64
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfmul.vs v2, v1, f1
vfadd.vv v3, v2, v1
vst v3, 0(s3)
li s4, 0
inner:
addi s4, s4, 1
slti s7, s4, 20
bne s7, s0, inner
addi s5, s5, 1
blt s5, s6, rep
halt
"""

#: configs swept by the per-config throughput bench; thread count is
#: the natural occupancy of each machine (1 SW thread per HW context).
_SWEEP = (("base", 1), ("V2-SMT", 2), ("V2-CMP", 2), ("V4-CMP", 4))

#: VLT_BENCH_JSON redirects the output (CI's bench-smoke job writes a
#: candidate file and diffs it against the checked-in baseline).
_JSON_PATH = Path(os.environ.get(
    "VLT_BENCH_JSON",
    Path(__file__).resolve().parent.parent / "BENCH_simulator_speed.json"))

#: accumulated across the tests in this module, flushed by the
#: module-scoped fixture below.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _RESULTS:  # pragma: no cover - only when the module is filtered
        return
    payload = {
        "benchmark": "simulator_speed",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": _RESULTS,
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


def _record(name: str, **fields) -> None:
    _RESULTS[name] = fields


def _timed(fn, walls):
    """Wrap ``fn`` so each call also appends its own wall time.

    pytest-benchmark's timer is authoritative when it ran, but with
    ``--benchmark-disable`` (plain test runs, CI) ``benchmark.stats`` is
    ``None`` -- the self-measured walls are the fallback."""
    def run():
        t0 = time.perf_counter()
        out = fn()
        walls.append(time.perf_counter() - t0)
        return out
    return run


def _min_wall(benchmark, walls):
    if benchmark.stats is not None:
        return benchmark.stats.stats.min
    return min(walls)


def test_functional_simulation_speed(benchmark):
    prog = assemble(_SRC)
    walls: list = []

    def run():
        clear_trace_cache()
        return trace_for(prog, 1)

    trace = benchmark(_timed(run, walls))
    assert trace.total_ops() > 2000
    wall = _min_wall(benchmark, walls)
    _record("functional", wall_s=wall, ops=trace.total_ops(),
            ops_per_s=trace.total_ops() / wall if wall else None)


def test_timing_simulation_speed(benchmark):
    prog = assemble(_SRC)
    trace = trace_for(prog, 1)
    ops = trace.total_ops()
    walls: list = []

    result = benchmark(_timed(lambda: simulate(prog, BASE, trace=trace),
                              walls))
    assert result.cycles > 1000
    wall = _min_wall(benchmark, walls)
    _record("timing_replay", wall_s=wall, cycles=result.cycles, ops=ops,
            ops_per_s=ops / wall if wall else None,
            cycles_per_s=result.cycles / wall if wall else None)


#: the replay-speed workload with a long steady-state phase: identical
#: loop body, enough iterations that warm-loop behaviour dominates the
#: measurement (the regime the paper's figures are drawn from, and the
#: one the columnar engine's steady-state memoisation targets).
_SRC_STEADY = _SRC.replace("li s6, 40", "li s6, 600")


def test_columnar_replay_speed(benchmark):
    """Columnar vs event replay throughput on the steady-state workload.

    Both engines replay the same trace; the result must be bit-identical
    and the columnar engine at least 10x faster in cycles/sec.
    """
    prog = assemble(_SRC_STEADY)
    trace = trace_for(prog, 1)
    ops = trace.total_ops()

    ev_walls: list = []
    for _ in range(3):
        ev_ref = _timed(lambda: simulate(prog, BASE, trace=trace), ev_walls)()
    ev_wall = min(ev_walls)

    walls: list = []
    run_col = _timed(
        lambda: simulate(prog, BASE, trace=trace, engine="columnar"), walls)
    for _ in range(3):     # warm runs (column derivation is trace-cached)
        run_col()
    result = benchmark(run_col)
    assert result == ev_ref
    wall = _min_wall(benchmark, walls)
    speedup = ev_wall / wall if wall else None
    _record("timing_replay_columnar", wall_s=wall, cycles=result.cycles,
            ops=ops, ops_per_s=ops / wall if wall else None,
            cycles_per_s=result.cycles / wall if wall else None,
            event_wall_s=ev_wall,
            event_cycles_per_s=result.cycles / ev_wall if ev_wall else None,
            speedup_vs_event=speedup)
    assert speedup and speedup >= 10.0, \
        f"columnar replay only {speedup:.1f}x faster than event engine"


def test_fast_trace_generation_speed(benchmark):
    """Fast vs reference trace-generation throughput on the steady-state
    workload (the regime the harness sweeps live in: warm decode cache,
    loop-dominated traces).

    Both engines generate the same trace; the serialized bytes must be
    identical and the fast block-compiled engine at least 10x faster in
    ops/sec.
    """
    from repro.functional import trace_to_bytes
    prog = assemble(_SRC_STEADY)

    ref_walls: list = []
    run_ref = _timed(lambda: trace_for(prog, 1), ref_walls)
    for _ in range(3):
        clear_trace_cache()
        ref_trace = run_ref()
    ref_wall = min(ref_walls)
    ops = ref_trace.total_ops()

    walls: list = []

    def run():
        clear_trace_cache()
        return trace_for(prog, 1, func_engine="fast")

    run_fast = _timed(run, walls)
    for _ in range(3):   # warm runs (block compile + expansion cache)
        run_fast()
    trace = benchmark(run_fast)
    assert trace_to_bytes(trace) == trace_to_bytes(ref_trace)
    wall = _min_wall(benchmark, walls)
    speedup = ref_wall / wall if wall else None
    _record("trace_generation_fast", wall_s=wall, ops=ops,
            ops_per_s=ops / wall if wall else None,
            reference_wall_s=ref_wall,
            reference_ops_per_s=ops / ref_wall if ref_wall else None,
            speedup_vs_reference=speedup)
    assert speedup and speedup >= 10.0, \
        f"fast trace generation only {speedup:.1f}x faster than reference"


def test_end_to_end_speed(benchmark):
    prog = assemble(_SRC)
    walls: list = []

    def run():
        clear_trace_cache()
        return simulate(prog, BASE)

    result = benchmark(_timed(run, walls))
    assert result.cycles > 1000
    wall = _min_wall(benchmark, walls)
    _record("end_to_end", wall_s=wall, cycles=result.cycles,
            cycles_per_s=result.cycles / wall if wall else None)


def test_per_config_throughput(benchmark, capsys):
    """Ops/sec for each machine configuration, with the host-side phase
    profile attached -- the rows that land in BENCH_simulator_speed.json."""
    prog = assemble(_SRC)

    def sweep():
        rows = {}
        for name, threads in _SWEEP:
            cfg = get_config(name)
            clear_trace_cache()
            prof = PhaseProfiler()
            t0 = time.perf_counter()
            result = simulate(prog, cfg, num_threads=threads,
                              profiler=prof)
            wall = time.perf_counter() - t0
            ops = trace_for(prog, threads).total_ops()
            phases = prof.as_dict()
            tg_wall = phases.get("trace_generation", {}).get("wall_s")
            rows[name] = {
                "threads": threads,
                "cycles": result.cycles,
                "ops": ops,
                "wall_s": wall,
                "ops_per_s": ops / wall if wall else None,
                "cycles_per_s": result.cycles / wall if wall else None,
                "trace_generation_wall_s": tg_wall,
                "trace_generation_ops_per_s": (ops / tg_wall
                                               if tg_wall else None),
                "phases": phases,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1,
                              warmup_rounds=0)
    _record("per_config", **rows)
    with capsys.disabled():
        print()
        print(f"{'config':<10}{'thr':>4}{'cycles':>10}{'ops/s':>14}"
              f"{'trace-gen ops/s':>18}")
        for name, row in rows.items():
            tg = row["trace_generation_ops_per_s"]
            print(f"{name:<10}{row['threads']:>4}{row['cycles']:>10}"
                  f"{row['ops_per_s']:>14,.0f}"
                  + (f"{tg:>18,.0f}" if tg else f"{'n/a':>18}"))
    for name, row in rows.items():
        assert row["cycles"] > 1000, name
        assert row["ops_per_s"] and row["ops_per_s"] > 0, name
        assert row["trace_generation_ops_per_s"], name
