"""Compare two BENCH_simulator_speed.json files; fail on regression.

CI's bench-smoke job runs ``bench_simulator_speed.py`` on the PR head
with ``VLT_BENCH_JSON`` pointing at a candidate file, then invokes::

    python benchmarks/compare_bench.py BENCH_simulator_speed.json \
        candidate.json --max-regression 0.30

Exit status 1 if any compared throughput metric dropped by more than
``--max-regression`` (default 30%) relative to the baseline.  With
``--append-history DIR`` the candidate snapshot is also appended to the
bench-trend history (``vlt-repro tele trend`` reads it back), pass or
fail, so the trend records regressions too.  The
headline gate is end-to-end cycles/s; functional ops/s and trace-replay
cycles/s are compared with the same threshold.  Speedups and small
regressions just print.  Absolute numbers differ across hosts, so this
is only meaningful when both files come from the same machine (as in
one CI job) -- it is a smoke gate against order-of-magnitude slowdowns,
not a precision benchmark.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional, Tuple

#: (result key, metric) pairs gated by --max-regression
_GATED: Tuple[Tuple[str, str], ...] = (
    ("end_to_end", "cycles_per_s"),
    ("timing_replay", "cycles_per_s"),
    ("timing_replay_columnar", "cycles_per_s"),
    ("functional", "ops_per_s"),
)


def _metric(payload: dict, key: str, metric: str) -> Optional[float]:
    row = payload.get("results", {}).get(key)
    if not isinstance(row, dict):
        return None
    value = row.get(metric)
    if value is None:
        return None
    # A present-but-zero (or otherwise unusable) value is NOT "missing":
    # 0.0 cycles/s means the bench collapsed or a crashed run wrote
    # zeros, and must reach the gate below rather than being skipped.
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def compare(baseline: dict, candidate: dict,
            max_regression: float) -> Tuple[List[str], List[str]]:
    """Returns (report lines, failure lines)."""
    lines: List[str] = []
    failures: List[str] = []
    for key, metric in _GATED:
        base = _metric(baseline, key, metric)
        cand = _metric(candidate, key, metric)
        label = f"{key}.{metric}"
        if base is None or cand is None:
            lines.append(f"  {label:<28} missing in "
                         f"{'baseline' if base is None else 'candidate'}; "
                         f"skipped")
            continue
        if not math.isfinite(cand) or cand <= 0.0:
            failures.append(
                f"{label}: candidate value {cand!r} is not a positive "
                f"finite throughput (bench collapse or corrupt run)")
            lines.append(f"  {label:<28} cand={cand!r}  INVALID")
            continue
        if not math.isfinite(base) or base <= 0.0:
            lines.append(f"  {label:<28} baseline value {base!r} "
                         f"unusable; skipped")
            continue
        ratio = cand / base
        verdict = "OK"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: {cand:,.0f} vs baseline {base:,.0f} "
                f"({1 - ratio:.0%} slower, limit {max_regression:.0%})")
        lines.append(f"  {label:<28} base={base:>12,.0f}  "
                     f"cand={cand:>12,.0f}  ({ratio:.2f}x)  {verdict}")
    return lines, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate simulator-speed regressions between two "
                    "BENCH_simulator_speed.json files")
    parser.add_argument("baseline", help="baseline JSON (checked in)")
    parser.add_argument("candidate", help="candidate JSON (fresh run)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum tolerated fractional slowdown "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--append-history", metavar="DIR", default=None,
                        help="also append the candidate snapshot to this "
                             "bench-trend history directory "
                             "(see repro.obs.telemetry)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    if args.append_history:
        from repro.obs.telemetry import append_bench_history
        dest = append_bench_history(args.candidate, args.append_history)
        print(f"appended candidate to bench history: {dest}")

    lines, failures = compare(baseline, candidate, args.max_regression)
    print(f"simulator-speed comparison "
          f"(max regression {args.max_regression:.0%}):")
    for line in lines:
        print(line)
    if failures:
        print("FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
