"""Compare two BENCH_simulator_speed.json files; fail on regression.

CI's bench-smoke job runs ``bench_simulator_speed.py`` on the PR head
with ``VLT_BENCH_JSON`` pointing at a candidate file, then invokes::

    python benchmarks/compare_bench.py BENCH_simulator_speed.json \
        candidate.json --max-regression 0.30

Exit status 1 if any compared throughput metric dropped by more than
``--max-regression`` (default 30%) relative to the baseline.  With
``--append-history DIR`` the candidate snapshot is also appended to the
bench-trend history (``vlt-repro tele trend`` reads it back), pass or
fail, so the trend records regressions too.  The
headline gate is end-to-end cycles/s; functional ops/s and trace-replay
cycles/s are compared with the same threshold.  ``--min-speedup
KEY:FACTOR`` additionally requires the candidate's KEY row to record a
``speedup_vs_*`` of at least FACTOR (e.g.
``--min-speedup trace_generation_fast:5`` gates the fast functional
engine against its reference).  ``--min-metric KEY:METRIC:MIN``
requires an absolute floor on any candidate metric, baseline-free
(e.g. ``--min-metric duplicate_burst:dedupe_fraction:0.9`` gates the
service bench's dedupe collapse); the same gates also serve
``BENCH_service_throughput.json`` in the service-smoke job and
``BENCH_compiler_tradeoff.json`` in the compiler-tradeoff job (there
the gated ``speedup_vs_auto`` values are deterministic simulated-cycle
ratios, so exact floors like
``--min-metric strategy_unroll_jam:speedup_vs_auto:0.99`` hold on any
host).  Speedups and small
regressions just print.  Absolute numbers differ across hosts, so this
is only meaningful when both files come from the same machine (as in
one CI job) -- it is a smoke gate against order-of-magnitude slowdowns,
not a precision benchmark.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional, Tuple

#: (result key, metric) pairs gated by --max-regression; keys absent
#: from both files are skipped, so the same gate list serves every
#: BENCH_*.json family (simulator speed, service throughput and the
#: compiler-tradeoff sweep).  The strategy rows are simulated-cycle
#: ratios -- deterministic, host-independent -- so any movement at all
#: means the compiler's emitted code changed shape
_GATED: Tuple[Tuple[str, str], ...] = (
    ("end_to_end", "cycles_per_s"),
    ("timing_replay", "cycles_per_s"),
    ("timing_replay_columnar", "cycles_per_s"),
    ("functional", "ops_per_s"),
    ("trace_generation_fast", "ops_per_s"),
    ("duplicate_burst", "jobs_per_s"),
    ("mixed_load", "jobs_per_s"),
    ("strategy_padding", "speedup_vs_auto"),
    ("strategy_peeling", "speedup_vs_auto"),
    ("strategy_unroll_jam", "speedup_vs_auto"),
)


def _metric(payload: dict, key: str, metric: str) -> Optional[float]:
    row = payload.get("results", {}).get(key)
    if not isinstance(row, dict):
        return None
    value = row.get(metric)
    if value is None:
        return None
    # A present-but-zero (or otherwise unusable) value is NOT "missing":
    # 0.0 cycles/s means the bench collapsed or a crashed run wrote
    # zeros, and must reach the gate below rather than being skipped.
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def compare(baseline: dict, candidate: dict,
            max_regression: float) -> Tuple[List[str], List[str]]:
    """Returns (report lines, failure lines)."""
    lines: List[str] = []
    failures: List[str] = []
    for key, metric in _GATED:
        base = _metric(baseline, key, metric)
        cand = _metric(candidate, key, metric)
        label = f"{key}.{metric}"
        if base is None or cand is None:
            lines.append(f"  {label:<28} missing in "
                         f"{'baseline' if base is None else 'candidate'}; "
                         f"skipped")
            continue
        if not math.isfinite(cand) or cand <= 0.0:
            failures.append(
                f"{label}: candidate value {cand!r} is not a positive "
                f"finite throughput (bench collapse or corrupt run)")
            lines.append(f"  {label:<28} cand={cand!r}  INVALID")
            continue
        if not math.isfinite(base) or base <= 0.0:
            lines.append(f"  {label:<28} baseline value {base!r} "
                         f"unusable; skipped")
            continue
        ratio = cand / base
        verdict = "OK"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: {cand:,.0f} vs baseline {base:,.0f} "
                f"({1 - ratio:.0%} slower, limit {max_regression:.0%})")
        lines.append(f"  {label:<28} base={base:>12,.0f}  "
                     f"cand={cand:>12,.0f}  ({ratio:.2f}x)  {verdict}")
    return lines, failures


def check_min_speedups(candidate: dict,
                       specs: List[Tuple[str, float]]
                       ) -> Tuple[List[str], List[str]]:
    """Gate candidate rows on their recorded engine speedup.

    Each spec is ``(result key, factor)``; the row must carry a
    ``speedup_vs_*`` field (e.g. ``speedup_vs_event`` for the columnar
    replay row, ``speedup_vs_reference`` for the fast trace-generation
    row) of at least ``factor``.  A missing row or field fails: a bench
    that silently stopped measuring the speedup must not pass the gate.
    """
    lines: List[str] = []
    failures: List[str] = []
    for key, factor in specs:
        row = candidate.get("results", {}).get(key)
        field = None
        if isinstance(row, dict):
            for name in sorted(row):
                if name.startswith("speedup_vs_"):
                    field = name
        if field is None:
            failures.append(f"{key}: no speedup_vs_* field in candidate "
                            f"(min-speedup {factor:g}x requested)")
            lines.append(f"  {key:<28} speedup missing  FAIL")
            continue
        try:
            speedup = float(row[field])
        except (TypeError, ValueError):
            speedup = float("nan")
        label = f"{key}.{field}"
        if not math.isfinite(speedup) or speedup < factor:
            failures.append(f"{label}: {speedup:.2f}x below required "
                            f"{factor:g}x")
            lines.append(f"  {label:<28} {speedup:.2f}x  "
                         f"(need {factor:g}x)  FAIL")
        else:
            lines.append(f"  {label:<28} {speedup:.2f}x  "
                         f"(need {factor:g}x)  OK")
    return lines, failures


def check_min_metrics(candidate: dict,
                      specs: List[Tuple[str, str, float]]
                      ) -> Tuple[List[str], List[str]]:
    """Gate candidate rows on an absolute metric floor.

    Each spec is ``(result key, metric, minimum)``: the candidate's KEY
    row must carry METRIC >= MINIMUM.  Unlike --max-regression this
    needs no baseline, so it suits host-independent invariants -- e.g.
    ``duplicate_burst:dedupe_fraction:0.9`` requires the service bench
    to show at least 90% of a duplicate burst served without
    re-simulation.  A missing row or field fails: a bench that silently
    stopped measuring the invariant must not pass the gate.
    """
    lines: List[str] = []
    failures: List[str] = []
    for key, metric, minimum in specs:
        value = _metric(candidate, key, metric)
        label = f"{key}.{metric}"
        if value is None:
            failures.append(f"{label}: missing from candidate "
                            f"(min {minimum:g} requested)")
            lines.append(f"  {label:<28} missing  FAIL")
            continue
        if not math.isfinite(value) or value < minimum:
            failures.append(f"{label}: {value:g} below required "
                            f"{minimum:g}")
            lines.append(f"  {label:<28} {value:g}  "
                         f"(need >= {minimum:g})  FAIL")
        else:
            lines.append(f"  {label:<28} {value:g}  "
                         f"(need >= {minimum:g})  OK")
    return lines, failures


def _parse_min_metric(text: str) -> Tuple[str, str, float]:
    parts = text.split(":")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise argparse.ArgumentTypeError(
            f"expected KEY:METRIC:MIN, got {text!r}")
    try:
        return parts[0], parts[1], float(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"MIN in {text!r} is not a number")


def _parse_min_speedup(text: str) -> Tuple[str, float]:
    key, sep, factor = text.partition(":")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY:FACTOR, got {text!r}")
    try:
        return key, float(factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"FACTOR in {text!r} is not a number")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate simulator-speed regressions between two "
                    "BENCH_simulator_speed.json files")
    parser.add_argument("baseline", help="baseline JSON (checked in)")
    parser.add_argument("candidate", help="candidate JSON (fresh run)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum tolerated fractional slowdown "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--min-speedup", metavar="KEY:FACTOR",
                        type=_parse_min_speedup, action="append",
                        default=[],
                        help="require the candidate's KEY row to record a "
                             "speedup_vs_* of at least FACTOR (repeatable; "
                             "e.g. trace_generation_fast:5)")
    parser.add_argument("--min-metric", metavar="KEY:METRIC:MIN",
                        type=_parse_min_metric, action="append",
                        default=[],
                        help="require the candidate's KEY row to carry "
                             "METRIC >= MIN (repeatable; e.g. "
                             "duplicate_burst:dedupe_fraction:0.9)")
    parser.add_argument("--append-history", metavar="DIR", default=None,
                        help="also append the candidate snapshot to this "
                             "bench-trend history directory "
                             "(see repro.obs.telemetry)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    if args.append_history:
        from repro.obs.telemetry import append_bench_history
        dest = append_bench_history(args.candidate, args.append_history)
        print(f"appended candidate to bench history: {dest}")

    lines, failures = compare(baseline, candidate, args.max_regression)
    print(f"simulator-speed comparison "
          f"(max regression {args.max_regression:.0%}):")
    for line in lines:
        print(line)
    if args.min_speedup:
        sp_lines, sp_failures = check_min_speedups(candidate,
                                                   args.min_speedup)
        print("engine speedup gates:")
        for line in sp_lines:
            print(line)
        failures.extend(sp_failures)
    if args.min_metric:
        mm_lines, mm_failures = check_min_metrics(candidate,
                                                  args.min_metric)
        print("metric floor gates:")
        for line in mm_lines:
            print(line)
        failures.extend(mm_failures)
    if failures:
        print("FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
