"""Figure 1: application speedup vs number of vector lanes.

Expected shape (paper): long-vector apps (mxm, sage) scale with lanes;
short/medium-vector apps (mpenc, trfd, multprec, bt) saturate; scalar
apps (radix, ocean, barnes) stay flat.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from .conftest import run_once


def test_fig1_lane_scaling(benchmark, capsys):
    res = run_once(benchmark, lambda: E.fig1_lane_scaling())
    with capsys.disabled():
        print()
        print(R.render_fig1(res))

    sp8 = {app: res.speedups(app)[-1] for app in res.cycles}
    # long-vector apps scale
    assert sp8["mxm"] >= 4.0
    assert sp8["sage"] >= 4.0
    # short/medium-vector apps saturate well below linear
    for app in ("mpenc", "trfd", "multprec", "bt"):
        assert 1.0 <= sp8[app] <= 3.0, app
    # scalar apps are flat
    for app in ("radix", "ocean", "barnes"):
        assert sp8[app] <= 1.2, app
    # monotone non-decreasing in lanes for every app
    for app in res.cycles:
        sp = res.speedups(app)
        assert all(b >= a * 0.97 for a, b in zip(sp, sp[1:])), app
