"""Benchmark-suite configuration.

Every bench module regenerates one of the paper's tables/figures: the
benchmark measures the wall time of the (simulation-heavy) experiment,
prints the same rows/series the paper reports, and asserts the shape
criteria from DESIGN.md section 4.

The experiments are deterministic and expensive, so each runs exactly
once (``benchmark.pedantic`` with one round).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(autouse=True)
def _fresh_caches():
    # keep functional-trace memoisation across benches (it is keyed on
    # program identity and programs are cached on workload singletons,
    # which is exactly the reuse we want), but isolate nothing else
    yield
