"""Tables 1-2: the area model (exact arithmetic; fast)."""

import pytest

from repro.harness import experiments as E
from repro.harness import report as R

from .conftest import run_once


def test_tables_1_and_2(benchmark, capsys):
    res = run_once(benchmark, E.area_tables)
    with capsys.disabled():
        print()
        print(R.render_area(res))

    # Table 1 totals
    assert dict(res.table1)[
        "Base vector processor (4-way SU, 8 vector lanes)"] == \
        pytest.approx(170.2)
    # Table 2 matches the paper within rounding, except the documented
    # V4-CMP inconsistency where we match the paper's prose (37%)
    for name, ours, paper in res.table2:
        if name == "V4-CMP":
            assert ours == pytest.approx(36.8, abs=0.1)
        else:
            assert ours == pytest.approx(paper, abs=0.15)


def test_table_3_parameters(benchmark, capsys):
    rows = run_once(benchmark, E.table3_parameters)
    with capsys.disabled():
        print()
        print(R.render_table3(rows))
    assert len(rows) == 4
