"""Load generator for the simulation service.

Drives a real :class:`~repro.service.server.SimulationService` (own
event loop on a background thread, real HTTP over loopback) from a pool
of client threads, the way CI's service-smoke job and a fleet of
experiment drivers would, and writes ``BENCH_service_throughput.json``:

* ``duplicate_burst`` -- 100 identical submissions at once: sustained
  accepted-to-done throughput plus ``dedupe_fraction``, the share of the
  burst served WITHOUT re-simulation (single-flight dedupe + result
  cache).  The acceptance gate is >= 0.90, enforced both here and by
  ``compare_bench.py --min-metric duplicate_burst:dedupe_fraction:0.9``.
* ``mixed_load`` -- a realistic mixed stream (distinct configs/thread
  counts, duplicates interleaved): end-to-end jobs/s and how many
  simulations the whole stream actually cost.
* ``admission`` -- an abusive tenant against a tight token bucket:
  rejection fraction and proof the polite tenant stayed unthrottled.

Throughput numbers are host-dependent (compared by ``compare_bench.py``
only within one CI job); the dedupe/admission fractions are invariants.
"""

import json
import os
import platform
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceConfig, ServiceThread
from repro.timing.run import set_trace_cache_dir

#: the ISSUE's acceptance bar: >=90% of a 100-duplicate burst must be
#: served without re-simulation
_BURST_N = 100
_MIN_DEDUPE_FRACTION = 0.90
_CLIENT_THREADS = 16

#: VLT_BENCH_SERVICE_JSON redirects the output (CI's service-smoke job
#: writes a candidate file and gates it with compare_bench.py).
_JSON_PATH = Path(os.environ.get(
    "VLT_BENCH_SERVICE_JSON",
    Path(__file__).resolve().parent.parent /
    "BENCH_service_throughput.json"))

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _RESULTS:  # pragma: no cover - only when the module is filtered
        return
    payload = {
        "benchmark": "service_throughput",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": _RESULTS,
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache():
    set_trace_cache_dir(None)
    yield
    set_trace_cache_dir(None)


def _record(name: str, **fields) -> None:
    _RESULTS[name] = fields


def _service(tmp_path, **overrides):
    kwargs = dict(port=0, workers=2,
                  cache_dir=str(tmp_path / "cache"),
                  telemetry_dir=str(tmp_path / "tele"),
                  rate=1e6, burst=1e6)
    kwargs.update(overrides)
    return ServiceThread(ServiceConfig(**kwargs))


def _drive(port, bodies, tenants=None):
    """Submit every body concurrently, wait all jobs to a terminal
    state; returns (results, wall_s, metrics)."""
    client = ServiceClient(port=port)
    tenants = tenants or ["loadgen"] * len(bodies)
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=_CLIENT_THREADS) as pool:
        docs = list(pool.map(
            lambda pair: client.submit(tenant=pair[1], **pair[0]),
            zip(bodies, tenants)))
        results = list(pool.map(
            lambda d: client.wait(d["id"], timeout=600), docs))
    wall = time.perf_counter() - t0
    return results, wall, client.metrics()


def test_duplicate_burst_dedupe(benchmark, tmp_path, capsys):
    """The headline number: a 100-identical-job burst costs ONE
    simulation; everything else rides the single-flight map or the
    result cache."""
    body = {"app": "mpenc", "config": "base", "threads": 1}

    with _service(tmp_path) as st:
        out = benchmark.pedantic(
            lambda: _drive(st.port, [body] * _BURST_N),
            rounds=1, iterations=1, warmup_rounds=0)
    results, wall, metrics = out
    svc = metrics["service"]

    assert len(results) == _BURST_N
    assert all(r["state"] == "done" for r in results)
    assert len({r["result"]["cycles"] for r in results}) == 1
    simulated = svc["simulated_runs"]
    dedupe_fraction = 1.0 - simulated / _BURST_N
    assert dedupe_fraction >= _MIN_DEDUPE_FRACTION, \
        (f"only {dedupe_fraction:.0%} of the burst avoided "
         f"re-simulation ({simulated}/{_BURST_N} simulated)")

    _record("duplicate_burst",
            jobs=_BURST_N, wall_s=wall,
            jobs_per_s=_BURST_N / wall if wall else None,
            simulated_runs=simulated,
            deduped_inflight=svc["deduped"],
            result_cache_served=svc["result_cache_served"],
            dedupe_fraction=dedupe_fraction)
    with capsys.disabled():
        print(f"\nduplicate burst: {_BURST_N} jobs in {wall:.2f}s "
              f"({_BURST_N / wall:,.0f} jobs/s), {simulated} simulated "
              f"-> {dedupe_fraction:.0%} dedupe collapse")


def test_mixed_load_throughput(benchmark, tmp_path, capsys):
    """A mixed stream: 4 distinct simulation points, each submitted 10x
    by interleaved clients.  The stream costs at most one simulation per
    distinct point; throughput is the end-to-end sustained rate."""
    points = [{"app": "mpenc", "config": "base", "threads": 1},
              {"app": "mpenc", "config": "V2-SMT", "threads": 2},
              {"app": "mpenc", "config": "V2-CMP", "threads": 2},
              {"app": "mpenc", "config": "V4-CMP", "threads": 4}]
    bodies = [points[i % len(points)] for i in range(40)]
    tenants = [f"team-{i % 3}" for i in range(len(bodies))]

    with _service(tmp_path) as st:
        out = benchmark.pedantic(
            lambda: _drive(st.port, bodies, tenants),
            rounds=1, iterations=1, warmup_rounds=0)
    results, wall, metrics = out
    svc = metrics["service"]

    assert all(r["state"] == "done" for r in results)
    assert svc["simulated_runs"] <= len(points)
    assert len(metrics["fleet"]["tenant_mix"]) == 3

    _record("mixed_load",
            jobs=len(bodies), distinct_points=len(points),
            wall_s=wall,
            jobs_per_s=len(bodies) / wall if wall else None,
            simulated_runs=svc["simulated_runs"],
            deduped_inflight=svc["deduped"],
            result_cache_served=svc["result_cache_served"])
    with capsys.disabled():
        print(f"\nmixed load: {len(bodies)} jobs over "
              f"{len(points)} points in {wall:.2f}s "
              f"({len(bodies) / wall:,.0f} jobs/s), "
              f"{svc['simulated_runs']} simulated")


def test_admission_under_abuse(benchmark, tmp_path, capsys):
    """A tenant bursting past its token bucket is rejected with 429s
    while a polite tenant's jobs still complete."""
    n = 50
    burst = 10.0

    def run():
        accepted = rejected = 0
        with _service(tmp_path, rate=0.001, burst=burst) as st:
            client = ServiceClient(port=st.port)
            t0 = time.perf_counter()
            for _ in range(n):
                try:
                    client.submit("mpenc", "base", tenant="abuser")
                    accepted += 1
                except ServiceError as err:
                    assert err.status == 429
                    rejected += 1
            polite = client.wait(
                client.submit("mpenc", "base", tenant="polite")["id"])
            wall = time.perf_counter() - t0
            metrics = client.metrics()
        return accepted, rejected, wall, polite, metrics

    accepted, rejected, wall, polite, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0)

    assert accepted == int(burst)           # exactly the burst capacity
    assert rejected == n - accepted
    assert polite["state"] == "done"        # other tenants unaffected
    assert metrics["service"]["rejected"] == rejected

    _record("admission",
            submissions=n, burst=burst,
            accepted=accepted, rejected=rejected,
            rejected_fraction=rejected / n, wall_s=wall)
    with capsys.disabled():
        print(f"\nadmission: {rejected}/{n} rejected "
              f"({rejected / n:.0%}) at burst={burst:g}; polite tenant "
              f"unaffected")
