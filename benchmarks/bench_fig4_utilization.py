"""Figure 4: datapath utilization breakdown, base vs VLT-2 vs VLT-4.

Paper shape: VLT compresses execution (total normalised bar shrinks),
stall and idle cycles shrink, and a significant residue of stall/idle
remains (sequential portions + functional-unit imbalance).
"""

from repro.harness import experiments as E
from repro.harness import report as R

from .conftest import run_once


def test_fig4_utilization(benchmark, capsys):
    res = run_once(benchmark, lambda: E.fig4_utilization())
    with capsys.disabled():
        print()
        print(R.render_fig4(res))

    for app, cfgs in res.data.items():
        bars = res.normalized_bars(app)
        total = {k: sum(v.values()) for k, v in bars.items()}
        # base normalises to 1.0; VLT compresses execution
        assert abs(total["base"] - 1.0) < 1e-9
        assert total["VLT-2"] < 1.0, app
        assert total["VLT-4"] <= total["VLT-2"] * 1.05, app
        # busy datapath-cycles are conserved (same element work)
        assert abs(bars["VLT-4"]["busy"] - bars["base"]["busy"]) < 1e-9
        # stall+idle shrink but do not vanish
        waste4 = total["VLT-4"] - bars["VLT-4"]["busy"]
        waste0 = 1.0 - bars["base"]["busy"]
        assert waste4 < waste0, app
        assert waste4 > 0.05, app
