"""Figure 3: VLT speedup for vector threads (V2-CMP / V4-CMP vs base).

Paper bands: 2 threads 1.14-2.15, 4 threads 1.40-2.3; 4 >= 2 per app.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from .conftest import run_once


def test_fig3_vlt_speedup(benchmark, capsys):
    res = run_once(benchmark, lambda: E.fig3_vlt_speedup())
    with capsys.disabled():
        print()
        print(R.render_fig3(res))

    for app in res.cycles:
        s2 = res.speedup(app, 2)
        s4 = res.speedup(app, 4)
        # VLT always helps, and within (a widened version of) the bands
        assert 1.05 <= s2 <= 2.4, (app, s2)
        assert 1.25 <= s4 <= 3.2, (app, s4)
        # more threads never hurt
        assert s4 >= s2 * 0.95, app
