"""Table 4: application characteristics, measured vs paper."""

from repro.harness import experiments as E
from repro.harness import report as R
from repro.workloads import PAPER_TABLE4

from .conftest import run_once


def test_table4(benchmark, capsys):
    chars = run_once(benchmark, lambda: E.table4_characteristics())
    with capsys.disabled():
        print()
        print(R.render_table4(chars))

    by_name = {c.name: c for c in chars}
    # percent vectorization within +-13 points of the paper (trfd's
    # compact triangular transform measures ~85 vs the paper's 73)
    for name, (pv, avl, _cvl, _opp) in PAPER_TABLE4.items():
        c = by_name[name]
        if pv is None:
            assert c.pct_vect == 0.0
        else:
            assert abs(c.pct_vect - pv) <= 13, name
        if avl is not None:
            assert abs(c.avg_vl - avl) <= 4, name
    # short-vector apps expose the paper's common VLs
    assert {8, 16, 64} <= set(by_name["mpenc"].common_vls)
    assert {5, 10, 12} <= set(by_name["bt"].common_vls)
    assert {23, 24, 64} <= set(by_name["multprec"].common_vls)
    assert {24, 52, 64} <= set(by_name["radix"].common_vls)
