"""Extension/claim benches beyond the main tables and figures.

* **Multiplexed vs replicated VCL** -- Section 3.2's claim: "a
  multiplexed VCL with statically partitioned resources performs as
  fast as a replicated one".
* **16 lanes** -- Sections 1/6: future designs use more lanes, which
  "would increase the usefulness of VLT for low-DLP applications":
  short-vector apps gain *more* from VLT on a 16-lane machine.
* **Dynamic reconfiguration** -- Section 3.3: switching the thread
  count at region boundaries beats a static partitioning when phases
  differ in DLP.
"""

from dataclasses import replace

from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import BASE, V4_CMP, MachineConfig, VectorUnitConfig
from repro.workloads import get_workload

from .conftest import run_once


def test_multiplexed_vcl_matches_replicated(benchmark, capsys):
    rep_cfg = replace(V4_CMP, name="V4-CMP-repVCL",
                      vu=replace(V4_CMP.vu, replicated_vcl=True))

    def sweep():
        out = {}
        for name in ("mpenc", "trfd", "multprec", "bt"):
            prog = get_workload(name).program()
            mux = simulate(prog, V4_CMP, num_threads=4).cycles
            rep = simulate(prog, rep_cfg, num_threads=4).cycles
            out[name] = (mux, rep)
        return out

    res = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nmultiplexed vs replicated VCL (V4, 4 threads):")
        for name, (mux, rep) in res.items():
            print(f"  {name:10s} mux={mux:>7}  rep={rep:>7}  "
                  f"overhead {100 * (mux / rep - 1):.1f}%")
    # the paper's Section 3.2 claim: within a few percent
    for name, (mux, rep) in res.items():
        assert mux <= rep * 1.08, name


def test_sixteen_lanes_increase_vlt_usefulness(benchmark, capsys):
    """At 16 lanes a short-vector app underutilises the machine even
    more, so the VLT speedup grows relative to 8 lanes."""
    def machine(lanes, sus):
        return MachineConfig(
            name=f"V4-CMP-{lanes}l",
            scalar_units=V4_CMP.scalar_units if sus == 4 else BASE.scalar_units,
            vu=VectorUnitConfig(lanes=lanes))

    def sweep():
        out = {}
        prog = get_workload("trfd").program()
        for lanes in (8, 16):
            base = simulate(prog, machine(lanes, 1), num_threads=1).cycles
            vlt = simulate(prog, machine(lanes, 4), num_threads=4).cycles
            out[lanes] = base / vlt
        return out

    speedups = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\ntrfd VLT-4 speedup vs lane count:")
        for lanes, s in speedups.items():
            print(f"  {lanes:2d} lanes: {s:.2f}x")
    assert speedups[16] >= speedups[8] * 0.95
    assert speedups[16] > 1.3


def test_vlt_vs_smt_vector_processor(benchmark, capsys):
    """VLT vs an SMT vector processor (the paper's citation [11]).

    Section 3.1 argues the two are orthogonal: SMT shares whole-width
    FUs across thread contexts (attacking ILP-idle FUs), VLT partitions
    the lanes (attacking DLP-idle lanes).  In pure *timing* terms the
    two organisations land within ~15% of each other on these
    workloads, because the dominant win is the replicated scalar units
    either way.  What the timing model cannot charge is SMT's register
    cost: an SMT vector unit needs register-file capacity for every
    context, while VLT reuses the register-file slices of the idle
    lanes "with no need for additional registers" (Section 3.2) -- the
    paper's actual argument for VLT.
    """
    vsmt_cfg = replace(V4_CMP, name="V4-VSMT",
                       vu=replace(V4_CMP.vu, vu_smt=True))

    def sweep():
        out = {}
        for name in ("mpenc", "trfd", "multprec", "bt"):
            prog = get_workload(name).program()
            base = simulate(prog, BASE, num_threads=1).cycles
            vlt = simulate(prog, V4_CMP, num_threads=4).cycles
            vsmt = simulate(prog, vsmt_cfg, num_threads=4).cycles
            out[name] = (base / vlt, base / vsmt)
        return out

    res = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nVLT vs SMT vector unit (4 threads, same SUs):")
        for name, (vlt, vsmt) in res.items():
            print(f"  {name:10s} VLT {vlt:4.2f}x   vector-SMT {vsmt:4.2f}x")
    for name, (vlt, vsmt) in res.items():
        assert vlt > 1.0 and vsmt > 1.0, name
        assert abs(vlt - vsmt) <= 0.30 * max(vlt, vsmt), name


def test_dynamic_reconfiguration_beats_static(benchmark, capsys):
    """A program with a long-vector phase and a short-vector phase:
    vltcfg 1 -> 4 beats running the whole program at 4 partitions."""
    def program(first_phase_parts):
        return assemble(f"""
        tid s1
        vltcfg {first_phase_parts}
        bne s1, s0, skip
        li s10, 0
        li s11, 80
        rep:
        li s2, 64
        setvl s3, s2
        vfadd.vv v1, v2, v3
        vfmul.vv v4, v1, v2
        vfadd.vv v5, v4, v1
        addi s10, s10, 1
        blt s10, s11, rep
        skip:
        barrier
        vltcfg 4
        li s10, 0
        li s11, 60
        rep2:
        li s2, 8
        setvl s3, s2
        vfadd.vv v1, v2, v3
        vfmul.vv v4, v1, v2
        addi s10, s10, 1
        blt s10, s11, rep2
        barrier
        halt
        """)

    def sweep():
        dyn = simulate(program(1), V4_CMP, num_threads=4).cycles
        static = simulate(program(4), V4_CMP, num_threads=4).cycles
        return {"dynamic": dyn, "static": static}

    res = run_once(benchmark, sweep)
    with capsys.disabled():
        print(f"\nphased kernel: dynamic vltcfg={res['dynamic']} cycles, "
              f"static 4-way={res['static']} cycles "
              f"({res['static'] / res['dynamic']:.2f}x)")
    assert res["dynamic"] < res["static"]
