"""Ablation benches for the design choices DESIGN.md calls out.

These quantify the mechanisms the paper leans on:

* **access decoupling** (Sections 2/5): lane-core performance vs the
  depth of the load run-ahead window -- the crux of Figure 6;
* **chaining** (Section 2): dependent vector chains with and without
  element-wise forwarding;
* **L2 banking**: stride sensitivity vs the number of banks;
* **VCL issue width** (Section 3): short-vector throughput vs the
  vector issue rate, the paper's central "instruction issue bandwidth"
  concern.
"""

from dataclasses import replace

from repro.isa import assemble
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE, VLT_SCALAR, base_config
from repro.workloads import get_workload

from .conftest import run_once


def test_ablation_decoupling_depth(benchmark, capsys):
    """Lane-core decouple depth: 0 (pure in-order) vs 8 vs 48.

    radix's dependent-load inner loops are the workload most sensitive
    to the lanes' access-decoupling window."""
    w = get_workload("radix")
    prog = w.program(scalar_only=True)

    def sweep():
        out = {}
        for depth in (0, 8, 48):
            cfg = replace(VLT_SCALAR, name=f"VLT-d{depth}",
                          lane_core=replace(VLT_SCALAR.lane_core,
                                            decouple_depth=depth))
            out[depth] = simulate(prog, cfg, num_threads=8).cycles
        return out

    cycles = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nradix on lanes vs decoupling depth:")
        for d, c in cycles.items():
            print(f"  depth {d:2d}: {c} cycles")
    # decoupling must help, monotonically
    assert cycles[8] < cycles[0]
    assert cycles[48] <= cycles[8]
    assert cycles[0] / cycles[48] > 1.15


def test_ablation_chaining(benchmark, capsys):
    """Dependent vector chains with and without chaining."""
    src = """
    li s9, 0
    li s10, 3
    rep:
    li s1, 64
    setvl s2, s1
    """ + "\n".join("vfadd.vv v1, v1, v2" for _ in range(60)) + """
    addi s9, s9, 1
    blt s9, s10, rep
    halt
    """
    prog = assemble(src)

    def sweep():
        out = {}
        for delay, label in ((2, "chained"), (100, "unchained")):
            clear_trace_cache()
            cfg = replace(BASE, name=f"base-chain{delay}",
                          vu=replace(BASE.vu, chain_delay=delay))
            out[label] = simulate(prog, cfg).cycles
        return out

    cycles = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\n60-deep dependent VL-64 chain x3:")
        for k, v in cycles.items():
            print(f"  {k}: {v} cycles")
    # without chaining every op waits for its producer's completion
    assert cycles["unchained"] > cycles["chained"] * 1.5


def test_ablation_l2_banks(benchmark, capsys):
    """Strided vector memory vs the number of L2 banks."""
    src = """
    .space x 262144
    li s9, 0
    li s10, 4
    rep:
    li s1, 64
    setvl s2, s1
    li s3, &x
    li s4, 256
    """ + "\n".join(f"vlds v{1 + i % 8}, {i * 8}(s3), s4"
                    for i in range(12)) + """
    addi s9, s9, 1
    blt s9, s10, rep
    halt
    """
    prog = assemble(src, memory_kib=512)

    def sweep():
        out = {}
        for banks in (4, 16, 64):
            clear_trace_cache()
            cfg = replace(BASE, name=f"base-b{banks}",
                          l2=replace(BASE.l2, banks=banks))
            out[banks] = simulate(prog, cfg).cycles
        return out

    cycles = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nstride-256 vector loads vs L2 banks:")
        for b, c in cycles.items():
            print(f"  {b:2d} banks: {c} cycles")
    assert cycles[4] > cycles[16] >= cycles[64]


def test_ablation_barrier_overhead(benchmark, capsys):
    """Thread-API overhead (paper Section 7.1 calls it a secondary
    factor): VLT speedups should degrade only mildly as the barrier
    release overhead grows by an order of magnitude."""
    w = get_workload("mpenc")
    prog = w.program()

    def sweep():
        out = {}
        for ovh in (0, 30, 300):
            base_cfg = replace(BASE, name=f"base-b{ovh}",
                               barrier_overhead=ovh)
            from repro.timing.config import V4_CMP as _V4
            vlt_cfg = replace(_V4, name=f"V4-b{ovh}", barrier_overhead=ovh)
            base = simulate(prog, base_cfg, num_threads=1).cycles
            vlt = simulate(prog, vlt_cfg, num_threads=4).cycles
            out[ovh] = base / vlt
        return out

    speedups = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nmpenc VLT-4 speedup vs barrier overhead:")
        for ovh, s in speedups.items():
            print(f"  {ovh:4d} cycles/barrier: {s:.2f}x")
    assert speedups[0] >= speedups[30] >= speedups[300]
    # an order of magnitude more overhead costs < 20% of the speedup
    assert speedups[300] >= speedups[30] * 0.8


def test_ablation_vcl_issue_width(benchmark, capsys):
    """Short-vector throughput vs VCL issue width (the paper's core
    bandwidth argument: short vectors need issue rate, long don't)."""
    def kernel(vl):
        return assemble(f"""
        li s9, 0
        li s10, 4
        rep:
        li s1, {vl}
        setvl s2, s1
        """ + "\n".join(f"vfadd.vv v{1 + i % 8}, v9, v10"
                        for i in range(40)) + """
        addi s9, s9, 1
        blt s9, s10, rep
        halt
        """)

    def sweep():
        out = {}
        for vl in (8, 64):
            prog = kernel(vl)
            for width in (1, 2, 4):
                cfg = replace(BASE, name=f"base-w{width}",
                              vu=replace(BASE.vu, issue_width=width))
                out[(vl, width)] = simulate(prog, cfg).cycles
        return out

    cycles = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nindependent vector adds vs VCL issue width:")
        for (vl, w), c in sorted(cycles.items()):
            print(f"  VL {vl:2d}, width {w}: {c} cycles")
    # short vectors are issue-bound: width 2 clearly beats width 1
    assert cycles[(8, 1)] > cycles[(8, 2)] * 1.3
    # long vectors are occupancy-bound: width is nearly irrelevant
    assert cycles[(64, 1)] < cycles[(64, 4)] * 1.25
