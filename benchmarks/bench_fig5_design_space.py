"""Figure 5: the scalar-unit design space for vector threads.

Paper shape (Section 7.1): V2-SMT ~ V2-CMP for two threads; for four
threads V4-SMT falls behind (4 instructions/cycle cannot feed four
threads), the hybrid V4-CMT matches the fully-replicated V4-CMP, and
the heterogeneous V4-CMP-h trails the other replicated configurations.
"""

from repro.harness import experiments as E
from repro.harness import report as R

from .conftest import run_once


def test_fig5_design_space(benchmark, capsys):
    res = run_once(benchmark, lambda: E.fig5_design_space())
    with capsys.disabled():
        print()
        print(R.render_fig5(res))

    for app, row in res.speedups.items():
        # replicated configurations always beat the base machine; the
        # single-SU (SMT) points may dip to ~0.95 for multprec, whose
        # scalar carry pass rereads vector-stored lines that coherent
        # L1s have (correctly) invalidated
        assert all(v >= 0.9 for v in row.values()), app
        assert row["V2-CMP"] >= 1.0 and row["V4-CMP"] >= 1.0, app
        # V4-CMT approaches the fully replicated V4-CMP
        assert row["V4-CMT"] >= row["V4-CMP"] * 0.8, app
        # the single multiplexed SU cannot feed 4 threads as well as two
        assert row["V4-SMT"] <= row["V4-CMT"] * 1.05, app
        # V4-CMP-h never beats the fully replicated design
        assert row["V4-CMP-h"] <= row["V4-CMP"] * 1.02, app
        # replication >= multiplexing at equal thread counts
        assert row["V2-CMP"] >= row["V2-SMT"] * 0.95, app
