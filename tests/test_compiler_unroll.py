"""Vector strip-loop unrolling (CompileOptions.unroll)."""

import numpy as np
import pytest

from repro.compiler import (Array, Assign, CompileOptions, Kernel, Loop,
                            Reduce, Var, compile_kernel)
from repro.functional import Executor
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE


def axpy_kernel(n):
    rng = np.random.default_rng(21)
    xv, yv = rng.random(n), rng.random(n)
    i = Var("i")
    x = Array("x", (n,), xv)
    y = Array("y", (n,), yv)
    z = Array("z", (n,))
    kern = Kernel("axpy", [
        Loop(i, n, [Assign(z[i], 2.0 * x[i] + y[i])], parallel=True)])
    return kern, xv, yv


class TestUnrollCorrectness:
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 129, 256, 300])
    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_all_lengths(self, n, unroll):
        kern, xv, yv = axpy_kernel(n)
        prog = compile_kernel(kern, CompileOptions(unroll=unroll))
        ex = Executor(prog)
        ex.run()
        got = ex.mem.read_f64_array(prog.symbol_addr("z"), n)
        assert np.allclose(got, 2.0 * xv + yv)

    @pytest.mark.parametrize("unroll", [2, 4])
    def test_reduction_with_unroll(self, unroll):
        n = 300
        rng = np.random.default_rng(22)
        xv = rng.random(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        s = Array("s", (1,))
        kern = Kernel("sum", [
            Loop(i, n, [Reduce("+", s[0], x[i])], parallel=True)])
        prog = compile_kernel(kern, CompileOptions(unroll=unroll))
        ex = Executor(prog)
        ex.run()
        assert np.isclose(ex.mem.read_f64_array(prog.symbol_addr("s"), 1)[0],
                          xv.sum())

    def test_invalid_unroll(self):
        with pytest.raises(ValueError):
            CompileOptions(unroll=0)


class TestUnrollEffect:
    def test_fewer_dynamic_branches(self):
        kern, *_ = axpy_kernel(1024)
        p1 = compile_kernel(kern, CompileOptions(unroll=1))
        p4 = compile_kernel(kern, CompileOptions(unroll=4))
        from repro.functional import Executor as Ex

        def branch_count(prog):
            ex = Ex(prog)
            trace = ex.run()
            return sum(1 for o in trace.threads[0].ops
                       if o.spec.is_branch)

        assert branch_count(p4) < branch_count(p1)

    def test_not_slower_on_long_arrays(self):
        kern, *_ = axpy_kernel(2048)
        p1 = compile_kernel(kern, CompileOptions(unroll=1))
        p4 = compile_kernel(kern, CompileOptions(unroll=4))
        clear_trace_cache()
        c1 = simulate(p1, BASE).cycles
        clear_trace_cache()
        c4 = simulate(p4, BASE).cycles
        assert c4 <= c1 * 1.05
