"""Experiment harness: drivers, report rendering, CLI, docgen."""

import pytest

from repro.harness import experiments as E
from repro.harness import report as R


class TestAreaAndTables:
    def test_area_tables(self):
        res = E.area_tables()
        assert len(res.table1) == 6
        assert len(res.table2) == 7
        text = R.render_area(res)
        assert "V4-CMT" in text and "13.8" in text

    def test_table3(self):
        rows = E.table3_parameters()
        text = R.render_table3(rows)
        assert "4-way out-of-order" in text
        assert "16-way banked" in text

    def test_table4_subset(self):
        chars = E.table4_characteristics(["bt"])
        text = R.render_table4(chars)
        assert "bt" in text and "(46)" in text


class TestFigureDrivers:
    def test_fig1_reduced(self):
        res = E.fig1_lane_scaling(apps=["trfd"], lanes=(1, 8))
        sp = res.speedups("trfd")
        assert sp[0] == 1.0
        assert sp[1] >= 1.0
        text = R.render_fig1(res)
        assert "trfd" in text

    def test_fig3_reduced(self):
        res = E.fig3_vlt_speedup(apps=["trfd"])
        assert res.speedup("trfd", 2) > 1.0
        assert res.speedup("trfd", 4) >= res.speedup("trfd", 2) * 0.9
        text = R.render_fig3(res)
        assert "VLT-2" in text

    def test_fig4_reduced(self):
        res = E.fig4_utilization(apps=["trfd"])
        bars = res.normalized_bars("trfd")
        assert bars["base"]["busy"] > 0
        # base bar is normalised to 1.0 by construction
        assert sum(bars["base"].values()) == pytest.approx(1.0)
        # VLT compresses execution: the total bar shrinks
        assert sum(bars["VLT-4"].values()) < 1.0
        text = R.render_fig4(res)
        assert "VLT-4" in text

    def test_fig5_reduced(self):
        res = E.fig5_design_space(apps=["trfd"])
        row = res.speedups["trfd"]
        assert set(row) == {"V2-SMT", "V2-CMP", "V4-SMT", "V4-CMT",
                            "V4-CMP", "V4-CMP-h"}
        # paper shapes: V4-CMT close to V4-CMP; V4-SMT behind V4-CMT
        assert row["V4-CMT"] >= row["V4-CMP"] * 0.85
        assert row["V4-SMT"] <= row["V4-CMT"] * 1.05
        text = R.render_fig5(res)
        assert "V4-CMP-h" in text

    def test_fig6_reduced(self):
        res = E.fig6_scalar_threads(apps=["ocean"])
        assert res.speedup("ocean") > 1.0
        text = R.render_fig6(res)
        assert "ocean" in text


class TestCli:
    def test_run_experiment_dispatch(self):
        from repro.harness.cli import run_experiment
        out = run_experiment("table1")
        assert "Table 1" in out
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cli_main_table(self, capsys):
        from repro.harness.cli import main
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_cli_apps_filter(self, capsys):
        from repro.harness.cli import main
        assert main(["fig1", "--apps", "trfd", "--lanes", "1,8"]) == 0
        out = capsys.readouterr().out
        assert "trfd" in out and "mxm" not in out

    def test_cli_zero_timeout_rejected(self, capsys):
        # `--timeout 0` is falsy: it used to silently skip the runner
        # path (and with it the limit), instead of erroring out
        from repro.harness.cli import main
        with pytest.raises(SystemExit):
            main(["fig3", "--apps", "mxm", "--timeout", "0"])
        assert "--timeout must be > 0" in capsys.readouterr().err


class TestObservabilityCli:
    def test_trace_verb_writes_chrome_json(self, tmp_path, capsys):
        import json
        from repro.harness.cli import main
        out = tmp_path / "trace.json"
        assert main(["trace", "sage", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "stall attribution" in text
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["app"] == "sage"

    def test_profile_verb(self, tmp_path, capsys):
        import json
        from repro.harness.cli import main
        jpath = tmp_path / "prof.json"
        assert main(["profile", "sage", "--json", str(jpath)]) == 0
        text = capsys.readouterr().out
        assert "host-side phase profile" in text and "replay" in text
        payload = json.loads(jpath.read_text())
        assert payload["app"] == "sage"
        assert "replay" in payload["phases"]

    def test_determinism_verb(self, capsys):
        from repro.harness.cli import main
        assert main(["determinism", "sage"]) == 0
        assert "determinism OK" in capsys.readouterr().out


class TestRenderHelpers:
    def test_bar_scaling(self):
        assert R.bar(0, 10) == ""
        assert len(R.bar(10, 10)) == R.BAR_WIDTH
        assert len(R.bar(5, 10)) == R.BAR_WIDTH // 2

    def test_table_alignment(self):
        text = R.table(["a", "bbb"], [["1", "2"], ["333", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) >= 6 for l in lines[1:])
