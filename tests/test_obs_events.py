"""Event bus semantics and the zero-overhead-when-disabled contract."""

import pytest

from repro.isa import assemble
from repro.obs import (BANK_CONFLICT, CACHE_MISS, COMMIT, EVENT_KINDS, Event,
                       EventBus, EventLog, ISSUE, LANE_ISSUE, NULL_BUS, STALL,
                       StallReason, VISSUE)
from repro.timing import Machine, simulate, simulate_traced, trace_for
from repro.timing.config import BASE, V2_CMP, VLT_SCALAR

_VEC_SRC = """
.space x 1024
li s1, 16
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfadd.vv v2, v1, v1
vst v2, 0(s3)
li s4, 0
li s5, 6
loop:
addi s4, s4, 1
blt s4, s5, loop
halt
"""


class _Collector:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


class TestEventBus:
    def test_disabled_until_first_sink(self):
        bus = EventBus()
        assert not bus.enabled
        c = _Collector()
        bus.attach(c)
        assert bus.enabled
        bus.detach(c)
        assert not bus.enabled

    def test_attach_requires_on_event(self):
        with pytest.raises(TypeError):
            EventBus().attach(object())

    def test_emit_reaches_all_sinks_in_order(self):
        bus = EventBus()
        a, b = _Collector(), _Collector()
        bus.attach(a)
        bus.attach(b)
        ev = Event(5, ISSUE, "SU0.c0")
        bus.emit(ev)
        assert a.events == [ev] and b.events == [ev]

    def test_suppress_nests(self):
        bus = EventBus()
        bus.attach(_Collector())
        bus.suppress()
        bus.suppress()
        assert not bus.enabled
        bus.unsuppress()
        assert not bus.enabled
        bus.unsuppress()
        assert bus.enabled

    def test_attach_during_suppression_stays_muted(self):
        bus = EventBus()
        bus.suppress()
        bus.attach(_Collector())
        assert not bus.enabled
        bus.unsuppress()
        assert bus.enabled

    def test_null_bus_is_disabled(self):
        assert NULL_BUS.enabled is False
        assert NULL_BUS.sinks == ()


class TestEvent:
    def test_kind_constants_are_registered(self):
        assert {ISSUE, VISSUE, LANE_ISSUE, COMMIT, STALL, CACHE_MISS,
                BANK_CONFLICT} <= EVENT_KINDS

    def test_dynop_accessors_default(self):
        ev = Event(0, STALL, "SU0", reason=StallReason.L1I_MISS, dur=3)
        assert ev.op == "" and ev.pc == -1 and ev.vl == 0
        assert ev.reason is StallReason.L1I_MISS and ev.dur == 3

    def test_hot_objects_have_no_dict(self):
        # the instrumentation must not fatten per-event / per-bus objects
        # with dynamic attribute storage
        assert not hasattr(Event(0, ISSUE, "u"), "__dict__")
        assert not hasattr(EventBus(), "__dict__")
        with pytest.raises(AttributeError):
            Event(0, ISSUE, "u").bogus = 1


class TestEventLog:
    def _ev(self, cycle, kind=ISSUE):
        return Event(cycle, kind, "u")

    def test_bounded_and_truncated(self):
        log = EventLog(max_events=2)
        for c in range(5):
            log.on_event(self._ev(c))
        assert len(log) == 2 and log.truncated

    def test_kind_filter(self):
        log = EventLog(kinds=frozenset({STALL}))
        log.on_event(self._ev(0, ISSUE))
        log.on_event(self._ev(1, STALL))
        assert [e.kind for e in log.events] == [STALL]

    def test_start_cycle_filter(self):
        log = EventLog(start_cycle=10)
        log.on_event(self._ev(5))
        log.on_event(self._ev(10))
        assert [e.cycle for e in log.events] == [10]

    def test_by_kind(self):
        log = EventLog()
        log.on_event(self._ev(0, ISSUE))
        log.on_event(self._ev(1, COMMIT))
        assert len(log.by_kind(COMMIT)) == 1


class TestDisabledModeIsInert:
    def test_plain_run_attaches_nothing(self):
        prog = assemble(_VEC_SRC)
        trace = trace_for(prog, 1)
        m = Machine(BASE, [t.ops for t in trace.threads])
        assert m.obs.enabled is False
        assert m.obs.sinks == ()
        m.run()
        assert m.obs.enabled is False

    def test_cycle_counts_identical_with_and_without_tracing(self):
        prog = assemble(_VEC_SRC)
        plain = simulate(prog, BASE)
        traced = simulate_traced(prog, BASE)
        assert traced.result.cycles == plain.cycles
        assert traced.result.utilization == plain.utilization
        assert traced.result.l2_bank_conflict_cycles == \
            plain.l2_bank_conflict_cycles


class TestEnabledModeCountsMatchStats:
    """Traced event counts must reconcile *exactly* with the always-on
    per-unit stats -- the cross-check that keeps both honest."""

    @pytest.mark.parametrize("cfg,threads", [(BASE, 1), (V2_CMP, 2)])
    def test_issue_commit_counts(self, cfg, threads):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, cfg, num_threads=threads)
        r = tr.result
        counters = tr.metrics.counters()
        assert counters["issued.scalar"] == \
            sum(s.issued for s in r.scalar_units)
        assert counters["issued.vector"] == r.vector_unit.issued
        assert counters["committed.scalar"] == \
            sum(s.committed for s in r.scalar_units)
        assert len(tr.events.by_kind(VISSUE)) == r.vector_unit.issued

    def test_vl_histogram_matches_trace(self):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE)
        h = tr.metrics.histogram("vl")
        assert h.count == tr.result.vector_unit.issued
        assert set(h.buckets) == {16}

    def test_lane_issue_counts_lane_scalar_mode(self):
        prog = assemble("""
        li s1, 0
        li s2, 30
        loop:
        addi s1, s1, 1
        blt s1, s2, loop
        halt
        """)
        tr = simulate_traced(prog, VLT_SCALAR, num_threads=2)
        issued = sum(s.issued for s in tr.result.lane_cores)
        assert issued > 0
        assert tr.metrics.counters()["issued.lane"] == issued
