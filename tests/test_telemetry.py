"""Fleet telemetry: spans, run ledger, aggregation, bench trend.

The load-bearing guarantees:

* telemetry cannot perturb results -- cycle counts are bit-identical
  with telemetry on and off, and jobs=1 vs jobs=4 sweeps agree on every
  aggregated non-timing metric;
* the ledger schema is stable (golden record) and every attempt --
  retries and worker crashes included -- lands as one valid record;
* spans nest correctly within a process and survive the merge across
  process boundaries;
* the ledger survives a worker crash mid-sweep with no torn lines.
"""

import json
import os
from pathlib import Path

import pytest

from repro.harness.runner import ExperimentRunner, RunSpec
from repro.obs.hostprof import PhaseProfiler
from repro.obs.telemetry import (JsonlWriter, SpanCollector, Telemetry,
                                 TelemetryReader, append_bench_history,
                                 bench_trend_report, get_span_collector,
                                 read_jsonl, set_span_collector, span,
                                 validate_run_record)
from repro.timing.run import set_trace_cache_dir

_SPECS = [RunSpec("mpenc", "base", 1),
          RunSpec("mpenc", "V2-CMP", 2),
          RunSpec("mpenc", "V4-CMP", 4)]

_GOLDEN = Path(__file__).parent / "data" / "telemetry_golden_record.json"


@pytest.fixture(autouse=True)
def _clean_ambient_state():
    """No disk cache, no leaked ambient span collector."""
    set_trace_cache_dir(None)
    prev = set_span_collector(None)
    yield
    set_span_collector(prev)
    set_trace_cache_dir(None)


def _cycles(outcomes):
    return {s: o.result.cycles for s, o in outcomes.items() if o.ok}


# --------------------------------------------------------------------------
# Span primitive
# --------------------------------------------------------------------------

class TestSpans:
    def test_nesting_single_process(self):
        col = SpanCollector(worker="t")
        set_span_collector(col)
        with span("outer", kind="test"):
            with span("inner"):
                pass
            with span("inner2"):
                pass
        assert [s["name"] for s in col.spans] == ["outer", "inner",
                                                  "inner2"]
        outer, inner, inner2 = col.spans
        assert outer["parent"] is None
        assert inner["parent"] == 0
        assert inner2["parent"] == 0
        assert outer["attrs"] == {"kind": "test"}
        assert outer["dur_s"] >= inner["dur_s"] + inner2["dur_s"]

    def test_disabled_span_still_measures(self):
        assert get_span_collector() is None
        with span("anything") as handle:
            sum(range(1000))
        assert handle.dur_s > 0.0

    def test_exception_closes_span(self):
        col = SpanCollector(worker="t")
        set_span_collector(col)
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("boom"):
                    raise RuntimeError("x")
        assert all(s["dur_s"] > 0.0 for s in col.spans)
        # the stack fully unwound: a new span is top-level again
        with span("after"):
            pass
        assert col.spans[-1]["parent"] is None

    def test_phase_profiler_emits_spans(self):
        col = SpanCollector(worker="t")
        set_span_collector(col)
        prof = PhaseProfiler()
        with prof.phase("replay"):
            pass
        with prof.phase("replay"):
            pass
        assert [s["name"] for s in col.spans] == ["replay", "replay"]
        # ...and the profiler numbers are the span numbers
        assert prof.phases["replay"].calls == 2
        assert prof.phases["replay"].wall_s == pytest.approx(
            sum(s["dur_s"] for s in col.spans))
        assert set(prof.as_dict()["replay"]) == {"wall_s", "calls"}


# --------------------------------------------------------------------------
# JSONL ledger mechanics
# --------------------------------------------------------------------------

class TestJsonl:
    def test_round_trip_and_corrupt_line_dropped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JsonlWriter(path) as w:
            w.append({"a": 1})
            w.append({"b": [1, 2]})
        # simulate a torn tail from a killed writer
        with open(path, "a") as fh:
            fh.write('{"c": tru')
        assert read_jsonl(path) == [{"a": 1}, {"b": [1, 2]}]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []
        r = TelemetryReader.from_path(tmp_path / "nope.jsonl")
        assert "no ledger records" in r.report()

    def test_validate_rejects_malformed(self):
        golden = json.loads(_GOLDEN.read_text())
        assert validate_run_record(golden) == []
        bad = dict(golden, outcome="maybe", attempt=0)
        bad.pop("cycles")
        bad["surprise"] = 1
        problems = "\n".join(validate_run_record(bad))
        assert "outcome" in problems
        assert "attempt" in problems
        assert "missing" in problems
        assert "unknown" in problems


# --------------------------------------------------------------------------
# Ledger schema stability + equivalence
# --------------------------------------------------------------------------

class TestLedger:
    def test_golden_schema(self, tmp_path):
        """Every record carries exactly the golden field set, with the
        golden types -- schema drift must be a conscious bump."""
        golden = json.loads(_GOLDEN.read_text())
        r = ExperimentRunner(jobs=1, telemetry=tmp_path / "tele")
        r.run([_SPECS[0]])
        recs = read_jsonl(tmp_path / "tele" / "ledger.jsonl")
        assert len(recs) == 1
        rec = recs[0]
        assert validate_run_record(rec) == []
        assert sorted(rec) == sorted(golden)
        for key, want in golden.items():
            got = rec[key]
            if want is None or got is None:
                continue
            assert isinstance(got, type(want)), \
                f"{key}: {type(got).__name__} != {type(want).__name__}"

    def test_func_engine_recorded(self, tmp_path):
        r = ExperimentRunner(jobs=1, func_engine="fast",
                             telemetry=tmp_path / "tele")
        r.run([_SPECS[0]])
        recs = read_jsonl(tmp_path / "tele" / "ledger.jsonl")
        assert [rec["func_engine"] for rec in recs] == ["fast"]
        assert all(validate_run_record(rec) == [] for rec in recs)
        reader = TelemetryReader(recs)
        assert reader.fleet_metrics()["func_engine_mix"] == {"fast": 1}
        assert "functional fast x1" in reader.report()
        assert "timing event x1" in reader.report()

    def test_every_attempt_is_a_record(self, tmp_path):
        r = ExperimentRunner(jobs=1, retries=1,
                             telemetry=tmp_path / "tele")
        out = r.run([RunSpec("nosuchapp", "base", 1), _SPECS[0]])
        recs = read_jsonl(tmp_path / "tele" / "ledger.jsonl")
        # 2 failed attempts (initial + retry) + 1 ok
        assert len(recs) == 3
        assert all(validate_run_record(rec) == [] for rec in recs)
        errors = [rec for rec in recs if rec["outcome"] == "error"]
        assert [rec["attempt"] for rec in errors] == [1, 2]
        assert all(rec["error_type"] == "KeyError" for rec in errors)
        m = TelemetryReader(recs).fleet_metrics()
        assert m["attempts"] == 3
        assert m["retried_attempts"] == 1
        assert m["failure_classes"] == {"KeyError": 2}
        assert not out[RunSpec("nosuchapp", "base", 1)].ok

    def test_serial_vs_parallel_metrics_agree(self, tmp_path):
        serial = ExperimentRunner(jobs=1, telemetry=tmp_path / "t1")
        par = ExperimentRunner(jobs=4, telemetry=tmp_path / "t4",
                               cache_dir=tmp_path / "cache")
        s_out = serial.run(_SPECS)
        p_out = par.run(_SPECS)
        assert _cycles(s_out) == _cycles(p_out)
        ms = serial.telemetry.reader().fleet_metrics()
        mp = par.telemetry.reader().fleet_metrics()
        # every non-timing aggregate agrees (cache effects aside: the
        # serial path ran without a disk cache here)
        for key in ("attempts", "runs", "ok", "ok_runs", "errors",
                    "crashes", "retried_attempts", "total_cycles"):
            assert ms[key] == mp[key], key
        assert len(mp["workers"]) >= 2   # it really fanned out
        assert mp["worker_utilization"] is not None
        assert 0.0 < mp["worker_utilization"] <= 1.0
        assert mp["queue_wait_p50_s"] is not None
        assert mp["queue_wait_p95_s"] >= mp["queue_wait_p50_s"]

    def test_skewed_queue_waits_clamped_and_flagged(self, tmp_path):
        """Cross-process clock skew can stamp t_start before t_submit,
        yielding a negative queue wait.  The reader must clamp to 0 (a
        wait cannot be negative) and say how many records it touched
        rather than silently producing nonsense percentiles."""
        r = ExperimentRunner(jobs=1, telemetry=tmp_path / "tele")
        r.run([_SPECS[0]])
        base = read_jsonl(tmp_path / "tele" / "ledger.jsonl")[0]
        skewed = dict(base, queue_wait_s=-0.75)
        honest = dict(base, queue_wait_s=0.25)
        recs = [skewed, honest, dict(base, queue_wait_s=-0.01)]
        assert all(validate_run_record(rec) == [] for rec in recs)
        m = TelemetryReader(recs).fleet_metrics()
        assert m["queue_wait_clamped"] == 2
        assert m["queue_wait_p50_s"] >= 0.0
        assert m["queue_wait_p95_s"] >= m["queue_wait_p50_s"]
        report = TelemetryReader(recs).report()
        assert "clamped" in report
        # an unskewed ledger reports no clamping (and no flag line)
        clean = TelemetryReader([honest])
        assert clean.fleet_metrics()["queue_wait_clamped"] == 0
        assert "clamped" not in clean.report()

    def test_telemetry_off_is_bit_identical(self, tmp_path):
        bare = ExperimentRunner(jobs=1).run(_SPECS)
        instrumented = ExperimentRunner(
            jobs=1, telemetry=tmp_path / "tele", progress=True).run(_SPECS)
        assert _cycles(bare) == _cycles(instrumented)

    def test_crash_safe_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("VLT_RUNNER_TEST_CRASH", "mpenc:V2-CMP")
        r = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache",
                             retries=1, telemetry=tmp_path / "tele")
        out = r.run(_SPECS)
        assert not out[RunSpec("mpenc", "V2-CMP", 2)].ok
        # every line parses and validates -- no torn records
        raw = (tmp_path / "tele" / "ledger.jsonl").read_text()
        recs = [json.loads(line) for line in raw.splitlines() if line]
        assert all(validate_run_record(rec) == [] for rec in recs)
        crashes = [rec for rec in recs if rec["outcome"] == "crash"]
        assert crashes, "worker death must land in the ledger"
        assert all(rec["error_type"] == "WorkerCrash" for rec in crashes)
        m = TelemetryReader(recs).fleet_metrics()
        assert m["crashes"] == len(crashes)
        assert m["ok"] == 2   # survivors still recorded


# --------------------------------------------------------------------------
# Span merge across processes + timeline export
# --------------------------------------------------------------------------

class TestSpanMerge:
    def test_spans_merge_across_processes(self, tmp_path):
        r = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache",
                             telemetry=tmp_path / "tele")
        r.run(_SPECS)
        spans = read_jsonl(tmp_path / "tele" / "spans.jsonl")
        workers = {s["worker"] for s in spans}
        assert "parent" in workers
        assert len(workers - {"parent"}) >= 2   # 3 specs over 2 workers
        by_id = {s["id"]: s for s in spans}
        assert len(by_id) == len(spans)   # global ids stayed unique
        # nesting survived the merge: a replay span's ancestry reaches
        # the run_attempt root recorded by the same worker
        replay = next(s for s in spans if s["name"] == "replay")
        chain = [replay["name"]]
        cur = replay
        while cur["parent"] is not None:
            cur = by_id[cur["parent"]]
            chain.append(cur["name"])
            assert cur["worker"] == replay["worker"]
        assert chain[-1] == "run_attempt"
        # the parent recorded the sweep-level span
        assert any(s["name"] == "sweep" and s["worker"] == "parent"
                   for s in spans)

    def test_timeline_export(self, tmp_path):
        r = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache",
                             telemetry=tmp_path / "tele")
        r.run(_SPECS[:2])
        doc = json.loads((tmp_path / "tele" / "timeline.json").read_text())
        events = doc["traceEvents"]
        tracks = {e["args"]["name"] for e in events
                  if e.get("name") == "thread_name"}
        assert "parent" in tracks and len(tracks) >= 3
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        assert all(e["ts"] >= 0 and e["dur"] >= 1.0 for e in slices)
        assert "t0_epoch_s" in doc["otherData"]


# --------------------------------------------------------------------------
# Cache accounting + provenance
# --------------------------------------------------------------------------

class TestCacheAccounting:
    def test_worker_counters_accumulate_in_parent(self, tmp_path):
        cold = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache")
        cold.run(_SPECS)
        # per-process counters alone would show nothing in the parent;
        # the payload deltas must reflect what the workers did
        assert cold.cache_counters["result_misses"] >= len(_SPECS)
        assert cold.cache_counters["result_stores"] == len(_SPECS)
        assert cold.cache_counters["result_hits"] == 0
        warm = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache")
        out = warm.run(_SPECS)
        assert warm.cache_counters["result_hits"] == len(_SPECS)
        assert all(o.result_cached for o in out.values())

    def test_trace_cached_provenance(self, tmp_path):
        import shutil
        first = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache")
        out = first.run([_SPECS[0]])
        assert out[_SPECS[0]].provenance() == "simulated"
        assert out[_SPECS[0]].trace_cached is False
        # drop the result cache but keep the traces: the rerun must
        # replay, served by the cached functional trace
        shutil.rmtree(tmp_path / "cache" / "results")
        again = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache")
        out2 = again.run([_SPECS[0]])
        o = out2[_SPECS[0]]
        assert not o.result_cached
        assert o.trace_cached is True
        assert o.provenance() == "trace cache"
        third = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache")
        out3 = third.run([_SPECS[0]])
        assert out3[_SPECS[0]].provenance() == "result cache"

    def test_report_carries_provenance(self, tmp_path):
        r = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache")
        r.run([_SPECS[0]])
        rep = r.report()
        assert "simulated" in rep
        assert "1 attempt" in rep
        assert "cycles in" in rep
        warm = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache")
        warm.run([_SPECS[0]])
        assert "result cache" in warm.report()


# --------------------------------------------------------------------------
# Bench-trend history
# --------------------------------------------------------------------------

def _bench_payload(cps):
    return {"benchmark": "simulator_speed",
            "results": {"end_to_end": {"cycles_per_s": cps},
                        "timing_replay": {"cycles_per_s": 2 * cps},
                        "timing_replay_columnar": {"cycles_per_s": 40 * cps},
                        "functional": {"ops_per_s": cps / 2}}}


class TestBenchHistory:
    def test_append_and_trend(self, tmp_path):
        hist = tmp_path / "history"
        for i, cps in enumerate((50_000.0, 60_000.0)):
            src = tmp_path / f"bench{i}.json"
            src.write_text(json.dumps(_bench_payload(cps)))
            out = append_bench_history(src, hist)
            assert out.name == f"simulator_speed-{i:04d}.json"
            entry = json.loads(out.read_text())
            assert entry["seq"] == i
            assert "recorded_at" in entry
        report = bench_trend_report(hist, last=5)
        assert "2 of 2 entries" in report
        assert "end_to_end.cycles_per_s" in report
        assert "+20%" in report   # 50k -> 60k over the window

    def test_compare_bench_appends_history(self, tmp_path):
        import importlib.util
        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "compare_bench", root / "benchmarks" / "compare_bench.py")
        cb = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cb)
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench_payload(50_000.0)))
        cand.write_text(json.dumps(_bench_payload(55_000.0)))
        hist = tmp_path / "history"
        assert cb.main([str(base), str(cand),
                        "--append-history", str(hist)]) == 0
        assert (hist / "simulator_speed-0000.json").is_file()

    def test_checked_in_history_seed_is_valid(self):
        hist = Path(__file__).resolve().parent.parent \
            / "benchmarks" / "history"
        report = bench_trend_report(hist)
        assert "no history entries" not in report


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------

class TestTeleCli:
    def test_tele_report_and_timeline(self, tmp_path, capsys):
        from repro.harness.cli import main
        tele = tmp_path / "tele"
        ExperimentRunner(jobs=1, telemetry=tele).run([_SPECS[0]])
        assert main(["tele", "report", "--telemetry", str(tele)]) == 0
        out = capsys.readouterr().out
        assert "fleet telemetry:" in out
        assert "utilization" in out
        assert main(["tele", "timeline", "--telemetry", str(tele)]) == 0
        assert "span records" in capsys.readouterr().out
        assert (tele / "timeline.json").is_file()

    def test_tele_trend(self, tmp_path, capsys):
        from repro.harness.cli import main
        src = tmp_path / "bench.json"
        src.write_text(json.dumps(_bench_payload(50_000.0)))
        hist = tmp_path / "history"
        append_bench_history(src, hist)
        assert main(["tele", "trend", "--history", str(hist)]) == 0
        assert "bench trend" in capsys.readouterr().out

    def test_sweep_with_telemetry_flag(self, tmp_path, capsys):
        from repro.harness.cli import main
        tele = tmp_path / "tele"
        rc = main(["fig3", "--apps", "mpenc",
                   "--telemetry", str(tele), "--progress"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet telemetry:" in out
        recs = read_jsonl(tele / "ledger.jsonl")
        assert recs and all(validate_run_record(r) == [] for r in recs)
        assert (tele / "timeline.json").is_file()
