"""Event-log truncation must be loud: dropped counts and report headers."""

from repro.isa import assemble
from repro.obs import EventLog
from repro.obs.events import Event
from repro.obs.stall_report import render_stall_report, stall_attribution
from repro.timing import simulate_traced
from repro.timing.config import BASE

_SRC = """
.space x 1024
li s1, 16
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfadd.vv v2, v1, v1
vst v2, 0(s3)
li s4, 0
li s5, 20
loop:
addi s4, s4, 1
blt s4, s5, loop
halt
"""


class TestEventLogDropCounter:
    def test_counts_dropped_events(self):
        log = EventLog(max_events=2)
        for c in range(5):
            log.on_event(Event(cycle=c, kind="issue", unit="SU0"))
        assert log.truncated
        assert len(log.events) == 2
        assert log.dropped == 3

    def test_filtered_events_not_counted_as_dropped(self):
        log = EventLog(max_events=1, kinds=frozenset({"issue"}))
        log.on_event(Event(cycle=0, kind="issue", unit="SU0"))
        assert log.truncated
        log.on_event(Event(cycle=1, kind="stall", unit="SU0"))   # filtered
        log.on_event(Event(cycle=2, kind="issue", unit="SU0"))   # dropped
        assert log.dropped == 1

    def test_untruncated_log_has_zero_dropped(self):
        log = EventLog(max_events=100)
        log.on_event(Event(cycle=0, kind="issue", unit="SU0"))
        assert not log.truncated
        assert log.dropped == 0


class TestTruncationSurfacing:
    def _traced(self, max_events):
        return simulate_traced(assemble(_SRC), BASE, max_events=max_events)

    def test_attribution_carries_event_log_census(self):
        tr = self._traced(max_events=10)
        attr = stall_attribution(tr.result, events=tr.events)
        assert attr["event_log"]["truncated"] is True
        assert attr["event_log"]["recorded"] == 10
        assert attr["event_log"]["dropped"] > 0

    def test_report_header_warns_with_dropped_count(self):
        tr = self._traced(max_events=10)
        report = render_stall_report(tr.result, events=tr.events)
        assert "WARNING: event log truncated" in report
        assert f"{tr.events.dropped} dropped" in report

    def test_no_warning_when_not_truncated(self):
        tr = self._traced(max_events=1_000_000)
        assert not tr.events.truncated
        report = render_stall_report(tr.result, events=tr.events)
        assert "WARNING" not in report

    def test_cli_metrics_summary_mentions_truncation(self):
        from repro.harness.cli import run_trace
        text = run_trace("mpenc", max_events=50)
        assert "event log: TRUNCATED at 50 events" in text
        assert "dropped" in text
