"""Generated ISA reference: completeness and structure."""

import re

from repro.isa.doc import isa_reference_md
from repro.isa.opcodes import OPCODES


class TestIsaReference:
    def test_every_opcode_documented_exactly_once(self):
        md = isa_reference_md()
        for name in OPCODES:
            occurrences = md.count(f"| `{name}` |")
            assert occurrences == 1, name

    def test_sections_present(self):
        md = isa_reference_md()
        for section in ("Scalar integer arithmetic", "Vector arithmetic",
                        "Vector memory", "Thread / VLT runtime",
                        "Vector reductions"):
            assert f"## {section}" in md

    def test_no_misc_leftovers(self):
        """The section predicates should classify every opcode."""
        assert "## Miscellaneous" not in isa_reference_md()

    def test_tables_well_formed(self):
        md = isa_reference_md()
        rows = [l for l in md.splitlines() if l.startswith("| `")]
        assert len(rows) == len(OPCODES)
        assert all(l.count("|") == 6 for l in rows)

    def test_cli_writes_file(self, tmp_path):
        from repro.isa.doc import main
        out = tmp_path / "isa.md"
        assert main([str(out)]) == 0
        assert out.read_text().startswith("# ISA reference")
