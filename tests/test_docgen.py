"""EXPERIMENTS.md generator: commentary logic on synthetic results."""

from repro.harness.docgen import (_fig1_commentary, _fig3_commentary,
                                  _fig5_commentary, _fig6_commentary)
from repro.harness.experiments import (Fig1Result, Fig3Result, Fig5Result,
                                       Fig6Result)


class TestFig1Commentary:
    def _result(self, sp8):
        cycles = {app: [1000, int(1000 / s)] for app, s in sp8.items()}
        return Fig1Result(lanes=(1, 8), cycles=cycles)

    def test_all_pass(self):
        res = self._result({"mxm": 5.0, "sage": 6.0, "trfd": 1.4,
                            "radix": 1.0})
        text = _fig1_commentary(res)
        assert text.count("PASS") == 3 and "FAIL" not in text

    def test_flat_scalar_violation_detected(self):
        res = self._result({"mxm": 5.0, "sage": 6.0, "radix": 2.0})
        assert "FAIL" in _fig1_commentary(res)


class TestFig3Commentary:
    def test_monotone_pass(self):
        res = Fig3Result(cycles={
            "a": {"base": 1000, 2: 600, 4: 450},
            "b": {"base": 1000, 2: 800, 4: 500}})
        text = _fig3_commentary(res)
        assert "PASS" in text
        assert "1.25-1.67" in text or "1.25" in text

    def test_non_monotone_fails(self):
        res = Fig3Result(cycles={"a": {"base": 1000, 2: 500, 4: 900}})
        assert "FAIL" in _fig3_commentary(res)


class TestFig5Commentary:
    def test_paper_shape_passes(self):
        res = Fig5Result(speedups={"a": {
            "V2-SMT": 1.5, "V2-CMP": 1.55, "V4-SMT": 1.6,
            "V4-CMT": 1.9, "V4-CMP": 2.0, "V4-CMP-h": 1.7}},
            base_cycles={"a": 1000})
        assert "PASS" in _fig5_commentary(res)

    def test_deviation_reported_partial(self):
        res = Fig5Result(speedups={"a": {
            "V2-SMT": 1.0, "V2-CMP": 2.0, "V4-SMT": 2.5,
            "V4-CMT": 1.5, "V4-CMP": 2.5, "V4-CMP-h": 1.0}},
            base_cycles={"a": 1000})
        assert "PARTIAL" in _fig5_commentary(res)


class TestFig6Commentary:
    def test_paper_shape(self):
        res = Fig6Result(cycles={
            "radix": {"CMT": 2000, "VLT": 1000},
            "ocean": {"CMT": 2200, "VLT": 1000},
            "barnes": {"CMT": 1100, "VLT": 1000}})
        assert "PASS" in _fig6_commentary(res)

    def test_direction_only_is_partial(self):
        res = Fig6Result(cycles={
            "radix": {"CMT": 1000, "VLT": 1050},
            "ocean": {"CMT": 1450, "VLT": 1000},
            "barnes": {"CMT": 950, "VLT": 1000}})
        assert "PARTIAL" in _fig6_commentary(res)
