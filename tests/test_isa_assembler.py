"""Text assembler: syntax, directives, symbols, errors."""

import numpy as np
import pytest

from repro.isa import AssemblerError, assemble


class TestBasics:
    def test_minimal_program(self):
        prog = assemble("halt")
        assert len(prog.instrs) == 1
        assert prog.instrs[0].op == "halt"

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        # a comment
        li s1, 5   # trailing comment

        halt
        """)
        assert [i.op for i in prog.instrs] == ["li", "halt"]

    def test_labels(self):
        prog = assemble("""
        li s1, 0
        loop: addi s1, s1, 1
        blt s1, s2, loop
        halt
        """)
        assert prog.labels["loop"] == 1
        assert prog.instrs[2].target == 1

    def test_label_on_own_line(self):
        prog = assemble("""
        j end
        nop
        end:
        halt
        """)
        assert prog.instrs[0].target == 2

    def test_immediates_hex_and_negative(self):
        prog = assemble("""
        li s1, 0x10
        addi s2, s1, -3
        halt
        """)
        assert prog.instrs[0].imm == 16
        assert prog.instrs[1].imm == -3

    def test_float_immediates(self):
        prog = assemble("fli f1, 2.5\nfli f2, 1e3\nhalt")
        assert prog.instrs[0].imm == 2.5
        assert prog.instrs[1].imm == 1000.0

    def test_memory_operands(self):
        prog = assemble("ld s1, 16(s2)\nst s1, 0(s3)\nhalt")
        assert prog.instrs[0].mem == (16, ("s", 2))

    def test_masked_mnemonics(self):
        prog = assemble("vadd.vv.m v1, v2, v3\nhalt")
        assert prog.instrs[0].masked


class TestDirectives:
    def test_data_and_symbol_refs(self):
        prog = assemble("""
        .f64 x 1.0 2.0
        .i64 n 42
        .space buf 128
        li s1, &x
        li s2, &n
        li s3, &buf
        ld s4, &n(s0)
        halt
        """)
        assert prog.instrs[0].imm == prog.symbol_addr("x")
        assert prog.instrs[1].imm == prog.symbol_addr("n")
        assert prog.instrs[3].mem == (prog.symbol_addr("n"), ("s", 0))
        mem = prog.build_memory()
        assert mem.view(np.float64)[prog.symbol_addr("x") // 8] == 1.0
        assert mem.view(np.int64)[prog.symbol_addr("n") // 8] == 42

    def test_symbol_plus_offset(self):
        prog = assemble(""".f64 x 1.0 2.0 3.0
        li s1, &x+16
        halt""")
        assert prog.instrs[0].imm == prog.symbol_addr("x") + 16

    def test_memory_directive(self):
        prog = assemble(".memory 128\nhalt")
        assert prog.memory_bytes == 128 * 1024

    def test_program_name(self):
        prog = assemble(".program mykernel\nhalt")
        assert prog.name == "mykernel"


class TestErrors:
    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("nop\nnop\nbadop s1, s2\nhalt")
        assert "line 3" in str(exc.value)

    @pytest.mark.parametrize("src", [
        "add s1, s2",                # wrong arity
        "add s1, s2, f3",            # wrong register class
        "ld s1, s2, s3",             # malformed memory operand count
        ".bogus x 1",                # unknown directive
        "li s1, &missing\nhalt",     # unknown symbol
    ])
    def test_rejects(self, src):
        with pytest.raises(AssemblerError):
            assemble(src)

    def test_undefined_label(self):
        with pytest.raises(ValueError):
            assemble("j nowhere\nhalt")


class TestExecutesCorrectly:
    def test_strip_mine_loop(self):
        from tests.conftest import run_asm
        src = """
        .f64 x 1.0 2.0 3.0 4.0 5.0
        .space y 40
        li s1, 5
        li s2, &x
        li s3, &y
        fli f1, 3.0
        loop:
        setvl s4, s1
        vld v1, 0(s2)
        vfmul.vs v2, v1, f1
        vst v2, 0(s3)
        sub s1, s1, s4
        slli s5, s4, 3
        add s2, s2, s5
        add s3, s3, s5
        bne s1, s0, loop
        halt
        """
        _, ex, prog = run_asm(src)
        got = ex.mem.read_f64_array(prog.symbol_addr("y"), 5)
        assert np.allclose(got, np.arange(1.0, 6.0) * 3.0)
