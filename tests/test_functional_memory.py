"""Simulated memory: scalar/vector access, alignment, bounds."""

import numpy as np
import pytest

from repro.functional.memory import Memory, MemoryFault, MisalignedAccess


@pytest.fixture
def mem():
    return Memory(np.zeros(1024, dtype=np.uint8))


class TestScalar:
    def test_i64_roundtrip(self, mem):
        mem.store_i64(16, -12345)
        assert mem.load_i64(16) == -12345

    def test_i64_wraps_to_signed(self, mem):
        mem.store_i64(0, 1 << 63)
        assert mem.load_i64(0) == -(1 << 63)

    def test_f64_roundtrip(self, mem):
        mem.store_f64(8, 3.14159)
        assert mem.load_f64(8) == 3.14159

    def test_bits_shared_between_views(self, mem):
        mem.store_f64(0, 1.0)
        assert mem.load_i64(0) == 0x3FF0000000000000

    @pytest.mark.parametrize("addr", [1, 7, 9, 1023])
    def test_misaligned_raises(self, mem, addr):
        with pytest.raises(MisalignedAccess):
            mem.load_i64(addr)

    @pytest.mark.parametrize("addr", [-8, 1024, 100000])
    def test_out_of_bounds_raises(self, mem, addr):
        with pytest.raises(MemoryFault):
            mem.load_i64(addr)


class TestVector:
    def test_gather(self, mem):
        for i in range(8):
            mem.store_i64(i * 8, i * 100)
        addrs = np.array([0, 24, 48], dtype=np.int64)
        assert mem.gather_i64(addrs).tolist() == [0, 300, 600]

    def test_scatter(self, mem):
        addrs = np.array([8, 40], dtype=np.int64)
        mem.scatter_i64(addrs, np.array([11, 22], dtype=np.int64))
        assert mem.load_i64(8) == 11
        assert mem.load_i64(40) == 22

    def test_scatter_duplicate_last_wins(self, mem):
        addrs = np.array([16, 16], dtype=np.int64)
        mem.scatter_i64(addrs, np.array([1, 2], dtype=np.int64))
        assert mem.load_i64(16) == 2

    def test_vector_misaligned(self, mem):
        with pytest.raises(MisalignedAccess):
            mem.gather_i64(np.array([8, 12], dtype=np.int64))

    def test_vector_bounds(self, mem):
        with pytest.raises(MemoryFault):
            mem.gather_i64(np.array([0, 2048], dtype=np.int64))

    def test_empty_vector_access(self, mem):
        assert mem.gather_i64(np.empty(0, dtype=np.int64)).size == 0

    def test_read_helpers(self, mem):
        mem.store_f64(64, 2.5)
        mem.store_i64(72, 7)
        assert mem.read_f64_array(64, 1)[0] == 2.5
        assert mem.read_i64_array(72, 1)[0] == 7

    def test_read_helpers_return_copies(self, mem):
        mem.store_i64(0, 5)
        arr = mem.read_i64_array(0, 1)
        arr[0] = 99
        assert mem.load_i64(0) == 5


class TestConstruction:
    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            Memory(np.zeros(64, dtype=np.int64))

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            Memory(np.zeros(13, dtype=np.uint8))
