"""Scalar instruction semantics, exercised through tiny programs."""

import math

import numpy as np
import pytest

from tests.conftest import run_asm


def run_int_op(op: str, a: int, b: int) -> int:
    src = f"""
    .space out 8
    li s1, {a}
    li s2, {b}
    {op} s3, s1, s2
    li s4, &out
    st s3, 0(s4)
    halt
    """
    _, ex, prog = run_asm(src)
    return ex.mem.load_i64(prog.symbol_addr("out"))


def run_fp_op(body: str, consts=()) -> float:
    lines = [f"fli f{i + 1}, {v}" for i, v in enumerate(consts)]
    src = ".space out 8\n" + "\n".join(lines) + f"""
    {body}
    li s9, &out
    fst f9, 0(s9)
    halt
    """
    _, ex, prog = run_asm(src)
    return ex.mem.load_f64(prog.symbol_addr("out"))


class TestIntegerOps:
    @pytest.mark.parametrize("op,a,b,want", [
        ("add", 5, 7, 12),
        ("sub", 5, 7, -2),
        ("mul", -3, 9, -27),
        ("div", 17, 5, 3),
        ("div", -17, 5, -3),        # truncation toward zero
        ("div", 17, -5, -3),
        ("div", 5, 0, 0),           # div-by-zero convention
        ("rem", 17, 5, 2),
        ("rem", -17, 5, -2),
        ("rem", 5, 0, 0),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("sll", 3, 4, 48),
        ("sll", 1, 64, 1),          # shift amounts use low 6 bits
        ("srl", -1, 60, 15),
        ("sra", -16, 2, -4),
        ("slt", 2, 3, 1),
        ("slt", 3, 2, 0),
        ("sle", 3, 3, 1),
        ("seq", 4, 4, 1),
        ("sne", 4, 4, 0),
        ("min", -5, 3, -5),
        ("max", -5, 3, 3),
    ])
    def test_table(self, op, a, b, want):
        assert run_int_op(op, a, b) == want

    def test_add_wraps_64bit(self):
        big = (1 << 62) + ((1 << 62) - 1)
        assert run_int_op("add", 1 << 62, (1 << 62) - 1) == big
        # overflow wraps
        assert run_int_op("add", (1 << 62), (1 << 62)) == -(1 << 63)

    def test_mul_wraps(self):
        assert run_int_op("mul", 1 << 62, 4) == 0

    @pytest.mark.parametrize("op,imm,want", [
        ("addi", 5, 15), ("muli", 3, 30), ("andi", 8, 8), ("ori", 5, 15),
        ("xori", 2, 8), ("slli", 2, 40), ("srli", 1, 5), ("srai", 1, 5),
        ("slti", 11, 1), ("slti", 10, 0),
    ])
    def test_immediates(self, op, imm, want):
        src = f"""
        .space out 8
        li s1, 10
        {op} s2, s1, {imm}
        li s3, &out
        st s2, 0(s3)
        halt
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == want

    def test_s0_is_hardwired_zero(self):
        src = """
        .space out 8
        li s0, 99
        li s1, &out
        st s0, 0(s1)
        halt
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == 0


class TestFloatOps:
    @pytest.mark.parametrize("body,consts,want", [
        ("fadd f9, f1, f2", (1.5, 2.25), 3.75),
        ("fsub f9, f1, f2", (1.5, 2.25), -0.75),
        ("fmul f9, f1, f2", (1.5, 2.0), 3.0),
        ("fdiv f9, f1, f2", (7.0, 2.0), 3.5),
        ("fmin f9, f1, f2", (7.0, 2.0), 2.0),
        ("fmax f9, f1, f2", (7.0, 2.0), 7.0),
        ("fsqrt f9, f1", (9.0,), 3.0),
        ("fabs f9, f1", (-4.5,), 4.5),
        ("fneg f9, f1", (4.5,), -4.5),
        ("fmv f9, f1", (4.5,), 4.5),
    ])
    def test_table(self, body, consts, want):
        assert run_fp_op(body, consts) == want

    def test_fdiv_by_zero_is_inf(self):
        assert run_fp_op("fdiv f9, f1, f2", (1.0, 0.0)) == math.inf

    def test_fsqrt_negative_is_nan(self):
        assert math.isnan(run_fp_op("fsqrt f9, f1", (-1.0,)))

    @pytest.mark.parametrize("op,a,b,want", [
        ("feq", 2.0, 2.0, 1), ("feq", 2.0, 3.0, 0),
        ("flt", 2.0, 3.0, 1), ("fle", 3.0, 3.0, 1), ("flt", 3.0, 3.0, 0),
    ])
    def test_compares(self, op, a, b, want):
        src = f"""
        .space out 8
        fli f1, {a}
        fli f2, {b}
        {op} s1, f1, f2
        li s2, &out
        st s1, 0(s2)
        halt
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == want

    def test_conversions(self):
        src = """
        .space out 16
        li s1, -7
        itof f1, s1
        fli f2, 3.99
        ftoi s2, f2
        li s3, &out
        fst f1, 0(s3)
        st s2, 8(s3)
        halt
        """
        _, ex, prog = run_asm(src)
        out = prog.symbol_addr("out")
        assert ex.mem.load_f64(out) == -7.0
        assert ex.mem.load_i64(out + 8) == 3  # truncation


class TestLoadsStores:
    def test_ld_st_with_offsets(self):
        src = """
        .i64 a 10 20 30
        .space out 8
        li s1, &a
        ld s2, 8(s1)
        addi s2, s2, 1
        li s3, &out
        st s2, 0(s3)
        halt
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == 21

    def test_fld_fst(self):
        src = """
        .f64 a 1.25 2.5
        .space out 8
        li s1, &a
        fld f1, 8(s1)
        li s2, &out
        fst f1, 0(s2)
        halt
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_f64(prog.symbol_addr("out")) == 2.5
