"""Property-based tests (hypothesis) for the functional simulator.

The key invariant: straight-line vector programs agree with NumPy
elementwise semantics for arbitrary inputs, vector lengths, and operator
sequences; integer arithmetic wraps to 64 bits exactly like int64.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import Executor
from repro.isa import F, ProgramBuilder, S, V
from repro.isa.registers import MVL

I64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
SMALL = st.integers(min_value=-10 ** 6, max_value=10 ** 6)

_INT_OPS = {
    "vadd.vv": lambda a, b: a + b,
    "vsub.vv": lambda a, b: a - b,
    "vmul.vv": lambda a, b: a * b,
    "vand.vv": lambda a, b: a & b,
    "vor.vv": lambda a, b: a | b,
    "vxor.vv": lambda a, b: a ^ b,
    "vmin.vv": np.minimum,
    "vmax.vv": np.maximum,
}


def _run_int_chain(xs, ys, ops):
    n = len(xs)
    b = ProgramBuilder("prop", memory_kib=64)
    b.data_i64("x", np.array(xs, dtype=np.int64))
    b.data_i64("y", np.array(ys, dtype=np.int64))
    b.space("out", MVL * 8)
    b.op("li", S(1), n)
    b.op("setvl", S(2), S(1))
    b.la(S(3), "x")
    b.la(S(4), "y")
    b.op("vld", V(1), (0, S(3)))
    b.op("vld", V(2), (0, S(4)))
    for op in ops:
        b.op(op, V(1), V(1), V(2))
    b.la(S(5), "out")
    b.op("vst", V(1), (0, S(5)))
    b.op("halt")
    prog = b.build()
    ex = Executor(prog)
    ex.run()
    return ex.mem.read_i64_array(prog.symbol_addr("out"), n)


class TestIntVectorAgainstNumpy:
    @settings(max_examples=60, deadline=None)
    @given(
        xs=st.lists(I64, min_size=1, max_size=MVL),
        ops=st.lists(st.sampled_from(sorted(_INT_OPS)), min_size=1,
                     max_size=5),
        ys=st.lists(I64, min_size=MVL, max_size=MVL),
    )
    def test_chain_matches_numpy(self, xs, ops, ys):
        n = len(xs)
        ys = ys[:n]
        got = _run_int_chain(xs, ys, ops)
        a = np.array(xs, dtype=np.int64)
        bb = np.array(ys, dtype=np.int64)
        with np.errstate(over="ignore"):
            for op in ops:
                a = _INT_OPS[op](a, bb).astype(np.int64)
        assert np.array_equal(got, a)

    @settings(max_examples=40, deadline=None)
    @given(a=I64, b=I64)
    def test_scalar_add_wraps_like_int64(self, a, b):
        b_ = ProgramBuilder("w", memory_kib=64)
        b_.space("out", 8)
        b_.op("li", S(1), a)
        b_.op("li", S(2), b)
        b_.op("add", S(3), S(1), S(2))
        b_.la(S(4), "out")
        b_.op("st", S(3), (0, S(4)))
        b_.op("halt")
        prog = b_.build()
        ex = Executor(prog)
        ex.run()
        with np.errstate(over="ignore"):
            want = int(np.int64(a) + np.int64(b))
        assert ex.mem.load_i64(prog.symbol_addr("out")) == want

    @settings(max_examples=40, deadline=None)
    @given(a=SMALL, b=SMALL)
    def test_div_rem_identity(self, a, b):
        b_ = ProgramBuilder("d", memory_kib=64)
        b_.space("out", 16)
        b_.op("li", S(1), a)
        b_.op("li", S(2), b)
        b_.op("div", S(3), S(1), S(2))
        b_.op("rem", S(4), S(1), S(2))
        b_.la(S(5), "out")
        b_.op("st", S(3), (0, S(5)))
        b_.op("st", S(4), (8, S(5)))
        b_.op("halt")
        prog = b_.build()
        ex = Executor(prog)
        ex.run()
        q = ex.mem.load_i64(prog.symbol_addr("out"))
        r = ex.mem.load_i64(prog.symbol_addr("out") + 8)
        if b == 0:
            assert q == 0 and r == 0
        else:
            assert q * b + r == a          # division identity
            assert abs(r) < abs(b)
            assert q == int(a / b)          # truncation toward zero


class TestMaskProperties:
    @settings(max_examples=40, deadline=None)
    @given(xs=st.lists(SMALL, min_size=1, max_size=MVL), thresh=SMALL)
    def test_merge_equals_numpy_where(self, xs, thresh):
        n = len(xs)
        b = ProgramBuilder("m", memory_kib=64)
        b.data_i64("x", np.array(xs, dtype=np.int64))
        b.space("out", MVL * 8)
        b.op("li", S(1), n)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "x")
        b.op("vld", V(1), (0, S(3)))
        b.op("li", S(4), thresh)
        b.op("vslt.vs", V(1), S(4))
        b.op("li", S(5), -1)
        b.op("vmerge.vs", V(2), V(1), S(5))
        b.la(S(6), "out")
        b.op("vst", V(2), (0, S(6)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), n)
        arr = np.array(xs, dtype=np.int64)
        want = np.where(arr < thresh, arr, -1)
        assert np.array_equal(got, want)

    @settings(max_examples=40, deadline=None)
    @given(xs=st.lists(SMALL, min_size=1, max_size=MVL))
    def test_popcount_plus_complement(self, xs):
        """vmpop(mask) + vmpop(inverted condition) == vl."""
        n = len(xs)
        b = ProgramBuilder("p", memory_kib=64)
        b.data_i64("x", np.array(xs, dtype=np.int64))
        b.space("out", 16)
        b.op("li", S(1), n)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "x")
        b.op("vld", V(1), (0, S(3)))
        b.op("vslt.vs", V(1), S(0))
        b.op("vmpop", S(4))
        b.op("vsle.vs", V(1), S(0))   # complement boundary overlaps at == 0
        b.op("vmpop", S(5))
        b.la(S(6), "out")
        b.op("st", S(4), (0, S(6)))
        b.op("st", S(5), (8, S(6)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        neg = ex.mem.load_i64(prog.symbol_addr("out"))
        nonpos = ex.mem.load_i64(prog.symbol_addr("out") + 8)
        arr = np.array(xs, dtype=np.int64)
        assert neg == int((arr < 0).sum())
        assert nonpos == int((arr <= 0).sum())


class TestReductionProperties:
    @settings(max_examples=40, deadline=None)
    @given(xs=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                 width=32),
                       min_size=1, max_size=MVL))
    def test_minmax_bounds_elements(self, xs):
        n = len(xs)
        b = ProgramBuilder("r", memory_kib=64)
        b.data_f64("x", np.array(xs))
        b.space("out", 16)
        b.op("li", S(1), n)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "x")
        b.op("vld", V(1), (0, S(3)))
        b.op("vfredmin", F(1), V(1))
        b.op("vfredmax", F(2), V(1))
        b.la(S(4), "out")
        b.op("fst", F(1), (0, S(4)))
        b.op("fst", F(2), (8, S(4)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        lo = ex.mem.load_f64(prog.symbol_addr("out"))
        hi = ex.mem.load_f64(prog.symbol_addr("out") + 8)
        assert lo == min(xs)
        assert hi == max(xs)
