"""Property-based timing invariants (hypothesis).

For randomly generated straight-line programs:

* simulation is deterministic;
* cycle count is bounded below by issue-width and dependence-chain
  lower bounds, and above by a full-serialisation upper bound;
* adding lanes never slows down a vector program (monotonicity);
* every instruction is issued exactly once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import Executor
from repro.isa import F, ProgramBuilder, S, V
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import base_config

_SCALAR_OPS = ["add", "sub", "mul", "and", "or", "xor", "min", "max"]
_VECTOR_OPS = ["vfadd.vv", "vfsub.vv", "vfmul.vv", "vfmin.vv", "vfmax.vv"]


@st.composite
def random_program(draw):
    """A straight-line mixed scalar/vector program (no memory access)."""
    n_ops = draw(st.integers(min_value=5, max_value=60))
    vl = draw(st.integers(min_value=1, max_value=64))
    b = ProgramBuilder("rand", memory_kib=64)
    b.op("li", S(1), vl)
    b.op("setvl", S(2), S(1))
    b.op("li", S(3), 7)
    n_scalar = 0
    for _ in range(n_ops):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_SCALAR_OPS))
            d = draw(st.integers(min_value=4, max_value=12))
            a = draw(st.integers(min_value=1, max_value=12))
            c = draw(st.integers(min_value=1, max_value=12))
            b.op(op, S(d), S(a), S(c))
            n_scalar += 1
        else:
            op = draw(st.sampled_from(_VECTOR_OPS))
            d = draw(st.integers(min_value=1, max_value=8))
            a = draw(st.integers(min_value=1, max_value=8))
            c = draw(st.integers(min_value=1, max_value=8))
            b.op(op, V(d), V(a), V(c))
    b.op("halt")
    return b.build(), n_ops, vl, n_scalar


class TestRandomPrograms:
    @settings(max_examples=25, deadline=None)
    @given(data=random_program())
    def test_deterministic(self, data):
        prog, *_ = data
        clear_trace_cache()
        a = simulate(prog, base_config()).cycles
        clear_trace_cache()
        b = simulate(prog, base_config()).cycles
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(data=random_program())
    def test_cycle_bounds(self, data):
        prog, n_ops, vl, n_scalar = data
        clear_trace_cache()
        r = simulate(prog, base_config())
        n_total = n_ops + 3  # + li/setvl/li
        # lower bound: frontend width 4
        assert r.cycles >= n_total / 4
        # upper bound: full serialisation with generous per-op cost
        occupancy = max(1, -(-vl // 8))
        assert r.cycles <= n_total * (20 + occupancy) + 500

    @settings(max_examples=25, deadline=None)
    @given(data=random_program())
    def test_everything_issues_exactly_once(self, data):
        prog, n_ops, vl, n_scalar = data
        clear_trace_cache()
        r = simulate(prog, base_config())
        n_vector = n_ops - n_scalar
        assert r.vector_unit.issued == n_vector
        assert r.vector_unit.element_ops == n_vector * vl
        # scalar issued = scalar ops + li/setvl/li prologue
        assert r.scalar_units[0].issued == n_scalar + 3

    @settings(max_examples=15, deadline=None)
    @given(data=random_program())
    def test_lane_monotonicity(self, data):
        prog, *_ = data
        clear_trace_cache()
        prev = None
        for lanes in (1, 2, 4, 8):
            c = simulate(prog, base_config(lanes=lanes)).cycles
            if prev is not None:
                # more lanes never slower (allow tiny jitter from bank
                # mapping differences)
                assert c <= prev * 1.05 + 4
            prev = c

    @settings(max_examples=15, deadline=None)
    @given(data=random_program())
    def test_utilization_conservation(self, data):
        """Busy datapath-cycles == total vector element operations."""
        prog, n_ops, vl, n_scalar = data
        clear_trace_cache()
        r = simulate(prog, base_config())
        n_vector = n_ops - n_scalar
        assert r.utilization.busy == n_vector * vl
        assert r.utilization.total == 3 * 8 * r.cycles
