"""The simulation service: dedupe, admission, eviction, lifecycle.

The end-to-end tests drive a real :class:`SimulationService` over real
HTTP (loopback, ephemeral port) through the stdlib
:class:`ServiceClient` -- the same path the CI smoke job and the
load-generator bench exercise.
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.telemetry import TelemetryReader, validate_run_record
from repro.service import JobRequest, TenantGovernor, TokenBucket
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import BadRequest, job_key
from repro.service.server import ServiceConfig, ServiceThread
from repro.timing.run import set_trace_cache_dir


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache():
    """The service points the process-global cache at its own dir;
    isolate every test from that global state."""
    set_trace_cache_dir(None)
    yield
    set_trace_cache_dir(None)


def _service(tmp_path, **overrides):
    kwargs = dict(port=0, workers=2,
                  cache_dir=str(tmp_path / "cache"),
                  telemetry_dir=str(tmp_path / "tele"),
                  rate=10_000.0, burst=10_000.0)
    kwargs.update(overrides)
    return ServiceThread(ServiceConfig(**kwargs))


# --------------------------------------------------------------------------
# Admission control units (injectable clock: fully deterministic)
# --------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        now = [0.0]
        b = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert [b.try_acquire() for _ in range(4)] == \
            [True, True, True, False]
        now[0] += 0.5                       # refills 1 token
        assert b.try_acquire()
        assert not b.try_acquire()
        now[0] += 100.0                     # caps at burst, not rate*t
        assert b.tokens == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTenantGovernor:
    def test_rate_rejection_names_the_tenant(self):
        now = [0.0]
        g = TenantGovernor(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert g.admit("alice") is None
        assert g.admit("alice") is None
        reason = g.admit("alice")
        assert reason is not None and "alice" in reason
        assert g.admit("bob") is None       # per-tenant buckets

    def test_inflight_quota_and_release(self):
        g = TenantGovernor(rate=1000.0, burst=1000.0, max_inflight=2)
        assert g.admit("t") is None
        assert g.admit("t") is None
        reason = g.admit("t")
        assert reason is not None and "unfinished" in reason
        g.release("t")
        assert g.inflight("t") == 1
        assert g.admit("t") is None         # slot freed


# --------------------------------------------------------------------------
# Request validation
# --------------------------------------------------------------------------

class TestJobRequest:
    def test_round_trip_and_key(self):
        req = JobRequest.from_json({"app": "mpenc", "config": "base",
                                    "threads": 2, "engine": "columnar"})
        assert req.spec().threads == 2
        k1 = job_key(req, "p" * 64, "c" * 64)
        k2 = job_key(req, "p" * 64, "c" * 64)
        assert k1 == k2
        other = JobRequest.from_json({"app": "mpenc", "config": "base",
                                      "threads": 4})
        assert job_key(other, "p" * 64, "c" * 64) != k1

    @pytest.mark.parametrize("body", [
        "not an object",
        {},                                          # missing app/config
        {"app": "mpenc"},                            # missing config
        {"app": "mpenc", "config": "base", "threads": True},
        {"app": "mpenc", "config": "base", "threads": 0},
        {"app": "mpenc", "config": "base", "max_cycles": -5},
        {"app": "mpenc", "config": "base", "engine": "quantum"},
        {"app": "mpenc", "config": "base", "func_engine": "psychic"},
        {"app": "mpenc", "config": "base", "frobnicate": 1},
    ])
    def test_rejected_bodies(self, body):
        with pytest.raises(BadRequest):
            JobRequest.from_json(body)


# --------------------------------------------------------------------------
# End-to-end over real HTTP
# --------------------------------------------------------------------------

class TestServiceEndToEnd:
    def test_concurrent_identical_burst_simulates_once(self, tmp_path):
        """The headline property: N identical concurrent submissions
        collapse onto ONE simulation (single-flight dedupe), verified
        through the run ledger -- and every client still gets the same
        numbers."""
        n = 16
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            with ThreadPoolExecutor(max_workers=8) as pool:
                docs = list(pool.map(
                    lambda _: c.submit("mpenc", "base", threads=1,
                                       tenant="burst"), range(n)))
            results = [c.wait(d["id"]) for d in docs]
            metrics = c.metrics()
        assert all(r["state"] == "done" for r in results)
        cycles = {r["result"]["cycles"] for r in results}
        assert len(cycles) == 1             # N identical results
        assert metrics["service"]["submitted"] == n
        assert metrics["service"]["simulated_runs"] == 1
        # the ledger is the ground truth: exactly one simulate attempt
        recs = [json.loads(line) for line in
                (tmp_path / "tele" / "ledger.jsonl").read_text()
                .splitlines() if line]
        assert all(validate_run_record(r) == [] for r in recs)
        simulated = [r for r in recs
                     if r["outcome"] == "ok" and not r["result_cached"]]
        assert len(simulated) == 1
        assert simulated[0]["tenant"] == "burst"
        assert simulated[0]["job_id"]
        # fleet metrics ride along on /metrics
        assert metrics["fleet"]["ok"] >= 1

    def test_sequential_resubmission_hits_result_cache(self, tmp_path):
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            first = c.wait(c.submit("mpenc", "base")["id"])
            second = c.wait(c.submit("mpenc", "base")["id"])
            metrics = c.metrics()
        assert first["provenance"] in ("simulated", "trace cache")
        assert second["provenance"] == "result cache"
        assert first["result"]["cycles"] == second["result"]["cycles"]
        assert metrics["service"]["result_cache_served"] == 1
        assert metrics["service"]["simulated_runs"] == 1

    def test_rate_limit_is_http_429(self, tmp_path):
        with _service(tmp_path, rate=0.001, burst=2.0) as st:
            c = ServiceClient(port=st.port)
            c.submit("mpenc", "base", tenant="greedy")
            c.submit("mpenc", "base", tenant="greedy")
            with pytest.raises(ServiceError) as err:
                c.submit("mpenc", "base", tenant="greedy")
            # other tenants are unaffected
            ok = c.submit("mpenc", "base", tenant="polite")
            metrics = c.metrics()
        assert err.value.status == 429
        assert "greedy" in err.value.body["reason"]
        assert ok["state"] in ("queued", "running")
        assert metrics["service"]["rejected"] == 1

    def test_cache_budget_evicts_after_flights(self, tmp_path):
        with _service(tmp_path, cache_budget_bytes=0) as st:
            c = ServiceClient(port=st.port)
            c.wait(c.submit("mpenc", "base")["id"])
            deadline = time.monotonic() + 10.0
            while True:
                m = c.metrics()
                if m["service"]["evictions"] >= 1:
                    break
                assert time.monotonic() < deadline, m["service"]
                time.sleep(0.05)
        assert m["cache"]["budget_bytes"] == 0
        assert m["cache"]["traces"]["bytes"] == 0
        assert m["cache"]["results"]["bytes"] == 0

    def test_bad_requests_are_http_400(self, tmp_path):
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            for body in ({"app": "nosuchapp", "config": "base"},
                         {"app": "mpenc", "config": "nosuchcfg"},
                         {"app": "mpenc", "config": "base", "bogus": 1}):
                extra = {k: v for k, v in body.items()
                         if k not in ("app", "config")}
                with pytest.raises(ServiceError) as err:
                    c.submit(body["app"], body["config"], **extra)
                assert err.value.status == 400, body
            metrics = c.metrics()
        assert metrics["service"]["bad_requests"] == 3
        assert metrics["service"]["submitted"] == 0

    def test_unknown_job_is_http_404(self, tmp_path):
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            with pytest.raises(ServiceError) as err:
                c.status("job-999999")
        assert err.value.status == 404

    def test_simulation_failure_is_a_failed_job(self, tmp_path):
        # base has one thread context; threads=2 cannot execute
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            doc = c.wait(c.submit("mpenc", "base", threads=2)["id"])
        assert doc["state"] == "failed"
        assert doc["error"]["type"] == "ValueError"
        assert "contexts" in doc["error"]["message"]

    def test_stream_replays_lifecycle(self, tmp_path):
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            job_id = c.submit("mpenc", "base")["id"]
            lines = list(c.stream(job_id))
        states = [ln["state"] for ln in lines if "state" in ln]
        assert states[0] == "queued"
        assert states[-1] == "done"
        final = lines[-1]["final"]
        assert final["state"] == "done"
        assert final["result"]["cycles"] > 0

    def test_status_document_shape(self, tmp_path):
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            accepted = c.submit("mpenc", "base", threads=1,
                                tenant="shape")
            doc = c.wait(accepted["id"])
            status = c.status(accepted["id"])
            assert c.healthz()["ok"] is True
        assert accepted["key"] == status["key"]
        assert len(status["program_digest"]) == 64
        assert len(status["config_digest"]) == 64
        assert status["tenant"] == "shape"
        assert status["request"]["app"] == "mpenc"
        assert doc["provenance"] in ("simulated", "trace cache",
                                     "result cache", "dedupe")

    def test_ledger_readable_by_tele_report(self, tmp_path):
        """Service ledgers feed the same `vlt-repro tele report` path
        as runner sweeps (tenant mix included)."""
        with _service(tmp_path) as st:
            c = ServiceClient(port=st.port)
            c.wait(c.submit("mpenc", "base", tenant="acme")["id"])
        reader = TelemetryReader.from_path(
            tmp_path / "tele" / "ledger.jsonl")
        metrics = reader.fleet_metrics()
        assert metrics["ok"] >= 1
        assert metrics["tenant_mix"].get("acme", 0) >= 1
        assert "acme" in reader.report()


class TestServeCliVerb:
    def test_serve_verb_wired(self):
        """`vlt-repro serve` parses its flags and refuses operands."""
        from repro.harness.cli import CLI_VERBS, main
        assert "serve" in CLI_VERBS
        with pytest.raises(SystemExit):
            main(["serve", "extra-operand"])
